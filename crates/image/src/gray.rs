use crate::{ImageError, Result};
use serde::{Deserialize, Serialize};

/// An owned 8-bit grayscale image stored in row-major order.
///
/// This is the workhorse type of the reproduction: feature extraction, bitmap
/// compression, and similarity metrics all operate on `GrayImage`s, mirroring
/// how the BEES prototype feeds luminance data to OpenCV.
///
/// # Examples
///
/// ```
/// use bees_image::GrayImage;
///
/// let img = GrayImage::from_fn(4, 2, |x, y| (x + 10 * y) as u8);
/// assert_eq!(img.get(3, 1), 13);
/// assert_eq!(img.pixels().len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GrayImage {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl GrayImage {
    /// Creates a black (all-zero) image of the given size.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImageError::InvalidDimensions { width, height });
        }
        Ok(GrayImage {
            width,
            height,
            data: vec![0; width as usize * height as usize],
        })
    }

    /// Wraps an existing row-major pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] for zero dimensions and
    /// [`ImageError::BufferSizeMismatch`] if `data.len() != width * height`.
    pub fn from_raw(width: u32, height: u32, data: Vec<u8>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImageError::InvalidDimensions { width, height });
        }
        let expected = width as usize * height as usize;
        if data.len() != expected {
            return Err(ImageError::BufferSizeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(GrayImage {
            width,
            height,
            data,
        })
    }

    /// Builds an image by evaluating `f(x, y)` for every pixel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; use [`GrayImage::new`] for fallible
    /// construction.
    pub fn from_fn<F: FnMut(u32, u32) -> u8>(width: u32, height: u32, mut f: F) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        let mut data = Vec::with_capacity(width as usize * height as usize);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        GrayImage {
            width,
            height,
            data,
        }
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dimensions(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Total number of pixels (`width * height`).
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.data.len()
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> u8 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y as usize * self.width as usize + x as usize]
    }

    /// Pixel value at `(x, y)`, or `None` when out of bounds.
    #[inline]
    pub fn try_get(&self, x: u32, y: u32) -> Option<u8> {
        if x < self.width && y < self.height {
            Some(self.data[y as usize * self.width as usize + x as usize])
        } else {
            None
        }
    }

    /// Pixel value with coordinates clamped to the image border.
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> u8 {
        let cx = x.clamp(0, self.width as i64 - 1) as usize;
        let cy = y.clamp(0, self.height as i64 - 1) as usize;
        self.data[cy * self.width as usize + cx]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: u8) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y as usize * self.width as usize + x as usize] = value;
    }

    /// Immutable view of the row-major pixel buffer.
    #[inline]
    pub fn pixels(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the row-major pixel buffer.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// One row of pixels.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row(&self, y: u32) -> &[u8] {
        assert!(y < self.height, "row {y} out of bounds");
        let w = self.width as usize;
        &self.data[y as usize * w..(y as usize + 1) * w]
    }

    /// Consumes the image and returns the underlying pixel buffer.
    pub fn into_raw(self) -> Vec<u8> {
        self.data
    }

    /// Copies a rectangular region. The rectangle is clamped to the image.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] when the clamped rectangle is
    /// empty (origin outside the image or zero size).
    pub fn crop(&self, x0: u32, y0: u32, w: u32, h: u32) -> Result<GrayImage> {
        if x0 >= self.width || y0 >= self.height || w == 0 || h == 0 {
            return Err(ImageError::InvalidDimensions {
                width: w,
                height: h,
            });
        }
        let w = w.min(self.width - x0);
        let h = h.min(self.height - y0);
        let mut out = GrayImage::new(w, h)?;
        for y in 0..h {
            for x in 0..w {
                out.set(x, y, self.get(x0 + x, y0 + y));
            }
        }
        Ok(out)
    }

    /// Mean pixel intensity in `[0, 255]`.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&p| p as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Converts to a floating-point image (values keep the `[0, 255]` range).
    pub fn to_f32(&self) -> GrayF32 {
        GrayF32 {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&p| p as f32).collect(),
        }
    }
}

/// A floating-point grayscale image used for filter pipelines (blur, DoG
/// pyramids) where 8-bit rounding would destroy the signal.
///
/// Values are nominally in `[0, 255]` but are not clamped by arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayF32 {
    pub(crate) width: u32,
    pub(crate) height: u32,
    pub(crate) data: Vec<f32>,
}

impl GrayF32 {
    /// Creates an all-zero floating-point image.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImageError::InvalidDimensions { width, height });
        }
        Ok(GrayF32 {
            width,
            height,
            data: vec![0.0; width as usize * height as usize],
        })
    }

    /// Wraps an existing row-major sample buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] for zero dimensions and
    /// [`ImageError::BufferSizeMismatch`] if `data.len() != width * height`.
    pub fn from_raw(width: u32, height: u32, data: Vec<f32>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImageError::InvalidDimensions { width, height });
        }
        let expected = width as usize * height as usize;
        if data.len() != expected {
            return Err(ImageError::BufferSizeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(GrayF32 {
            width,
            height,
            data,
        })
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y as usize * self.width as usize + x as usize]
    }

    /// Pixel value with coordinates clamped to the border.
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> f32 {
        let cx = x.clamp(0, self.width as i64 - 1) as usize;
        let cy = y.clamp(0, self.height as i64 - 1) as usize;
        self.data[cy * self.width as usize + cx]
    }

    /// Sets the pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y as usize * self.width as usize + x as usize] = value;
    }

    /// Immutable view of the row-major buffer.
    #[inline]
    pub fn pixels(&self) -> &[f32] {
        &self.data
    }

    /// Rounds and clamps back to an 8-bit image.
    pub fn to_u8(&self) -> GrayImage {
        GrayImage {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .map(|&p| p.round().clamp(0.0, 255.0) as u8)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_dimensions() {
        assert!(GrayImage::new(0, 4).is_err());
        assert!(GrayImage::new(4, 0).is_err());
        assert!(GrayF32::new(0, 0).is_err());
    }

    #[test]
    fn from_raw_checks_buffer_length() {
        assert!(GrayImage::from_raw(3, 3, vec![0; 8]).is_err());
        assert!(GrayImage::from_raw(3, 3, vec![0; 9]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = GrayImage::new(5, 4).unwrap();
        img.set(2, 3, 77);
        assert_eq!(img.get(2, 3), 77);
        assert_eq!(img.try_get(5, 0), None);
        assert_eq!(img.try_get(2, 3), Some(77));
    }

    #[test]
    fn clamped_access_extends_border() {
        let img = GrayImage::from_fn(3, 3, |x, y| (x + 3 * y) as u8);
        assert_eq!(img.get_clamped(-5, -5), img.get(0, 0));
        assert_eq!(img.get_clamped(10, 10), img.get(2, 2));
    }

    #[test]
    fn crop_clamps_to_bounds() {
        let img = GrayImage::from_fn(6, 6, |x, y| (x * 10 + y) as u8);
        let c = img.crop(4, 4, 5, 5).unwrap();
        assert_eq!(c.dimensions(), (2, 2));
        assert_eq!(c.get(0, 0), img.get(4, 4));
        assert!(img.crop(6, 0, 1, 1).is_err());
        assert!(img.crop(0, 0, 0, 1).is_err());
    }

    #[test]
    fn mean_of_constant_image() {
        let img = GrayImage::from_fn(8, 8, |_, _| 42);
        assert!((img.mean() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn f32_roundtrip_clamps() {
        let mut f = GrayF32::new(2, 1).unwrap();
        f.set(0, 0, -5.0);
        f.set(1, 0, 300.0);
        let u = f.to_u8();
        assert_eq!(u.get(0, 0), 0);
        assert_eq!(u.get(1, 0), 255);
    }

    #[test]
    fn row_view_matches_get() {
        let img = GrayImage::from_fn(4, 3, |x, y| (x + y * 4) as u8);
        assert_eq!(img.row(1), &[4, 5, 6, 7]);
    }
}
