//! Progressive (spectral-selection) variant of the block-DCT codec.
//!
//! The baseline codec in [`super`] interleaves every coefficient of every
//! block, so a truncated bitstream decodes to nothing. This module reorders
//! the *same* quantized coefficients into JPEG-style spectral-selection
//! scans: a DC scan first, then low→high AC zigzag bands across all blocks
//! ([`SCAN_BANDS`]). Any prefix that contains the scan directory and at
//! least the complete DC scan reconstructs a usable image; each further
//! complete scan sharpens it. [`decode_partial`] returns the best image a
//! prefix supports together with a [`ScanProgress`] saying how far fidelity
//! got — the primitive the resilient upload path's salvage ladder is built
//! on.
//!
//! # Bitstream layout
//!
//! ```text
//! [10-byte header: magic, width u32le, height u32le, quality]
//! [n_scans: u8]
//! [n_scans × scan byte length: u32le]   <- the scan directory
//! [scan 0 bytes] [scan 1 bytes] ...     <- each scan byte-aligned
//! ```
//!
//! Every scan is self-contained: its DC predictors reset per plane and its
//! run-length codes never cross the band boundary, so scans can be applied
//! independently and a cut mid-scan loses only that scan's refinement.
//!
//! # Examples
//!
//! ```
//! use bees_image::{GrayImage, codec::progressive};
//!
//! # fn main() -> Result<(), bees_image::ImageError> {
//! let img = GrayImage::from_fn(64, 64, |x, y| ((x * 3 + y * 7) % 256) as u8);
//! let bytes = progressive::encode_progressive_gray(&img, 70)?;
//! // Full stream: all scans applied.
//! let (full, progress) = progressive::decode_partial(&bytes)?;
//! assert!(progress.is_complete());
//! assert_eq!(full.dimensions(), img.dimensions());
//! // A truncated stream still decodes, at reduced fidelity.
//! let (partial, progress) = progressive::decode_partial(&bytes[..bytes.len() / 2])?;
//! assert!(progress.scans_complete < progress.scans_total);
//! assert_eq!(partial.dimensions(), img.dimensions());
//! # Ok(())
//! # }
//! ```

use super::bits::{BitReader, BitWriter};
use super::{
    entropy, merge_ycbcr, plane_from_zigzags, plane_zigzags, quant, read_header, split_ycbcr,
    write_header, PlaneView,
};
use crate::{GrayImage, ImageError, Result, RgbImage};

/// Magic byte marking a progressive grayscale bitstream.
const MAGIC_PROGRESSIVE_GRAY: u8 = 0xB5;
/// Magic byte marking a progressive YCbCr 4:2:0 bitstream.
const MAGIC_PROGRESSIVE_COLOR: u8 = 0xB7;

/// Zigzag coefficient bands of the spectral-selection scans, in stream
/// order: the DC scan `[0, 1)`, then four AC bands of increasing spatial
/// frequency. Together they cover every coefficient exactly once.
pub const SCAN_BANDS: [(usize, usize); 5] = [(0, 1), (1, 6), (6, 15), (15, 28), (28, 64)];

/// How far through the scan sequence a [`decode_partial`] call got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanProgress {
    /// Complete scans the prefix contained (and the decode applied).
    pub scans_complete: usize,
    /// Scans a complete stream carries ([`SCAN_BANDS`] length).
    pub scans_total: usize,
    /// Bytes of the prefix actually consumed: header, scan directory, and
    /// every complete scan. Trailing bytes of an incomplete scan are
    /// ignored.
    pub bytes_consumed: usize,
}

impl ScanProgress {
    /// True when every scan was applied — the decode is full-fidelity.
    pub fn is_complete(&self) -> bool {
        self.scans_complete == self.scans_total
    }
}

/// The image a [`decode_partial`] call reconstructed.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodedImage {
    /// From a grayscale stream.
    Gray(GrayImage),
    /// From a YCbCr 4:2:0 color stream.
    Rgb(RgbImage),
}

impl DecodedImage {
    /// Luminance view of the decoded image (what SSIM scoring compares).
    pub fn to_gray(&self) -> GrayImage {
        match self {
            DecodedImage::Gray(g) => g.clone(),
            DecodedImage::Rgb(c) => c.to_gray(),
        }
    }

    /// Image dimensions in pixels.
    pub fn dimensions(&self) -> (u32, u32) {
        match self {
            DecodedImage::Gray(g) => g.dimensions(),
            DecodedImage::Rgb(c) => c.dimensions(),
        }
    }
}

/// Encodes a grayscale image as a progressive bitstream at the given
/// quality (1..=100). Same transform and quantization as
/// [`encode_gray`](super::encode_gray); only the coefficient order differs.
///
/// # Errors
///
/// Returns [`ImageError::InvalidParameter`] if `quality` is outside
/// `1..=100`.
pub fn encode_progressive_gray(img: &GrayImage, quality: u8) -> Result<Vec<u8>> {
    let table = quant::luminance_table(quality)?;
    let zigzags = plane_zigzags(&PlaneView::from_gray(img), &table);
    let scans = encode_scans(&[&zigzags]);
    Ok(assemble(
        MAGIC_PROGRESSIVE_GRAY,
        img.width(),
        img.height(),
        quality,
        &scans,
    ))
}

/// Encodes an RGB image as a progressive bitstream at the given quality,
/// with the same 4:2:0 chroma subsampling as
/// [`encode_rgb`](super::encode_rgb). Each scan carries its band for the Y,
/// Cb, and Cr planes in that order, so even the DC-only prefix decodes to a
/// (blocky) color image.
///
/// # Errors
///
/// Returns [`ImageError::InvalidParameter`] if `quality` is outside
/// `1..=100`.
pub fn encode_progressive_rgb(img: &RgbImage, quality: u8) -> Result<Vec<u8>> {
    let lum = quant::luminance_table(quality)?;
    let chrom = quant::chrominance_table(quality)?;
    let (y_plane, cb_plane, cr_plane) = split_ycbcr(img);
    let y_zz = plane_zigzags(&y_plane, &lum);
    let cb_zz = plane_zigzags(&cb_plane, &chrom);
    let cr_zz = plane_zigzags(&cr_plane, &chrom);
    let scans = encode_scans(&[&y_zz, &cb_zz, &cr_zz]);
    Ok(assemble(
        MAGIC_PROGRESSIVE_COLOR,
        img.width(),
        img.height(),
        quality,
        &scans,
    ))
}

/// Decodes the best image any prefix of a progressive bitstream supports.
///
/// Applies every *complete* scan the prefix contains and ignores the bytes
/// of a scan the cut landed in. Works on the full stream too, where it is
/// the (only) full-fidelity decoder for this format.
///
/// # Errors
///
/// Returns [`ImageError::CorruptBitstream`] if the prefix is too short to
/// contain the header, scan directory, and complete DC scan, or if any
/// contained scan is malformed.
pub fn decode_partial(bytes: &[u8]) -> Result<(DecodedImage, ScanProgress)> {
    let (magic, width, height, quality, payload) = read_header(bytes)?;
    let color = match magic {
        MAGIC_PROGRESSIVE_GRAY => false,
        MAGIC_PROGRESSIVE_COLOR => true,
        _ => {
            return Err(ImageError::CorruptBitstream {
                detail: "not a progressive bitstream",
            })
        }
    };
    if payload.is_empty() {
        return Err(ImageError::CorruptBitstream {
            detail: "scan directory truncated",
        });
    }
    let n_scans = payload[0] as usize;
    if n_scans != SCAN_BANDS.len() {
        return Err(ImageError::CorruptBitstream {
            detail: "unexpected scan count",
        });
    }
    let dir_end = 1 + 4 * n_scans;
    if payload.len() < dir_end {
        return Err(ImageError::CorruptBitstream {
            detail: "scan directory truncated",
        });
    }
    let lens: Vec<usize> = (0..n_scans)
        .map(|s| {
            let at = 1 + 4 * s;
            u32::from_le_bytes(payload[at..at + 4].try_into().expect("slice is 4 bytes")) as usize
        })
        .collect();

    // How many complete scans does the prefix hold?
    let avail = payload.len() - dir_end;
    let mut scans_complete = 0usize;
    let mut used = 0usize;
    for &len in &lens {
        match used.checked_add(len) {
            Some(end) if end <= avail => {
                used = end;
                scans_complete += 1;
            }
            _ => break,
        }
    }
    if scans_complete == 0 {
        return Err(ImageError::CorruptBitstream {
            detail: "prefix ends before the DC scan completes",
        });
    }

    // A forged header can claim absurd dimensions; the DC scan spends at
    // least one bit per block of every plane, and `lens[0]` is bounded by
    // the bytes actually present, so bound the block count before any
    // allocation.
    let y_blocks = checked_blocks(width, height)?;
    let (cw, ch) = (width.div_ceil(2).max(1), height.div_ceil(2).max(1));
    let c_blocks = if color { checked_blocks(cw, ch)? } else { 0 };
    let total_blocks = y_blocks
        .checked_add(c_blocks.checked_mul(2).ok_or(OVERFLOW)?)
        .ok_or(OVERFLOW)?;
    if total_blocks > lens[0].saturating_mul(8) + 1 {
        return Err(ImageError::CorruptBitstream {
            detail: "dimensions exceed payload capacity",
        });
    }

    let lum = quant::luminance_table(quality)?;
    let mut y_zz = vec![[0i32; 64]; y_blocks];
    let progress = ScanProgress {
        scans_complete,
        scans_total: n_scans,
        bytes_consumed: 10 + dir_end + used,
    };
    let image = if color {
        let chrom = quant::chrominance_table(quality)?;
        let mut cb_zz = vec![[0i32; 64]; c_blocks];
        let mut cr_zz = vec![[0i32; 64]; c_blocks];
        apply_scans(
            &payload[dir_end..],
            &lens[..scans_complete],
            &mut [&mut y_zz, &mut cb_zz, &mut cr_zz],
        )?;
        let y_plane = plane_from_zigzags(&y_zz, width, height, &lum);
        let cb_plane = plane_from_zigzags(&cb_zz, cw, ch, &chrom);
        let cr_plane = plane_from_zigzags(&cr_zz, cw, ch, &chrom);
        DecodedImage::Rgb(merge_ycbcr(&y_plane, &cb_plane, &cr_plane, width, height))
    } else {
        apply_scans(
            &payload[dir_end..],
            &lens[..scans_complete],
            &mut [&mut y_zz],
        )?;
        DecodedImage::Gray(plane_from_zigzags(&y_zz, width, height, &lum).into_gray())
    };
    Ok((image, progress))
}

const OVERFLOW: ImageError = ImageError::CorruptBitstream {
    detail: "dimension overflow",
};

/// Blocks an `width × height` plane splits into, with overflow checks fed
/// by forged headers.
fn checked_blocks(width: u32, height: u32) -> Result<usize> {
    (width as usize)
        .div_ceil(8)
        .checked_mul((height as usize).div_ceil(8))
        .ok_or(OVERFLOW)
}

/// Serializes the per-scan byte segments behind the header + directory.
fn assemble(magic: u8, width: u32, height: u32, quality: u8, scans: &[Vec<u8>]) -> Vec<u8> {
    let body: usize = scans.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(10 + 1 + 4 * scans.len() + body);
    write_header(&mut out, magic, width, height, quality);
    out.push(scans.len() as u8);
    for scan in scans {
        let len = u32::try_from(scan.len()).expect("scan segments are far below 4 GiB");
        out.extend_from_slice(&len.to_le_bytes());
    }
    for scan in scans {
        out.extend_from_slice(scan);
    }
    out
}

/// Encodes each [`SCAN_BANDS`] band across every plane (in plane order)
/// into its own byte-aligned segment.
fn encode_scans(planes: &[&[[i32; 64]]]) -> Vec<Vec<u8>> {
    SCAN_BANDS
        .iter()
        .map(|&(lo, hi)| {
            let mut writer = BitWriter::new();
            for plane in planes {
                if lo == 0 {
                    // DC scan: the differential predictor resets per plane
                    // per scan, keeping every scan self-contained.
                    let mut prev_dc = 0i32;
                    for zz in *plane {
                        entropy::encode_dc(&mut writer, zz[0], &mut prev_dc);
                    }
                } else {
                    for zz in *plane {
                        entropy::encode_band(&mut writer, zz, lo, hi);
                    }
                }
            }
            writer.into_bytes()
        })
        .collect()
}

/// Applies the first `lens.len()` scans from `body` (the bytes after the
/// scan directory) onto the planes' zigzag coefficients.
fn apply_scans(body: &[u8], lens: &[usize], planes: &mut [&mut [[i32; 64]]]) -> Result<()> {
    let mut offset = 0usize;
    for (s, &len) in lens.iter().enumerate() {
        let (lo, hi) = SCAN_BANDS[s];
        let mut reader = BitReader::new(&body[offset..offset + len]);
        for plane in planes.iter_mut() {
            if lo == 0 {
                let mut prev_dc = 0i32;
                for zz in plane.iter_mut() {
                    zz[0] = entropy::decode_dc(&mut reader, &mut prev_dc)?;
                }
            } else {
                for zz in plane.iter_mut() {
                    entropy::decode_band(&mut reader, zz, lo, hi)?;
                }
            }
        }
        offset += len;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::Rgb;

    fn textured(w: u32, h: u32) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| {
            let v = 128.0
                + 60.0 * ((x as f64) * 0.3).sin()
                + 40.0 * ((y as f64) * 0.2).cos()
                + ((x * y) % 13) as f64;
            v.clamp(0.0, 255.0) as u8
        })
    }

    fn colorful(w: u32, h: u32) -> RgbImage {
        RgbImage::from_fn(w, h, |x, y| {
            Rgb::new(
                ((x * 5) % 256) as u8,
                ((y * 7) % 256) as u8,
                (128 + ((x + y) % 64)) as u8,
            )
        })
    }

    #[test]
    fn full_progressive_stream_matches_baseline_fidelity() {
        // Same coefficients, different order: the complete progressive
        // stream must decode to exactly the baseline decode.
        let img = textured(64, 48);
        let baseline = super::super::decode_gray(&super::super::encode_gray(&img, 70).unwrap());
        let bytes = encode_progressive_gray(&img, 70).unwrap();
        let (decoded, progress) = decode_partial(&bytes).unwrap();
        assert!(progress.is_complete());
        assert_eq!(progress.bytes_consumed, bytes.len());
        assert_eq!(decoded.to_gray(), baseline.unwrap());
    }

    #[test]
    fn fidelity_is_monotone_in_scan_count() {
        let img = textured(96, 96);
        let bytes = encode_progressive_gray(&img, 80).unwrap();
        let (_, full) = decode_partial(&bytes).unwrap();
        assert_eq!(full.scans_total, SCAN_BANDS.len());
        let mut last_ssim = -1.0f64;
        let mut seen = 0;
        // Walk prefixes at every byte length; SSIM may only improve as more
        // scans complete.
        for cut in (0..=bytes.len()).step_by(64) {
            let Ok((img_cut, p)) = decode_partial(&bytes[..cut]) else {
                continue;
            };
            if p.scans_complete > seen {
                let s = metrics::ssim(&img, &img_cut.to_gray()).unwrap();
                assert!(
                    s + 1e-9 >= last_ssim,
                    "ssim regressed at {} scans: {s} < {last_ssim}",
                    p.scans_complete
                );
                last_ssim = s;
                seen = p.scans_complete;
            }
        }
        assert_eq!(seen, SCAN_BANDS.len(), "never saw the full stream");
    }

    #[test]
    fn dc_only_prefix_is_already_recognizable() {
        let img = textured(96, 96);
        let bytes = encode_progressive_gray(&img, 80).unwrap();
        // The shortest decodable prefix: header + directory + DC scan.
        let (dc_img, p) = decode_partial(&bytes[..dc_prefix_len(&bytes)]).unwrap();
        assert_eq!(p.scans_complete, 1);
        let s = metrics::ssim(&img, &dc_img.to_gray()).unwrap();
        assert!(s > 0.2, "DC-only ssim {s} should beat noise");
    }

    /// Byte length of header + directory + DC scan.
    fn dc_prefix_len(bytes: &[u8]) -> usize {
        let n_scans = bytes[10] as usize;
        let dc_len = u32::from_le_bytes(bytes[11..15].try_into().unwrap()) as usize;
        10 + 1 + 4 * n_scans + dc_len
    }

    #[test]
    fn every_prefix_decodes_or_errors_cleanly() {
        let img = textured(40, 24);
        let bytes = encode_progressive_gray(&img, 60).unwrap();
        let dc_end = dc_prefix_len(&bytes);
        for cut in 0..=bytes.len() {
            match decode_partial(&bytes[..cut]) {
                Ok((decoded, p)) => {
                    assert!(cut >= dc_end, "decoded from a pre-DC prefix of {cut} bytes");
                    assert_eq!(decoded.dimensions(), (40, 24));
                    assert!(p.scans_complete >= 1);
                    assert!(p.bytes_consumed <= cut);
                }
                Err(_) => {
                    assert!(cut < dc_end, "prefix of {cut} bytes should have decoded");
                }
            }
        }
    }

    #[test]
    fn color_roundtrip_and_partial_decode() {
        let img = colorful(48, 40);
        let bytes = encode_progressive_rgb(&img, 85).unwrap();
        let (full, p) = decode_partial(&bytes).unwrap();
        assert!(p.is_complete());
        assert_eq!(full.dimensions(), (48, 40));
        let s_full = metrics::ssim(&img.to_gray(), &full.to_gray()).unwrap();
        assert!(s_full > 0.85, "full color ssim {s_full}");
        // Cut off the last scan: still decodes, slightly softer.
        let (partial, p) = decode_partial(&bytes[..bytes.len() - 1]).unwrap();
        assert_eq!(p.scans_complete, SCAN_BANDS.len() - 1);
        let s_part = metrics::ssim(&img.to_gray(), &partial.to_gray()).unwrap();
        assert!(s_part <= s_full + 1e-9);
        assert!(s_part > 0.5, "four-scan color ssim {s_part}");
    }

    #[test]
    fn rejects_baseline_magic_and_garbage() {
        let img = textured(16, 16);
        let baseline = super::super::encode_gray(&img, 50).unwrap();
        assert!(decode_partial(&baseline).is_err());
        assert!(decode_partial(&[]).is_err());
        let mut forged = encode_progressive_gray(&img, 50).unwrap();
        forged[10] = 9; // claim a scan count the format does not have
        assert!(decode_partial(&forged).is_err());
    }

    #[test]
    fn forged_dimensions_are_rejected_before_allocation() {
        let img = textured(16, 16);
        let mut bytes = encode_progressive_gray(&img, 50).unwrap();
        bytes[1..5].copy_from_slice(&2_000_000_000u32.to_le_bytes());
        bytes[5..9].copy_from_slice(&2_000_000_000u32.to_le_bytes());
        assert!(decode_partial(&bytes).is_err());
    }

    #[test]
    fn scan_bands_tile_the_spectrum() {
        assert_eq!(SCAN_BANDS[0], (0, 1));
        for w in SCAN_BANDS.windows(2) {
            assert_eq!(w[0].1, w[1].0, "bands must be contiguous");
        }
        assert_eq!(SCAN_BANDS[SCAN_BANDS.len() - 1].1, 64);
    }

    #[test]
    fn progressive_overhead_is_small() {
        // The scan directory adds 21 bytes; band-splitting the run-length
        // codes costs a little entropy efficiency. Keep the total under 25%
        // over baseline so AIU's size accounting stays honest.
        let img = textured(128, 128);
        let base = super::super::encode_gray(&img, 70).unwrap().len();
        let prog = encode_progressive_gray(&img, 70).unwrap().len();
        assert!(
            (prog as f64) < (base as f64) * 1.25 + 64.0,
            "progressive {prog} vs baseline {base}"
        );
    }
}
