//! A lossless predictive codec — the PNG stand-in.
//!
//! The paper (§III-C) lists PNG alongside JPEG as an upload format; PNG's
//! recipe is per-row prediction followed by entropy coding. This module
//! implements the same shape from scratch: each pixel is predicted with the
//! Paeth predictor (the strongest of PNG's five filters), and the residuals
//! are coded with the crate's exp-Golomb entropy coder. Decoding is exact.
//!
//! Lossless rates on photographs are far worse than the lossy DCT path,
//! which is exactly the paper's point in choosing quality compression for
//! AIU; the Fig. 5 binary can be compared against this codec to see the
//! gap.

use super::bits::{BitReader, BitWriter};
use super::entropy::{read_se, write_se};
use crate::{GrayImage, ImageError, Result};

/// Magic byte marking a lossless grayscale bitstream.
const MAGIC_LOSSLESS: u8 = 0xB7;

/// Paeth predictor: picks whichever of left/up/up-left is closest to
/// `left + up − up_left`.
fn paeth(left: i32, up: i32, up_left: i32) -> i32 {
    let p = left + up - up_left;
    let (da, db, dc) = ((p - left).abs(), (p - up).abs(), (p - up_left).abs());
    if da <= db && da <= dc {
        left
    } else if db <= dc {
        up
    } else {
        up_left
    }
}

/// Losslessly encodes a grayscale image.
pub fn encode_gray_lossless(img: &GrayImage) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(MAGIC_LOSSLESS);
    out.extend_from_slice(&img.width().to_le_bytes());
    out.extend_from_slice(&img.height().to_le_bytes());
    let mut writer = BitWriter::new();
    for y in 0..img.height() {
        for x in 0..img.width() {
            let left = if x > 0 { img.get(x - 1, y) as i32 } else { 0 };
            let up = if y > 0 { img.get(x, y - 1) as i32 } else { 0 };
            let up_left = if x > 0 && y > 0 {
                img.get(x - 1, y - 1) as i32
            } else {
                0
            };
            let predicted = paeth(left, up, up_left);
            write_se(&mut writer, (img.get(x, y) as i32 - predicted) as i64);
        }
    }
    out.extend_from_slice(&writer.into_bytes());
    out
}

/// Decodes a bitstream produced by [`encode_gray_lossless`].
///
/// # Errors
///
/// Returns [`ImageError::CorruptBitstream`] for truncated or malformed
/// input.
pub fn decode_gray_lossless(bytes: &[u8]) -> Result<GrayImage> {
    if bytes.len() < 9 {
        return Err(ImageError::CorruptBitstream {
            detail: "lossless header truncated",
        });
    }
    if bytes[0] != MAGIC_LOSSLESS {
        return Err(ImageError::CorruptBitstream {
            detail: "not a lossless bitstream",
        });
    }
    let width = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes"));
    let height = u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes"));
    if width == 0 || height == 0 {
        return Err(ImageError::CorruptBitstream {
            detail: "zero dimensions in header",
        });
    }
    let mut img = GrayImage::new(width, height)?;
    let mut reader = BitReader::new(&bytes[9..]);
    for y in 0..height {
        for x in 0..width {
            let left = if x > 0 { img.get(x - 1, y) as i32 } else { 0 };
            let up = if y > 0 { img.get(x, y - 1) as i32 } else { 0 };
            let up_left = if x > 0 && y > 0 {
                img.get(x - 1, y - 1) as i32
            } else {
                0
            };
            let predicted = paeth(left, up, up_left);
            let residual = read_se(&mut reader)?;
            let value = predicted as i64 + residual;
            if !(0..=255).contains(&value) {
                return Err(ImageError::CorruptBitstream {
                    detail: "pixel out of range",
                });
            }
            img.set(x, y, value as u8);
        }
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: u32, h: u32) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| {
            (128.0 + 60.0 * ((x as f64) * 0.3).sin() + 40.0 * ((y as f64) * 0.2).cos())
                .clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn roundtrip_is_exact() {
        for img in [textured(37, 21), textured(8, 8), textured(1, 1)] {
            let decoded = decode_gray_lossless(&encode_gray_lossless(&img)).unwrap();
            assert_eq!(decoded, img);
        }
    }

    #[test]
    fn smooth_images_compress_below_raw() {
        let img = textured(128, 96);
        let encoded = encode_gray_lossless(&img);
        assert!(
            encoded.len() < img.pixel_count(),
            "{} vs raw {}",
            encoded.len(),
            img.pixel_count()
        );
    }

    #[test]
    fn lossless_is_larger_than_lossy_dct() {
        // The paper's rationale for quality compression: lossless cannot
        // compete on rate.
        let img = textured(96, 96);
        let lossless = encode_gray_lossless(&img);
        let lossy = super::super::encode_gray(&img, 50).unwrap();
        assert!(lossless.len() > lossy.len());
    }

    #[test]
    fn corrupt_input_is_rejected() {
        assert!(decode_gray_lossless(&[]).is_err());
        assert!(decode_gray_lossless(&[0xB7, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        let mut good = encode_gray_lossless(&textured(16, 16));
        good[0] = 0x00;
        assert!(decode_gray_lossless(&good).is_err());
        let cut = encode_gray_lossless(&textured(16, 16));
        assert!(decode_gray_lossless(&cut[..cut.len() / 2]).is_err());
    }

    #[test]
    fn random_noise_still_roundtrips() {
        let img = GrayImage::from_fn(33, 17, |x, y| {
            ((x as u64 * 2654435761 + y as u64 * 40503) >> 7) as u8
        });
        assert_eq!(
            decode_gray_lossless(&encode_gray_lossless(&img)).unwrap(),
            img
        );
    }

    #[test]
    fn paeth_matches_png_reference_cases() {
        assert_eq!(paeth(0, 0, 0), 0);
        assert_eq!(paeth(10, 0, 0), 10); // p=10, closest to left
        assert_eq!(paeth(0, 10, 0), 10); // closest to up
        assert_eq!(paeth(5, 5, 5), 5);
        // p = 4 + 6 - 5 = 5: up-left is the exact prediction and wins.
        assert_eq!(paeth(4, 6, 5), 5);
        // Tie-break order: left before up.
        assert_eq!(paeth(4, 6, 9), 4);
    }
}
