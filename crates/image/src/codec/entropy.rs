//! Entropy coding for quantized DCT blocks.
//!
//! DC coefficients are coded differentially; AC coefficients as
//! (zero-run, value) pairs — both with exponential-Golomb codes, a
//! self-terminating variable-length code that needs no stored Huffman
//! tables. This is the same structure JPEG uses (DPCM DC + run-length AC),
//! with exp-Golomb replacing canonical Huffman.

use super::bits::{BitReader, BitWriter};
use crate::{ImageError, Result};

/// Writes an unsigned exp-Golomb code for `v`.
pub fn write_ue(writer: &mut BitWriter, v: u64) {
    let x = v + 1;
    let bits = 64 - x.leading_zeros() as u8; // position of the highest set bit
    writer.write_bits(0, bits - 1); // prefix zeros
    writer.write_bits(x, bits);
}

/// Reads an unsigned exp-Golomb code.
///
/// # Errors
///
/// Returns [`ImageError::CorruptBitstream`] on truncated input or an
/// implausibly long prefix.
pub fn read_ue(reader: &mut BitReader<'_>) -> Result<u64> {
    let mut zeros = 0u8;
    while !reader.read_bit()? {
        zeros += 1;
        if zeros > 62 {
            return Err(ImageError::CorruptBitstream {
                detail: "exp-golomb prefix too long",
            });
        }
    }
    let rest = reader.read_bits(zeros)?;
    Ok(((1u64 << zeros) | rest) - 1)
}

/// Writes a signed exp-Golomb code (zigzag mapping of the integers).
pub fn write_se(writer: &mut BitWriter, v: i64) {
    let u = if v > 0 {
        (v as u64) * 2 - 1
    } else {
        (-v as u64) * 2
    };
    write_ue(writer, u);
}

/// Reads a signed exp-Golomb code.
///
/// # Errors
///
/// Returns [`ImageError::CorruptBitstream`] on truncated input.
pub fn read_se(reader: &mut BitReader<'_>) -> Result<i64> {
    let u = read_ue(reader)?;
    Ok(if u % 2 == 1 {
        u.div_ceil(2) as i64
    } else {
        -((u / 2) as i64)
    })
}

/// Encodes one zigzag-ordered quantized block. `prev_dc` carries the DC
/// predictor across blocks and is updated in place.
pub fn encode_block(writer: &mut BitWriter, zz: &[i32; 64], prev_dc: &mut i32) {
    write_se(writer, (zz[0] - *prev_dc) as i64);
    *prev_dc = zz[0];
    let mut run = 0u64;
    for &c in &zz[1..] {
        if c == 0 {
            run += 1;
        } else {
            writer.write_bit(true); // another (run, value) pair follows
            write_ue(writer, run);
            // Value is non-zero; shift magnitude down by one so the code is
            // dense: v>0 -> 2(v-1), v<0 -> 2(|v|-1)+1.
            let mag = (c.unsigned_abs() as u64) - 1;
            writer.write_bit(c < 0);
            write_ue(writer, mag);
            run = 0;
        }
    }
    writer.write_bit(false); // end of block
}

/// Decodes one zigzag-ordered block. `prev_dc` carries the DC predictor and
/// is updated in place.
///
/// # Errors
///
/// Returns [`ImageError::CorruptBitstream`] for truncated input or runs that
/// overflow the block.
pub fn decode_block(reader: &mut BitReader<'_>, prev_dc: &mut i32) -> Result<[i32; 64]> {
    let mut zz = [0i32; 64];
    let delta = read_se(reader)?;
    let dc = (*prev_dc as i64) + delta;
    if dc.abs() > i32::MAX as i64 / 2 {
        return Err(ImageError::CorruptBitstream {
            detail: "dc coefficient out of range",
        });
    }
    zz[0] = dc as i32;
    *prev_dc = zz[0];
    let mut pos = 1usize;
    while reader.read_bit()? {
        let run = read_ue(reader)? as usize;
        pos = pos.checked_add(run).ok_or(ImageError::CorruptBitstream {
            detail: "ac run overflow",
        })?;
        if pos >= 64 {
            return Err(ImageError::CorruptBitstream {
                detail: "ac run past end of block",
            });
        }
        let negative = reader.read_bit()?;
        let mag = read_ue(reader)? + 1;
        if mag > i32::MAX as u64 {
            return Err(ImageError::CorruptBitstream {
                detail: "ac magnitude out of range",
            });
        }
        zz[pos] = if negative {
            -(mag as i64) as i32
        } else {
            mag as i32
        };
        pos += 1;
    }
    Ok(zz)
}

/// Encodes the DC coefficient of one block differentially against
/// `prev_dc` (updated in place). This is the whole of a progressive DC
/// scan's per-block contribution.
pub fn encode_dc(writer: &mut BitWriter, dc: i32, prev_dc: &mut i32) {
    write_se(writer, (dc - *prev_dc) as i64);
    *prev_dc = dc;
}

/// Decodes one differential DC coefficient against `prev_dc` (updated in
/// place).
///
/// # Errors
///
/// Returns [`ImageError::CorruptBitstream`] for truncated input or a DC
/// value outside the plausible coefficient range.
pub fn decode_dc(reader: &mut BitReader<'_>, prev_dc: &mut i32) -> Result<i32> {
    let delta = read_se(reader)?;
    let dc = (*prev_dc as i64) + delta;
    if dc.abs() > i32::MAX as i64 / 2 {
        return Err(ImageError::CorruptBitstream {
            detail: "dc coefficient out of range",
        });
    }
    *prev_dc = dc as i32;
    Ok(dc as i32)
}

/// Encodes the `[lo, hi)` zigzag band of one block as run-length (run,
/// value) pairs confined to the band — the AC piece of a progressive
/// spectral-selection scan. `lo` must be at least 1 (DC is coded by
/// [`encode_dc`]) and `hi` at most 64.
pub fn encode_band(writer: &mut BitWriter, zz: &[i32; 64], lo: usize, hi: usize) {
    debug_assert!((1..hi).contains(&lo) && hi <= 64, "band out of range");
    let mut run = 0u64;
    for &c in &zz[lo..hi] {
        if c == 0 {
            run += 1;
        } else {
            writer.write_bit(true); // another (run, value) pair follows
            write_ue(writer, run);
            let mag = (c.unsigned_abs() as u64) - 1;
            writer.write_bit(c < 0);
            write_ue(writer, mag);
            run = 0;
        }
    }
    writer.write_bit(false); // end of band
}

/// Decodes one `[lo, hi)` zigzag band into `zz`, leaving coefficients
/// outside the band untouched. Inverse of [`encode_band`].
///
/// # Errors
///
/// Returns [`ImageError::CorruptBitstream`] for truncated input or runs
/// that overflow the band.
pub fn decode_band(
    reader: &mut BitReader<'_>,
    zz: &mut [i32; 64],
    lo: usize,
    hi: usize,
) -> Result<()> {
    debug_assert!((1..hi).contains(&lo) && hi <= 64, "band out of range");
    let mut pos = lo;
    while reader.read_bit()? {
        let run = read_ue(reader)? as usize;
        pos = pos.checked_add(run).ok_or(ImageError::CorruptBitstream {
            detail: "ac run overflow",
        })?;
        if pos >= hi {
            return Err(ImageError::CorruptBitstream {
                detail: "ac run past end of band",
            });
        }
        let negative = reader.read_bit()?;
        let mag = read_ue(reader)? + 1;
        if mag > i32::MAX as u64 {
            return Err(ImageError::CorruptBitstream {
                detail: "ac magnitude out of range",
            });
        }
        zz[pos] = if negative {
            -(mag as i64) as i32
        } else {
            mag as i32
        };
        pos += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_golomb_roundtrip_unsigned() {
        let mut w = BitWriter::new();
        let values = [0u64, 1, 2, 5, 17, 255, 100_000, u32::MAX as u64];
        for &v in &values {
            write_ue(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(read_ue(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn exp_golomb_roundtrip_signed() {
        let mut w = BitWriter::new();
        let values = [0i64, 1, -1, 2, -2, 100, -100, 65535, -65535];
        for &v in &values {
            write_se(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(read_se(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn small_values_get_short_codes() {
        let mut w = BitWriter::new();
        write_ue(&mut w, 0);
        assert_eq!(w.bit_len(), 1); // "1"
        write_ue(&mut w, 1);
        assert_eq!(w.bit_len(), 4); // "010"
    }

    #[test]
    fn block_roundtrip() {
        let mut zz = [0i32; 64];
        zz[0] = 37;
        zz[1] = -5;
        zz[4] = 2;
        zz[63] = -1;
        let mut w = BitWriter::new();
        let mut dc_enc = 10;
        encode_block(&mut w, &zz, &mut dc_enc);
        assert_eq!(dc_enc, 37);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut dc_dec = 10;
        let back = decode_block(&mut r, &mut dc_dec).unwrap();
        assert_eq!(back, zz);
        assert_eq!(dc_dec, 37);
    }

    #[test]
    fn multi_block_dc_prediction_chains() {
        let mut blocks = Vec::new();
        for k in 0..5 {
            let mut zz = [0i32; 64];
            zz[0] = 100 - 30 * k;
            zz[2] = k;
            blocks.push(zz);
        }
        let mut w = BitWriter::new();
        let mut dc = 0;
        for b in &blocks {
            encode_block(&mut w, b, &mut dc);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut dc = 0;
        for b in &blocks {
            assert_eq!(&decode_block(&mut r, &mut dc).unwrap(), b);
        }
    }

    #[test]
    fn all_zero_block_is_tiny() {
        let zz = [0i32; 64];
        let mut w = BitWriter::new();
        let mut dc = 0;
        encode_block(&mut w, &zz, &mut dc);
        assert!(w.bit_len() <= 2); // DC delta "1" + EOB "0"
    }

    #[test]
    fn band_split_reassembles_the_full_block() {
        // Coding a block as DC + three disjoint AC bands must reproduce
        // exactly what whole-block coding would.
        let mut zz = [0i32; 64];
        zz[0] = 42;
        zz[1] = -3;
        zz[5] = 7;
        zz[6] = 1;
        zz[30] = -2;
        zz[63] = 9;
        let bands = [(1usize, 6usize), (6, 32), (32, 64)];
        let mut segments = Vec::new();
        let mut w = BitWriter::new();
        let mut dc = 0;
        encode_dc(&mut w, zz[0], &mut dc);
        segments.push(w.into_bytes());
        for &(lo, hi) in &bands {
            let mut w = BitWriter::new();
            encode_band(&mut w, &zz, lo, hi);
            segments.push(w.into_bytes());
        }
        let mut back = [0i32; 64];
        let mut dc = 0;
        back[0] = decode_dc(&mut BitReader::new(&segments[0]), &mut dc).unwrap();
        for (seg, &(lo, hi)) in segments[1..].iter().zip(&bands) {
            decode_band(&mut BitReader::new(seg), &mut back, lo, hi).unwrap();
        }
        assert_eq!(back, zz);
    }

    #[test]
    fn band_run_cannot_escape_the_band() {
        // A run that would place a coefficient at or past `hi` is corrupt.
        let mut zz = [0i32; 64];
        zz[10] = 5;
        let mut w = BitWriter::new();
        encode_band(&mut w, &zz, 1, 16);
        let bytes = w.into_bytes();
        let mut narrow = [0i32; 64];
        let err = decode_band(&mut BitReader::new(&bytes), &mut narrow, 1, 8);
        assert!(err.is_err(), "run past the band must be detected");
    }

    #[test]
    fn truncated_band_errors_not_panics() {
        let mut zz = [0i32; 64];
        zz[2] = -9;
        zz[7] = 3;
        let mut w = BitWriter::new();
        encode_band(&mut w, &zz, 1, 16);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len().saturating_sub(1) {
            let mut out = [0i32; 64];
            let _ = decode_band(&mut BitReader::new(&bytes[..cut]), &mut out, 1, 16);
        }
    }

    #[test]
    fn truncated_block_errors() {
        let mut zz = [0i32; 64];
        zz[0] = 4;
        zz[10] = 9;
        let mut w = BitWriter::new();
        let mut dc = 0;
        encode_block(&mut w, &zz, &mut dc);
        let bytes = w.into_bytes();
        // Cut mid-stream: decoding should fail, not panic, for all prefixes.
        for cut in 0..bytes.len().saturating_sub(1) {
            let mut r = BitReader::new(&bytes[..cut]);
            let mut dc = 0;
            let _ = decode_block(&mut r, &mut dc); // must not panic
        }
    }
}
