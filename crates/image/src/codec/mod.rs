//! A lossy block-DCT image codec standing in for JPEG.
//!
//! BEES' Approximate Image Uploading (§III-C) trades image quality for
//! bandwidth with JPEG *quality compression* before upload. This module
//! implements the same transform-coding recipe from scratch so that the
//! quality ↔ file-size ↔ SSIM trade-off is real rather than modeled:
//!
//! 1. level shift and 8×8 block split (grayscale, or YCbCr with 4:2:0 chroma
//!    subsampling for color),
//! 2. 2-D type-II DCT per block ([`dct`]),
//! 3. quantization with quality-scaled tables using the libjpeg scaling
//!    formula ([`quant`]),
//! 4. zigzag scan ([`zigzag`]) and
//! 5. entropy coding: differential DC + run-length AC with exp-Golomb codes
//!    ([`entropy`]).
//!
//! The decoder inverts every step, so [`metrics::ssim`](crate::metrics::ssim)
//! can score the decoded image against the original exactly as the paper's
//! Fig. 5(a) does. A lossless Paeth-predictive codec (the PNG stand-in the
//! paper mentions) lives in [`lossless`].
//!
//! # Examples
//!
//! ```
//! use bees_image::{GrayImage, codec};
//!
//! # fn main() -> Result<(), bees_image::ImageError> {
//! let img = GrayImage::from_fn(64, 64, |x, y| ((x * x + y * 3) % 256) as u8);
//! let high = codec::encode_gray(&img, 90)?;
//! let low = codec::encode_gray(&img, 10)?;
//! assert!(low.len() < high.len());
//! let decoded = codec::decode_gray(&high)?;
//! assert_eq!(decoded.dimensions(), img.dimensions());
//! # Ok(())
//! # }
//! ```

pub mod bits;
pub mod dct;
pub mod entropy;
pub mod lossless;
pub mod progressive;
pub mod quant;
pub mod zigzag;

use crate::{GrayImage, ImageError, Result, Rgb, RgbImage};
use bees_runtime::Runtime;
use bits::{BitReader, BitWriter};

/// Magic byte marking a grayscale bitstream.
const MAGIC_GRAY: u8 = 0xB1;
/// Magic byte marking a YCbCr 4:2:0 bitstream.
const MAGIC_COLOR: u8 = 0xB3;

/// Encodes a grayscale image at the given quality (1..=100).
///
/// # Errors
///
/// Returns [`ImageError::InvalidParameter`] if `quality` is outside
/// `1..=100`.
pub fn encode_gray(img: &GrayImage, quality: u8) -> Result<Vec<u8>> {
    let table = quant::luminance_table(quality)?;
    let mut out = Vec::new();
    write_header(&mut out, MAGIC_GRAY, img.width(), img.height(), quality);
    let mut writer = BitWriter::new();
    encode_plane(&mut writer, &PlaneView::from_gray(img), &table);
    out.extend_from_slice(&writer.into_bytes());
    Ok(out)
}

/// Decodes a grayscale bitstream produced by [`encode_gray`].
///
/// # Errors
///
/// Returns [`ImageError::CorruptBitstream`] for truncated or malformed input.
pub fn decode_gray(bytes: &[u8]) -> Result<GrayImage> {
    let (magic, width, height, quality, payload) = read_header(bytes)?;
    if magic != MAGIC_GRAY {
        return Err(ImageError::CorruptBitstream {
            detail: "not a grayscale bitstream",
        });
    }
    let table = quant::luminance_table(quality)?;
    let mut reader = BitReader::new(payload);
    let plane = decode_plane(&mut reader, width, height, &table)?;
    Ok(plane.into_gray())
}

/// Encodes an RGB image at the given quality with 4:2:0 chroma subsampling.
///
/// # Errors
///
/// Returns [`ImageError::InvalidParameter`] if `quality` is outside
/// `1..=100`.
pub fn encode_rgb(img: &RgbImage, quality: u8) -> Result<Vec<u8>> {
    let lum = quant::luminance_table(quality)?;
    let chrom = quant::chrominance_table(quality)?;
    let (y_plane, cb_plane, cr_plane) = split_ycbcr(img);
    let mut out = Vec::new();
    write_header(&mut out, MAGIC_COLOR, img.width(), img.height(), quality);
    let mut writer = BitWriter::new();
    encode_plane(&mut writer, &y_plane, &lum);
    encode_plane(&mut writer, &cb_plane, &chrom);
    encode_plane(&mut writer, &cr_plane, &chrom);
    out.extend_from_slice(&writer.into_bytes());
    Ok(out)
}

/// Decodes an RGB bitstream produced by [`encode_rgb`].
///
/// # Errors
///
/// Returns [`ImageError::CorruptBitstream`] for truncated or malformed input.
pub fn decode_rgb(bytes: &[u8]) -> Result<RgbImage> {
    let (magic, width, height, quality, payload) = read_header(bytes)?;
    if magic != MAGIC_COLOR {
        return Err(ImageError::CorruptBitstream {
            detail: "not a color bitstream",
        });
    }
    let lum = quant::luminance_table(quality)?;
    let chrom = quant::chrominance_table(quality)?;
    let cw = width.div_ceil(2).max(1);
    let ch = height.div_ceil(2).max(1);
    let mut reader = BitReader::new(payload);
    let y_plane = decode_plane(&mut reader, width, height, &lum)?;
    let cb_plane = decode_plane(&mut reader, cw, ch, &chrom)?;
    let cr_plane = decode_plane(&mut reader, cw, ch, &chrom)?;
    Ok(merge_ycbcr(&y_plane, &cb_plane, &cr_plane, width, height))
}

/// Returns only the encoded size in bytes (the quantity AIU cares about).
///
/// # Errors
///
/// Returns [`ImageError::InvalidParameter`] if `quality` is outside
/// `1..=100`.
pub fn encoded_rgb_size(img: &RgbImage, quality: u8) -> Result<usize> {
    Ok(encode_rgb(img, quality)?.len())
}

fn write_header(out: &mut Vec<u8>, magic: u8, width: u32, height: u32, quality: u8) {
    out.push(magic);
    out.extend_from_slice(&width.to_le_bytes());
    out.extend_from_slice(&height.to_le_bytes());
    out.push(quality);
}

fn read_header(bytes: &[u8]) -> Result<(u8, u32, u32, u8, &[u8])> {
    if bytes.len() < 10 {
        return Err(ImageError::CorruptBitstream {
            detail: "header truncated",
        });
    }
    let magic = bytes[0];
    let width = u32::from_le_bytes(bytes[1..5].try_into().expect("slice is 4 bytes"));
    let height = u32::from_le_bytes(bytes[5..9].try_into().expect("slice is 4 bytes"));
    let quality = bytes[9];
    if width == 0 || height == 0 {
        return Err(ImageError::CorruptBitstream {
            detail: "zero dimensions in header",
        });
    }
    if !(1..=100).contains(&quality) {
        return Err(ImageError::CorruptBitstream {
            detail: "quality byte out of range",
        });
    }
    Ok((magic, width, height, quality, &bytes[10..]))
}

/// A borrowed or owned single-channel plane of f32 samples.
struct PlaneView {
    width: u32,
    height: u32,
    data: Vec<f32>,
}

impl PlaneView {
    fn from_gray(img: &GrayImage) -> Self {
        PlaneView {
            width: img.width(),
            height: img.height(),
            data: img.pixels().iter().map(|&p| p as f32).collect(),
        }
    }

    fn into_gray(self) -> GrayImage {
        let data = self
            .data
            .iter()
            .map(|&v| v.round().clamp(0.0, 255.0) as u8)
            .collect();
        GrayImage::from_raw(self.width, self.height, data).expect("plane dimensions are valid")
    }

    fn get_clamped(&self, x: i64, y: i64) -> f32 {
        let cx = x.clamp(0, self.width as i64 - 1) as usize;
        let cy = y.clamp(0, self.height as i64 - 1) as usize;
        self.data[cy * self.width as usize + cx]
    }
}

/// Stage 1 of plane encoding: per-block gather + forward DCT +
/// quantization + zigzag. Independent per block, so it fans out over the
/// runtime (blocks are ordered row-major, exactly as a sequential loop
/// would visit them). Shared by the baseline and progressive encoders.
fn plane_zigzags(plane: &PlaneView, table: &[u16; 64]) -> Vec<[i32; 64]> {
    let blocks_x = (plane.width as usize).div_ceil(8);
    let blocks_y = (plane.height as usize).div_ceil(8);
    Runtime::current().par_map_range(blocks_x * blocks_y, |b| {
        let (by, bx) = (b / blocks_x, b % blocks_x);
        let mut block = [0f32; 64];
        // Gather the block, replicating edge samples, with level shift.
        for y in 0..8 {
            for x in 0..8 {
                block[y * 8 + x] =
                    plane.get_clamped((bx * 8 + x) as i64, (by * 8 + y) as i64) - 128.0;
            }
        }
        let mut coeffs = [0f32; 64];
        let mut quantized = [0i32; 64];
        dct::forward_dct_8x8(&block, &mut coeffs);
        quant::quantize(&coeffs, table, &mut quantized);
        zigzag::to_zigzag(&quantized)
    })
}

/// Inverse of [`plane_zigzags`]: dequantize + inverse-DCT every block in
/// parallel and scatter the samples into a plane. Shared by the baseline
/// and progressive decoders.
fn plane_from_zigzags(
    zigzags: &[[i32; 64]],
    width: u32,
    height: u32,
    table: &[u16; 64],
) -> PlaneView {
    let blocks_x = (width as usize).div_ceil(8);
    let mut plane = PlaneView {
        width,
        height,
        data: vec![0.0; (width as usize) * (height as usize)],
    };
    let samples: Vec<[f32; 64]> = Runtime::current().par_map(zigzags, |zz| {
        let quantized = zigzag::from_zigzag(zz);
        let mut coeffs = [0f32; 64];
        let mut out = [0f32; 64];
        quant::dequantize(&quantized, table, &mut coeffs);
        dct::inverse_dct_8x8(&coeffs, &mut out);
        out
    });
    for (b, block) in samples.iter().enumerate() {
        let (by, bx) = (b / blocks_x, b % blocks_x);
        for y in 0..8 {
            let py = by * 8 + y;
            if py >= height as usize {
                break;
            }
            for x in 0..8 {
                let px = bx * 8 + x;
                if px >= width as usize {
                    break;
                }
                plane.data[py * width as usize + px] = block[y * 8 + x] + 128.0;
            }
        }
    }
    plane
}

fn encode_plane(writer: &mut BitWriter, plane: &PlaneView, table: &[u16; 64]) {
    // Stage 1 fans out per block; stage 2 — entropy coding — stays
    // sequential: the differential DC chain and the bit stream itself are
    // serial by construction.
    let zigzags = plane_zigzags(plane, table);
    let mut prev_dc = 0i32;
    for zz in &zigzags {
        entropy::encode_block(writer, zz, &mut prev_dc);
    }
}

fn decode_plane(
    reader: &mut BitReader<'_>,
    width: u32,
    height: u32,
    table: &[u16; 64],
) -> Result<PlaneView> {
    let blocks_x = (width as usize).div_ceil(8);
    let blocks_y = (height as usize).div_ceil(8);
    // A corrupted header can claim absurd dimensions; every encoded block
    // costs at least 2 bits (DC code + end-of-block), so bound the claimed
    // block count by the payload before allocating anything.
    let blocks = blocks_x
        .checked_mul(blocks_y)
        .ok_or(ImageError::CorruptBitstream {
            detail: "dimension overflow",
        })?;
    if blocks > reader.bits_remaining() / 2 + 1 {
        return Err(ImageError::CorruptBitstream {
            detail: "dimensions exceed payload capacity",
        });
    }
    (width as usize)
        .checked_mul(height as usize)
        .ok_or(ImageError::CorruptBitstream {
            detail: "dimension overflow",
        })?;
    // Stage 1 — entropy decoding is serial (differential DC over one bit
    // stream); collect every block's zigzag scan first. Stage 2 —
    // dequantization + inverse DCT — is independent per block.
    let mut prev_dc = 0i32;
    let mut zigzags = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        zigzags.push(entropy::decode_block(reader, &mut prev_dc)?);
    }
    Ok(plane_from_zigzags(&zigzags, width, height, table))
}

fn split_ycbcr(img: &RgbImage) -> (PlaneView, PlaneView, PlaneView) {
    let (w, h) = img.dimensions();
    let mut y_plane = PlaneView {
        width: w,
        height: h,
        data: vec![0.0; (w * h) as usize],
    };
    let cw = w.div_ceil(2).max(1);
    let ch = h.div_ceil(2).max(1);
    let mut cb_plane = PlaneView {
        width: cw,
        height: ch,
        data: vec![0.0; (cw * ch) as usize],
    };
    let mut cr_plane = PlaneView {
        width: cw,
        height: ch,
        data: vec![0.0; (cw * ch) as usize],
    };
    for yy in 0..h {
        for xx in 0..w {
            let (y, _, _) = img.get(xx, yy).to_ycbcr();
            y_plane.data[(yy * w + xx) as usize] = y;
        }
    }
    // Average each 2x2 neighborhood for the chroma planes (4:2:0).
    for cy in 0..ch {
        for cx in 0..cw {
            let mut cb_sum = 0.0;
            let mut cr_sum = 0.0;
            let mut n = 0.0;
            for dy in 0..2 {
                for dx in 0..2 {
                    let sx = cx * 2 + dx;
                    let sy = cy * 2 + dy;
                    if sx < w && sy < h {
                        let (_, cb, cr) = img.get(sx, sy).to_ycbcr();
                        cb_sum += cb;
                        cr_sum += cr;
                        n += 1.0;
                    }
                }
            }
            cb_plane.data[(cy * cw + cx) as usize] = cb_sum / n;
            cr_plane.data[(cy * cw + cx) as usize] = cr_sum / n;
        }
    }
    (y_plane, cb_plane, cr_plane)
}

fn merge_ycbcr(
    y_plane: &PlaneView,
    cb_plane: &PlaneView,
    cr_plane: &PlaneView,
    width: u32,
    height: u32,
) -> RgbImage {
    RgbImage::from_fn(width, height, |x, y| {
        let lum = y_plane.data[(y * width + x) as usize];
        let cb = cb_plane.get_clamped((x / 2) as i64, (y / 2) as i64);
        let cr = cr_plane.get_clamped((x / 2) as i64, (y / 2) as i64);
        Rgb::from_ycbcr(lum, cb, cr)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn textured(w: u32, h: u32) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| {
            let v = 128.0
                + 60.0 * ((x as f64) * 0.3).sin()
                + 40.0 * ((y as f64) * 0.2).cos()
                + ((x * y) % 13) as f64;
            v.clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn gray_roundtrip_high_quality_is_faithful() {
        let img = textured(64, 48);
        let bytes = encode_gray(&img, 95).unwrap();
        let back = decode_gray(&bytes).unwrap();
        assert_eq!(back.dimensions(), img.dimensions());
        assert!(metrics::psnr(&img, &back).unwrap() > 35.0);
    }

    #[test]
    fn lower_quality_means_smaller_files_and_lower_ssim() {
        let img = textured(96, 96);
        let mut last_size = usize::MAX;
        let mut last_ssim = 1.1f64;
        for q in [95u8, 60, 25, 5] {
            let bytes = encode_gray(&img, q).unwrap();
            let back = decode_gray(&bytes).unwrap();
            let s = metrics::ssim(&img, &back).unwrap();
            assert!(
                bytes.len() <= last_size,
                "size should not grow as quality drops (q={q})"
            );
            assert!(
                s <= last_ssim + 0.02,
                "ssim should not improve as quality drops (q={q})"
            );
            last_size = bytes.len();
            last_ssim = s;
        }
    }

    #[test]
    fn non_multiple_of_eight_dimensions_roundtrip() {
        let img = textured(37, 21);
        let back = decode_gray(&encode_gray(&img, 80).unwrap()).unwrap();
        assert_eq!(back.dimensions(), (37, 21));
    }

    #[test]
    fn quality_out_of_range_is_rejected() {
        let img = textured(8, 8);
        assert!(encode_gray(&img, 0).is_err());
        assert!(encode_gray(&img, 101).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_gray(&[]).is_err());
        assert!(decode_gray(&[1, 2, 3]).is_err());
        let mut valid = encode_gray(&textured(16, 16), 50).unwrap();
        valid[0] = 0x00; // clobber magic
        assert!(decode_gray(&valid).is_err());
    }

    #[test]
    fn decode_rejects_wrong_magic_type() {
        let gray = encode_gray(&textured(16, 16), 50).unwrap();
        assert!(decode_rgb(&gray).is_err());
    }

    #[test]
    fn rgb_roundtrip_is_reasonable() {
        let img = RgbImage::from_fn(48, 40, |x, y| {
            Rgb::new(
                ((x * 5) % 256) as u8,
                ((y * 7) % 256) as u8,
                (128 + ((x + y) % 64)) as u8,
            )
        });
        let bytes = encode_rgb(&img, 85).unwrap();
        let back = decode_rgb(&bytes).unwrap();
        assert_eq!(back.dimensions(), img.dimensions());
        // Compare luminance via SSIM.
        let s = metrics::ssim(&img.to_gray(), &back.to_gray()).unwrap();
        assert!(s > 0.85, "color roundtrip ssim {s}");
    }

    #[test]
    fn encoded_color_is_smaller_than_raw_at_moderate_quality() {
        let img = RgbImage::from_fn(128, 128, |x, y| {
            let v =
                (128.0 + 50.0 * ((x as f64) * 0.1).sin() + 30.0 * ((y as f64) * 0.13).cos()) as u8;
            Rgb::new(v, v / 2 + 30, 255 - v)
        });
        let size = encoded_rgb_size(&img, 75).unwrap();
        assert!(
            size < img.raw_byte_size() / 4,
            "{size} vs raw {}",
            img.raw_byte_size()
        );
    }

    #[test]
    fn absurd_header_dimensions_are_rejected_before_allocation() {
        // A forged header claiming a gigapixel image with a tiny payload
        // must fail cleanly instead of attempting the allocation.
        let mut forged = Vec::new();
        forged.push(0xB1); // gray magic
        forged.extend_from_slice(&2_000_000_000u32.to_le_bytes());
        forged.extend_from_slice(&2_000_000_000u32.to_le_bytes());
        forged.push(50);
        forged.extend_from_slice(&[0xAA; 16]);
        assert!(decode_gray(&forged).is_err());
        forged[0] = 0xB3; // color magic
        assert!(decode_rgb(&forged).is_err());
    }

    #[test]
    fn truncated_payload_fails_cleanly() {
        let bytes = encode_gray(&textured(32, 32), 70).unwrap();
        let cut = &bytes[..bytes.len() / 2];
        assert!(decode_gray(cut).is_err());
    }
}
