//! Bit-level I/O for the entropy coder.

use crate::{ImageError, Result};

/// Accumulates bits most-significant-first into a byte vector.
///
/// # Examples
///
/// ```
/// use bees_image::codec::bits::{BitReader, BitWriter};
///
/// # fn main() -> Result<(), bees_image::ImageError> {
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xFF, 8);
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.read_bits(8)?, 0xFF);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    current: u8,
    filled: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_bits(&mut self, value: u64, count: u8) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        for i in (0..count).rev() {
            let bit = ((value >> i) & 1) as u8;
            self.current = (self.current << 1) | bit;
            self.filled += 1;
            if self.filled == 8 {
                self.bytes.push(self.current);
                self.current = 0;
                self.filled = 0;
            }
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Number of complete bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.filled as usize
    }

    /// Flushes (zero-padding the final partial byte) and returns the bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.current <<= 8 - self.filled;
            self.bytes.push(self.current);
        }
        self.bytes
    }
}

/// Reads bits most-significant-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `count` bits into the low bits of a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::CorruptBitstream`] if the input is exhausted.
    pub fn read_bits(&mut self, count: u8) -> Result<u64> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        let mut value = 0u64;
        for _ in 0..count {
            let byte_idx = self.pos / 8;
            if byte_idx >= self.bytes.len() {
                return Err(ImageError::CorruptBitstream {
                    detail: "unexpected end of input",
                });
            }
            let bit = (self.bytes[byte_idx] >> (7 - (self.pos % 8))) & 1;
            value = (value << 1) | bit as u64;
            self.pos += 1;
        }
        Ok(value)
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::CorruptBitstream`] if the input is exhausted.
    pub fn read_bit(&mut self) -> Result<bool> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Number of bits consumed so far.
    pub fn bits_read(&self) -> usize {
        self.pos
    }

    /// Number of bits still available to read.
    pub fn bits_remaining(&self) -> usize {
        (self.bytes.len() * 8).saturating_sub(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let mut w = BitWriter::new();
        let values: Vec<(u64, u8)> = vec![
            (1, 1),
            (0, 1),
            (0b1011, 4),
            (0xABCD, 16),
            (u64::MAX >> 3, 61),
            (7, 3),
        ];
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(r.read_bits(n).unwrap(), v, "width {n}");
        }
    }

    #[test]
    fn reading_past_end_errors() {
        let mut r = BitReader::new(&[0xFF]);
        assert!(r.read_bits(8).is_ok());
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        assert_eq!(w.bit_len(), 2);
        w.write_bits(0xFF, 8);
        assert_eq!(w.bit_len(), 10);
        assert_eq!(w.into_bytes().len(), 2);
    }

    #[test]
    fn padding_is_zero_bits() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000]);
    }
}
