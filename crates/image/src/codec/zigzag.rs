//! Zigzag scan ordering for 8×8 blocks.
//!
//! The zigzag order groups low-frequency coefficients first so that the
//! run-length entropy coder sees long tails of zeros.

/// Zigzag scan order: `ZIGZAG[i]` is the row-major index of the `i`-th
/// coefficient in scan order.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Reorders a row-major block into zigzag scan order.
pub fn to_zigzag(block: &[i32; 64]) -> [i32; 64] {
    let mut out = [0i32; 64];
    for (i, &src) in ZIGZAG.iter().enumerate() {
        out[i] = block[src];
    }
    out
}

/// Reorders a zigzag-scanned block back to row-major order.
pub fn from_zigzag(scan: &[i32; 64]) -> [i32; 64] {
    let mut out = [0i32; 64];
    for (i, &dst) in ZIGZAG.iter().enumerate() {
        out[dst] = scan[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &idx in &ZIGZAG {
            assert!(!seen[idx], "duplicate index {idx}");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn roundtrip_is_identity() {
        let mut block = [0i32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = i as i32 * 3 - 50;
        }
        assert_eq!(from_zigzag(&to_zigzag(&block)), block);
    }

    #[test]
    fn scan_starts_at_dc_and_walks_the_first_antidiagonal() {
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(ZIGZAG[63], 63);
    }
}
