//! 8×8 type-II discrete cosine transform and its inverse.
//!
//! Implemented as a separable transform (rows then columns) with a
//! precomputed cosine basis, matching the orthonormal DCT used by JPEG.

/// Precomputed `cos((2x + 1) * u * PI / 16)` basis, `BASIS[u][x]`.
fn basis() -> &'static [[f32; 8]; 8] {
    use std::sync::OnceLock;
    static BASIS: OnceLock<[[f32; 8]; 8]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0f32; 8]; 8];
        for (u, row) in b.iter_mut().enumerate() {
            for (x, v) in row.iter_mut().enumerate() {
                *v = (((2 * x + 1) as f32) * (u as f32) * std::f32::consts::PI / 16.0).cos();
            }
        }
        b
    })
}

#[inline]
fn alpha(u: usize) -> f32 {
    if u == 0 {
        std::f32::consts::FRAC_1_SQRT_2
    } else {
        1.0
    }
}

/// Forward 2-D DCT of one 8×8 block (row-major `input[y*8 + x]`).
///
/// # Examples
///
/// ```
/// use bees_image::codec::dct;
///
/// let flat = [10.0f32; 64];
/// let mut out = [0f32; 64];
/// dct::forward_dct_8x8(&flat, &mut out);
/// // A constant block has all its energy in the DC coefficient.
/// assert!((out[0] - 80.0).abs() < 1e-3);
/// assert!(out[1..].iter().all(|&c| c.abs() < 1e-3));
/// ```
pub fn forward_dct_8x8(input: &[f32; 64], output: &mut [f32; 64]) {
    let b = basis();
    // Rows.
    let mut tmp = [0f32; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for x in 0..8 {
                acc += input[y * 8 + x] * b[u][x];
            }
            tmp[y * 8 + u] = 0.5 * alpha(u) * acc;
        }
    }
    // Columns.
    for u in 0..8 {
        for v in 0..8 {
            let mut acc = 0.0;
            for y in 0..8 {
                acc += tmp[y * 8 + u] * b[v][y];
            }
            output[v * 8 + u] = 0.5 * alpha(v) * acc;
        }
    }
}

/// Inverse 2-D DCT of one 8×8 coefficient block.
pub fn inverse_dct_8x8(coeffs: &[f32; 64], output: &mut [f32; 64]) {
    let b = basis();
    // Columns first (inverse of the forward order, though the transform is
    // separable so order does not matter mathematically).
    let mut tmp = [0f32; 64];
    for u in 0..8 {
        for y in 0..8 {
            let mut acc = 0.0;
            for v in 0..8 {
                acc += alpha(v) * coeffs[v * 8 + u] * b[v][y];
            }
            tmp[y * 8 + u] = 0.5 * acc;
        }
    }
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0;
            for u in 0..8 {
                acc += alpha(u) * tmp[y * 8 + u] * b[u][x];
            }
            output[y * 8 + x] = 0.5 * acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(seed: u32) -> [f32; 64] {
        let mut block = [0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            // Deterministic pseudo-random values in [-128, 127].
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
            *v = ((h >> 8) % 256) as f32 - 128.0;
        }
        block
    }

    #[test]
    fn roundtrip_recovers_input() {
        for seed in [1u32, 42, 12345] {
            let block = sample_block(seed);
            let mut coeffs = [0f32; 64];
            let mut back = [0f32; 64];
            forward_dct_8x8(&block, &mut coeffs);
            inverse_dct_8x8(&coeffs, &mut back);
            for i in 0..64 {
                assert!((block[i] - back[i]).abs() < 1e-2, "i={i} seed={seed}");
            }
        }
    }

    #[test]
    fn transform_is_orthonormal_energy_preserving() {
        let block = sample_block(7);
        let mut coeffs = [0f32; 64];
        forward_dct_8x8(&block, &mut coeffs);
        let e_in: f32 = block.iter().map(|v| v * v).sum();
        let e_out: f32 = coeffs.iter().map(|v| v * v).sum();
        assert!(
            (e_in - e_out).abs() / e_in < 1e-4,
            "Parseval: {e_in} vs {e_out}"
        );
    }

    #[test]
    fn dc_of_constant_block() {
        let block = [-64.0f32; 64];
        let mut coeffs = [0f32; 64];
        forward_dct_8x8(&block, &mut coeffs);
        // DC = 8 * mean for the orthonormal normalization.
        assert!((coeffs[0] - (-512.0)).abs() < 1e-3);
    }

    #[test]
    fn linearity() {
        let a = sample_block(3);
        let b = sample_block(9);
        let mut sum = [0f32; 64];
        for i in 0..64 {
            sum[i] = a[i] + b[i];
        }
        let (mut ca, mut cb, mut cs) = ([0f32; 64], [0f32; 64], [0f32; 64]);
        forward_dct_8x8(&a, &mut ca);
        forward_dct_8x8(&b, &mut cb);
        forward_dct_8x8(&sum, &mut cs);
        for i in 0..64 {
            assert!((cs[i] - (ca[i] + cb[i])).abs() < 1e-2);
        }
    }
}
