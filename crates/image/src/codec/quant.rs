//! Quantization tables and quality scaling.
//!
//! Base tables are the JPEG Annex K luminance/chrominance tables; the quality
//! parameter scales them with the familiar libjpeg formula, so our quality
//! axis behaves like everyone else's.

use crate::{ImageError, Result};

/// JPEG Annex K luminance quantization table (quality 50 reference).
const BASE_LUMINANCE: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// JPEG Annex K chrominance quantization table.
const BASE_CHROMINANCE: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

fn scaled(base: &[u16; 64], quality: u8) -> Result<[u16; 64]> {
    if !(1..=100).contains(&quality) {
        return Err(ImageError::InvalidParameter {
            name: "quality",
            value: quality as f64,
        });
    }
    // libjpeg scaling: q<50 -> 5000/q, q>=50 -> 200 - 2q.
    let scale: u32 = if quality < 50 {
        5000 / quality as u32
    } else {
        200 - 2 * quality as u32
    };
    let mut out = [0u16; 64];
    for (o, &b) in out.iter_mut().zip(base.iter()) {
        let v = (b as u32 * scale + 50) / 100;
        *o = v.clamp(1, 255) as u16;
    }
    Ok(out)
}

/// Quality-scaled luminance table.
///
/// # Errors
///
/// Returns [`ImageError::InvalidParameter`] if `quality` is outside `1..=100`.
pub fn luminance_table(quality: u8) -> Result<[u16; 64]> {
    scaled(&BASE_LUMINANCE, quality)
}

/// Quality-scaled chrominance table.
///
/// # Errors
///
/// Returns [`ImageError::InvalidParameter`] if `quality` is outside `1..=100`.
pub fn chrominance_table(quality: u8) -> Result<[u16; 64]> {
    scaled(&BASE_CHROMINANCE, quality)
}

/// Quantizes a block of DCT coefficients (round-to-nearest division).
pub fn quantize(coeffs: &[f32; 64], table: &[u16; 64], out: &mut [i32; 64]) {
    for i in 0..64 {
        out[i] = (coeffs[i] / table[i] as f32).round() as i32;
    }
}

/// Reconstructs approximate coefficients from quantized values.
pub fn dequantize(quantized: &[i32; 64], table: &[u16; 64], out: &mut [f32; 64]) {
    for i in 0..64 {
        out[i] = quantized[i] as f32 * table[i] as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_fifty_is_base_table() {
        assert_eq!(luminance_table(50).unwrap(), BASE_LUMINANCE);
        assert_eq!(chrominance_table(50).unwrap(), BASE_CHROMINANCE);
    }

    #[test]
    fn higher_quality_gives_finer_steps() {
        let q30 = luminance_table(30).unwrap();
        let q80 = luminance_table(80).unwrap();
        for i in 0..64 {
            assert!(q80[i] <= q30[i], "entry {i}: {} vs {}", q80[i], q30[i]);
        }
    }

    #[test]
    fn entries_never_drop_below_one() {
        let q100 = luminance_table(100).unwrap();
        assert!(q100.iter().all(|&v| v >= 1));
    }

    #[test]
    fn invalid_quality_rejected() {
        assert!(luminance_table(0).is_err());
        assert!(luminance_table(101).is_err());
        assert!(chrominance_table(0).is_err());
    }

    #[test]
    fn quantize_dequantize_bounds_error() {
        let table = luminance_table(50).unwrap();
        let mut coeffs = [0f32; 64];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = (i as f32 - 32.0) * 13.7;
        }
        let mut q = [0i32; 64];
        let mut back = [0f32; 64];
        quantize(&coeffs, &table, &mut q);
        dequantize(&q, &table, &mut back);
        for i in 0..64 {
            // Error is at most half a quantization step.
            assert!((coeffs[i] - back[i]).abs() <= table[i] as f32 / 2.0 + 1e-3);
        }
    }
}
