use std::error::Error;
use std::fmt;

/// Error type for image construction, resampling, codec, and metric operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ImageError {
    /// An image dimension was zero or otherwise unusable.
    InvalidDimensions {
        /// Requested width in pixels.
        width: u32,
        /// Requested height in pixels.
        height: u32,
    },
    /// The supplied pixel buffer length does not match `width * height` (times
    /// the channel count).
    BufferSizeMismatch {
        /// Length the buffer should have had.
        expected: usize,
        /// Length the buffer actually had.
        actual: usize,
    },
    /// A proportion/quality parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was rejected.
        value: f64,
    },
    /// Two images that must share dimensions did not.
    DimensionMismatch {
        /// Dimensions of the first image.
        first: (u32, u32),
        /// Dimensions of the second image.
        second: (u32, u32),
    },
    /// The encoded bitstream was truncated or corrupt.
    CorruptBitstream {
        /// Human-readable description of what failed to parse.
        detail: &'static str,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::InvalidDimensions { width, height } => {
                write!(f, "invalid image dimensions {width}x{height}")
            }
            ImageError::BufferSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "pixel buffer length {actual} does not match expected {expected}"
                )
            }
            ImageError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` out of range: {value}")
            }
            ImageError::DimensionMismatch { first, second } => write!(
                f,
                "image dimensions differ: {}x{} vs {}x{}",
                first.0, first.1, second.0, second.1
            ),
            ImageError::CorruptBitstream { detail } => {
                write!(f, "corrupt encoded bitstream: {detail}")
            }
        }
    }
}

impl Error for ImageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            ImageError::InvalidDimensions {
                width: 0,
                height: 3,
            },
            ImageError::BufferSizeMismatch {
                expected: 12,
                actual: 9,
            },
            ImageError::InvalidParameter {
                name: "quality",
                value: 1.4,
            },
            ImageError::DimensionMismatch {
                first: (1, 2),
                second: (3, 4),
            },
            ImageError::CorruptBitstream {
                detail: "truncated header",
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImageError>();
    }
}
