#![warn(missing_docs)]

//! Raster image substrate for the BEES reproduction.
//!
//! The BEES paper ([Zuo et al., ICDCS 2017]) manipulates smartphone photos through
//! OpenCV: it shrinks in-memory bitmaps before feature extraction (Approximate
//! Feature Extraction), JPEG-compresses and down-samples images before uploading
//! (Approximate Image Uploading), and scores the result with SSIM. This crate
//! provides all of those primitives from scratch:
//!
//! * [`GrayImage`] / [`RgbImage`] — owned 8-bit raster images,
//! * [`resize`] — box-filter and bilinear resampling plus the paper's
//!   *bitmap compression proportion* semantics,
//! * [`blur`] — separable Gaussian filtering used by the feature extractors,
//! * [`codec`] — a real lossy DCT image codec (quality-scaled quantization,
//!   zigzag, RLE + Rice entropy coding) standing in for JPEG,
//! * [`metrics`] — MSE / PSNR / SSIM image-quality metrics,
//! * [`draw`] — deterministic drawing primitives used by the synthetic datasets,
//! * [`transform`] — lossless quarter-turn rotations and flips.
//!
//! # Examples
//!
//! ```
//! use bees_image::{GrayImage, resize, metrics};
//!
//! # fn main() -> Result<(), bees_image::ImageError> {
//! let img = GrayImage::from_fn(64, 48, |x, y| ((x * 3 + y * 5) % 256) as u8);
//! // The paper's "compression proportion" C shrinks each side by a factor (1 - C).
//! let small = resize::compress_bitmap(&img, 0.5)?;
//! assert_eq!(small.width(), 32);
//! let back = resize::resize_bilinear(&small, 64, 48)?;
//! let ssim = metrics::ssim(&img, &back)?;
//! assert!(ssim > 0.5);
//! # Ok(())
//! # }
//! ```

pub mod blur;
pub mod codec;
pub mod draw;
mod error;
mod gray;
pub mod integral;
pub mod metrics;
pub mod resize;
mod rgb;
pub mod transform;

pub use error::ImageError;
pub use gray::{GrayF32, GrayImage};
pub use rgb::{Rgb, RgbImage};

/// Shorthand result type used throughout the crate.
pub type Result<T> = std::result::Result<T, ImageError>;
