//! Image-quality metrics: MSE, PSNR, and SSIM.
//!
//! BEES evaluates quality compression with the Structural SIMilarity index
//! (Wang et al., 2004) in Fig. 5(a). This module implements the standard
//! Gaussian-weighted SSIM (σ = 1.5, C1 = (0.01·255)², C2 = (0.03·255)²)
//! averaged over the whole image.

use crate::blur::gaussian_blur_f32;
use crate::{GrayF32, GrayImage, ImageError, Result};

/// Mean squared error between two equally sized images.
///
/// # Errors
///
/// Returns [`ImageError::DimensionMismatch`] when shapes differ.
///
/// # Examples
///
/// ```
/// use bees_image::{GrayImage, metrics};
///
/// # fn main() -> Result<(), bees_image::ImageError> {
/// let a = GrayImage::from_fn(4, 4, |_, _| 10);
/// let b = GrayImage::from_fn(4, 4, |_, _| 13);
/// assert_eq!(metrics::mse(&a, &b)?, 9.0);
/// # Ok(())
/// # }
/// ```
pub fn mse(a: &GrayImage, b: &GrayImage) -> Result<f64> {
    check_dims(a, b)?;
    let sum: f64 = a
        .pixels()
        .iter()
        .zip(b.pixels())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    Ok(sum / a.pixel_count() as f64)
}

/// Peak signal-to-noise ratio in decibels; `f64::INFINITY` for identical
/// images.
///
/// # Errors
///
/// Returns [`ImageError::DimensionMismatch`] when shapes differ.
pub fn psnr(a: &GrayImage, b: &GrayImage) -> Result<f64> {
    let e = mse(a, b)?;
    if e == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (255.0f64 * 255.0 / e).log10())
}

/// Structural similarity index in `[-1, 1]` (1 means identical).
///
/// Uses the canonical Gaussian window (σ = 1.5) over luminance, computing
/// local means, variances, and covariance by Gaussian filtering and averaging
/// the per-pixel SSIM map.
///
/// # Errors
///
/// Returns [`ImageError::DimensionMismatch`] when shapes differ.
///
/// # Examples
///
/// ```
/// use bees_image::{GrayImage, metrics};
///
/// # fn main() -> Result<(), bees_image::ImageError> {
/// let img = GrayImage::from_fn(32, 32, |x, y| ((x * y) % 256) as u8);
/// assert!((metrics::ssim(&img, &img)? - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn ssim(a: &GrayImage, b: &GrayImage) -> Result<f64> {
    check_dims(a, b)?;
    const SIGMA: f64 = 1.5;
    const C1: f64 = (0.01 * 255.0) * (0.01 * 255.0);
    const C2: f64 = (0.03 * 255.0) * (0.03 * 255.0);

    let ax = a.to_f32();
    let bx = b.to_f32();
    let mu_a = gaussian_blur_f32(&ax, SIGMA)?;
    let mu_b = gaussian_blur_f32(&bx, SIGMA)?;
    let aa = map2(&ax, &ax, |p, q| p * q);
    let bb = map2(&bx, &bx, |p, q| p * q);
    let ab = map2(&ax, &bx, |p, q| p * q);
    let mu_aa = gaussian_blur_f32(&aa, SIGMA)?;
    let mu_bb = gaussian_blur_f32(&bb, SIGMA)?;
    let mu_ab = gaussian_blur_f32(&ab, SIGMA)?;

    let n = ax.pixels().len();
    let mut total = 0.0f64;
    for i in 0..n {
        let ma = mu_a.pixels()[i] as f64;
        let mb = mu_b.pixels()[i] as f64;
        let va = (mu_aa.pixels()[i] as f64 - ma * ma).max(0.0);
        let vb = (mu_bb.pixels()[i] as f64 - mb * mb).max(0.0);
        let cov = mu_ab.pixels()[i] as f64 - ma * mb;
        let s =
            ((2.0 * ma * mb + C1) * (2.0 * cov + C2)) / ((ma * ma + mb * mb + C1) * (va + vb + C2));
        total += s;
    }
    Ok(total / n as f64)
}

fn map2<F: Fn(f32, f32) -> f32>(a: &GrayF32, b: &GrayF32, f: F) -> GrayF32 {
    let mut out = GrayF32::new(a.width(), a.height()).expect("non-empty image");
    for y in 0..a.height() {
        for x in 0..a.width() {
            out.set(x, y, f(a.get(x, y), b.get(x, y)));
        }
    }
    out
}

fn check_dims(a: &GrayImage, b: &GrayImage) -> Result<()> {
    if a.dimensions() != b.dimensions() {
        return Err(ImageError::DimensionMismatch {
            first: a.dimensions(),
            second: b.dimensions(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image() -> GrayImage {
        GrayImage::from_fn(48, 48, |x, y| (((x * 13) ^ (y * 7)) % 256) as u8)
    }

    #[test]
    fn mse_rejects_mismatched_shapes() {
        let a = GrayImage::from_fn(4, 4, |_, _| 0);
        let b = GrayImage::from_fn(4, 5, |_, _| 0);
        assert!(mse(&a, &b).is_err());
        assert!(ssim(&a, &b).is_err());
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let a = test_image();
        assert!(psnr(&a, &a).unwrap().is_infinite());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let a = test_image();
        let noisy1 =
            GrayImage::from_fn(48, 48, |x, y| a.get(x, y).wrapping_add(((x + y) % 3) as u8));
        let noisy2 = GrayImage::from_fn(48, 48, |x, y| {
            a.get(x, y).wrapping_add(((x + y) % 23) as u8)
        });
        assert!(psnr(&a, &noisy1).unwrap() > psnr(&a, &noisy2).unwrap());
    }

    #[test]
    fn ssim_identical_is_one() {
        let a = test_image();
        assert!((ssim(&a, &a).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = test_image();
        let b = GrayImage::from_fn(48, 48, |x, y| a.get(x, y) / 2 + 40);
        let s1 = ssim(&a, &b).unwrap();
        let s2 = ssim(&b, &a).unwrap();
        assert!((s1 - s2).abs() < 1e-9);
    }

    #[test]
    fn ssim_orders_degradations() {
        let a = test_image();
        let mild = GrayImage::from_fn(48, 48, |x, y| {
            (a.get(x, y) as i32 + ((x * 3 + y) % 7) as i32 - 3).clamp(0, 255) as u8
        });
        let harsh = GrayImage::from_fn(48, 48, |x, y| {
            (a.get(x, y) as i32 + ((x * 31 + y * 17) % 121) as i32 - 60).clamp(0, 255) as u8
        });
        let s_mild = ssim(&a, &mild).unwrap();
        let s_harsh = ssim(&a, &harsh).unwrap();
        assert!(
            s_mild > s_harsh,
            "mild {s_mild} should beat harsh {s_harsh}"
        );
        assert!(s_mild > 0.8);
    }

    #[test]
    fn ssim_of_inverted_image_is_low() {
        let a = test_image();
        let inv = GrayImage::from_fn(48, 48, |x, y| 255 - a.get(x, y));
        assert!(ssim(&a, &inv).unwrap() < 0.2);
    }
}
