//! Image resampling: bilinear and box-filter resizing, plus the BEES paper's
//! *compression proportion* semantics.
//!
//! The paper (§III-A) defines the **bitmap compression proportion** `C` as
//! "the ratio of the decrement in the length or width of the compressed image
//! bitmap to those of the original bitmap": a proportion of `0.4` shrinks a
//! `1000×500` bitmap to `600×300`. The same definition is reused for
//! **resolution compression** in Approximate Image Uploading (§III-C).

use crate::{GrayImage, ImageError, Result, Rgb, RgbImage};

/// Resizes a grayscale image with bilinear interpolation.
///
/// Bilinear sampling matches what OpenCV's default `resize` does and is what
/// the prototype used for bitmap compression before feature extraction.
///
/// # Errors
///
/// Returns [`ImageError::InvalidDimensions`] if either target dimension is
/// zero.
///
/// # Examples
///
/// ```
/// use bees_image::{GrayImage, resize};
///
/// # fn main() -> Result<(), bees_image::ImageError> {
/// let img = GrayImage::from_fn(10, 10, |x, y| ((x + y) * 12) as u8);
/// let half = resize::resize_bilinear(&img, 5, 5)?;
/// assert_eq!(half.dimensions(), (5, 5));
/// # Ok(())
/// # }
/// ```
pub fn resize_bilinear(src: &GrayImage, width: u32, height: u32) -> Result<GrayImage> {
    if width == 0 || height == 0 {
        return Err(ImageError::InvalidDimensions { width, height });
    }
    let mut out = GrayImage::new(width, height)?;
    let sx = src.width() as f64 / width as f64;
    let sy = src.height() as f64 / height as f64;
    for y in 0..height {
        // Center-aligned sample positions, the convention used by OpenCV.
        let fy = ((y as f64 + 0.5) * sy - 0.5).max(0.0);
        let y0 = fy.floor() as i64;
        let dy = fy - y0 as f64;
        for x in 0..width {
            let fx = ((x as f64 + 0.5) * sx - 0.5).max(0.0);
            let x0 = fx.floor() as i64;
            let dx = fx - x0 as f64;
            let p00 = src.get_clamped(x0, y0) as f64;
            let p10 = src.get_clamped(x0 + 1, y0) as f64;
            let p01 = src.get_clamped(x0, y0 + 1) as f64;
            let p11 = src.get_clamped(x0 + 1, y0 + 1) as f64;
            let v = p00 * (1.0 - dx) * (1.0 - dy)
                + p10 * dx * (1.0 - dy)
                + p01 * (1.0 - dx) * dy
                + p11 * dx * dy;
            out.set(x, y, v.round().clamp(0.0, 255.0) as u8);
        }
    }
    Ok(out)
}

/// Resizes an RGB image with bilinear interpolation, channel by channel.
///
/// # Errors
///
/// Returns [`ImageError::InvalidDimensions`] if either target dimension is
/// zero.
pub fn resize_bilinear_rgb(src: &RgbImage, width: u32, height: u32) -> Result<RgbImage> {
    if width == 0 || height == 0 {
        return Err(ImageError::InvalidDimensions { width, height });
    }
    let mut out = RgbImage::new(width, height)?;
    let sx = src.width() as f64 / width as f64;
    let sy = src.height() as f64 / height as f64;
    let clamped = |x: i64, y: i64| -> Rgb {
        let cx = x.clamp(0, src.width() as i64 - 1) as u32;
        let cy = y.clamp(0, src.height() as i64 - 1) as u32;
        src.get(cx, cy)
    };
    for y in 0..height {
        let fy = ((y as f64 + 0.5) * sy - 0.5).max(0.0);
        let y0 = fy.floor() as i64;
        let dy = fy - y0 as f64;
        for x in 0..width {
            let fx = ((x as f64 + 0.5) * sx - 0.5).max(0.0);
            let x0 = fx.floor() as i64;
            let dx = fx - x0 as f64;
            let ps = [
                (clamped(x0, y0), (1.0 - dx) * (1.0 - dy)),
                (clamped(x0 + 1, y0), dx * (1.0 - dy)),
                (clamped(x0, y0 + 1), (1.0 - dx) * dy),
                (clamped(x0 + 1, y0 + 1), dx * dy),
            ];
            let mut r = 0.0;
            let mut g = 0.0;
            let mut b = 0.0;
            for (p, w) in ps {
                r += p.r as f64 * w;
                g += p.g as f64 * w;
                b += p.b as f64 * w;
            }
            out.set(
                x,
                y,
                Rgb::new(
                    r.round().clamp(0.0, 255.0) as u8,
                    g.round().clamp(0.0, 255.0) as u8,
                    b.round().clamp(0.0, 255.0) as u8,
                ),
            );
        }
    }
    Ok(out)
}

/// Downsamples by an exact integer factor using a box filter (pixel
/// averaging). Used by the pyramid construction where the factor is known.
///
/// # Errors
///
/// Returns [`ImageError::InvalidParameter`] if `factor == 0` and
/// [`ImageError::InvalidDimensions`] when the result would be empty.
pub fn downsample_box(src: &GrayImage, factor: u32) -> Result<GrayImage> {
    if factor == 0 {
        return Err(ImageError::InvalidParameter {
            name: "factor",
            value: 0.0,
        });
    }
    let width = src.width() / factor;
    let height = src.height() / factor;
    if width == 0 || height == 0 {
        return Err(ImageError::InvalidDimensions { width, height });
    }
    let mut out = GrayImage::new(width, height)?;
    let area = factor * factor;
    for y in 0..height {
        for x in 0..width {
            let mut sum = 0u32;
            for dy in 0..factor {
                for dx in 0..factor {
                    sum += src.get(x * factor + dx, y * factor + dy) as u32;
                }
            }
            out.set(x, y, ((sum + area / 2) / area) as u8);
        }
    }
    Ok(out)
}

/// Returns the target dimensions for a given compression proportion `c`
/// applied to `(width, height)`: each side shrinks by the factor `1 - c`,
/// with a floor of one pixel.
///
/// # Errors
///
/// Returns [`ImageError::InvalidParameter`] unless `0.0 <= c < 1.0`.
pub fn compressed_dimensions(width: u32, height: u32, c: f64) -> Result<(u32, u32)> {
    if !(0.0..1.0).contains(&c) {
        return Err(ImageError::InvalidParameter {
            name: "compression_proportion",
            value: c,
        });
    }
    let w = ((width as f64 * (1.0 - c)).round() as u32).max(1);
    let h = ((height as f64 * (1.0 - c)).round() as u32).max(1);
    Ok((w, h))
}

/// Applies the paper's bitmap compression: shrinks each side of `src` by the
/// factor `1 - c` using bilinear resampling (`c = 0` returns a copy).
///
/// This is the operation Approximate Feature Extraction performs before
/// running ORB, with `c` chosen by the energy-aware adaptive compression
/// scheme `C = 0.4 − 0.4·Ebat`.
///
/// # Errors
///
/// Returns [`ImageError::InvalidParameter`] unless `0.0 <= c < 1.0`.
///
/// # Examples
///
/// ```
/// use bees_image::{GrayImage, resize};
///
/// # fn main() -> Result<(), bees_image::ImageError> {
/// let img = GrayImage::from_fn(1000, 500, |x, y| (x ^ y) as u8);
/// let small = resize::compress_bitmap(&img, 0.4)?;
/// assert_eq!(small.dimensions(), (600, 300));
/// # Ok(())
/// # }
/// ```
pub fn compress_bitmap(src: &GrayImage, c: f64) -> Result<GrayImage> {
    let (w, h) = compressed_dimensions(src.width(), src.height(), c)?;
    if (w, h) == src.dimensions() {
        return Ok(src.clone());
    }
    resize_bilinear(src, w, h)
}

/// Applies the paper's resolution compression to an RGB image (Approximate
/// Image Uploading), shrinking each side by the factor `1 - c`.
///
/// # Errors
///
/// Returns [`ImageError::InvalidParameter`] unless `0.0 <= c < 1.0`.
pub fn compress_resolution_rgb(src: &RgbImage, c: f64) -> Result<RgbImage> {
    let (w, h) = compressed_dimensions(src.width(), src.height(), c)?;
    if (w, h) == src.dimensions() {
        return Ok(src.clone());
    }
    resize_bilinear_rgb(src, w, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressed_dimensions_match_paper_example() {
        // §III-C: 1000x500 at proportion 0.2 becomes 800x400.
        assert_eq!(compressed_dimensions(1000, 500, 0.2).unwrap(), (800, 400));
        // §III-C EAU example: 2448x3264 at Cr = 0.76 -> 588x783.
        assert_eq!(compressed_dimensions(2448, 3264, 0.76).unwrap(), (588, 783));
    }

    #[test]
    fn proportion_out_of_range_is_rejected() {
        assert!(compressed_dimensions(10, 10, 1.0).is_err());
        assert!(compressed_dimensions(10, 10, -0.1).is_err());
        let img = GrayImage::from_fn(4, 4, |_, _| 0);
        assert!(compress_bitmap(&img, 1.5).is_err());
    }

    #[test]
    fn zero_proportion_is_identity() {
        let img = GrayImage::from_fn(9, 7, |x, y| (x * y) as u8);
        let same = compress_bitmap(&img, 0.0).unwrap();
        assert_eq!(same, img);
    }

    #[test]
    fn bilinear_preserves_constant_images() {
        let img = GrayImage::from_fn(12, 9, |_, _| 99);
        let out = resize_bilinear(&img, 5, 4).unwrap();
        assert!(out.pixels().iter().all(|&p| p == 99));
    }

    #[test]
    fn bilinear_upscale_then_check_bounds() {
        let img = GrayImage::from_fn(3, 3, |x, y| (x * 100 + y * 10) as u8);
        let big = resize_bilinear(&img, 9, 9).unwrap();
        assert_eq!(big.dimensions(), (9, 9));
        // All values stay within the source min/max range.
        let (mn, mx) = img
            .pixels()
            .iter()
            .fold((255u8, 0u8), |(a, b), &p| (a.min(p), b.max(p)));
        assert!(big.pixels().iter().all(|&p| p >= mn && p <= mx));
    }

    #[test]
    fn box_downsample_averages() {
        let img = GrayImage::from_fn(4, 4, |x, _| if x < 2 { 0 } else { 200 });
        let half = downsample_box(&img, 2).unwrap();
        assert_eq!(half.dimensions(), (2, 2));
        assert_eq!(half.get(0, 0), 0);
        assert_eq!(half.get(1, 0), 200);
    }

    #[test]
    fn box_downsample_rejects_bad_factor() {
        let img = GrayImage::from_fn(4, 4, |_, _| 0);
        assert!(downsample_box(&img, 0).is_err());
        assert!(downsample_box(&img, 5).is_err());
    }

    #[test]
    fn rgb_resolution_compression_shrinks_bytes() {
        let img = RgbImage::from_fn(100, 80, |x, y| Rgb::new(x as u8, y as u8, 7));
        let small = compress_resolution_rgb(&img, 0.5).unwrap();
        assert_eq!(small.dimensions(), (50, 40));
        assert!(small.raw_byte_size() * 3 < img.raw_byte_size());
    }

    #[test]
    fn minimum_one_pixel_floor() {
        assert_eq!(compressed_dimensions(2, 2, 0.9).unwrap(), (1, 1));
    }
}
