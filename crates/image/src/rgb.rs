use crate::{GrayImage, ImageError, Result};
use serde::{Deserialize, Serialize};

/// An 8-bit RGB pixel.
///
/// # Examples
///
/// ```
/// use bees_image::Rgb;
///
/// let p = Rgb::new(255, 128, 0);
/// assert_eq!(p.r, 255);
/// assert!(p.luma() > 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Creates a pixel from its three channels.
    #[inline]
    pub fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// ITU-R BT.601 luma, the grayscale value used throughout the pipeline.
    #[inline]
    pub fn luma(self) -> u8 {
        let y = 0.299 * self.r as f32 + 0.587 * self.g as f32 + 0.114 * self.b as f32;
        y.round().clamp(0.0, 255.0) as u8
    }

    /// Converts to YCbCr (BT.601, full range) as used by the DCT codec.
    #[inline]
    pub fn to_ycbcr(self) -> (f32, f32, f32) {
        let (r, g, b) = (self.r as f32, self.g as f32, self.b as f32);
        let y = 0.299 * r + 0.587 * g + 0.114 * b;
        let cb = 128.0 - 0.168_736 * r - 0.331_264 * g + 0.5 * b;
        let cr = 128.0 + 0.5 * r - 0.418_688 * g - 0.081_312 * b;
        (y, cb, cr)
    }

    /// Builds a pixel from YCbCr components, clamping to the 8-bit range.
    #[inline]
    pub fn from_ycbcr(y: f32, cb: f32, cr: f32) -> Self {
        let r = y + 1.402 * (cr - 128.0);
        let g = y - 0.344_136 * (cb - 128.0) - 0.714_136 * (cr - 128.0);
        let b = y + 1.772 * (cb - 128.0);
        Rgb {
            r: r.round().clamp(0.0, 255.0) as u8,
            g: g.round().clamp(0.0, 255.0) as u8,
            b: b.round().clamp(0.0, 255.0) as u8,
        }
    }
}

impl From<[u8; 3]> for Rgb {
    fn from(v: [u8; 3]) -> Self {
        Rgb::new(v[0], v[1], v[2])
    }
}

impl From<Rgb> for [u8; 3] {
    fn from(p: Rgb) -> Self {
        [p.r, p.g, p.b]
    }
}

/// An owned 8-bit RGB image stored in row-major order.
///
/// # Examples
///
/// ```
/// use bees_image::{Rgb, RgbImage};
///
/// let img = RgbImage::from_fn(8, 8, |x, _| Rgb::new(x as u8 * 30, 0, 0));
/// let gray = img.to_gray();
/// assert_eq!(gray.dimensions(), (8, 8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RgbImage {
    width: u32,
    height: u32,
    data: Vec<Rgb>,
}

impl RgbImage {
    /// Creates a black image of the given size.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImageError::InvalidDimensions { width, height });
        }
        Ok(RgbImage {
            width,
            height,
            data: vec![Rgb::default(); width as usize * height as usize],
        })
    }

    /// Builds an image by evaluating `f(x, y)` for every pixel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn<F: FnMut(u32, u32) -> Rgb>(width: u32, height: u32, mut f: F) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        let mut data = Vec::with_capacity(width as usize * height as usize);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        RgbImage {
            width,
            height,
            data,
        }
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dimensions(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Total number of pixels.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.data.len()
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Rgb {
        debug_assert!(x < self.width && y < self.height);
        self.data[y as usize * self.width as usize + x as usize]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: Rgb) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y as usize * self.width as usize + x as usize] = value;
    }

    /// Immutable view of the row-major pixel buffer.
    #[inline]
    pub fn pixels(&self) -> &[Rgb] {
        &self.data
    }

    /// Converts to grayscale using BT.601 luma.
    pub fn to_gray(&self) -> GrayImage {
        let mut out = GrayImage::from_fn(self.width, self.height, |_, _| 0);
        for y in 0..self.height {
            for x in 0..self.width {
                out.set(x, y, self.get(x, y).luma());
            }
        }
        out
    }

    /// Uncompressed size in bytes (3 bytes per pixel); the "raw image size"
    /// baseline used when reporting bandwidth overheads.
    #[inline]
    pub fn raw_byte_size(&self) -> usize {
        self.data.len() * 3
    }
}

impl From<&GrayImage> for RgbImage {
    fn from(g: &GrayImage) -> Self {
        RgbImage::from_fn(g.width(), g.height(), |x, y| {
            let v = g.get(x, y);
            Rgb::new(v, v, v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ycbcr_roundtrip_is_close() {
        for &(r, g, b) in &[
            (0u8, 0u8, 0u8),
            (255, 255, 255),
            (200, 30, 90),
            (12, 250, 128),
        ] {
            let p = Rgb::new(r, g, b);
            let (y, cb, cr) = p.to_ycbcr();
            let q = Rgb::from_ycbcr(y, cb, cr);
            assert!((p.r as i32 - q.r as i32).abs() <= 1, "{p:?} vs {q:?}");
            assert!((p.g as i32 - q.g as i32).abs() <= 1);
            assert!((p.b as i32 - q.b as i32).abs() <= 1);
        }
    }

    #[test]
    fn luma_of_gray_pixel_is_identity() {
        for v in [0u8, 17, 128, 255] {
            assert_eq!(Rgb::new(v, v, v).luma(), v);
        }
    }

    #[test]
    fn gray_conversion_preserves_dimensions() {
        let img = RgbImage::from_fn(7, 5, |x, y| Rgb::new(x as u8, y as u8, 0));
        assert_eq!(img.to_gray().dimensions(), (7, 5));
    }

    #[test]
    fn rgb_from_gray_is_achromatic() {
        let g = GrayImage::from_fn(3, 3, |x, y| (40 * x + y) as u8);
        let c = RgbImage::from(&g);
        let p = c.get(2, 1);
        assert_eq!(p.r, p.g);
        assert_eq!(p.g, p.b);
        assert_eq!(p.r, g.get(2, 1));
    }

    #[test]
    fn raw_byte_size_counts_three_channels() {
        let img = RgbImage::new(10, 10).unwrap();
        assert_eq!(img.raw_byte_size(), 300);
    }

    #[test]
    fn array_conversions() {
        let p: Rgb = [1u8, 2, 3].into();
        let a: [u8; 3] = p.into();
        assert_eq!(a, [1, 2, 3]);
    }
}
