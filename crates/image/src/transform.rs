//! Lossless geometric transforms: quarter-turn rotations and flips.
//!
//! Used by tests to exercise ORB's steered-BRIEF rotation invariance and
//! available to dataset builders for view augmentation.

use crate::{GrayImage, RgbImage};

/// Rotates 90° clockwise (width and height swap).
pub fn rotate90(src: &GrayImage) -> GrayImage {
    let (w, h) = src.dimensions();
    GrayImage::from_fn(h, w, |x, y| src.get(y, h - 1 - x))
}

/// Rotates 180°.
pub fn rotate180(src: &GrayImage) -> GrayImage {
    let (w, h) = src.dimensions();
    GrayImage::from_fn(w, h, |x, y| src.get(w - 1 - x, h - 1 - y))
}

/// Rotates 270° clockwise (i.e. 90° counter-clockwise).
pub fn rotate270(src: &GrayImage) -> GrayImage {
    let (w, h) = src.dimensions();
    let _ = h;
    GrayImage::from_fn(src.height(), src.width(), |x, y| src.get(w - 1 - y, x))
}

/// Mirrors horizontally (left-right).
pub fn flip_horizontal(src: &GrayImage) -> GrayImage {
    let (w, h) = src.dimensions();
    GrayImage::from_fn(w, h, |x, y| src.get(w - 1 - x, y))
}

/// Mirrors vertically (top-bottom).
pub fn flip_vertical(src: &GrayImage) -> GrayImage {
    let (w, h) = src.dimensions();
    GrayImage::from_fn(w, h, |x, y| src.get(x, h - 1 - y))
}

/// Rotates an RGB image 90° clockwise.
pub fn rotate90_rgb(src: &RgbImage) -> RgbImage {
    let h = src.height();
    RgbImage::from_fn(src.height(), src.width(), |x, y| src.get(y, h - 1 - x))
}

/// Mirrors an RGB image horizontally.
pub fn flip_horizontal_rgb(src: &RgbImage) -> RgbImage {
    let w = src.width();
    RgbImage::from_fn(src.width(), src.height(), |x, y| src.get(w - 1 - x, y))
}

/// Convenience: the identity transform (useful in transform tables).
pub fn identity(src: &GrayImage) -> GrayImage {
    src.clone()
}

/// A quarter-turn amount for [`rotate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuarterTurn {
    /// No rotation.
    R0,
    /// 90° clockwise.
    R90,
    /// 180°.
    R180,
    /// 270° clockwise.
    R270,
}

/// Rotates by a quarter-turn amount.
pub fn rotate(src: &GrayImage, turn: QuarterTurn) -> GrayImage {
    match turn {
        QuarterTurn::R0 => identity(src),
        QuarterTurn::R90 => rotate90(src),
        QuarterTurn::R180 => rotate180(src),
        QuarterTurn::R270 => rotate270(src),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rgb;

    fn sample() -> GrayImage {
        GrayImage::from_fn(5, 3, |x, y| (x * 10 + y) as u8)
    }

    #[test]
    fn rotate90_swaps_dimensions_and_maps_corners() {
        let img = sample();
        let r = rotate90(&img);
        assert_eq!(r.dimensions(), (3, 5));
        // Top-left of the original lands at the top-right.
        assert_eq!(r.get(2, 0), img.get(0, 0));
        // Bottom-left lands at top-left.
        assert_eq!(r.get(0, 0), img.get(0, 2));
    }

    #[test]
    fn four_quarter_turns_are_identity() {
        let img = sample();
        let back = rotate90(&rotate90(&rotate90(&rotate90(&img))));
        assert_eq!(back, img);
    }

    #[test]
    fn rotate180_equals_two_rotate90() {
        let img = sample();
        assert_eq!(rotate180(&img), rotate90(&rotate90(&img)));
    }

    #[test]
    fn rotate270_equals_three_rotate90() {
        let img = sample();
        assert_eq!(rotate270(&img), rotate90(&rotate90(&rotate90(&img))));
    }

    #[test]
    fn flips_are_involutions() {
        let img = sample();
        assert_eq!(flip_horizontal(&flip_horizontal(&img)), img);
        assert_eq!(flip_vertical(&flip_vertical(&img)), img);
    }

    #[test]
    fn flip_h_then_v_is_rotate180() {
        let img = sample();
        assert_eq!(flip_vertical(&flip_horizontal(&img)), rotate180(&img));
    }

    #[test]
    fn rgb_transforms_match_gray_on_luma() {
        let rgb = RgbImage::from_fn(4, 6, |x, y| Rgb::new((x * 20) as u8, (y * 20) as u8, 7));
        let gray = rgb.to_gray();
        assert_eq!(rotate90_rgb(&rgb).to_gray(), rotate90(&gray));
        assert_eq!(flip_horizontal_rgb(&rgb).to_gray(), flip_horizontal(&gray));
    }

    #[test]
    fn rotate_dispatch_matches_direct_calls() {
        let img = sample();
        assert_eq!(rotate(&img, QuarterTurn::R0), img);
        assert_eq!(rotate(&img, QuarterTurn::R90), rotate90(&img));
        assert_eq!(rotate(&img, QuarterTurn::R180), rotate180(&img));
        assert_eq!(rotate(&img, QuarterTurn::R270), rotate270(&img));
    }
}
