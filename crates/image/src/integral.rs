//! Summed-area (integral) images for O(1) box sums.
//!
//! Used by the SSIM implementation for windowed means/variances and available
//! to feature code for fast patch statistics.

use crate::{GrayImage, Result};

/// A summed-area table over an image, with one extra row/column of zeros so
/// that rectangle sums need no boundary special-casing.
///
/// # Examples
///
/// ```
/// use bees_image::{GrayImage, integral::IntegralImage};
///
/// let img = GrayImage::from_fn(4, 4, |_, _| 2);
/// let ii = IntegralImage::from_image(&img);
/// assert_eq!(ii.rect_sum(0, 0, 4, 4), 32);
/// assert_eq!(ii.rect_sum(1, 1, 2, 2), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IntegralImage {
    width: u32,
    height: u32,
    // (width + 1) * (height + 1) table of cumulative sums.
    table: Vec<u64>,
}

impl IntegralImage {
    /// Builds the integral image of `src`.
    pub fn from_image(src: &GrayImage) -> Self {
        Self::from_values(src.width(), src.height(), |x, y| src.get(x, y) as u64)
    }

    /// Builds an integral image over squared pixel values (for variances).
    pub fn from_image_squared(src: &GrayImage) -> Self {
        Self::from_values(src.width(), src.height(), |x, y| {
            let v = src.get(x, y) as u64;
            v * v
        })
    }

    fn from_values<F: Fn(u32, u32) -> u64>(width: u32, height: u32, f: F) -> Self {
        let w1 = width as usize + 1;
        let h1 = height as usize + 1;
        let mut table = vec![0u64; w1 * h1];
        for y in 1..h1 {
            let mut row_sum = 0u64;
            for x in 1..w1 {
                row_sum += f((x - 1) as u32, (y - 1) as u32);
                table[y * w1 + x] = table[(y - 1) * w1 + x] + row_sum;
            }
        }
        IntegralImage {
            width,
            height,
            table,
        }
    }

    /// Width of the underlying image.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height of the underlying image.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Sum of the `w × h` rectangle whose top-left corner is `(x, y)`.
    ///
    /// The rectangle is clamped to the image bounds; a fully out-of-bounds or
    /// empty rectangle sums to zero.
    pub fn rect_sum(&self, x: u32, y: u32, w: u32, h: u32) -> u64 {
        if w == 0 || h == 0 || x >= self.width || y >= self.height {
            return 0;
        }
        let x1 = (x + w).min(self.width) as usize;
        let y1 = (y + h).min(self.height) as usize;
        let x0 = x as usize;
        let y0 = y as usize;
        let w1 = self.width as usize + 1;
        self.table[y1 * w1 + x1] + self.table[y0 * w1 + x0]
            - self.table[y0 * w1 + x1]
            - self.table[y1 * w1 + x0]
    }

    /// Mean pixel value over the clamped rectangle.
    pub fn rect_mean(&self, x: u32, y: u32, w: u32, h: u32) -> f64 {
        if w == 0 || h == 0 || x >= self.width || y >= self.height {
            return 0.0;
        }
        let cw = ((x + w).min(self.width) - x) as f64;
        let ch = ((y + h).min(self.height) - y) as f64;
        self.rect_sum(x, y, w, h) as f64 / (cw * ch)
    }
}

/// Convenience: builds both the plain and squared integral images at once.
///
/// # Errors
///
/// Infallible today; returns `Result` for interface stability with the rest
/// of the crate.
pub fn integral_pair(src: &GrayImage) -> Result<(IntegralImage, IntegralImage)> {
    Ok((
        IntegralImage::from_image(src),
        IntegralImage::from_image_squared(src),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_sum(img: &GrayImage, x: u32, y: u32, w: u32, h: u32) -> u64 {
        let mut s = 0u64;
        for yy in y..(y + h).min(img.height()) {
            for xx in x..(x + w).min(img.width()) {
                s += img.get(xx, yy) as u64;
            }
        }
        s
    }

    #[test]
    fn rect_sum_matches_brute_force() {
        let img = GrayImage::from_fn(13, 9, |x, y| ((x * 31 + y * 17) % 251) as u8);
        let ii = IntegralImage::from_image(&img);
        for (x, y, w, h) in [
            (0, 0, 13, 9),
            (2, 3, 4, 4),
            (12, 8, 1, 1),
            (5, 0, 20, 2),
            (0, 7, 3, 9),
        ] {
            assert_eq!(
                ii.rect_sum(x, y, w, h),
                brute_sum(&img, x, y, w, h),
                "{x},{y},{w},{h}"
            );
        }
    }

    #[test]
    fn empty_and_out_of_bounds_rects_are_zero() {
        let img = GrayImage::from_fn(4, 4, |_, _| 50);
        let ii = IntegralImage::from_image(&img);
        assert_eq!(ii.rect_sum(0, 0, 0, 4), 0);
        assert_eq!(ii.rect_sum(4, 0, 1, 1), 0);
        assert_eq!(ii.rect_sum(0, 9, 1, 1), 0);
    }

    #[test]
    fn squared_integral_supports_variance() {
        let img = GrayImage::from_fn(6, 6, |x, _| (x * 40) as u8);
        let (ii, ii2) = integral_pair(&img).unwrap();
        let n = 36.0;
        let mean = ii.rect_sum(0, 0, 6, 6) as f64 / n;
        let var = ii2.rect_sum(0, 0, 6, 6) as f64 / n - mean * mean;
        // Direct computation.
        let m = img.pixels().iter().map(|&p| p as f64).sum::<f64>() / n;
        let v = img
            .pixels()
            .iter()
            .map(|&p| (p as f64 - m).powi(2))
            .sum::<f64>()
            / n;
        assert!((mean - m).abs() < 1e-9);
        assert!((var - v).abs() < 1e-6);
    }

    #[test]
    fn rect_mean_of_constant_region() {
        let img = GrayImage::from_fn(8, 8, |_, _| 77);
        let ii = IntegralImage::from_image(&img);
        assert!((ii.rect_mean(3, 3, 10, 10) - 77.0).abs() < 1e-9);
    }
}
