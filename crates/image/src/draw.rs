//! Deterministic drawing primitives.
//!
//! The paper evaluates on real photo collections (Kentucky, Nepal, Paris);
//! this reproduction generates synthetic scenes instead (see `bees-datasets`).
//! These primitives provide enough visual structure — corners, edges, texture
//! — for FAST/ORB/SIFT to find meaningful keypoints.

use crate::{Rgb, RgbImage};

/// Fills an axis-aligned rectangle, clipped to the image.
pub fn fill_rect(img: &mut RgbImage, x0: i64, y0: i64, w: u32, h: u32, color: Rgb) {
    let (iw, ih) = (img.width() as i64, img.height() as i64);
    let xs = x0.max(0);
    let ys = y0.max(0);
    let xe = (x0 + w as i64).min(iw);
    let ye = (y0 + h as i64).min(ih);
    for y in ys..ye {
        for x in xs..xe {
            img.set(x as u32, y as u32, color);
        }
    }
}

/// Fills a disk of the given radius, clipped to the image.
pub fn fill_disk(img: &mut RgbImage, cx: i64, cy: i64, radius: u32, color: Rgb) {
    let r = radius as i64;
    let (iw, ih) = (img.width() as i64, img.height() as i64);
    for y in (cy - r).max(0)..(cy + r + 1).min(ih) {
        for x in (cx - r).max(0)..(cx + r + 1).min(iw) {
            let dx = x - cx;
            let dy = y - cy;
            if dx * dx + dy * dy <= r * r {
                img.set(x as u32, y as u32, color);
            }
        }
    }
}

/// Draws a line with Bresenham's algorithm, clipped to the image.
pub fn draw_line(img: &mut RgbImage, x0: i64, y0: i64, x1: i64, y1: i64, color: Rgb) {
    let (iw, ih) = (img.width() as i64, img.height() as i64);
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let (mut x, mut y) = (x0, y0);
    loop {
        if (0..iw).contains(&x) && (0..ih).contains(&y) {
            img.set(x as u32, y as u32, color);
        }
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

/// Draws a filled triangle (scanline fill), clipped to the image.
pub fn fill_triangle(
    img: &mut RgbImage,
    p0: (i64, i64),
    p1: (i64, i64),
    p2: (i64, i64),
    color: Rgb,
) {
    let min_x = p0.0.min(p1.0).min(p2.0).max(0);
    let max_x = p0.0.max(p1.0).max(p2.0).min(img.width() as i64 - 1);
    let min_y = p0.1.min(p1.1).min(p2.1).max(0);
    let max_y = p0.1.max(p1.1).max(p2.1).min(img.height() as i64 - 1);
    let edge = |a: (i64, i64), b: (i64, i64), p: (i64, i64)| -> i64 {
        (b.0 - a.0) * (p.1 - a.1) - (b.1 - a.1) * (p.0 - a.0)
    };
    let area = edge(p0, p1, p2);
    if area == 0 {
        return;
    }
    for y in min_y..=max_y {
        for x in min_x..=max_x {
            let p = (x, y);
            let w0 = edge(p1, p2, p);
            let w1 = edge(p2, p0, p);
            let w2 = edge(p0, p1, p);
            let all_nonneg = w0 >= 0 && w1 >= 0 && w2 >= 0;
            let all_nonpos = w0 <= 0 && w1 <= 0 && w2 <= 0;
            if all_nonneg || all_nonpos {
                img.set(x as u32, y as u32, color);
            }
        }
    }
}

/// Fills the whole image with a smooth two-color vertical gradient.
pub fn fill_vertical_gradient(img: &mut RgbImage, top: Rgb, bottom: Rgb) {
    let h = img.height().max(2);
    for y in 0..img.height() {
        let t = y as f32 / (h - 1) as f32;
        let lerp = |a: u8, b: u8| (a as f32 + t * (b as f32 - a as f32)).round() as u8;
        let c = Rgb::new(
            lerp(top.r, bottom.r),
            lerp(top.g, bottom.g),
            lerp(top.b, bottom.b),
        );
        for x in 0..img.width() {
            img.set(x, y, c);
        }
    }
}

/// Overlays a checkerboard texture inside a rectangle; `cell` is the square
/// size in pixels. Checker corners are strong FAST/Harris responses.
#[allow(clippy::too_many_arguments)]
pub fn draw_checker(
    img: &mut RgbImage,
    x0: i64,
    y0: i64,
    w: u32,
    h: u32,
    cell: u32,
    a: Rgb,
    b: Rgb,
) {
    let cell = cell.max(1) as i64;
    let (iw, ih) = (img.width() as i64, img.height() as i64);
    for y in y0.max(0)..(y0 + h as i64).min(ih) {
        for x in x0.max(0)..(x0 + w as i64).min(iw) {
            let cxi = (x - x0) / cell;
            let cyi = (y - y0) / cell;
            img.set(x as u32, y as u32, if (cxi + cyi) % 2 == 0 { a } else { b });
        }
    }
}

/// Quantizes every pixel to its nearest color (squared-RGB distance) in
/// `palette`. Posterization collapses an image's color world onto a shared
/// palette — useful for simulating corpora whose photos share tones (rubble,
/// sky, vegetation), where global color features lose their power.
///
/// # Panics
///
/// Panics if `palette` is empty.
pub fn posterize(img: &RgbImage, palette: &[Rgb]) -> RgbImage {
    assert!(
        !palette.is_empty(),
        "palette must contain at least one color"
    );
    RgbImage::from_fn(img.width(), img.height(), |x, y| {
        let p = img.get(x, y);
        *palette
            .iter()
            .min_by_key(|c| {
                let dr = p.r as i32 - c.r as i32;
                let dg = p.g as i32 - c.g as i32;
                let db = p.b as i32 - c.b as i32;
                dr * dr + dg * dg + db * db
            })
            .expect("palette is non-empty")
    })
}

/// Adjusts global brightness by `delta` (may be negative), saturating.
pub fn adjust_brightness(img: &mut RgbImage, delta: i32) {
    for y in 0..img.height() {
        for x in 0..img.width() {
            let p = img.get(x, y);
            let adj = |v: u8| (v as i32 + delta).clamp(0, 255) as u8;
            img.set(x, y, Rgb::new(adj(p.r), adj(p.g), adj(p.b)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank(w: u32, h: u32) -> RgbImage {
        RgbImage::new(w, h).unwrap()
    }

    #[test]
    fn fill_rect_clips_to_bounds() {
        let mut img = blank(10, 10);
        fill_rect(&mut img, -5, -5, 8, 8, Rgb::new(255, 0, 0));
        assert_eq!(img.get(0, 0).r, 255);
        assert_eq!(img.get(2, 2).r, 255);
        assert_eq!(img.get(3, 3).r, 0);
        // Entirely outside: no panic, no change.
        fill_rect(&mut img, 20, 20, 4, 4, Rgb::new(0, 255, 0));
    }

    #[test]
    fn disk_is_roughly_circular() {
        let mut img = blank(21, 21);
        fill_disk(&mut img, 10, 10, 5, Rgb::new(0, 0, 255));
        assert_eq!(img.get(10, 10).b, 255);
        assert_eq!(img.get(10, 5).b, 255);
        assert_eq!(img.get(10, 4).b, 0);
        assert_eq!(img.get(0, 0).b, 0);
    }

    #[test]
    fn line_endpoints_are_set() {
        let mut img = blank(16, 16);
        draw_line(&mut img, 1, 2, 12, 9, Rgb::new(9, 9, 9));
        assert_eq!(img.get(1, 2).r, 9);
        assert_eq!(img.get(12, 9).r, 9);
    }

    #[test]
    fn line_clips_out_of_bounds() {
        let mut img = blank(8, 8);
        // Must not panic even with endpoints far outside.
        draw_line(&mut img, -10, -10, 20, 20, Rgb::new(1, 1, 1));
        assert_eq!(img.get(4, 4).r, 1);
    }

    #[test]
    fn triangle_fills_interior() {
        let mut img = blank(20, 20);
        fill_triangle(&mut img, (2, 2), (17, 3), (9, 16), Rgb::new(200, 0, 0));
        assert_eq!(img.get(9, 7).r, 200);
        assert_eq!(img.get(0, 19).r, 0);
    }

    #[test]
    fn degenerate_triangle_is_noop() {
        let mut img = blank(10, 10);
        fill_triangle(&mut img, (1, 1), (5, 5), (9, 9), Rgb::new(50, 0, 0));
        // Collinear points: area zero, nothing drawn.
        assert_eq!(img.get(5, 5).r, 0);
    }

    #[test]
    fn gradient_interpolates_between_colors() {
        let mut img = blank(4, 11);
        fill_vertical_gradient(&mut img, Rgb::new(0, 0, 0), Rgb::new(200, 100, 50));
        assert_eq!(img.get(0, 0), Rgb::new(0, 0, 0));
        assert_eq!(img.get(0, 10), Rgb::new(200, 100, 50));
        let mid = img.get(0, 5);
        assert!((mid.r as i32 - 100).abs() <= 2);
    }

    #[test]
    fn checker_alternates_cells() {
        let mut img = blank(8, 8);
        draw_checker(
            &mut img,
            0,
            0,
            8,
            8,
            2,
            Rgb::new(255, 255, 255),
            Rgb::new(0, 0, 0),
        );
        assert_eq!(img.get(0, 0).r, 255);
        assert_eq!(img.get(2, 0).r, 0);
        assert_eq!(img.get(2, 2).r, 255);
    }

    #[test]
    fn posterize_maps_to_palette_members() {
        let img = RgbImage::from_fn(8, 8, |x, y| Rgb::new((x * 30) as u8, (y * 30) as u8, 99));
        let palette = [
            Rgb::new(0, 0, 0),
            Rgb::new(255, 255, 255),
            Rgb::new(200, 30, 30),
        ];
        let out = posterize(&img, &palette);
        for p in out.pixels() {
            assert!(palette.contains(p), "{p:?} not in palette");
        }
        // Idempotent: posterizing a posterized image changes nothing.
        assert_eq!(posterize(&out, &palette), out);
    }

    #[test]
    #[should_panic(expected = "palette")]
    fn posterize_rejects_empty_palette() {
        let img = RgbImage::new(2, 2).unwrap();
        let _ = posterize(&img, &[]);
    }

    #[test]
    fn brightness_saturates() {
        let mut img = blank(2, 1);
        img.set(0, 0, Rgb::new(250, 5, 128));
        adjust_brightness(&mut img, 20);
        assert_eq!(img.get(0, 0), Rgb::new(255, 25, 148));
        adjust_brightness(&mut img, -300);
        assert_eq!(img.get(0, 0), Rgb::new(0, 0, 0));
    }
}
