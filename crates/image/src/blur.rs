//! Separable Gaussian filtering.
//!
//! Used by the SIFT difference-of-Gaussians pyramid and by ORB's pre-smoothing
//! before BRIEF sampling (the original ORB paper smooths the patch; OpenCV
//! blurs the pyramid level).

use crate::{GrayF32, GrayImage, ImageError, Result};
use bees_runtime::Runtime;

/// Builds a normalized 1-D Gaussian kernel for standard deviation `sigma`.
///
/// The radius is `ceil(3·sigma)`, which captures > 99.7 % of the mass.
///
/// # Errors
///
/// Returns [`ImageError::InvalidParameter`] if `sigma` is not finite and
/// positive.
pub fn gaussian_kernel(sigma: f64) -> Result<Vec<f32>> {
    if !sigma.is_finite() || sigma <= 0.0 {
        return Err(ImageError::InvalidParameter {
            name: "sigma",
            value: sigma,
        });
    }
    let radius = (3.0 * sigma).ceil() as i64;
    let mut kernel = Vec::with_capacity((2 * radius + 1) as usize);
    let denom = 2.0 * sigma * sigma;
    for i in -radius..=radius {
        kernel.push((-((i * i) as f64) / denom).exp() as f32);
    }
    let sum: f32 = kernel.iter().sum();
    for k in &mut kernel {
        *k /= sum;
    }
    Ok(kernel)
}

/// Applies a horizontal-then-vertical pass of the given odd-length kernel.
///
/// Each pass fans out over output rows on the global [`Runtime`]; every row
/// keeps the exact sequential accumulation order, so the result is
/// bit-identical at any thread count.
fn convolve_separable(src: &GrayF32, kernel: &[f32]) -> GrayF32 {
    let radius = (kernel.len() / 2) as i64;
    let (w, h) = (src.width(), src.height());
    let rt = Runtime::current();
    let row = |img: &GrayF32, y: u32, horizontal: bool| -> Vec<f32> {
        let mut out_row = Vec::with_capacity(w as usize);
        for x in 0..w {
            let mut acc = 0.0f32;
            for (i, &k) in kernel.iter().enumerate() {
                let off = i as i64 - radius;
                acc += k * if horizontal {
                    img.get_clamped(x as i64 + off, y as i64)
                } else {
                    img.get_clamped(x as i64, y as i64 + off)
                };
            }
            out_row.push(acc);
        }
        out_row
    };
    let gather = |rows: Vec<Vec<f32>>| -> GrayF32 {
        let mut data = Vec::with_capacity(w as usize * h as usize);
        for r in rows {
            data.extend(r);
        }
        GrayF32::from_raw(w, h, data).expect("rows cover the full image")
    };
    let tmp = gather(rt.par_map_range(h as usize, |y| row(src, y as u32, true)));
    gather(rt.par_map_range(h as usize, |y| row(&tmp, y as u32, false)))
}

/// Gaussian-blurs a floating-point image.
///
/// # Errors
///
/// Returns [`ImageError::InvalidParameter`] if `sigma` is not finite and
/// positive.
///
/// # Examples
///
/// ```
/// use bees_image::{GrayImage, blur};
///
/// # fn main() -> Result<(), bees_image::ImageError> {
/// let img = GrayImage::from_fn(16, 16, |x, _| if x == 8 { 255 } else { 0 });
/// let soft = blur::gaussian_blur_f32(&img.to_f32(), 1.5)?;
/// // Energy spreads out but total mass is conserved (up to clamping).
/// assert!(soft.get(8, 8) < 255.0);
/// assert!(soft.get(6, 8) > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn gaussian_blur_f32(src: &GrayF32, sigma: f64) -> Result<GrayF32> {
    let kernel = gaussian_kernel(sigma)?;
    Ok(convolve_separable(src, &kernel))
}

/// Gaussian-blurs an 8-bit image, rounding the result back to 8 bits.
///
/// # Errors
///
/// Returns [`ImageError::InvalidParameter`] if `sigma` is not finite and
/// positive.
pub fn gaussian_blur(src: &GrayImage, sigma: f64) -> Result<GrayImage> {
    Ok(gaussian_blur_f32(&src.to_f32(), sigma)?.to_u8())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_normalized_and_symmetric() {
        let k = gaussian_kernel(2.0).unwrap();
        let sum: f32 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert_eq!(k.len() % 2, 1);
        for i in 0..k.len() / 2 {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-7);
        }
    }

    #[test]
    fn kernel_rejects_bad_sigma() {
        assert!(gaussian_kernel(0.0).is_err());
        assert!(gaussian_kernel(-1.0).is_err());
        assert!(gaussian_kernel(f64::NAN).is_err());
    }

    #[test]
    fn blur_preserves_constant_image() {
        let img = GrayImage::from_fn(10, 10, |_, _| 123);
        let out = gaussian_blur(&img, 1.2).unwrap();
        assert!(out.pixels().iter().all(|&p| (p as i32 - 123).abs() <= 1));
    }

    #[test]
    fn blur_preserves_mean_approximately() {
        let img = GrayImage::from_fn(32, 32, |x, y| ((x * 7 + y * 13) % 256) as u8);
        let out = gaussian_blur(&img, 2.0).unwrap();
        assert!((img.mean() - out.mean()).abs() < 3.0);
    }

    #[test]
    fn blur_reduces_variance() {
        let img = GrayImage::from_fn(32, 32, |x, y| if (x + y) % 2 == 0 { 0 } else { 255 });
        let out = gaussian_blur(&img, 1.5).unwrap();
        let var = |im: &GrayImage| {
            let m = im.mean();
            im.pixels()
                .iter()
                .map(|&p| (p as f64 - m).powi(2))
                .sum::<f64>()
                / im.pixel_count() as f64
        };
        assert!(var(&out) < var(&img) / 4.0);
    }

    #[test]
    fn larger_sigma_blurs_more() {
        let img = GrayImage::from_fn(24, 24, |x, _| if x == 12 { 255 } else { 0 });
        let a = gaussian_blur(&img, 0.8).unwrap();
        let b = gaussian_blur(&img, 3.0).unwrap();
        assert!(b.get(12, 12) < a.get(12, 12));
    }
}
