//! Every-byte-offset truncation properties of `decode_partial`: the
//! robustness contract the salvage path depends on. A progressive stream
//! cut at *any* byte offset — not just chunk boundaries — must either
//! decode to a valid [`ScanProgress`] or fail with `CorruptBitstream`;
//! it must never panic, and the scan count must be monotone in the
//! prefix length. Plain exhaustive loops, no fuzzing framework: the
//! streams are small enough to walk every offset.

use bees_image::codec::progressive::{
    decode_partial, encode_progressive_gray, encode_progressive_rgb, ScanProgress, SCAN_BANDS,
};
use bees_image::{ImageError, Rgb, RgbImage};

fn scene(w: u32, h: u32) -> RgbImage {
    RgbImage::from_fn(w, h, |x, y| {
        let base = 120.0 + 60.0 * ((x as f64) * 0.09).sin() + 40.0 * ((y as f64) * 0.13).cos();
        let tex = ((x * 5 + y * 11) % 19) as f64;
        let v = (base + tex).clamp(0.0, 255.0) as u8;
        Rgb::new(v, v.wrapping_add(60), 255 - v)
    })
}

/// Asserts the truncation contract over every prefix of `bytes` and
/// returns how many prefixes decoded.
fn check_every_offset(bytes: &[u8], dims: (u32, u32), label: &str) -> usize {
    let mut decodable = 0usize;
    let mut last_scans = 0usize;
    for cut in 0..=bytes.len() {
        match decode_partial(&bytes[..cut]) {
            Ok((decoded, progress)) => {
                decodable += 1;
                assert_eq!(decoded.dimensions(), dims, "{label}: wrong dims at cut {cut}");
                assert_valid_progress(&progress, cut, label);
                assert!(
                    progress.scans_complete >= last_scans,
                    "{label}: scans went backwards at cut {cut}: {} < {last_scans}",
                    progress.scans_complete
                );
                last_scans = progress.scans_complete;
            }
            Err(ImageError::CorruptBitstream { detail }) => {
                assert!(!detail.is_empty(), "{label}: empty detail at cut {cut}");
                // A decodable prefix stays decodable: once a shorter prefix
                // succeeded, a longer one may not start failing.
                assert_eq!(
                    decodable, 0,
                    "{label}: cut {cut} failed after a shorter prefix decoded"
                );
            }
            Err(other) => panic!("{label}: unexpected error at cut {cut}: {other}"),
        }
    }
    decodable
}

fn assert_valid_progress(progress: &ScanProgress, cut: usize, label: &str) {
    assert_eq!(
        progress.scans_total,
        SCAN_BANDS.len(),
        "{label}: wrong scans_total at cut {cut}"
    );
    assert!(
        (1..=progress.scans_total).contains(&progress.scans_complete),
        "{label}: scans_complete {} out of range at cut {cut}",
        progress.scans_complete
    );
    assert!(
        progress.bytes_consumed <= cut,
        "{label}: consumed {} of a {cut}-byte prefix",
        progress.bytes_consumed
    );
}

#[test]
fn gray_stream_truncated_at_every_byte_never_panics() {
    let img = scene(48, 32).to_gray();
    let bytes = encode_progressive_gray(&img, 75).expect("quality in range");
    let decodable = check_every_offset(&bytes, (48, 32), "gray");
    assert!(decodable > 0, "no gray prefix was decodable");
    let (_, full) = decode_partial(&bytes).expect("full stream decodes");
    assert!(full.is_complete(), "full gray stream incomplete: {full:?}");
}

#[test]
fn rgb_stream_truncated_at_every_byte_never_panics() {
    let img = scene(48, 32);
    let bytes = encode_progressive_rgb(&img, 75).expect("quality in range");
    let decodable = check_every_offset(&bytes, (48, 32), "rgb");
    assert!(decodable > 0, "no rgb prefix was decodable");
    let (_, full) = decode_partial(&bytes).expect("full stream decodes");
    assert!(full.is_complete(), "full rgb stream incomplete: {full:?}");
}

#[test]
fn tiny_images_survive_truncation_too() {
    // Degenerate geometries: single block, single pixel, skinny strips.
    for (w, h) in [(8u32, 8u32), (1, 1), (64, 1), (1, 48), (9, 7)] {
        let img = scene(w, h);
        let bytes = encode_progressive_rgb(&img, 60).expect("quality in range");
        check_every_offset(&bytes, (w, h), "tiny-rgb");
        let gray = img.to_gray();
        let gbytes = encode_progressive_gray(&gray, 60).expect("quality in range");
        check_every_offset(&gbytes, (w, h), "tiny-gray");
    }
}

#[test]
fn garbage_prefixes_fail_cleanly() {
    // Streams that were never valid: empty, short junk, and a real header
    // followed by noise. All must be CorruptBitstream, never a panic.
    let junk: Vec<u8> = (0..512u32).map(|i| (i * 37 + 11) as u8).collect();
    for cut in 0..=junk.len() {
        match decode_partial(&junk[..cut]) {
            Ok(_) => panic!("junk prefix of {cut} bytes decoded"),
            Err(ImageError::CorruptBitstream { .. }) => {}
            Err(other) => panic!("unexpected error on junk at cut {cut}: {other}"),
        }
    }
    // Corrupt a valid stream's tail: decode must still return a valid
    // progress (from the intact scans) or a clean error.
    let img = scene(32, 24);
    let mut bytes = encode_progressive_rgb(&img, 70).expect("quality in range");
    let n = bytes.len();
    for b in bytes[n / 2..].iter_mut() {
        *b ^= 0xA5;
    }
    match decode_partial(&bytes) {
        Ok((decoded, progress)) => {
            assert_eq!(decoded.dimensions(), (32, 24));
            assert_valid_progress(&progress, n, "corrupt-tail");
        }
        Err(ImageError::CorruptBitstream { .. }) => {}
        Err(other) => panic!("unexpected error on corrupt tail: {other}"),
    }
}
