//! Property-based tests of the image substrate: codec round-trips, resize
//! bounds, bit-level I/O, and entropy-coding invariants.

use bees_image::codec::bits::{BitReader, BitWriter};
use bees_image::codec::{self, entropy, zigzag};
use bees_image::{resize, GrayImage, Rgb, RgbImage};
use proptest::prelude::*;

fn arb_gray(max_w: u32, max_h: u32) -> impl Strategy<Value = GrayImage> {
    ((1..=max_w), (1..=max_h), any::<u64>()).prop_map(|(w, h, seed)| {
        GrayImage::from_fn(w, h, |x, y| {
            let v = seed
                .wrapping_add(((x as u64) << 24) ^ ((y as u64) << 8))
                .wrapping_mul(0x2545F4914F6CDD1D);
            (v >> 48) as u8
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gray_codec_roundtrips_any_shape(img in arb_gray(40, 40), q in 1u8..=100) {
        let encoded = codec::encode_gray(&img, q).unwrap();
        let decoded = codec::decode_gray(&encoded).unwrap();
        prop_assert_eq!(decoded.dimensions(), img.dimensions());
    }

    #[test]
    fn rgb_codec_roundtrips_any_shape(w in 1u32..24, h in 1u32..24, seed in any::<u64>(), q in 1u8..=100) {
        let img = RgbImage::from_fn(w, h, |x, y| {
            let v = seed.wrapping_add((x * 31 + y * 7) as u64).wrapping_mul(0x9E3779B97F4A7C15);
            Rgb::new((v >> 16) as u8, (v >> 32) as u8, (v >> 48) as u8)
        });
        let decoded = codec::decode_rgb(&codec::encode_rgb(&img, q).unwrap()).unwrap();
        prop_assert_eq!(decoded.dimensions(), img.dimensions());
    }

    #[test]
    fn truncated_streams_error_not_panic(img in arb_gray(24, 24), cut_fraction in 0.0f64..1.0) {
        let encoded = codec::encode_gray(&img, 50).unwrap();
        let cut = (encoded.len() as f64 * cut_fraction) as usize;
        if cut < encoded.len() {
            let _ = codec::decode_gray(&encoded[..cut]); // Err or Ok, never panic
        }
    }

    #[test]
    fn bit_io_roundtrips_any_sequence(values in proptest::collection::vec((any::<u64>(), 1u8..=64), 0..50)) {
        let mut w = BitWriter::new();
        for &(v, n) in &values {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            w.write_bits(masked, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            prop_assert_eq!(r.read_bits(n).unwrap(), masked);
        }
    }

    #[test]
    fn entropy_block_roundtrips_any_coefficients(
        coeffs in proptest::collection::vec(-2048i32..2048, 64),
        prev in -1000i32..1000,
    ) {
        let mut zz = [0i32; 64];
        zz.copy_from_slice(&coeffs);
        let mut w = BitWriter::new();
        let mut dc_enc = prev;
        entropy::encode_block(&mut w, &zz, &mut dc_enc);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut dc_dec = prev;
        let back = entropy::decode_block(&mut r, &mut dc_dec).unwrap();
        prop_assert_eq!(back, zz);
        prop_assert_eq!(dc_dec, dc_enc);
    }

    #[test]
    fn zigzag_roundtrips_any_block(coeffs in proptest::collection::vec(any::<i32>(), 64)) {
        let mut block = [0i32; 64];
        block.copy_from_slice(&coeffs);
        prop_assert_eq!(zigzag::from_zigzag(&zigzag::to_zigzag(&block)), block);
    }

    #[test]
    fn compress_bitmap_dimensions_shrink_by_proportion(img in arb_gray(64, 64), c in 0.0f64..0.95) {
        let out = resize::compress_bitmap(&img, c).unwrap();
        let expected_w = ((img.width() as f64 * (1.0 - c)).round() as u32).max(1);
        prop_assert_eq!(out.width(), expected_w);
        prop_assert!(out.width() <= img.width());
        prop_assert!(out.height() <= img.height());
    }

    #[test]
    fn bilinear_resize_stays_within_value_range(img in arb_gray(32, 32), w in 1u32..48, h in 1u32..48) {
        let out = resize::resize_bilinear(&img, w, h).unwrap();
        let (mn, mx) = img.pixels().iter().fold((255u8, 0u8), |(a, b), &p| (a.min(p), b.max(p)));
        for &p in out.pixels() {
            prop_assert!(p >= mn && p <= mx);
        }
    }

    #[test]
    fn ssim_is_bounded_and_reflexive(img in arb_gray(24, 24)) {
        use bees_image::metrics::ssim;
        let s = ssim(&img, &img).unwrap();
        // f32 Gaussian-kernel normalization leaves ~1e-6 residue on tiny
        // constant images.
        prop_assert!((s - 1.0).abs() < 1e-5, "ssim(self) = {}", s);
    }
}
