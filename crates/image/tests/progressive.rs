//! Integration tests of the progressive codec: the chunk-aligned salvage
//! contract the resilient upload path relies on. A transfer cut after any
//! whole number of transport chunks must yield a decodable image whose
//! fidelity only improves with more chunks, and a later "tail" completion
//! must reproduce the full-fidelity decode exactly.

use bees_image::codec::progressive::{
    decode_partial, encode_progressive_gray, encode_progressive_rgb, DecodedImage, SCAN_BANDS,
};
use bees_image::metrics::ssim;
use bees_image::{codec, GrayImage, Rgb, RgbImage};

fn scene(w: u32, h: u32) -> RgbImage {
    RgbImage::from_fn(w, h, |x, y| {
        let base = 110.0 + 70.0 * ((x as f64) * 0.08).sin() + 45.0 * ((y as f64) * 0.11).cos();
        let tex = ((x * 7 + y * 13) % 23) as f64;
        let v = (base + tex).clamp(0.0, 255.0) as u8;
        Rgb::new(v, (v / 2).wrapping_add(40), 255 - v)
    })
}

#[test]
fn chunk_aligned_prefixes_form_a_fidelity_ladder() {
    let img = scene(160, 120);
    let gray = img.to_gray();
    let bytes = encode_progressive_rgb(&img, 80).expect("quality in range");
    // Walk the stream in 1 KiB transport chunks, as the retry loop banks
    // them. Every prefix past the DC scan decodes; SSIM never regresses as
    // scans complete.
    let chunk = 1024usize;
    let mut best_ssim = -1.0f64;
    let mut scans_seen = 0usize;
    let mut decodable_prefixes = 0usize;
    for n_chunks in 1..=bytes.len().div_ceil(chunk) {
        let cut = (n_chunks * chunk).min(bytes.len());
        let Ok((decoded, progress)) = decode_partial(&bytes[..cut]) else {
            continue;
        };
        decodable_prefixes += 1;
        assert_eq!(decoded.dimensions(), (160, 120));
        if progress.scans_complete > scans_seen {
            let s = ssim(&gray, &decoded.to_gray()).expect("dimensions match");
            assert!(
                s + 1e-9 >= best_ssim,
                "fidelity regressed at {} scans: {s} < {best_ssim}",
                progress.scans_complete
            );
            best_ssim = s;
            scans_seen = progress.scans_complete;
        }
    }
    assert!(decodable_prefixes > 0, "no chunk prefix was decodable");
    assert_eq!(scans_seen, SCAN_BANDS.len(), "full stream never reached");
    assert!(best_ssim > 0.85, "full-stream ssim {best_ssim}");
}

#[test]
fn salvaged_half_stream_beats_half_ssim() {
    // The bench acceptance bar: a transfer cut at half the payload must
    // still salvage an image scoring SSIM > 0.5 against the full-quality
    // reference.
    let img = scene(128, 96);
    let bytes = encode_progressive_rgb(&img, 80).expect("quality in range");
    let (decoded, progress) = decode_partial(&bytes[..bytes.len() / 2]).expect("DC scan present");
    assert!(progress.scans_complete >= 1);
    assert!(progress.scans_complete < progress.scans_total);
    let s = ssim(&img.to_gray(), &decoded.to_gray()).expect("dimensions match");
    assert!(s > 0.5, "half-stream salvage ssim {s}");
}

#[test]
fn tail_completion_upgrades_to_the_exact_full_decode() {
    // The server-side upgrade path: decoding the partial prefix, then later
    // the whole stream, must land on the identical full-fidelity image — no
    // state from the partial decode leaks into the upgrade.
    let img = scene(96, 64);
    let bytes = encode_progressive_rgb(&img, 70).expect("quality in range");
    let (full_a, pa) = decode_partial(&bytes).expect("full stream decodes");
    assert!(pa.is_complete());
    let (_partial, pb) = decode_partial(&bytes[..bytes.len() * 2 / 3]).expect("prefix decodes");
    assert!(pb.scans_complete < pb.scans_total);
    let (full_b, _) = decode_partial(&bytes).expect("full stream still decodes");
    assert_eq!(full_a, full_b);
}

#[test]
fn gray_and_color_streams_share_the_scan_discipline() {
    let gray = GrayImage::from_fn(72, 56, |x, y| ((x * 11 + y * 5) % 256) as u8);
    let g_bytes = encode_progressive_gray(&gray, 60).expect("quality in range");
    let (g_dec, g_prog) = decode_partial(&g_bytes).expect("gray decodes");
    assert!(g_prog.is_complete());
    assert!(matches!(g_dec, DecodedImage::Gray(_)));

    let color = scene(72, 56);
    let c_bytes = encode_progressive_rgb(&color, 60).expect("quality in range");
    let (c_dec, c_prog) = decode_partial(&c_bytes).expect("color decodes");
    assert!(c_prog.is_complete());
    assert!(matches!(c_dec, DecodedImage::Rgb(_)));
    assert_eq!(g_prog.scans_total, c_prog.scans_total);
}

#[test]
fn progressive_full_decode_matches_baseline_codec_quality() {
    // Progressive reordering must not cost fidelity: at equal quality the
    // complete progressive decode scores the same SSIM as the baseline
    // codec (identical quantized coefficients, different transmission
    // order).
    let img = scene(120, 88);
    let baseline = codec::decode_rgb(&codec::encode_rgb(&img, 75).expect("encodes"))
        .expect("baseline decodes");
    let (progressive, _) =
        decode_partial(&encode_progressive_rgb(&img, 75).expect("encodes")).expect("decodes");
    let s_base = ssim(&img.to_gray(), &baseline.to_gray()).expect("dimensions match");
    let s_prog = ssim(&img.to_gray(), &progressive.to_gray()).expect("dimensions match");
    assert!(
        (s_base - s_prog).abs() < 1e-9,
        "baseline {s_base} vs progressive {s_prog}"
    );
}
