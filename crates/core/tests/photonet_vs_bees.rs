//! Cross-scheme integration: the PhotoNet-like global-feature baseline
//! against BEES — cheap extraction, weaker dedup, the trade-off the paper
//! resolves in favor of local features.

use bees_core::schemes::{BatchCtx, Bees, PhotoNetLike, UploadScheme};
use bees_core::{BeesConfig, Client, Server};
use bees_datasets::{disaster_batch, SceneConfig};
use bees_energy::EnergyCategory;
use bees_net::BandwidthTrace;

fn config() -> BeesConfig {
    let mut c = BeesConfig::default();
    c.trace = BandwidthTrace::constant(256_000.0).unwrap();
    c
}

#[test]
fn photonet_extraction_is_cheapest_but_bees_dedups_in_batch() {
    let cfg = config();
    // Heavy in-batch duplication, no server-side redundancy: PhotoNet's
    // cross-batch-only dedup cannot touch it.
    let data = disaster_batch(71, 12, 4, 0.0, SceneConfig::default());

    let run = |scheme: &dyn UploadScheme| {
        let mut server = Server::try_new(&cfg).unwrap();
        scheme.preload_server(&mut server, &data.server_preload);
        let mut client = Client::try_new(0, &cfg).unwrap();
        scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap()
    };
    let pn = run(&PhotoNetLike::new(&cfg));
    let bees = run(&Bees::adaptive(&cfg));

    // PhotoNet extraction is far cheaper than ORB...
    assert!(
        pn.energy.get(EnergyCategory::FeatureExtraction)
            < bees.energy.get(EnergyCategory::FeatureExtraction),
        "histograms should cost less than ORB"
    );
    // ...but it misses every in-batch duplicate while BEES' SSMM catches
    // them, so BEES uploads fewer images.
    assert_eq!(pn.skipped_in_batch, 0);
    assert!(
        bees.skipped_in_batch >= 3,
        "SSMM caught only {}",
        bees.skipped_in_batch
    );
    assert!(bees.uploaded_images < pn.uploaded_images);
    // Net effect: BEES still wins total energy despite paying for ORB.
    assert!(
        bees.active_energy() < pn.active_energy(),
        "BEES {} vs PhotoNet {}",
        bees.active_energy(),
        pn.active_energy()
    );
}

#[test]
fn photonet_histogram_dedup_misfires_where_orb_does_not() {
    // Two different scenes posterized onto similar global tones: the
    // histogram dedup is the only scheme at risk of dropping a genuinely
    // new image. We verify the conservative threshold prevents that here,
    // and that ORB-based BEES never relies on color at all.
    let cfg = config();
    let data = disaster_batch(72, 8, 0, 0.5, SceneConfig::default());
    let pn = PhotoNetLike::new(&cfg);
    let mut server = Server::try_new(&cfg).unwrap();
    pn.preload_server(&mut server, &data.server_preload);
    let mut client = Client::try_new(0, &cfg).unwrap();
    let r = pn
        .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
        .unwrap();
    // Everything it skipped must have been genuinely staged as redundant
    // (no false-positive drops of the unique tail images).
    assert!(
        r.skipped_cross_batch <= data.cross_batch_redundant.len(),
        "histogram dedup dropped {} images but only {} were staged redundant",
        r.skipped_cross_batch,
        data.cross_batch_redundant.len()
    );
}
