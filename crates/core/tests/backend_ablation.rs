//! Ablation: the server's index backend (exact linear scan vs multi-index
//! hashing). MIH scores exactly the candidates its word probes surface, so
//! it can never deduplicate an image the linear scan would keep — but it
//! may keep an image the linear scan would deduplicate when the descriptor
//! noise exceeds its probe radius. The system stays correct either way
//! (dedup is an optimization); these tests pin down that containment.

use bees_core::schemes::{BatchCtx, Bees, Mrc, UploadScheme};
use bees_core::{BatchReport, BeesConfig, Client, IndexBackend, Server};
use bees_datasets::{disaster_batch, SceneConfig};
use bees_net::BandwidthTrace;

fn config(backend: IndexBackend) -> BeesConfig {
    let mut c = BeesConfig::default();
    c.trace = BandwidthTrace::constant(256_000.0).unwrap();
    c.index_backend = backend;
    c
}

fn small() -> SceneConfig {
    SceneConfig {
        width: 128,
        height: 96,
        n_shapes: 12,
        texture_amp: 8.0,
    }
}

fn run(scheme_for: impl Fn(&BeesConfig) -> Box<dyn UploadScheme>, seed: u64) -> [BatchReport; 2] {
    let data = disaster_batch(seed, 10, 2, 0.5, small());
    let mut out = Vec::new();
    for backend in [IndexBackend::Linear, IndexBackend::Mih] {
        let cfg = config(backend);
        let scheme = scheme_for(&cfg);
        let mut server = Server::try_new(&cfg).unwrap();
        scheme.preload_server(&mut server, &data.server_preload);
        let mut client = Client::try_new(0, &cfg).unwrap();
        out.push(
            scheme
                .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
                .unwrap(),
        );
    }
    out.try_into().expect("two backends")
}

#[test]
fn mih_dedup_decisions_are_a_subset_of_linear_for_bees() {
    let [linear, mih] = run(|cfg| Box::new(Bees::adaptive(cfg)), 17);
    assert!(mih.skipped_cross_batch <= linear.skipped_cross_batch);
    assert!(mih.uploaded_images + mih.skipped_in_batch >= linear.uploaded_images);
    // Identical inputs otherwise: feature payloads match exactly.
    assert_eq!(mih.feature_bytes, linear.feature_bytes);
    assert_eq!(mih.batch_size, linear.batch_size);
}

#[test]
fn mih_dedup_decisions_are_a_subset_of_linear_for_mrc() {
    let [linear, mih] = run(|cfg| Box::new(Mrc::new(cfg)), 18);
    assert!(mih.skipped_cross_batch <= linear.skipped_cross_batch);
    assert_eq!(mih.feature_bytes, linear.feature_bytes);
}

#[test]
fn mih_recall_is_high_on_this_workload() {
    // With radius-1 multi-probe, MIH should catch the large majority of
    // the staged redundancy the linear scan catches.
    let [linear, mih] = run(|cfg| Box::new(Mrc::new(cfg)), 19);
    assert!(
        linear.skipped_cross_batch > 0,
        "workload must contain redundancy"
    );
    assert!(
        mih.skipped_cross_batch * 2 >= linear.skipped_cross_batch,
        "MIH recall collapsed: {} vs {}",
        mih.skipped_cross_batch,
        linear.skipped_cross_batch
    );
}
