//! Session-level sanity properties: resources in, work out.

use bees_core::schemes::{Bees, DirectUpload, UploadScheme};
use bees_core::sessions::{run_lifetime, LifetimeConfig};
use bees_core::BeesConfig;
use bees_datasets::SceneConfig;
use bees_energy::Battery;
use bees_net::BandwidthTrace;

fn config(battery_j: f64) -> BeesConfig {
    let mut c = BeesConfig::default();
    c.trace = BandwidthTrace::constant(256_000.0).unwrap();
    c.battery = Battery::from_joules(battery_j);
    c
}

fn lt() -> LifetimeConfig {
    LifetimeConfig {
        group_size: 3,
        n_groups: 30,
        interval_s: 60.0,
        cross_ratio: 0.3,
        scene: SceneConfig {
            width: 96,
            height: 72,
            n_shapes: 8,
            texture_amp: 8.0,
        },
        seed: 11,
    }
}

#[test]
fn bigger_battery_never_shortens_the_session() {
    let mut last_groups = 0usize;
    let mut last_life = 0.0f64;
    for joules in [150.0, 400.0, 900.0] {
        let cfg = config(joules);
        let res = run_lifetime(&DirectUpload::new(&cfg), &cfg, &lt()).unwrap();
        assert!(
            res.groups_uploaded >= last_groups,
            "{joules} J uploaded {} < {last_groups}",
            res.groups_uploaded
        );
        assert!(res.lifetime_s >= last_life);
        last_groups = res.groups_uploaded;
        last_life = res.lifetime_s;
    }
}

#[test]
fn lifetime_discharge_is_reported_consistently() {
    let cfg = config(500.0);
    for scheme in [
        &DirectUpload::new(&cfg) as &dyn UploadScheme,
        &Bees::adaptive(&cfg),
    ] {
        let res = run_lifetime(scheme, &cfg, &lt()).unwrap();
        // Samples start full and never rise.
        assert!((res.samples[0].ebat - 1.0).abs() < 1e-9);
        for w in res.samples.windows(2) {
            assert!(w[1].ebat <= w[0].ebat + 1e-9, "{}", res.scheme);
            assert!(w[1].time_s > w[0].time_s, "{}", res.scheme);
        }
        // The final time stamp never exceeds the reported lifetime.
        assert!(res.samples.last().unwrap().time_s <= res.lifetime_s + 1e-9);
    }
}

#[test]
fn bees_always_uploads_at_least_as_many_groups_as_direct() {
    // Same battery, same workload: BEES' per-group cost is lower, so it can
    // never finish fewer groups.
    let cfg = config(350.0);
    let direct = run_lifetime(&DirectUpload::new(&cfg), &cfg, &lt()).unwrap();
    let bees = run_lifetime(&Bees::adaptive(&cfg), &cfg, &lt()).unwrap();
    assert!(
        bees.groups_uploaded >= direct.groups_uploaded,
        "BEES {} vs Direct {}",
        bees.groups_uploaded,
        direct.groups_uploaded
    );
}
