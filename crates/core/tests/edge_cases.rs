//! Edge-case integration tests: degenerate batches must flow through every
//! scheme without panicking or corrupting the accounting.

use bees_core::schemes::{BatchCtx, Bees, DirectUpload, Mrc, SmartEye, UploadScheme};
use bees_core::{BeesConfig, Client, Server};
use bees_datasets::{Scene, SceneConfig, ViewJitter};
use bees_image::RgbImage;
use bees_net::BandwidthTrace;

fn config() -> BeesConfig {
    let mut c = BeesConfig::default();
    c.trace = BandwidthTrace::constant(256_000.0).unwrap();
    c
}

fn schemes(cfg: &BeesConfig) -> Vec<Box<dyn UploadScheme>> {
    vec![
        Box::new(DirectUpload::new(&cfg)),
        Box::new(SmartEye::new(cfg)),
        Box::new(Mrc::new(cfg)),
        Box::new(Bees::adaptive(cfg)),
    ]
}

#[test]
fn empty_batch_is_a_noop() {
    let cfg = config();
    for scheme in schemes(&cfg) {
        let mut server = Server::try_new(&cfg).unwrap();
        let mut client = Client::try_new(0, &cfg).unwrap();
        let r = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &[]))
            .unwrap();
        assert_eq!(r.batch_size, 0, "{}", r.scheme);
        assert_eq!(r.uploaded_images, 0);
        assert_eq!(r.avg_delay_per_image(), 0.0);
        assert_eq!(server.received_images(), 0);
    }
}

#[test]
fn single_image_batch_uploads_exactly_one() {
    let cfg = config();
    let img = Scene::new(
        1,
        SceneConfig {
            width: 128,
            height: 96,
            n_shapes: 12,
            texture_amp: 8.0,
        },
    )
    .render(&ViewJitter::identity());
    for scheme in schemes(&cfg) {
        let mut server = Server::try_new(&cfg).unwrap();
        let mut client = Client::try_new(0, &cfg).unwrap();
        let batch = [img.clone()];
        let r = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &batch))
            .unwrap();
        assert_eq!(r.uploaded_images, 1, "{}", r.scheme);
        assert_eq!(r.skipped_in_batch, 0, "{}", r.scheme);
    }
}

#[test]
fn featureless_images_are_uploaded_not_deduplicated() {
    // A flat image yields zero ORB features; similarity is defined as 0,
    // so it can never be declared redundant — no information, no dedup.
    let cfg = config();
    let flat = RgbImage::new(128, 96).unwrap();
    let batch = vec![flat.clone(), flat.clone()];
    let scheme = Bees::adaptive(&cfg);
    let mut server = Server::try_new(&cfg).unwrap();
    let mut client = Client::try_new(0, &cfg).unwrap();
    // Even preloading an identical flat image doesn't create similarity.
    scheme.preload_server(&mut server, &[flat]);
    let r = scheme
        .upload(&mut BatchCtx::new(&mut client, &mut server, &batch))
        .unwrap();
    assert_eq!(r.skipped_cross_batch, 0);
    assert_eq!(r.uploaded_images + r.skipped_in_batch, 2);
}

#[test]
fn batch_of_identical_images_collapses_to_one_for_bees() {
    let cfg = config();
    let img = Scene::new(
        9,
        SceneConfig {
            width: 128,
            height: 96,
            n_shapes: 12,
            texture_amp: 8.0,
        },
    )
    .render(&ViewJitter::identity());
    let batch = vec![img.clone(), img.clone(), img.clone(), img];
    let scheme = Bees::adaptive(&cfg);
    let mut server = Server::try_new(&cfg).unwrap();
    let mut client = Client::try_new(0, &cfg).unwrap();
    let r = scheme
        .upload(&mut BatchCtx::new(&mut client, &mut server, &batch))
        .unwrap();
    assert_eq!(r.uploaded_images, 1, "identical images must collapse");
    assert_eq!(r.skipped_in_batch, 3);
}
