use std::error::Error;
use std::fmt;

/// Errors surfaced by the system layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An image operation (resize, codec) failed.
    Image(bees_image::ImageError),
    /// A network transfer failed (stalled trace, invalid parameters).
    Net(bees_net::NetError),
    /// The client battery drained mid-operation.
    BatteryExhausted {
        /// What the client was doing when the battery died.
        during: &'static str,
    },
    /// A configuration value is unusable.
    InvalidConfig {
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A geotag slice does not line up with its batch (caught by
    /// [`crate::schemes::BatchCtx::with_geotags`] before any scheme runs).
    GeotagMismatch {
        /// Images in the batch.
        images: usize,
        /// Geotags supplied.
        geotags: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Image(e) => write!(f, "image operation failed: {e}"),
            CoreError::Net(e) => write!(f, "network operation failed: {e}"),
            CoreError::BatteryExhausted { during } => {
                write!(f, "battery exhausted during {during}")
            }
            CoreError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            CoreError::GeotagMismatch { images, geotags } => write!(
                f,
                "geotag count {geotags} does not match batch size {images}"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Image(e) => Some(e),
            CoreError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bees_image::ImageError> for CoreError {
    fn from(e: bees_image::ImageError) -> Self {
        CoreError::Image(e)
    }
}

impl From<bees_net::NetError> for CoreError {
    fn from(e: bees_net::NetError) -> Self {
        CoreError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = CoreError::from(bees_net::NetError::Stalled {
            bytes: 1,
            waited_seconds: 2.0,
        });
        assert!(e.to_string().contains("network"));
        assert!(e.source().is_some());
        let b = CoreError::BatteryExhausted {
            during: "image upload",
        };
        assert!(b.to_string().contains("image upload"));
        assert!(b.source().is_none());
    }

    #[test]
    fn geotag_mismatch_names_both_counts() {
        let e = CoreError::GeotagMismatch {
            images: 4,
            geotags: 3,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('3'));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
