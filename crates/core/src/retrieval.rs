//! Responder-side retrieval: the unified read path over the fleet index.
//!
//! BEES' server only *ingests*; situation awareness also needs the read
//! half — a responder asking "show me images near (lat,lon) in the last
//! ten minutes" or "more views of this collapsed building". This module
//! provides the single query surface for that: a composable
//! [`RetrievalQuery`] builder (geo radius, virtual-time window,
//! query-by-descriptor, query-by-histogram, result budgets) executed by
//! [`Server::retrieve`], returning relevance-ranked [`RetrievalHit`]s with
//! per-hit [`Provenance`].
//!
//! Geo and time predicates are *pushed below the shard merge*: the server
//! resolves them against its side tables into a sorted id allow-list
//! attached to the index [`Query`](bees_index::Query), so every shard
//! drops disallowed images before ranking and the merged result equals
//! filtering an unsharded scan.
//!
//! The `OnDevice` provenance tier is the headline mechanic: images the
//! fleet deferred (or degraded) under contention never reached the server,
//! but their *features did* (uploaded for Cross-Batch Redundancy
//! Detection), so the server can still match them and report where the
//! full payload lives. The fleet session's pull-down path
//! (`sessions::run_fleet` with [`PulldownConfig`]) then fetches matches on
//! demand, charging the owning device's energy ledger and the shared
//! cell's airtime.
//!
//! [`Server::retrieve`]: crate::Server::retrieve
//! [`PulldownConfig`]: crate::sessions::PulldownConfig

use bees_features::global::ColorHistogram;
use bees_features::ImageFeatures;
use bees_index::ImageId;

/// Mean Earth radius in kilometres (IUGG R1).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Great-circle distance in kilometres between two `(lon, lat)` points in
/// degrees — the same coordinate order [`Server::geotags`] stores.
///
/// Uses the haversine formula, which is symmetric, zero iff the points
/// coincide (up to antipodal aliasing), and wraps the antimeridian
/// naturally: `sin²(Δλ/2)` is periodic, so longitudes −179.9° and +179.9°
/// are ~22 km apart at the equator, not ~39,969 km.
///
/// [`Server::geotags`]: crate::Server::geotags
///
/// # Examples
///
/// ```
/// use bees_core::retrieval::haversine_km;
///
/// let paris = (2.3522, 48.8566);
/// let london = (-0.1276, 51.5072);
/// let d = haversine_km(paris, london);
/// assert!((d - 343.5).abs() < 2.0, "got {d}");
/// assert_eq!(haversine_km(paris, paris), 0.0);
/// ```
pub fn haversine_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    let (lon1, lat1) = (a.0.to_radians(), a.1.to_radians());
    let (lon2, lat2) = (b.0.to_radians(), b.1.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let s = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    // Clamp against float drift pushing sqrt's argument past 1.
    2.0 * EARTH_RADIUS_KM * s.sqrt().min(1.0).asin()
}

/// Where a retrieval hit's pixels actually live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// The server holds the full-fidelity payload.
    Full,
    /// The server holds a decodable scan prefix of a cut progressive
    /// upload (queryable, reduced fidelity).
    SalvagedPartial {
        /// Progressive scans fully received.
        scans_complete: usize,
        /// Scans a complete stream carries.
        scans_total: usize,
    },
    /// The server holds only the degraded thumbnail rung.
    ThumbnailOnly,
    /// The server holds the *features* only; the payload is still on the
    /// capturing device and must be pulled down to view.
    OnDevice {
        /// The device the payload lives on.
        device_id: u64,
    },
}

impl Provenance {
    /// Canonical compact string used by [`RetrievalResult::to_json`]:
    /// `full`, `partial:<done>/<total>`, `thumbnail`, `on-device:<id>`.
    pub fn as_canonical_string(&self) -> String {
        match self {
            Provenance::Full => "full".to_string(),
            Provenance::SalvagedPartial {
                scans_complete,
                scans_total,
            } => format!("partial:{scans_complete}/{scans_total}"),
            Provenance::ThumbnailOnly => "thumbnail".to_string(),
            Provenance::OnDevice { device_id } => format!("on-device:{device_id}"),
        }
    }
}

/// One relevance-ranked retrieval result.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalHit {
    /// Identifier of the matching image (server-side or on-device).
    pub id: ImageId,
    /// Relevance: descriptor or histogram similarity when the query
    /// carries a probe, otherwise geographic proximity (`1/(1+km)`), or
    /// `1.0` for pure time-window matches.
    pub score: f64,
    /// Where the pixels live.
    pub provenance: Provenance,
    /// The image's geotag, when one was attached at ingest.
    pub geotag: Option<(f64, f64)>,
    /// Virtual ingest/capture time, when known (received images only).
    pub time_s: Option<f64>,
}

/// The outcome of one [`Server::retrieve`] execution.
///
/// [`Server::retrieve`]: crate::Server::retrieve
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RetrievalResult {
    /// Relevance-ranked hits: descending score, ascending id tie-break —
    /// the same total order the feature index guarantees, so the list is
    /// unique and byte-stable across thread and shard counts.
    pub hits: Vec<RetrievalHit>,
    /// Images the query examined (allow-list size or full index, plus the
    /// on-device catalog when included).
    pub candidates_considered: usize,
    /// Hits whose payload still lives on a device (`OnDevice` provenance).
    pub on_device_matches: usize,
}

impl RetrievalResult {
    /// Serializes to a canonical single-line JSON string.
    ///
    /// Hand-rolled like [`FleetReport::to_json`] (fixed key order,
    /// shortest-roundtrip float formatting) so identical queries produce
    /// byte-identical output across `BEES_THREADS` and shard counts — this
    /// is what the retrieval determinism tests compare.
    ///
    /// [`FleetReport::to_json`]: crate::sessions::FleetReport::to_json
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 96 * self.hits.len());
        out.push_str("{\"hits\":[");
        for (i, h) in self.hits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"score\":{},\"provenance\":\"{}\"",
                h.id.0,
                h.score,
                h.provenance.as_canonical_string()
            ));
            match h.geotag {
                Some((lon, lat)) => out.push_str(&format!(",\"geotag\":[{lon},{lat}]")),
                None => out.push_str(",\"geotag\":null"),
            }
            match h.time_s {
                Some(t) => out.push_str(&format!(",\"time_s\":{t}}}")),
                None => out.push_str(",\"time_s\":null}"),
            }
        }
        out.push_str(&format!(
            "],\"candidates_considered\":{},\"on_device_matches\":{}}}",
            self.candidates_considered, self.on_device_matches
        ));
        out
    }
}

/// A composable responder query: predicates plus ranking budgets.
///
/// Predicates compose conjunctively — a hit must satisfy *all* of them.
/// At most one similarity probe ranks the results; geo/time predicates
/// filter. Built fluently:
///
/// ```
/// use bees_core::retrieval::RetrievalQuery;
/// use bees_features::ImageFeatures;
///
/// let probe = ImageFeatures::empty_binary();
/// let q = RetrievalQuery::new()
///     .near(2.35, 48.85, 5.0)
///     .within_time(0.0, 600.0)
///     .similar_to(&probe)
///     .top_k(10);
/// assert_eq!(q.k(), 10);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RetrievalQuery<'a> {
    pub(crate) geo: Option<((f64, f64), f64)>,
    pub(crate) time: Option<(f64, f64)>,
    pub(crate) features: Option<&'a ImageFeatures>,
    pub(crate) histogram: Option<&'a ColorHistogram>,
    pub(crate) top_k: usize,
    pub(crate) max_candidates: usize,
    pub(crate) on_device: bool,
}

impl<'a> RetrievalQuery<'a> {
    /// An unconstrained query: every received image matches, unlimited
    /// results, on-device catalog excluded.
    pub fn new() -> Self {
        RetrievalQuery::default()
    }

    /// Keep only images geotagged within `radius_km` of `(lon, lat)`
    /// (haversine). `radius_km == 0.0` means exact-coordinate match.
    /// Images without a geotag never satisfy a geo predicate.
    #[must_use]
    pub fn near(mut self, lon: f64, lat: f64, radius_km: f64) -> Self {
        self.geo = Some(((lon, lat), radius_km));
        self
    }

    /// Keep only images whose virtual ingest time lies in
    /// `[start_s, end_s]` (inclusive). Images without a recorded time
    /// (preloads) never satisfy a time predicate.
    #[must_use]
    pub fn within_time(mut self, start_s: f64, end_s: f64) -> Self {
        self.time = Some((start_s, end_s));
        self
    }

    /// Rank by descriptor similarity against `features` ("more views of
    /// this building"). Mutually exclusive with
    /// [`similar_to_histogram`](Self::similar_to_histogram) — the last
    /// probe set wins.
    #[must_use]
    pub fn similar_to(mut self, features: &'a ImageFeatures) -> Self {
        self.features = Some(features);
        self.histogram = None;
        self
    }

    /// Rank by histogram-intersection similarity against `histogram`
    /// (global-feature schemes). Mutually exclusive with
    /// [`similar_to`](Self::similar_to) — the last probe set wins.
    #[must_use]
    pub fn similar_to_histogram(mut self, histogram: &'a ColorHistogram) -> Self {
        self.histogram = Some(histogram);
        self.features = None;
        self
    }

    /// Caps the number of hits returned (`0` = unlimited, the default).
    #[must_use]
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Caps the candidate stage of accelerated index backends (`0` =
    /// unlimited, the default; see [`Query::with_max_candidates`]).
    ///
    /// [`Query::with_max_candidates`]: bees_index::Query::with_max_candidates
    #[must_use]
    pub fn max_candidates(mut self, budget: usize) -> Self {
        self.max_candidates = budget;
        self
    }

    /// Also match the on-device catalog: images whose features the server
    /// holds but whose payload was deferred and still lives on a device.
    /// Off by default — legacy query paths never see on-device entries.
    #[must_use]
    pub fn include_on_device(mut self, yes: bool) -> Self {
        self.on_device = yes;
        self
    }

    /// The result budget (`0` = unlimited).
    pub fn k(&self) -> usize {
        self.top_k
    }

    /// Whether any filtering predicate (geo or time) is present.
    pub fn has_filter(&self) -> bool {
        self.geo.is_some() || self.time.is_some()
    }

    /// Whether a similarity probe (descriptor or histogram) is present.
    pub fn has_probe(&self) -> bool {
        self.features.is_some() || self.histogram.is_some()
    }

    /// Evaluates the geo+time predicates against one image's side-table
    /// data. The similarity probe is *not* consulted here.
    pub fn passes_filters(&self, geotag: Option<(f64, f64)>, time_s: Option<f64>) -> bool {
        if let Some((center, radius_km)) = self.geo {
            match geotag {
                Some(g) => {
                    if haversine_km(center, g) > radius_km {
                        return false;
                    }
                }
                None => return false,
            }
        }
        if let Some((start, end)) = self.time {
            match time_s {
                Some(t) => {
                    if t < start || t > end {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }

    /// Relevance of a *predicate-only* match (no similarity probe):
    /// geographic proximity `1/(1+km)` when a geo predicate is present,
    /// otherwise `1.0` (chronological queries rank by ascending id).
    pub(crate) fn filter_score(&self, geotag: Option<(f64, f64)>) -> f64 {
        match (self.geo, geotag) {
            (Some((center, _)), Some(g)) => 1.0 / (1.0 + haversine_km(center, g)),
            _ => 1.0,
        }
    }
}

/// Sorts hits into the canonical total order (descending score, ascending
/// id) and truncates to the query's `top_k` budget (`0` = unlimited).
pub(crate) fn rank_retrieval_hits(hits: &mut Vec<RetrievalHit>, top_k: usize) {
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then(a.id.0.cmp(&b.id.0))
    });
    if top_k > 0 {
        hits.truncate(top_k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_is_symmetric_and_zero_on_identity() {
        let a = (2.3522, 48.8566);
        let b = (-0.1276, 51.5072);
        assert_eq!(haversine_km(a, b), haversine_km(b, a));
        assert_eq!(haversine_km(a, a), 0.0);
        assert_eq!(haversine_km(b, b), 0.0);
    }

    #[test]
    fn haversine_wraps_the_antimeridian() {
        // 0.2 degrees of longitude apart across the date line ~ 22 km at
        // the equator, nowhere near the 39,969 km a naive |Δλ| yields.
        let west = (179.9, 0.0);
        let east = (-179.9, 0.0);
        let d = haversine_km(west, east);
        assert!((d - 22.24).abs() < 0.1, "got {d}");
    }

    #[test]
    fn haversine_pole_distances_are_meridian_arcs() {
        // Any two longitudes coincide at the pole...
        let d = haversine_km((0.0, 90.0), (135.0, 90.0));
        assert!(d < 1e-6, "got {d}");
        // ...and pole-to-pole is half the great circle.
        let antipodal = haversine_km((0.0, 90.0), (0.0, -90.0));
        assert!(
            (antipodal - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1e-6,
            "got {antipodal}"
        );
    }

    #[test]
    fn radius_zero_is_exact_match() {
        let q = RetrievalQuery::new().near(0.01, 0.0, 0.0);
        assert!(q.passes_filters(Some((0.01, 0.0)), None));
        assert!(!q.passes_filters(Some((0.010001, 0.0)), None));
        assert!(!q.passes_filters(None, None));
    }

    #[test]
    fn filters_compose_conjunctively() {
        let q = RetrievalQuery::new()
            .near(0.0, 0.0, 10.0)
            .within_time(5.0, 15.0);
        assert!(q.passes_filters(Some((0.01, 0.0)), Some(10.0)));
        assert!(!q.passes_filters(Some((0.01, 0.0)), Some(20.0)));
        assert!(!q.passes_filters(Some((5.0, 5.0)), Some(10.0)));
        assert!(!q.passes_filters(None, Some(10.0)));
        assert!(!q.passes_filters(Some((0.01, 0.0)), None));
        // Inclusive window boundaries.
        assert!(q.passes_filters(Some((0.0, 0.0)), Some(5.0)));
        assert!(q.passes_filters(Some((0.0, 0.0)), Some(15.0)));
    }

    #[test]
    fn probes_are_mutually_exclusive_last_wins() {
        let f = ImageFeatures::empty_binary();
        let h = ColorHistogram::from_image(&bees_image::RgbImage::from_fn(4, 4, |_, _| {
            bees_image::Rgb::new(10, 20, 30)
        }));
        let q = RetrievalQuery::new()
            .similar_to(&f)
            .similar_to_histogram(&h);
        assert!(q.features.is_none() && q.histogram.is_some());
        let q = RetrievalQuery::new()
            .similar_to_histogram(&h)
            .similar_to(&f);
        assert!(q.features.is_some() && q.histogram.is_none());
        assert!(q.has_probe());
        assert!(!q.has_filter());
    }

    #[test]
    fn ranking_is_total_and_budgeted() {
        let hit = |id: u64, score: f64| RetrievalHit {
            id: ImageId(id),
            score,
            provenance: Provenance::Full,
            geotag: None,
            time_s: None,
        };
        let mut hits = vec![hit(3, 0.5), hit(1, 0.9), hit(2, 0.5)];
        rank_retrieval_hits(&mut hits, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, ImageId(1));
        assert_eq!(hits[1].id, ImageId(2), "tie breaks toward the lower id");
        let mut all = vec![hit(3, 0.5), hit(1, 0.9)];
        rank_retrieval_hits(&mut all, 0);
        assert_eq!(all.len(), 2, "0 means unlimited");
    }

    #[test]
    fn result_json_shape_is_stable() {
        let result = RetrievalResult {
            hits: vec![
                RetrievalHit {
                    id: ImageId(4),
                    score: 0.75,
                    provenance: Provenance::SalvagedPartial {
                        scans_complete: 2,
                        scans_total: 5,
                    },
                    geotag: Some((0.01, 0.0)),
                    time_s: Some(30.0),
                },
                RetrievalHit {
                    id: ImageId(9),
                    score: 0.5,
                    provenance: Provenance::OnDevice { device_id: 3 },
                    geotag: None,
                    time_s: None,
                },
            ],
            candidates_considered: 12,
            on_device_matches: 1,
        };
        assert_eq!(
            result.to_json(),
            "{\"hits\":[{\"id\":4,\"score\":0.75,\"provenance\":\"partial:2/5\",\
             \"geotag\":[0.01,0],\"time_s\":30},\
             {\"id\":9,\"score\":0.5,\"provenance\":\"on-device:3\",\
             \"geotag\":null,\"time_s\":null}],\
             \"candidates_considered\":12,\"on_device_matches\":1}"
        );
        assert_eq!(Provenance::Full.as_canonical_string(), "full");
        assert_eq!(Provenance::ThumbnailOnly.as_canonical_string(), "thumbnail");
    }
}
