//! Per-batch experiment metrics.

use bees_energy::EnergyLedger;
use serde::{Deserialize, Serialize};

/// Everything the experiments measure about one batch upload.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BatchReport {
    /// Human-readable name of the scheme that produced this report.
    pub scheme: String,
    /// Number of images in the input batch.
    pub batch_size: usize,
    /// Images actually transmitted.
    pub uploaded_images: usize,
    /// Images eliminated by cross-batch redundancy detection.
    pub skipped_cross_batch: usize,
    /// Images eliminated by in-batch redundancy detection (SSMM).
    pub skipped_in_batch: usize,
    /// Total bytes sent client → server (features + images + headers).
    pub uplink_bytes: usize,
    /// Total bytes received server → client (verdicts, thumbnails).
    pub downlink_bytes: usize,
    /// Uplink bytes spent on image payloads.
    pub image_bytes: usize,
    /// Uplink bytes spent on feature payloads.
    pub feature_bytes: usize,
    /// Wall-clock seconds spent on the batch (CPU + transfers), the paper's
    /// "delay".
    pub total_delay_s: f64,
    /// Energy consumed, by category.
    pub energy: EnergyLedger,
    /// Whether the battery died before the batch finished (the report then
    /// covers only the completed prefix).
    pub exhausted: bool,
    /// Images uploaded in degraded (thumbnail-quality) form after the
    /// full-quality upload exhausted its retries — BEES' graceful
    /// degradation ladder.
    #[serde(default)]
    pub degraded_images: usize,
    /// Images given up on entirely after retries (deferred to a later
    /// batch; no payload reached the server).
    #[serde(default)]
    pub deferred_images: usize,
    /// Transfer attempts made across the batch (1 per payload when the
    /// channel is fault-free; retries raise it).
    #[serde(default)]
    pub transfer_attempts: u64,
    /// Whether the cross-batch feature query itself exhausted its retries,
    /// forcing the scheme to treat every image as non-redundant.
    #[serde(default)]
    pub feature_query_deferred: bool,
    /// Images whose transfer was cut but whose banked scan prefix decoded
    /// into a usable partial image on the server (BEES' salvage rung).
    #[serde(default)]
    pub salvaged_images: usize,
    /// Sum of salvaged partials' SSIM estimates against the full-quality
    /// encode; divide by [`salvaged_images`](Self::salvaged_images) for the
    /// mean.
    #[serde(default)]
    pub salvage_ssim_sum: f64,
    /// Corrupted transport chunks caught by CRC verification across the
    /// batch's transfers (every one was re-requested, none decoded).
    #[serde(default)]
    pub corrupt_chunks_detected: u64,
}

impl BatchReport {
    /// Creates an empty report for a scheme/batch.
    pub fn new(scheme: impl Into<String>, batch_size: usize) -> Self {
        BatchReport {
            scheme: scheme.into(),
            batch_size,
            ..BatchReport::default()
        }
    }

    /// Total bandwidth overhead (uplink + downlink), the Fig. 10 metric.
    pub fn bandwidth_bytes(&self) -> usize {
        self.uplink_bytes + self.downlink_bytes
    }

    /// Average upload delay per *batch image* (Fig. 11 normalizes by the
    /// batch size, not the uploaded count).
    pub fn avg_delay_per_image(&self) -> f64 {
        if self.batch_size == 0 {
            return 0.0;
        }
        self.total_delay_s / self.batch_size as f64
    }

    /// Active energy (everything but idle), the Fig. 7 metric.
    pub fn active_energy(&self) -> f64 {
        self.energy.total_active()
    }

    /// Radio energy burnt on transfer attempts whose bytes were never
    /// confirmed — the robustness experiment's cost-of-faults metric.
    pub fn wasted_energy(&self) -> f64 {
        self.energy.get(bees_energy::EnergyCategory::Wasted)
    }

    /// Radio energy redeemed by salvaging cut transfers into partial
    /// images — joules that the pre-salvage ladder would have wasted.
    pub fn salvaged_energy(&self) -> f64 {
        self.energy.get(bees_energy::EnergyCategory::Salvaged)
    }

    /// Mean SSIM of the salvaged partials against their full-quality
    /// encodes (0.0 when nothing was salvaged).
    pub fn mean_salvage_ssim(&self) -> f64 {
        if self.salvaged_images == 0 {
            return 0.0;
        }
        self.salvage_ssim_sum / self.salvaged_images as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bees_energy::EnergyCategory;

    #[test]
    fn derived_metrics() {
        let mut r = BatchReport::new("BEES", 10);
        r.uplink_bytes = 1000;
        r.downlink_bytes = 200;
        r.total_delay_s = 5.0;
        r.energy.record(EnergyCategory::ImageUpload, 3.0);
        r.energy.record(EnergyCategory::Idle, 1.0);
        assert_eq!(r.bandwidth_bytes(), 1200);
        assert!((r.avg_delay_per_image() - 0.5).abs() < 1e-12);
        assert!((r.active_energy() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_has_zero_average_delay() {
        let r = BatchReport::new("Direct Upload", 0);
        assert_eq!(r.avg_delay_per_image(), 0.0);
    }

    #[test]
    fn wasted_energy_reads_the_wasted_bucket() {
        let mut r = BatchReport::new("BEES", 4);
        assert_eq!(r.wasted_energy(), 0.0);
        r.energy.record(EnergyCategory::Wasted, 2.5);
        r.energy.record(EnergyCategory::ImageUpload, 1.0);
        assert!((r.wasted_energy() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn robustness_fields_default_when_absent() {
        // The robustness counters are additive: a report JSON without them
        // still deserializes, with all of them zeroed.
        let legacy = r#"{"scheme":"BEES","batch_size":1,"uploaded_images":1,
            "skipped_cross_batch":0,"skipped_in_batch":0,"uplink_bytes":10,
            "downlink_bytes":0,"image_bytes":10,"feature_bytes":0,
            "total_delay_s":1.0,"energy":{"entries":[[0.0,0],[0.0,0],[0.0,0],
            [0.0,0],[0.0,0],[0.0,0],[0.0,0]]},"exhausted":false}"#;
        let r: BatchReport = serde_json::from_str(legacy).expect("legacy report deserializes");
        assert_eq!(r.degraded_images, 0);
        assert_eq!(r.deferred_images, 0);
        assert_eq!(r.transfer_attempts, 0);
        assert!(!r.feature_query_deferred);
        // Salvage fields are additive too — and the legacy 7-bucket energy
        // ledger (pre-Salvaged) deserializes with an empty salvage bucket.
        assert_eq!(r.salvaged_images, 0);
        assert_eq!(r.salvage_ssim_sum, 0.0);
        assert_eq!(r.corrupt_chunks_detected, 0);
        assert_eq!(r.salvaged_energy(), 0.0);
        assert_eq!(r.mean_salvage_ssim(), 0.0);
    }

    #[test]
    fn mean_salvage_ssim_averages_over_salvaged_images() {
        let mut r = BatchReport::new("BEES", 4);
        r.salvaged_images = 2;
        r.salvage_ssim_sum = 1.5;
        assert!((r.mean_salvage_ssim() - 0.75).abs() < 1e-12);
        r.energy.record(EnergyCategory::Salvaged, 2.0);
        assert!((r.salvaged_energy() - 2.0).abs() < 1e-12);
    }
}
