//! The multi-phone coverage session (paper Fig. 12).
//!
//! A fleet of phones shares one server. Each phone holds a contiguous
//! slice of a geotagged Paris-like corpus and uploads one group per
//! interval until its battery dies. The coverage metric is the number of
//! *unique locations* among the images the server received: by not wasting
//! energy on redundant photos, BEES covers far more ground with the same
//! batteries.

use crate::schemes::{BatchCtx, UploadScheme};
use crate::{BeesConfig, Client, Result, Server};
use bees_datasets::{ParisConfig, ParisLike};
use bees_image::RgbImage;
use serde::{Deserialize, Serialize};

/// Parameters of a coverage run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageConfig {
    /// Number of phones (paper: 25).
    pub n_phones: usize,
    /// Images per uploaded group (paper: 40).
    pub group_size: usize,
    /// Interval between group uploads in seconds (paper: 20 minutes).
    pub interval_s: f64,
    /// The geotagged corpus.
    pub paris: ParisConfig,
    /// Corpus seed.
    pub seed: u64,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        CoverageConfig {
            n_phones: 25,
            group_size: 40,
            interval_s: 1200.0,
            paris: ParisConfig::default(),
            seed: 0xC05E,
        }
    }
}

/// Result of a coverage run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageResult {
    /// Scheme name.
    pub scheme: String,
    /// Total images in the corpus.
    pub corpus_images: usize,
    /// Unique locations present in the corpus slice the phones held.
    pub corpus_locations: usize,
    /// Images the server received before all batteries died.
    pub images_received: usize,
    /// Unique locations among the received images — the Fig. 12 metric.
    pub unique_locations: usize,
    /// Phones that exhausted their battery (vs ran out of images).
    pub phones_exhausted: usize,
}

/// Runs the coverage session: all phones share one server and upload in
/// lock-step intervals until every phone is dead or out of images.
///
/// # Errors
///
/// Returns a network error if a channel stalls beyond its limit.
pub fn run_coverage(
    scheme: &dyn UploadScheme,
    config: &BeesConfig,
    cov: &CoverageConfig,
) -> Result<CoverageResult> {
    let corpus = ParisLike::generate(cov.seed, cov.paris);
    let per_phone = corpus.len() / cov.n_phones;
    assert!(per_phone > 0, "corpus too small for the fleet");

    let mut server = Server::try_new(config)?;
    let mut clients: Vec<Client> = (0..cov.n_phones)
        .map(|i| Client::try_new(i as u64, config))
        .collect::<Result<_>>()?;
    // Next corpus index each phone will upload.
    let mut cursor: Vec<usize> = (0..cov.n_phones).map(|i| i * per_phone).collect();
    let limit: Vec<usize> = (0..cov.n_phones).map(|i| (i + 1) * per_phone).collect();
    let mut alive: Vec<bool> = vec![true; cov.n_phones];
    let mut phones_exhausted = 0usize;

    loop {
        let mut progressed = false;
        for p in 0..cov.n_phones {
            if !alive[p] || cursor[p] >= limit[p] {
                continue;
            }
            progressed = true;
            let interval_start = clients[p].now();
            let end = (cursor[p] + cov.group_size).min(limit[p]);
            let mut batch: Vec<RgbImage> = Vec::with_capacity(end - cursor[p]);
            let mut tags: Vec<(f64, f64)> = Vec::with_capacity(end - cursor[p]);
            for i in cursor[p]..end {
                let geo = corpus.image(i);
                tags.push((geo.lon, geo.lat));
                batch.push(geo.image);
            }
            cursor[p] = end;
            let mut ctx =
                BatchCtx::new(&mut clients[p], &mut server, &batch).with_geotags(&tags)?;
            let report = scheme.upload(&mut ctx)?;
            if report.exhausted {
                alive[p] = false;
                phones_exhausted += 1;
                continue;
            }
            let elapsed = clients[p].now() - interval_start;
            if elapsed < cov.interval_s && clients[p].idle(cov.interval_s - elapsed).is_err() {
                alive[p] = false;
                phones_exhausted += 1;
            }
        }
        if !progressed {
            break;
        }
    }

    // Count the corpus ground truth over the slices actually held by phones.
    let held: usize = limit.last().copied().unwrap_or(0);
    let mut locs: Vec<usize> = (0..held).map(|i| corpus.location_of(i)).collect();
    locs.sort_unstable();
    locs.dedup();

    Ok(CoverageResult {
        scheme: scheme.kind().to_string(),
        corpus_images: held,
        corpus_locations: locs.len(),
        images_received: server.received_images(),
        unique_locations: server.unique_locations(),
        phones_exhausted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{Bees, DirectUpload};
    use bees_datasets::SceneConfig;
    use bees_energy::Battery;
    use bees_net::BandwidthTrace;

    fn tiny_coverage() -> CoverageConfig {
        CoverageConfig {
            n_phones: 2,
            group_size: 3,
            interval_s: 120.0,
            paris: ParisConfig {
                n_locations: 8,
                n_images: 24,
                scene: SceneConfig {
                    width: 96,
                    height: 72,
                    n_shapes: 8,
                    texture_amp: 8.0,
                },
                ..ParisConfig::default()
            },
            seed: 3,
        }
    }

    fn config(battery_j: f64) -> BeesConfig {
        let mut c = BeesConfig::default();
        c.trace = BandwidthTrace::constant(256_000.0).unwrap();
        c.battery = Battery::from_joules(battery_j);
        c
    }

    #[test]
    fn unbounded_battery_covers_all_locations() {
        let cfg = config(1e9);
        let res = run_coverage(&DirectUpload::new(&cfg), &cfg, &tiny_coverage()).unwrap();
        assert_eq!(res.images_received, res.corpus_images);
        // Direct upload with infinite battery receives every photo, hence
        // every location its slice contains.
        assert_eq!(res.unique_locations, res.corpus_locations);
        assert_eq!(res.phones_exhausted, 0);
    }

    #[test]
    fn limited_battery_limits_direct_upload() {
        // ~130 J lasts about one 120 s screen-on interval: phones die with
        // most of their slice un-uploaded.
        let cfg = config(130.0);
        let res = run_coverage(&DirectUpload::new(&cfg), &cfg, &tiny_coverage()).unwrap();
        assert!(res.images_received < res.corpus_images);
        assert_eq!(res.phones_exhausted, 2);
    }

    #[test]
    fn bees_covers_at_least_as_much_as_direct_on_same_battery() {
        let cfg = config(500.0);
        let direct = run_coverage(&DirectUpload::new(&cfg), &cfg, &tiny_coverage()).unwrap();
        let bees = run_coverage(&Bees::adaptive(&cfg), &cfg, &tiny_coverage()).unwrap();
        assert!(
            bees.unique_locations >= direct.unique_locations,
            "BEES {} vs Direct {}",
            bees.unique_locations,
            direct.unique_locations
        );
    }
}
