//! Deterministic multi-device fleet simulation.
//!
//! `run_fleet` drives N devices against one shared (optionally sharded)
//! server on a single virtual clock. Devices are advanced by a
//! deterministic event queue ordered by upload time with device-id
//! tie-breaking, so the interleaving — and therefore every server verdict
//! and every byte of the report — is a pure function of the seeds. The
//! fleet determinism tests pin this down across `BEES_THREADS` 1/2/8 and
//! server shard counts 1/2/4.
//!
//! Each round shares a pool of scenes across the fleet: different devices
//! upload *different views of the same scenes*, so Cross-Batch Redundancy
//! Detection has real cross-device redundancy to eliminate. The rest of
//! each group is device-unique.

use crate::schemes::{BatchCtx, UploadScheme};
use crate::{BeesConfig, Client, CoreError, Result, Server};
use bees_datasets::{Scene, SceneConfig, ViewJitter};
use bees_energy::EnergyCategory;
use bees_image::RgbImage;
use bees_index::ImageId;
use bees_net::{wire, NetError};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Parameters of a fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of simulated devices.
    pub n_devices: usize,
    /// Upload rounds each device attempts.
    pub rounds: usize,
    /// Images per uploaded group.
    pub group_size: usize,
    /// How many of each group's images are views of the round's *shared*
    /// scene pool (cross-device redundancy); the rest are device-unique.
    pub shared_per_group: usize,
    /// Interval between a device's group uploads in seconds.
    pub interval_s: f64,
    /// Scene generator settings.
    pub scene: SceneConfig,
    /// Master seed; every device/round/image seed derives from it.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            n_devices: 4,
            rounds: 3,
            group_size: 6,
            shared_per_group: 3,
            interval_s: 60.0,
            scene: SceneConfig::default(),
            seed: 0xF1EE7,
        }
    }
}

/// Per-device outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSummary {
    /// Device id (also the client id the seeds derive from).
    pub device: u64,
    /// Rounds the device completed (or died during).
    pub rounds: usize,
    /// Images this device actually transmitted.
    pub uploaded_images: usize,
    /// Bytes this device sent.
    pub uplink_bytes: usize,
    /// Remaining battery fraction when the run ended.
    pub final_ebat: f64,
    /// Whether the battery died mid-run.
    pub exhausted: bool,
}

/// Aggregate outcome of a fleet run.
///
/// Deliberately excludes the server shard count and the thread count:
/// neither may influence any value here, and the determinism tests compare
/// [`to_json`](FleetReport::to_json) output byte for byte across both.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Scheme name.
    pub scheme: String,
    /// Number of devices simulated.
    pub n_devices: usize,
    /// Total upload rounds completed across the fleet.
    pub rounds_completed: usize,
    /// Images captured (batched for upload) across the fleet.
    pub images_captured: usize,
    /// Images the server actually received.
    pub images_uploaded: usize,
    /// Images eliminated by cross-batch redundancy detection.
    pub skipped_cross_batch: usize,
    /// Images eliminated by in-batch redundancy detection (SSMM).
    pub skipped_in_batch: usize,
    /// Total bytes sent devices → server.
    pub uplink_bytes: usize,
    /// Fraction of captured images the fleet did *not* have to upload.
    pub redundancy_elimination: f64,
    /// Index queries the server answered.
    pub server_queries: usize,
    /// Devices whose battery died mid-run.
    pub devices_exhausted: usize,
    /// Cut uploads salvaged into partial images across the fleet.
    pub salvaged_images: usize,
    /// Salvaged partials completed in place when their tail scans arrived
    /// in a later transfer of the same round.
    pub partials_upgraded: usize,
    /// Salvaged partials still awaiting their tail scans when the run
    /// ended (queryable, just not full quality).
    pub partials_pending: usize,
    /// Per-device outcomes, in device-id order.
    pub devices: Vec<DeviceSummary>,
}

impl FleetReport {
    /// Serializes the report to a canonical single-line JSON string.
    ///
    /// Hand-rolled (fixed key order, shortest-roundtrip float formatting)
    /// so two identical runs produce byte-identical output — this is what
    /// the determinism tests compare.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 128 * self.devices.len());
        out.push_str("{\"scheme\":\"");
        for c in self.scheme.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                _ => out.push(c),
            }
        }
        out.push('"');
        push_field(&mut out, "n_devices", self.n_devices);
        push_field(&mut out, "rounds_completed", self.rounds_completed);
        push_field(&mut out, "images_captured", self.images_captured);
        push_field(&mut out, "images_uploaded", self.images_uploaded);
        push_field(&mut out, "skipped_cross_batch", self.skipped_cross_batch);
        push_field(&mut out, "skipped_in_batch", self.skipped_in_batch);
        push_field(&mut out, "uplink_bytes", self.uplink_bytes);
        out.push_str(&format!(
            ",\"redundancy_elimination\":{}",
            self.redundancy_elimination
        ));
        push_field(&mut out, "server_queries", self.server_queries);
        push_field(&mut out, "devices_exhausted", self.devices_exhausted);
        push_field(&mut out, "salvaged_images", self.salvaged_images);
        push_field(&mut out, "partials_upgraded", self.partials_upgraded);
        push_field(&mut out, "partials_pending", self.partials_pending);
        out.push_str(",\"devices\":[");
        for (i, d) in self.devices.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"device\":{},\"rounds\":{},\"uploaded_images\":{},\
                 \"uplink_bytes\":{},\"final_ebat\":{},\"exhausted\":{}}}",
                d.device, d.rounds, d.uploaded_images, d.uplink_bytes, d.final_ebat, d.exhausted
            ));
        }
        out.push_str("]}");
        out
    }
}

fn push_field(out: &mut String, key: &str, value: usize) {
    out.push_str(&format!(",\"{key}\":{value}"));
}

/// One pending upload: device `device` starts its `round`-th group at
/// virtual time `time`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    device: usize,
    round: usize,
}

impl Eq for Event {}

impl Ord for Event {
    /// Ascending virtual time, ties broken by device id — the total order
    /// that makes the fleet interleaving deterministic.
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.device.cmp(&other.device))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// SplitMix64 — derives per-device/round/image seeds from the master seed.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A small deterministic camera jitter derived from `seed`, so each device
/// sees its own view of a shared scene.
fn jitter_for(seed: u64) -> ViewJitter {
    let a = mix(seed);
    ViewJitter {
        dx: ((a & 0xFF) as f32 / 255.0 - 0.5) * 6.0,
        dy: (((a >> 8) & 0xFF) as f32 / 255.0 - 0.5) * 6.0,
        brightness: (((a >> 16) & 0x1F) as i32) - 16,
        noise_seed: mix(a),
        ..ViewJitter::identity()
    }
}

/// The group device `device` uploads in round `round`: views of the
/// round-shared scenes first, then device-unique scenes.
fn make_batch(fleet: &FleetConfig, device: usize, round: usize) -> Vec<RgbImage> {
    let shared = fleet.shared_per_group.min(fleet.group_size);
    let mut batch = Vec::with_capacity(fleet.group_size);
    for j in 0..shared {
        // Scene seed depends on (fleet, round, j) only — every device
        // renders the *same* scene through its own jitter.
        let scene_seed = mix(fleet.seed ^ mix((round as u64) << 16 | j as u64));
        let scene = Scene::new(scene_seed, fleet.scene);
        let view_seed = mix(scene_seed ^ mix(device as u64 + 1));
        batch.push(scene.render(&jitter_for(view_seed)));
    }
    for j in shared..fleet.group_size {
        let scene_seed =
            mix(fleet.seed ^ mix((device as u64) << 32 | (round as u64) << 16 | j as u64) ^ 0xD1CE);
        let scene = Scene::new(scene_seed, fleet.scene);
        batch.push(scene.render(&ViewJitter::identity()));
    }
    batch
}

/// Runs the fleet session: N devices share one server and upload groups in
/// event-queue order (time, then device id) until every device has done
/// its rounds or died.
///
/// # Errors
///
/// Returns a network error if a channel stalls beyond its limit, or an
/// invalid-config error from server/client construction.
///
/// # Panics
///
/// Panics if `n_devices`, `rounds`, or `group_size` is zero.
pub fn run_fleet(
    scheme: &dyn UploadScheme,
    config: &BeesConfig,
    fleet: &FleetConfig,
) -> Result<FleetReport> {
    assert!(fleet.n_devices > 0, "fleet needs at least one device");
    assert!(fleet.rounds > 0, "fleet needs at least one round");
    assert!(fleet.group_size > 0, "fleet groups must be non-empty");

    let mut server = Server::try_new(config)?;
    let mut clients: Vec<Client> = (0..fleet.n_devices)
        .map(|d| Client::try_new(d as u64, config))
        .collect::<Result<_>>()?;

    let mut devices: Vec<DeviceSummary> = (0..fleet.n_devices)
        .map(|d| DeviceSummary {
            device: d as u64,
            rounds: 0,
            uploaded_images: 0,
            uplink_bytes: 0,
            final_ebat: 1.0,
            exhausted: false,
        })
        .collect();

    let mut queue: BinaryHeap<Reverse<Event>> = (0..fleet.n_devices)
        .map(|device| {
            Reverse(Event {
                time: 0.0,
                device,
                round: 0,
            })
        })
        .collect();

    let mut images_captured = 0usize;
    let mut skipped_cross_batch = 0usize;
    let mut skipped_in_batch = 0usize;
    let mut rounds_completed = 0usize;
    let mut salvaged_images = 0usize;
    let mut partials_upgraded = 0usize;
    let chunk = config.retry.chunk_bytes.max(1);

    while let Some(Reverse(ev)) = queue.pop() {
        let d = ev.device;
        let batch = make_batch(fleet, d, ev.round);
        images_captured += batch.len();
        let start = clients[d].now();
        // Snapshot the server's partial set so this round's salvaged
        // uploads can be attributed to this device afterwards.
        let before: Vec<ImageId> = server.partial_images().keys().copied().collect();
        let report = scheme.upload(&mut BatchCtx::new(&mut clients[d], &mut server, &batch))?;
        rounds_completed += 1;
        devices[d].rounds += 1;
        devices[d].uploaded_images += report.uploaded_images;
        devices[d].uplink_bytes += report.uplink_bytes;
        skipped_cross_batch += report.skipped_cross_batch;
        skipped_in_batch += report.skipped_in_batch;
        salvaged_images += report.salvaged_images;
        if report.exhausted {
            devices[d].exhausted = true;
            continue;
        }
        // Tail completion: before sleeping, the device retries the missing
        // scan tails of the partials it just salvaged. Each success
        // upgrades the server's copy in place; a cut tail stays pending.
        let fresh: Vec<(ImageId, usize)> = server
            .partial_images()
            .iter()
            .filter(|(id, _)| before.binary_search(id).is_err())
            .map(|(id, p)| (*id, p.total_bytes - p.payload_bytes))
            .collect();
        for (id, tail) in fresh {
            let bytes = wire::framed_upload_bytes(tail, chunk);
            match clients[d].transmit_resumable(EnergyCategory::ImageUpload, bytes) {
                Ok(_) => {
                    server.upgrade_partial_image(id);
                    devices[d].uplink_bytes += bytes;
                    partials_upgraded += 1;
                }
                Err(CoreError::Net(NetError::RetriesExhausted { .. })) => {}
                Err(CoreError::BatteryExhausted { .. }) => {
                    devices[d].exhausted = true;
                    break;
                }
                Err(other) => return Err(other),
            }
        }
        if devices[d].exhausted {
            continue;
        }
        if ev.round + 1 < fleet.rounds {
            let elapsed = clients[d].now() - start;
            if elapsed < fleet.interval_s && clients[d].idle(fleet.interval_s - elapsed).is_err() {
                devices[d].exhausted = true;
                continue;
            }
            queue.push(Reverse(Event {
                time: clients[d].now(),
                device: d,
                round: ev.round + 1,
            }));
        }
    }

    for (d, client) in clients.iter().enumerate() {
        devices[d].final_ebat = client.ebat();
    }

    let images_uploaded = server.received_images();
    let redundancy_elimination = if images_captured > 0 {
        (images_captured - images_uploaded) as f64 / images_captured as f64
    } else {
        0.0
    };
    Ok(FleetReport {
        scheme: scheme.kind().to_string(),
        n_devices: fleet.n_devices,
        rounds_completed,
        images_captured,
        images_uploaded,
        skipped_cross_batch,
        skipped_in_batch,
        uplink_bytes: devices.iter().map(|d| d.uplink_bytes).sum(),
        redundancy_elimination,
        server_queries: server.queries_served(),
        devices_exhausted: devices.iter().filter(|d| d.exhausted).count(),
        salvaged_images,
        partials_upgraded,
        partials_pending: server.partial_images().len(),
        devices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::Bees;
    use crate::IndexBackend;
    use bees_energy::Battery;
    use bees_net::BandwidthTrace;

    fn tiny_fleet() -> FleetConfig {
        FleetConfig {
            n_devices: 3,
            rounds: 2,
            group_size: 4,
            shared_per_group: 2,
            interval_s: 30.0,
            scene: SceneConfig {
                width: 96,
                height: 72,
                n_shapes: 8,
                texture_amp: 8.0,
            },
            seed: 11,
        }
    }

    fn config() -> BeesConfig {
        let mut c = BeesConfig::default();
        c.trace = BandwidthTrace::constant(256_000.0).unwrap();
        c
    }

    #[test]
    fn events_pop_by_time_then_device() {
        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        for (time, device) in [(5.0, 0), (0.0, 2), (0.0, 1), (3.0, 0)] {
            heap.push(Reverse(Event {
                time,
                device,
                round: 0,
            }));
        }
        let order: Vec<(f64, usize)> = std::iter::from_fn(|| heap.pop())
            .map(|Reverse(e)| (e.time, e.device))
            .collect();
        assert_eq!(order, vec![(0.0, 1), (0.0, 2), (3.0, 0), (5.0, 0)]);
    }

    #[test]
    fn fleet_report_is_reproducible() {
        let cfg = config();
        let a = run_fleet(&Bees::adaptive(&cfg), &cfg, &tiny_fleet()).unwrap();
        let b = run_fleet(&Bees::adaptive(&cfg), &cfg, &tiny_fleet()).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.n_devices, 3);
        assert_eq!(a.rounds_completed, 6);
        assert_eq!(a.images_captured, 24);
        assert!(a.server_queries > 0);
        // Shared scenes give the fleet real redundancy to eliminate.
        assert!(
            a.images_uploaded < a.images_captured,
            "uploaded {} of {}",
            a.images_uploaded,
            a.images_captured
        );
        assert!(a.redundancy_elimination > 0.0);
    }

    #[test]
    fn shard_count_does_not_change_the_report() {
        let fleet = tiny_fleet();
        let mut reports = Vec::new();
        for shards in [1usize, 2, 4] {
            let cfg = BeesConfig {
                index_backend: IndexBackend::Mih,
                server_shards: shards,
                ..config()
            };
            let r = run_fleet(&Bees::adaptive(&cfg), &cfg, &fleet).unwrap();
            reports.push(r.to_json());
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
    }

    #[test]
    fn dying_devices_are_counted() {
        // ~20 J is enough to start uploading but not to finish two rounds.
        let mut cfg = config();
        cfg.battery = Battery::from_joules(20.0);
        let r = run_fleet(&Bees::adaptive(&cfg), &cfg, &tiny_fleet()).unwrap();
        assert!(r.devices_exhausted > 0);
        let died: usize = r.devices.iter().filter(|d| d.exhausted).count();
        assert_eq!(died, r.devices_exhausted);
        for d in r.devices.iter().filter(|d| d.exhausted) {
            assert!(d.final_ebat < 1.0);
        }
    }

    #[test]
    fn faulty_fleet_salvages_partials_and_upgrades_tails() {
        let mut cfg = config();
        cfg.battery = Battery::from_joules(1e9);
        cfg.fault = bees_net::FaultModel::new(0x5A17A6E, 0.6, 0.0, 1e9, 1.0).unwrap();
        cfg.retry.max_attempts = 3;
        cfg.retry.chunk_bytes = 128;
        let a = run_fleet(&Bees::adaptive(&cfg), &cfg, &tiny_fleet()).unwrap();
        let b = run_fleet(&Bees::adaptive(&cfg), &cfg, &tiny_fleet()).unwrap();
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "salvage path must stay deterministic"
        );
        assert!(
            a.salvaged_images > 0,
            "lossy fleet should salvage something"
        );
        // Every salvaged partial is either upgraded by its tail retry or
        // still pending on the server — none vanish.
        assert_eq!(a.partials_upgraded + a.partials_pending, a.salvaged_images);
    }

    #[test]
    fn report_json_shape_is_stable() {
        let report = FleetReport {
            scheme: "bees".to_string(),
            n_devices: 1,
            rounds_completed: 1,
            images_captured: 2,
            images_uploaded: 1,
            skipped_cross_batch: 1,
            skipped_in_batch: 0,
            uplink_bytes: 42,
            redundancy_elimination: 0.5,
            server_queries: 2,
            devices_exhausted: 0,
            salvaged_images: 1,
            partials_upgraded: 1,
            partials_pending: 0,
            devices: vec![DeviceSummary {
                device: 0,
                rounds: 1,
                uploaded_images: 1,
                uplink_bytes: 42,
                final_ebat: 1.0,
                exhausted: false,
            }],
        };
        assert_eq!(
            report.to_json(),
            "{\"scheme\":\"bees\",\"n_devices\":1,\"rounds_completed\":1,\
             \"images_captured\":2,\"images_uploaded\":1,\
             \"skipped_cross_batch\":1,\"skipped_in_batch\":0,\
             \"uplink_bytes\":42,\"redundancy_elimination\":0.5,\
             \"server_queries\":2,\"devices_exhausted\":0,\
             \"salvaged_images\":1,\"partials_upgraded\":1,\
             \"partials_pending\":0,\
             \"devices\":[{\"device\":0,\"rounds\":1,\"uploaded_images\":1,\
             \"uplink_bytes\":42,\"final_ebat\":1,\"exhausted\":false}]}"
        );
    }
}
