//! Deterministic multi-device fleet simulation.
//!
//! `run_fleet` drives N devices against one shared (optionally sharded)
//! server on a single virtual clock. Devices are advanced by a
//! deterministic event queue ordered by upload time with device-id
//! tie-breaking, so the interleaving — and therefore every server verdict
//! and every byte of the report — is a pure function of the seeds. The
//! fleet determinism tests pin this down across `BEES_THREADS` 1/2/8 and
//! server shard counts 1/2/4.
//!
//! Each round shares a pool of scenes across the fleet: different devices
//! upload *different views of the same scenes*, so Cross-Batch Redundancy
//! Detection has real cross-device redundancy to eliminate. The rest of
//! each group is device-unique.
//!
//! # Shared-cell contention
//!
//! With [`BeesConfig::cell`] enabled the N-private-channels fiction is
//! replaced by one [`SharedCell`]: rounds landing in the same cell epoch
//! form a *cohort*, the server-side [`AirtimeScheduler`] ranks their
//! demands (SSMM novelty × battery state × geotag coverage gap) and issues
//! per-device grants under the epoch's airtime budget. Granted devices
//! upload at the cell's per-grant share with a virtual-time deadline at the
//! epoch end (a transfer that outlives its grant is abandoned, its airtime
//! booked to `Wasted` with the salvage ladder still applying); denied
//! devices defer to the next epoch *before* spending radio energy, with a
//! starvation bound forcing a thumbnail grant after too many consecutive
//! denials.

use crate::scheduler::{AirtimeScheduler, DeviceDemand};
use crate::schemes::{BatchCtx, UploadScheme};
use crate::{
    BeesConfig, Client, CoreError, IngestRequest, Provenance, Result, RetrievalQuery, Server,
    UploadTier,
};
use bees_datasets::{Scene, SceneConfig, ViewJitter};
use bees_energy::EnergyCategory;
use bees_image::RgbImage;
use bees_index::ImageId;
use bees_store::EpochStorage;
use bees_net::{wire, NetError, SharedCell};
use bees_telemetry::{names, Telemetry};
use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Parameters of the post-run retrieval pull-down pass.
///
/// When attached to [`FleetConfig::pulldown`], each round's deferred
/// images are cataloged on the server as [on-device
/// entries](crate::OnDeviceImage), and the run ends with a responder
/// sweep: one geo retrieval per lattice site with the catalog included,
/// followed by a fetch of every on-device match the sweep surfaces.
/// Fetches drain the owning device's battery under
/// [`EnergyCategory::PullDown`] and, under a shared cell, occupy airtime
/// through the same [`AirtimeScheduler`] grants as any upload — a denied
/// or cut fetch leaves the image on the catalog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulldownConfig {
    /// Radius of each site query in kilometres.
    pub radius_km: f64,
    /// Cap on images fetched per device (0 = unlimited).
    pub max_per_device: usize,
}

impl Default for PulldownConfig {
    fn default() -> Self {
        PulldownConfig {
            radius_km: 5.0,
            max_per_device: 0,
        }
    }
}

/// Parameters of a fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of simulated devices.
    pub n_devices: usize,
    /// Upload rounds each device attempts.
    pub rounds: usize,
    /// Images per uploaded group.
    pub group_size: usize,
    /// How many of each group's images are views of the round's *shared*
    /// scene pool (cross-device redundancy); the rest are device-unique.
    pub shared_per_group: usize,
    /// Interval between a device's group uploads in seconds.
    pub interval_s: f64,
    /// Scene generator settings.
    pub scene: SceneConfig,
    /// Master seed; every device/round/image seed derives from it.
    pub seed: u64,
    /// Retrieval pull-down pass; `None` (the default) skips the catalog
    /// and the sweep entirely, reproducing the pre-retrieval behavior.
    pub pulldown: Option<PulldownConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            n_devices: 4,
            rounds: 3,
            group_size: 6,
            shared_per_group: 3,
            interval_s: 60.0,
            scene: SceneConfig::default(),
            seed: 0xF1EE7,
            pulldown: None,
        }
    }
}

/// Per-device outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSummary {
    /// Device id (also the client id the seeds derive from).
    pub device: u64,
    /// Rounds the device completed (or died during).
    pub rounds: usize,
    /// Images this device actually transmitted.
    pub uploaded_images: usize,
    /// Bytes this device sent.
    pub uplink_bytes: usize,
    /// Airtime grants the shared-cell scheduler issued this device
    /// (0 when the cell is disabled).
    pub grants: usize,
    /// Epochs in which the scheduler denied this device airtime — its
    /// starvation count (0 when the cell is disabled).
    pub denied: usize,
    /// Transfers this device abandoned at a virtual-time deadline
    /// (0 when the cell is disabled and no policy deadline is set).
    pub deadline_abandons: usize,
    /// Remaining battery fraction when the run ended.
    pub final_ebat: f64,
    /// Whether the battery died mid-run.
    pub exhausted: bool,
}

/// Aggregate outcome of a fleet run.
///
/// Deliberately excludes the server shard count and the thread count:
/// neither may influence any value here, and the determinism tests compare
/// [`to_json`](FleetReport::to_json) output byte for byte across both.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Scheme name.
    pub scheme: String,
    /// Number of devices simulated.
    pub n_devices: usize,
    /// Total upload rounds completed across the fleet.
    pub rounds_completed: usize,
    /// Images captured (batched for upload) across the fleet.
    pub images_captured: usize,
    /// Images the server actually received.
    pub images_uploaded: usize,
    /// Images eliminated by cross-batch redundancy detection.
    pub skipped_cross_batch: usize,
    /// Images eliminated by in-batch redundancy detection (SSMM).
    pub skipped_in_batch: usize,
    /// Total bytes sent devices → server.
    pub uplink_bytes: usize,
    /// Fraction of captured images the fleet did *not* have to upload.
    pub redundancy_elimination: f64,
    /// Index queries the server answered.
    pub server_queries: usize,
    /// Devices whose battery died mid-run.
    pub devices_exhausted: usize,
    /// Cut uploads salvaged into partial images across the fleet.
    pub salvaged_images: usize,
    /// Salvaged partials completed in place when their tail scans arrived
    /// in a later transfer of the same round.
    pub partials_upgraded: usize,
    /// Salvaged partials still awaiting their tail scans when the run
    /// ended (queryable, just not full quality).
    pub partials_pending: usize,
    /// Airtime grants the shared-cell scheduler issued across the fleet
    /// (0 when the cell is disabled).
    pub grants_issued: usize,
    /// Airtime denials across the fleet — the total starvation count
    /// (0 when the cell is disabled).
    pub grants_denied: usize,
    /// Transfers abandoned at a virtual-time deadline across the fleet.
    pub deadline_abandons: usize,
    /// Unique geotagged locations the server received images from
    /// (0 when no geotags are attached — the cell-disabled path).
    pub unique_locations: usize,
    /// Joules drained from fleet batteries over the whole run — the
    /// denominator of the contention bench's coverage-per-energy metric.
    pub energy_spent_j: f64,
    /// Pull-down fetches the post-run responder sweep requested
    /// (0 when [`FleetConfig::pulldown`] is off).
    pub pulldown_requests: usize,
    /// Requests that delivered their image to the server.
    pub pulldown_fulfilled: usize,
    /// Requests denied airtime or cut mid-transfer; the image stays on
    /// the device catalog.
    pub pulldown_denied: usize,
    /// Wire bytes the fulfilled fetches moved.
    pub pulldown_bytes: usize,
    /// Joules the fleet spent serving pull-down fetches (the
    /// [`EnergyCategory::PullDown`] buckets summed across devices).
    pub pulldown_joules: f64,
    /// Physical bytes the content store wrote over the run (new blobs plus
    /// partial-upgrade tails).
    pub stored_bytes: usize,
    /// Bytes the cold recompression pass gave back.
    pub reclaimed_bytes: usize,
    /// Ingests answered by an existing blob (no new physical bytes).
    pub dedup_hits: usize,
    /// Physical bytes live in the store when the run ended — always
    /// `stored_bytes - reclaimed_bytes` (the ledger identity the tooling
    /// cross-checks).
    pub live_blob_bytes: usize,
    /// Cumulative storage counters snapshotted at each server epoch commit,
    /// in commit order — the capacity-over-time trajectory.
    pub storage_epochs: Vec<EpochStorage>,
    /// Per-epoch cell utilization: delivered bits over capacity × epoch
    /// length, indexed by epoch. Empty when the cell is disabled.
    pub cell_utilization: Vec<f64>,
    /// Per-device outcomes, in device-id order.
    pub devices: Vec<DeviceSummary>,
}

impl FleetReport {
    /// Serializes the report to a canonical single-line JSON string.
    ///
    /// Hand-rolled (fixed key order, shortest-roundtrip float formatting)
    /// so two identical runs produce byte-identical output — this is what
    /// the determinism tests compare.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 128 * self.devices.len());
        out.push_str("{\"scheme\":\"");
        for c in self.scheme.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                _ => out.push(c),
            }
        }
        out.push('"');
        push_field(&mut out, "n_devices", self.n_devices);
        push_field(&mut out, "rounds_completed", self.rounds_completed);
        push_field(&mut out, "images_captured", self.images_captured);
        push_field(&mut out, "images_uploaded", self.images_uploaded);
        push_field(&mut out, "skipped_cross_batch", self.skipped_cross_batch);
        push_field(&mut out, "skipped_in_batch", self.skipped_in_batch);
        push_field(&mut out, "uplink_bytes", self.uplink_bytes);
        out.push_str(&format!(
            ",\"redundancy_elimination\":{}",
            self.redundancy_elimination
        ));
        push_field(&mut out, "server_queries", self.server_queries);
        push_field(&mut out, "devices_exhausted", self.devices_exhausted);
        push_field(&mut out, "salvaged_images", self.salvaged_images);
        push_field(&mut out, "partials_upgraded", self.partials_upgraded);
        push_field(&mut out, "partials_pending", self.partials_pending);
        push_field(&mut out, "grants_issued", self.grants_issued);
        push_field(&mut out, "grants_denied", self.grants_denied);
        push_field(&mut out, "deadline_abandons", self.deadline_abandons);
        push_field(&mut out, "unique_locations", self.unique_locations);
        out.push_str(&format!(",\"energy_spent_j\":{}", self.energy_spent_j));
        push_field(&mut out, "pulldown_requests", self.pulldown_requests);
        push_field(&mut out, "pulldown_fulfilled", self.pulldown_fulfilled);
        push_field(&mut out, "pulldown_denied", self.pulldown_denied);
        push_field(&mut out, "pulldown_bytes", self.pulldown_bytes);
        out.push_str(&format!(",\"pulldown_joules\":{}", self.pulldown_joules));
        push_field(&mut out, "stored_bytes", self.stored_bytes);
        push_field(&mut out, "reclaimed_bytes", self.reclaimed_bytes);
        push_field(&mut out, "dedup_hits", self.dedup_hits);
        push_field(&mut out, "live_blob_bytes", self.live_blob_bytes);
        out.push_str(",\"storage_epochs\":[");
        for (i, e) in self.storage_epochs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stored_bytes\":{},\"reclaimed_bytes\":{},\"dedup_hits\":{}}}",
                e.stored_bytes, e.reclaimed_bytes, e.dedup_hits
            ));
        }
        out.push(']');
        out.push_str(",\"cell_utilization\":[");
        for (i, u) in self.cell_utilization.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{u}"));
        }
        out.push(']');
        out.push_str(",\"devices\":[");
        for (i, d) in self.devices.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"device\":{},\"rounds\":{},\"uploaded_images\":{},\
                 \"uplink_bytes\":{},\"grants\":{},\"denied\":{},\
                 \"deadline_abandons\":{},\"final_ebat\":{},\"exhausted\":{}}}",
                d.device,
                d.rounds,
                d.uploaded_images,
                d.uplink_bytes,
                d.grants,
                d.denied,
                d.deadline_abandons,
                d.final_ebat,
                d.exhausted
            ));
        }
        out.push_str("]}");
        out
    }
}

fn push_field(out: &mut String, key: &str, value: usize) {
    out.push_str(&format!(",\"{key}\":{value}"));
}

/// One pending upload: device `device` starts its `round`-th group at
/// virtual time `time`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    device: usize,
    round: usize,
}

impl Eq for Event {}

impl Ord for Event {
    /// Ascending virtual time, ties broken by device id — the total order
    /// that makes the fleet interleaving deterministic.
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.device.cmp(&other.device))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// SplitMix64 — derives per-device/round/image seeds from the master seed.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A small deterministic camera jitter derived from `seed`, so each device
/// sees its own view of a shared scene.
fn jitter_for(seed: u64) -> ViewJitter {
    let a = mix(seed);
    ViewJitter {
        dx: ((a & 0xFF) as f32 / 255.0 - 0.5) * 6.0,
        dy: (((a >> 8) & 0xFF) as f32 / 255.0 - 0.5) * 6.0,
        brightness: (((a >> 16) & 0x1F) as i32) - 16,
        noise_seed: mix(a),
        ..ViewJitter::identity()
    }
}

/// The group device `device` uploads in round `round`: views of the
/// round-shared scenes first, then device-unique scenes.
fn make_batch(fleet: &FleetConfig, device: usize, round: usize) -> Vec<RgbImage> {
    let shared = fleet.shared_per_group.min(fleet.group_size);
    let mut batch = Vec::with_capacity(fleet.group_size);
    for j in 0..shared {
        // Scene seed depends on (fleet, round, j) only — every device
        // renders the *same* scene through its own jitter.
        let scene_seed = mix(fleet.seed ^ mix((round as u64) << 16 | j as u64));
        let scene = Scene::new(scene_seed, fleet.scene);
        let view_seed = mix(scene_seed ^ mix(device as u64 + 1));
        batch.push(scene.render(&jitter_for(view_seed)));
    }
    for j in shared..fleet.group_size {
        let scene_seed =
            mix(fleet.seed ^ mix((device as u64) << 32 | (round as u64) << 16 | j as u64) ^ 0xD1CE);
        let scene = Scene::new(scene_seed, fleet.scene);
        batch.push(scene.render(&ViewJitter::identity()));
    }
    batch
}

/// Fleet-wide tallies threaded through the per-round helper.
#[derive(Default)]
struct RoundTotals {
    images_captured: usize,
    skipped_cross_batch: usize,
    skipped_in_batch: usize,
    rounds_completed: usize,
    salvaged_images: usize,
    partials_upgraded: usize,
}

/// Size of the deterministic geotag lattice devices map onto in shared-cell
/// mode. *Adjacent* device ids pair up at the same site (responders work a
/// scene in teams of two), so arrival-order scheduling keeps spending
/// airtime on a site it already covered while the utility ranking's
/// coverage-gap factor spreads grants across sites.
const FLEET_LOCATIONS: usize = 4;

/// Devices per lattice site: ids `2k` and `2k+1` share a geotag.
const DEVICES_PER_LOCATION: usize = 2;

/// A device defers its whole round after this many times the configured
/// starvation bound — the backstop that keeps a permanently dark cell from
/// re-enqueuing the same round forever.
const GIVE_UP_FACTOR: u32 = 4;

fn device_geotag(device: usize) -> (f64, f64) {
    let loc = (device / DEVICES_PER_LOCATION) % FLEET_LOCATIONS;
    ((loc % 2) as f64 * 0.01, (loc / 2) as f64 * 0.01)
}

/// Runs one upload round for one device: the scheme's batch upload, the
/// tail-completion retries of freshly salvaged partials (full-tier rounds
/// only — a capped grant must not spend airtime the tier saved), and the
/// scheduling of the device's next round after its capture interval.
#[allow(clippy::too_many_arguments)]
fn run_round(
    scheme: &dyn UploadScheme,
    fleet: &FleetConfig,
    server: &mut Server,
    client: &mut Client,
    device: &mut DeviceSummary,
    totals: &mut RoundTotals,
    queue: &mut BinaryHeap<Reverse<Event>>,
    ev: Event,
    batch: &[RgbImage],
    geotags: Option<&[(f64, f64)]>,
    tier: UploadTier,
    telemetry: &Telemetry,
    chunk: usize,
    catalog: bool,
) -> Result<crate::BatchReport> {
    let d = ev.device;
    let start = client.now();
    // The server's virtual clock tracks the uploading device, so every
    // ingested image carries a capture time the retrieval time-window
    // predicate can filter on.
    server.set_time(start);
    // Snapshot the server's partial set so this round's salvaged uploads
    // can be attributed to this device afterwards.
    let before: Vec<ImageId> = server.partial_images().keys().copied().collect();
    let mut ctx = BatchCtx::new(client, server, batch)
        .with_telemetry(telemetry.clone())
        .with_tier(tier);
    if catalog {
        ctx = ctx.with_deferral_catalog(d as u64);
    }
    if let Some(tags) = geotags {
        ctx = ctx.with_geotags(tags)?;
    }
    let report = scheme.upload(&mut ctx)?;
    totals.rounds_completed += 1;
    device.rounds += 1;
    device.uploaded_images += report.uploaded_images;
    device.uplink_bytes += report.uplink_bytes;
    totals.skipped_cross_batch += report.skipped_cross_batch;
    totals.skipped_in_batch += report.skipped_in_batch;
    totals.salvaged_images += report.salvaged_images;
    if report.exhausted {
        device.exhausted = true;
        return Ok(report);
    }
    if tier == UploadTier::Full {
        // Tail completion: before sleeping, the device retries the missing
        // scan tails of the partials it just salvaged. Each success
        // upgrades the server's copy in place; a cut tail stays pending.
        let fresh: Vec<(ImageId, usize)> = server
            .partial_images()
            .iter()
            .filter(|(id, _)| before.binary_search(id).is_err())
            .map(|(id, p)| (*id, p.total_bytes - p.payload_bytes))
            .collect();
        for (id, tail) in fresh {
            let bytes = wire::framed_upload_bytes(tail, chunk);
            match client.transmit_resumable(EnergyCategory::ImageUpload, bytes) {
                Ok(_) => {
                    server.ingest(IngestRequest::upgrade(id));
                    device.uplink_bytes += bytes;
                    totals.partials_upgraded += 1;
                }
                Err(CoreError::Net(NetError::RetriesExhausted { .. })) => {}
                Err(CoreError::BatteryExhausted { .. }) => {
                    device.exhausted = true;
                    break;
                }
                Err(other) => return Err(other),
            }
        }
        if device.exhausted {
            return Ok(report);
        }
    }
    if ev.round + 1 < fleet.rounds {
        let elapsed = client.now() - start;
        if elapsed < fleet.interval_s && client.idle(fleet.interval_s - elapsed).is_err() {
            device.exhausted = true;
            return Ok(report);
        }
        queue.push(Reverse(Event {
            time: client.now(),
            device: d,
            round: ev.round + 1,
        }));
    }
    Ok(report)
}

/// Runs the fleet session: N devices share one server and upload groups in
/// event-queue order (time, then device id) until every device has done
/// its rounds or died.
///
/// With [`BeesConfig::cell`] enabled the devices additionally share one
/// uplink cell: see the module docs for the grant/deny/deadline semantics.
///
/// # Errors
///
/// Returns a network error if a channel stalls beyond its limit, or an
/// invalid-config error from server/client/cell construction.
///
/// # Panics
///
/// Panics if `n_devices`, `rounds`, or `group_size` is zero.
pub fn run_fleet(
    scheme: &dyn UploadScheme,
    config: &BeesConfig,
    fleet: &FleetConfig,
) -> Result<FleetReport> {
    run_fleet_traced(scheme, config, fleet, &Telemetry::disabled())
}

/// [`run_fleet`] with a telemetry handle: scheme stage spans, `net.*`
/// spans, and the scheduler's `sched.grant` / `sched.deny` /
/// `sched.preempt` events all drain into `telemetry`'s sinks.
///
/// # Errors
///
/// Same as [`run_fleet`].
///
/// # Panics
///
/// Same as [`run_fleet`].
pub fn run_fleet_traced(
    scheme: &dyn UploadScheme,
    config: &BeesConfig,
    fleet: &FleetConfig,
    telemetry: &Telemetry,
) -> Result<FleetReport> {
    run_fleet_with_server(scheme, config, fleet, telemetry).map(|(report, _)| report)
}

/// [`run_fleet_traced`], additionally handing back the server the fleet
/// uploaded into, so callers can issue [`Server::retrieve`] queries against
/// the final state — geotag/time side tables, partials, thumbnails, and
/// whatever the pull-down pass left on the on-device catalog included.
///
/// # Errors
///
/// Same as [`run_fleet`].
///
/// # Panics
///
/// Same as [`run_fleet`].
pub fn run_fleet_with_server(
    scheme: &dyn UploadScheme,
    config: &BeesConfig,
    fleet: &FleetConfig,
    telemetry: &Telemetry,
) -> Result<(FleetReport, Server)> {
    assert!(fleet.n_devices > 0, "fleet needs at least one device");
    assert!(fleet.rounds > 0, "fleet needs at least one round");
    assert!(fleet.group_size > 0, "fleet groups must be non-empty");

    let mut server = Server::try_new(config)?;
    let mut clients: Vec<Client> = (0..fleet.n_devices)
        .map(|d| Client::try_new(d as u64, config))
        .collect::<Result<_>>()?;

    let mut devices: Vec<DeviceSummary> = (0..fleet.n_devices)
        .map(|d| DeviceSummary {
            device: d as u64,
            rounds: 0,
            uploaded_images: 0,
            uplink_bytes: 0,
            grants: 0,
            denied: 0,
            deadline_abandons: 0,
            final_ebat: 1.0,
            exhausted: false,
        })
        .collect();

    let mut queue: BinaryHeap<Reverse<Event>> = (0..fleet.n_devices)
        .map(|device| {
            Reverse(Event {
                time: 0.0,
                device,
                round: 0,
            })
        })
        .collect();

    let mut totals = RoundTotals::default();
    let chunk = config.retry.chunk_bytes.max(1);

    let cell: Option<SharedCell> = if config.cell.enabled {
        Some(config.cell.build()?)
    } else {
        None
    };
    let mut scheduler = AirtimeScheduler::new(
        config.scheduler,
        config.cell.oversubscription_threshold,
        config.cell.max_consecutive_denials,
    );
    let give_up_denials = config
        .cell
        .max_consecutive_denials
        .saturating_mul(GIVE_UP_FACTOR);
    // Per-device demand signals, refreshed after every granted round.
    let mut novelty: Vec<f64> = vec![1.0; fleet.n_devices];
    let mut est_bytes: Vec<usize> = vec![fleet.group_size * 32 * 1024; fleet.n_devices];
    let mut denial_streak: Vec<u32> = vec![0; fleet.n_devices];
    // Delivered payload bytes binned by the grant's epoch, for the
    // utilization series.
    let mut epoch_bytes: BTreeMap<u64, usize> = BTreeMap::new();

    while let Some(Reverse(first)) = queue.pop() {
        let Some(cell) = &cell else {
            // Legacy path: every device owns a private channel; rounds run
            // strictly in event order with no grants and no deadlines.
            let d = first.device;
            let batch = make_batch(fleet, d, first.round);
            totals.images_captured += batch.len();
            run_round(
                scheme,
                fleet,
                &mut server,
                &mut clients[d],
                &mut devices[d],
                &mut totals,
                &mut queue,
                first,
                &batch,
                None,
                UploadTier::Full,
                telemetry,
                chunk,
                fleet.pulldown.is_some(),
            )?;
            continue;
        };

        // Cohort: every queued round falling in the same cell epoch as the
        // earliest event competes for that epoch's airtime.
        let epoch = cell.epoch_of(first.time);
        let mut cohort = vec![first];
        while let Some(&Reverse(next)) = queue.peek() {
            if cell.epoch_of(next.time) != epoch {
                break;
            }
            cohort.push(queue.pop().expect("peeked event exists").0);
        }
        let epoch_start = cell.epoch_start(epoch);
        let epoch_end = cell.epoch_end(epoch);
        let capacity = cell.capacity_bps(epoch_start);
        let budget = cell.epoch_budget_s(epoch_start);

        let demands: Vec<DeviceDemand> = cohort
            .iter()
            .enumerate()
            .map(|(k, ev)| {
                let d = ev.device;
                let tag = device_geotag(d);
                let covered = server.geotags().values().any(|&(lon, lat)| {
                    lon.to_bits() == tag.0.to_bits() && lat.to_bits() == tag.1.to_bits()
                });
                DeviceDemand {
                    device: d,
                    novelty: novelty[d],
                    ebat: clients[d].ebat(),
                    coverage_gap: if covered { 0.25 } else { 1.0 },
                    est_bytes: est_bytes[d],
                    arrival_order: k,
                    consecutive_denials: denial_streak[d],
                }
            })
            .collect();
        let plan = scheduler.plan_epoch(&demands, budget, capacity);
        let share = cell.share_bps(epoch_start, plan.granted);

        for ev in cohort {
            let d = ev.device;
            let grant = *plan
                .grant_for(d)
                .expect("every cohort member got a verdict");
            if grant.tier == UploadTier::Defer {
                devices[d].denied += 1;
                denial_streak[d] += 1;
                telemetry
                    .event(names::SCHED_DENY, epoch_start)
                    .attr_u64("device", d as u64)
                    .attr_str("policy", scheduler.policy().as_str())
                    .attr_f64("utility", grant.utility)
                    .attr_u64("denials", denial_streak[d] as u64)
                    .close(epoch_start);
                if denial_streak[d] >= give_up_denials {
                    // The cell has been dark or oversubscribed for so long
                    // that waiting is pointless: drop this round entirely
                    // and move on to the next capture interval.
                    denial_streak[d] = 0;
                    totals.rounds_completed += 1;
                    devices[d].rounds += 1;
                    if ev.round + 1 < fleet.rounds {
                        if clients[d].idle(fleet.interval_s).is_err() {
                            devices[d].exhausted = true;
                            continue;
                        }
                        queue.push(Reverse(Event {
                            time: clients[d].now(),
                            device: d,
                            round: ev.round + 1,
                        }));
                    }
                    continue;
                }
                // Defer without spending radio energy: sleep out the epoch
                // and contend again in the next one. The max() pins the
                // re-enqueued event past the epoch boundary even if the
                // idle's float arithmetic lands a hair short of it.
                let now = clients[d].now();
                if now < epoch_end && clients[d].idle(epoch_end - now).is_err() {
                    devices[d].exhausted = true;
                    continue;
                }
                queue.push(Reverse(Event {
                    time: clients[d].now().max(epoch_end),
                    device: d,
                    round: ev.round,
                }));
                continue;
            }

            devices[d].grants += 1;
            denial_streak[d] = 0;
            telemetry
                .event(names::SCHED_GRANT, epoch_start)
                .attr_u64("device", d as u64)
                .attr_str("tier", grant.tier.as_str())
                .attr_str("policy", scheduler.policy().as_str())
                .attr_f64("utility", grant.utility)
                .attr_bool("forced", grant.forced)
                .close(epoch_start);
            clients[d].set_rate_override(Some(share))?;
            clients[d].set_grant_deadline(Some(epoch_end));

            let batch = make_batch(fleet, d, ev.round);
            totals.images_captured += batch.len();
            let tags = vec![device_geotag(d); batch.len()];
            let bytes_before = devices[d].uplink_bytes;
            let report = run_round(
                scheme,
                fleet,
                &mut server,
                &mut clients[d],
                &mut devices[d],
                &mut totals,
                &mut queue,
                ev,
                &batch,
                Some(&tags),
                grant.tier,
                telemetry,
                chunk,
                fleet.pulldown.is_some(),
            )?;
            clients[d].set_rate_override(None)?;
            clients[d].set_grant_deadline(None);
            *epoch_bytes.entry(epoch).or_insert(0) += devices[d].uplink_bytes - bytes_before;
            novelty[d] = ((batch.len() - report.skipped_cross_batch - report.skipped_in_batch)
                as f64
                / batch.len() as f64)
                .clamp(0.05, 1.0);
            est_bytes[d] = report.uplink_bytes.max(fleet.group_size * 1024);
        }
    }

    // ---- Retrieval pull-down pass -----------------------------------
    // Once the fleet has gone quiet the responders sweep the lattice:
    // one geo retrieval per site with the on-device catalog included,
    // then a fetch of every deferred image the sweep surfaced. Under a
    // shared cell the fetches compete for airtime through the same
    // scheduler as uploads; a denied or cut fetch leaves its image on
    // the catalog.
    let mut pulldown_requests = 0usize;
    let mut pulldown_fulfilled = 0usize;
    let mut pulldown_denied = 0usize;
    let mut pulldown_bytes = 0usize;
    if let Some(pd) = fleet.pulldown {
        let t0 = clients.iter().map(|c| c.now()).fold(0.0, f64::max);
        server.set_time(t0);
        // Owner → (catalog id, estimated payload) in relevance order,
        // deduplicated across overlapping site queries.
        let mut wanted: BTreeMap<u64, Vec<(ImageId, usize)>> = BTreeMap::new();
        let mut seen: BTreeSet<ImageId> = BTreeSet::new();
        for site in 0..FLEET_LOCATIONS {
            let (lon, lat) = device_geotag(site * DEVICES_PER_LOCATION);
            let query = RetrievalQuery::new()
                .near(lon, lat, pd.radius_km)
                .include_on_device(true);
            for hit in server.answer(&query).hits {
                if let Provenance::OnDevice { device_id } = hit.provenance {
                    if seen.insert(hit.id) {
                        let est = server
                            .on_device_images()
                            .get(&hit.id)
                            .map_or(0, |e| e.est_bytes);
                        wanted.entry(device_id).or_default().push((hit.id, est));
                    }
                }
            }
        }
        if pd.max_per_device > 0 {
            for ids in wanted.values_mut() {
                ids.truncate(pd.max_per_device);
            }
        }
        pulldown_requests = wanted.values().map(Vec::len).sum();

        // Grant verdicts: one scheduler epoch under a cell (fetches are
        // demands like any other), every requester granted otherwise.
        let cell_grant = cell.as_ref().map(|cell| {
            let demands: Vec<DeviceDemand> = wanted
                .iter()
                .enumerate()
                .map(|(k, (&d, ids))| DeviceDemand {
                    device: d as usize,
                    novelty: 1.0,
                    ebat: clients[d as usize].ebat(),
                    coverage_gap: 1.0,
                    est_bytes: ids.iter().map(|&(_, est)| est).sum(),
                    arrival_order: k,
                    consecutive_denials: 0,
                })
                .collect();
            let epoch = cell.epoch_of(t0);
            let epoch_start = cell.epoch_start(epoch);
            let plan = scheduler.plan_epoch(
                &demands,
                cell.epoch_budget_s(epoch_start),
                cell.capacity_bps(epoch_start),
            );
            let share = cell.share_bps(epoch_start, plan.granted);
            (epoch, plan, share)
        });
        for (&d, ids) in &wanted {
            let dev = d as usize;
            if let (Some(cell), Some((epoch, plan, share))) = (&cell, &cell_grant) {
                let epoch_start = cell.epoch_start(*epoch);
                let grant = *plan.grant_for(dev).expect("every requester got a verdict");
                if grant.tier == UploadTier::Defer {
                    devices[dev].denied += 1;
                    telemetry
                        .event(names::SCHED_DENY, epoch_start)
                        .attr_u64("device", d)
                        .attr_str("policy", scheduler.policy().as_str())
                        .attr_f64("utility", grant.utility)
                        .attr_u64("denials", 1)
                        .close(epoch_start);
                    pulldown_denied += ids.len();
                    continue;
                }
                devices[dev].grants += 1;
                telemetry
                    .event(names::SCHED_GRANT, epoch_start)
                    .attr_u64("device", d)
                    .attr_str("tier", grant.tier.as_str())
                    .attr_str("policy", scheduler.policy().as_str())
                    .attr_f64("utility", grant.utility)
                    .attr_bool("forced", grant.forced)
                    .close(epoch_start);
                // Fetches share the cell at the epoch's granted rate, but
                // carry no epoch deadline: the guillotine exists to keep
                // capture rounds on cadence, and the mission's rounds are
                // over. The retry budget still bounds every transfer.
                clients[dev].set_rate_override(Some(*share))?;
            }
            // Wake the device up to the sweep time before it serves.
            let now = clients[dev].now();
            if now < t0 && clients[dev].idle(t0 - now).is_err() {
                devices[dev].exhausted = true;
            }
            for &(id, est) in ids {
                if devices[dev].exhausted {
                    pulldown_denied += 1;
                    continue;
                }
                let bytes = wire::framed_upload_bytes(est, chunk);
                match clients[dev].transmit_resumable(EnergyCategory::PullDown, bytes) {
                    Ok(_) => {
                        server.ingest(IngestRequest::fulfill(id));
                        devices[dev].uplink_bytes += bytes;
                        pulldown_fulfilled += 1;
                        pulldown_bytes += bytes;
                        if let Some(cell) = &cell {
                            *epoch_bytes.entry(cell.epoch_of(t0)).or_insert(0) += bytes;
                        }
                        let now = clients[dev].now();
                        telemetry
                            .event(names::SRV_PULLDOWN, now)
                            .attr_u64("device", d)
                            .attr_u64("image", id.0)
                            .attr_u64("bytes", bytes as u64)
                            .close(now);
                    }
                    Err(CoreError::Net(NetError::RetriesExhausted { .. })) => {
                        pulldown_denied += 1;
                    }
                    Err(CoreError::BatteryExhausted { .. }) => {
                        devices[dev].exhausted = true;
                        pulldown_denied += 1;
                    }
                    Err(other) => return Err(other),
                }
            }
            if cell_grant.is_some() {
                clients[dev].set_rate_override(None)?;
            }
        }
    }

    let mut energy_spent_j = 0.0;
    let mut pulldown_joules = 0.0;
    for (d, client) in clients.iter().enumerate() {
        devices[d].final_ebat = client.ebat();
        devices[d].deadline_abandons = client.deadline_abandons() as usize;
        energy_spent_j += client.battery().drawn_joules();
        pulldown_joules += client.ledger().get(EnergyCategory::PullDown);
    }

    let cell_utilization: Vec<f64> = match &cell {
        Some(cell) if !epoch_bytes.is_empty() => {
            let last = *epoch_bytes.keys().next_back().expect("non-empty map");
            (0..=last)
                .map(|e| {
                    let bytes = epoch_bytes.get(&e).copied().unwrap_or(0);
                    let cap = cell.capacity_bps(cell.epoch_start(e));
                    if cap > 0.0 {
                        (bytes as f64 * 8.0) / (cap * cell.epoch_s())
                    } else {
                        0.0
                    }
                })
                .collect()
        }
        _ => Vec::new(),
    };

    let images_uploaded = server.received_images();
    let redundancy_elimination = if totals.images_captured > 0 {
        (totals.images_captured - images_uploaded) as f64 / totals.images_captured as f64
    } else {
        0.0
    };
    let report = FleetReport {
        scheme: scheme.kind().to_string(),
        n_devices: fleet.n_devices,
        rounds_completed: totals.rounds_completed,
        images_captured: totals.images_captured,
        images_uploaded,
        skipped_cross_batch: totals.skipped_cross_batch,
        skipped_in_batch: totals.skipped_in_batch,
        uplink_bytes: devices.iter().map(|d| d.uplink_bytes).sum(),
        redundancy_elimination,
        server_queries: server.queries_served(),
        devices_exhausted: devices.iter().filter(|d| d.exhausted).count(),
        salvaged_images: totals.salvaged_images,
        partials_upgraded: totals.partials_upgraded,
        partials_pending: server.partial_images().len(),
        grants_issued: devices.iter().map(|d| d.grants).sum(),
        grants_denied: devices.iter().map(|d| d.denied).sum(),
        deadline_abandons: devices.iter().map(|d| d.deadline_abandons).sum(),
        unique_locations: server.unique_locations(),
        energy_spent_j,
        pulldown_requests,
        pulldown_fulfilled,
        pulldown_denied,
        pulldown_bytes,
        pulldown_joules,
        stored_bytes: server.storage().ledger().stored_bytes,
        reclaimed_bytes: server.storage().ledger().reclaimed_bytes,
        dedup_hits: server.storage().ledger().dedup_hits,
        live_blob_bytes: server.storage().live_bytes(),
        storage_epochs: server.storage().ledger().epochs.clone(),
        cell_utilization,
        devices,
    };
    Ok((report, server))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::Bees;
    use crate::IndexBackend;
    use bees_energy::Battery;
    use bees_net::BandwidthTrace;

    fn tiny_fleet() -> FleetConfig {
        FleetConfig {
            n_devices: 3,
            rounds: 2,
            group_size: 4,
            shared_per_group: 2,
            interval_s: 30.0,
            scene: SceneConfig {
                width: 96,
                height: 72,
                n_shapes: 8,
                texture_amp: 8.0,
            },
            seed: 11,
            pulldown: None,
        }
    }

    fn config() -> BeesConfig {
        let mut c = BeesConfig::default();
        c.trace = BandwidthTrace::constant(256_000.0).unwrap();
        c
    }

    #[test]
    fn events_pop_by_time_then_device() {
        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        for (time, device) in [(5.0, 0), (0.0, 2), (0.0, 1), (3.0, 0)] {
            heap.push(Reverse(Event {
                time,
                device,
                round: 0,
            }));
        }
        let order: Vec<(f64, usize)> = std::iter::from_fn(|| heap.pop())
            .map(|Reverse(e)| (e.time, e.device))
            .collect();
        assert_eq!(order, vec![(0.0, 1), (0.0, 2), (3.0, 0), (5.0, 0)]);
    }

    #[test]
    fn fleet_report_is_reproducible() {
        let cfg = config();
        let a = run_fleet(&Bees::adaptive(&cfg), &cfg, &tiny_fleet()).unwrap();
        let b = run_fleet(&Bees::adaptive(&cfg), &cfg, &tiny_fleet()).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.n_devices, 3);
        assert_eq!(a.rounds_completed, 6);
        assert_eq!(a.images_captured, 24);
        assert!(a.server_queries > 0);
        // Shared scenes give the fleet real redundancy to eliminate.
        assert!(
            a.images_uploaded < a.images_captured,
            "uploaded {} of {}",
            a.images_uploaded,
            a.images_captured
        );
        assert!(a.redundancy_elimination > 0.0);
    }

    #[test]
    fn shard_count_does_not_change_the_report() {
        let fleet = tiny_fleet();
        let mut reports = Vec::new();
        for shards in [1usize, 2, 4] {
            let cfg = BeesConfig {
                index_backend: IndexBackend::Mih,
                server_shards: shards,
                ..config()
            };
            let r = run_fleet(&Bees::adaptive(&cfg), &cfg, &fleet).unwrap();
            reports.push(r.to_json());
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
    }

    #[test]
    fn dying_devices_are_counted() {
        // ~20 J is enough to start uploading but not to finish two rounds.
        let mut cfg = config();
        cfg.battery = Battery::from_joules(20.0);
        let r = run_fleet(&Bees::adaptive(&cfg), &cfg, &tiny_fleet()).unwrap();
        assert!(r.devices_exhausted > 0);
        let died: usize = r.devices.iter().filter(|d| d.exhausted).count();
        assert_eq!(died, r.devices_exhausted);
        for d in r.devices.iter().filter(|d| d.exhausted) {
            assert!(d.final_ebat < 1.0);
        }
    }

    #[test]
    fn faulty_fleet_salvages_partials_and_upgrades_tails() {
        let mut cfg = config();
        cfg.battery = Battery::from_joules(1e9);
        cfg.fault = bees_net::FaultModel::new(0x5A17A6E, 0.6, 0.0, 1e9, 1.0).unwrap();
        cfg.retry.max_attempts = 3;
        cfg.retry.chunk_bytes = 128;
        let a = run_fleet(&Bees::adaptive(&cfg), &cfg, &tiny_fleet()).unwrap();
        let b = run_fleet(&Bees::adaptive(&cfg), &cfg, &tiny_fleet()).unwrap();
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "salvage path must stay deterministic"
        );
        assert!(
            a.salvaged_images > 0,
            "lossy fleet should salvage something"
        );
        // Every salvaged partial is either upgraded by its tail retry or
        // still pending on the server — none vanish.
        assert_eq!(a.partials_upgraded + a.partials_pending, a.salvaged_images);
    }

    fn contended_config(capacity_bps: f64) -> BeesConfig {
        let mut c = config();
        c.battery = Battery::from_joules(1e9);
        c.cell.enabled = true;
        c.cell.capacity = BandwidthTrace::constant(capacity_bps).unwrap();
        c.cell.epoch_s = 20.0;
        c
    }

    #[test]
    fn disabled_cell_reports_zeroed_contention_fields() {
        let cfg = config();
        let r = run_fleet(&Bees::adaptive(&cfg), &cfg, &tiny_fleet()).unwrap();
        assert_eq!(r.grants_issued, 0);
        assert_eq!(r.grants_denied, 0);
        assert_eq!(r.deadline_abandons, 0);
        assert_eq!(r.unique_locations, 0);
        assert!(r.cell_utilization.is_empty());
        assert_eq!(r.pulldown_requests, 0);
        assert_eq!(r.pulldown_fulfilled + r.pulldown_denied, 0);
        assert_eq!(r.pulldown_bytes, 0);
        assert_eq!(r.pulldown_joules, 0.0);
        for d in &r.devices {
            assert_eq!((d.grants, d.denied, d.deadline_abandons), (0, 0, 0));
        }
    }

    #[test]
    fn contended_fleet_is_reproducible_and_accounts_grants() {
        let cfg = contended_config(128_000.0);
        let fleet = FleetConfig {
            n_devices: 5,
            ..tiny_fleet()
        };
        let a = run_fleet(&Bees::adaptive(&cfg), &cfg, &fleet).unwrap();
        let b = run_fleet(&Bees::adaptive(&cfg), &cfg, &fleet).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "contention must stay seeded");
        assert!(a.grants_issued > 0, "{a:?}");
        assert_eq!(a.grants_issued, a.devices.iter().map(|d| d.grants).sum());
        assert_eq!(a.grants_denied, a.devices.iter().map(|d| d.denied).sum());
        // Five devices on a four-slot lattice cover at most four spots.
        assert!(a.unique_locations >= 1 && a.unique_locations <= 4, "{a:?}");
        assert!(!a.cell_utilization.is_empty());
        for &u in &a.cell_utilization {
            assert!(u.is_finite() && u >= 0.0, "utilization {u}");
        }
        // Salvage conservation survives the grant machinery.
        assert_eq!(a.partials_upgraded + a.partials_pending, a.salvaged_images);
    }

    #[test]
    fn oversubscribed_cell_denies_and_degrades_instead_of_thrashing() {
        // Eight devices on a cell that fits roughly one full upload per
        // epoch: most grants must be degraded tiers or outright denials,
        // and the run still terminates with every image accounted for.
        let cfg = contended_config(32_000.0);
        let fleet = FleetConfig {
            n_devices: 8,
            rounds: 2,
            ..tiny_fleet()
        };
        let r = run_fleet(&Bees::adaptive(&cfg), &cfg, &fleet).unwrap();
        assert!(
            r.grants_denied > 0,
            "an 8-device 32 kbps cell must deny someone: {r:?}"
        );
        assert!(r.grants_issued > 0);
        assert_eq!(r.partials_upgraded + r.partials_pending, r.salvaged_images);
        // Starvation stays bounded: nobody waits forever.
        for d in &r.devices {
            assert!(
                d.rounds > 0 || d.exhausted,
                "device {} never ran a round: {r:?}",
                d.device
            );
        }
    }

    #[test]
    fn cell_outage_cuts_transfers_without_a_retry_storm() {
        let mut cfg = contended_config(128_000.0);
        // Periodic outages darken half of every 40 s cycle.
        cfg.cell.outage = bees_net::FaultModel::new(0xCE11, 0.0, 0.5, 40.0, 20.0).unwrap();
        let fleet = FleetConfig {
            n_devices: 6,
            rounds: 2,
            ..tiny_fleet()
        };
        let a = run_fleet(&Bees::adaptive(&cfg), &cfg, &fleet).unwrap();
        let b = run_fleet(&Bees::adaptive(&cfg), &cfg, &fleet).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "outage path must stay seeded");
        // Deadline abandons happen but stay bounded: at worst every
        // selected image abandons its full attempt and its thumbnail rung,
        // plus one feature query per round.
        let bound = 2 * a.images_captured + 2 * a.rounds_completed;
        assert!(
            a.deadline_abandons <= bound,
            "retry storm: {} abandons for {} images",
            a.deadline_abandons,
            a.images_captured
        );
        assert_eq!(
            a.deadline_abandons,
            a.devices.iter().map(|d| d.deadline_abandons).sum(),
        );
        assert_eq!(a.partials_upgraded + a.partials_pending, a.salvaged_images);
    }

    #[test]
    fn scheduler_policies_are_each_reproducible() {
        use crate::SchedulerPolicy;
        let fleet = FleetConfig {
            n_devices: 6,
            ..tiny_fleet()
        };
        let mut jsons = Vec::new();
        for policy in [
            SchedulerPolicy::Fifo,
            SchedulerPolicy::RoundRobin,
            SchedulerPolicy::Utility,
        ] {
            let mut cfg = contended_config(48_000.0);
            cfg.scheduler = policy;
            let a = run_fleet(&Bees::adaptive(&cfg), &cfg, &fleet).unwrap();
            let b = run_fleet(&Bees::adaptive(&cfg), &cfg, &fleet).unwrap();
            assert_eq!(a.to_json(), b.to_json(), "{policy:?} must be seeded");
            jsons.push(a.to_json());
        }
        // Under 2x+ oversubscription the ranking disciplines must actually
        // change who gets airtime.
        assert!(
            jsons[0] != jsons[2] || jsons[1] != jsons[2],
            "policies collapsed to identical behavior"
        );
    }

    #[test]
    fn traced_contention_emits_scheduler_events() {
        use bees_telemetry::Aggregator;
        use std::sync::Arc;
        let cfg = contended_config(32_000.0);
        let fleet = FleetConfig {
            n_devices: 6,
            ..tiny_fleet()
        };
        let agg = Arc::new(Aggregator::new());
        let tel = Telemetry::with_sinks(vec![agg.clone()]);
        let r = run_fleet_traced(&Bees::adaptive(&cfg), &cfg, &fleet, &tel).unwrap();
        let stats = agg.snapshot();
        let count = |name: &str| {
            stats
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, s)| s.count)
        };
        assert_eq!(count(names::SCHED_GRANT) as usize, r.grants_issued);
        assert_eq!(count(names::SCHED_DENY) as usize, r.grants_denied);
        assert_eq!(count(names::SCHED_PREEMPT) as usize, r.deadline_abandons);
    }

    #[test]
    fn pulldown_fetches_deferred_images_deterministically() {
        // A lossy contended cell forces images down the ladder until some
        // defer into the on-device catalog; the post-run sweep then pulls
        // them down, and every request resolves one way or the other.
        let mut cfg = contended_config(48_000.0);
        cfg.fault = bees_net::FaultModel::new(0x9E11, 0.7, 0.0, 1e9, 1.0).unwrap();
        cfg.retry.max_attempts = 2;
        cfg.retry.chunk_bytes = 256;
        let base_fleet = FleetConfig {
            n_devices: 6,
            ..tiny_fleet()
        };
        let fleet = FleetConfig {
            pulldown: Some(PulldownConfig::default()),
            ..base_fleet
        };
        let a = run_fleet(&Bees::adaptive(&cfg), &cfg, &fleet).unwrap();
        let b = run_fleet(&Bees::adaptive(&cfg), &cfg, &fleet).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "pull-down must stay seeded");
        assert!(
            a.pulldown_requests > 0,
            "a lossy cell should catalog some deferrals: {a:?}"
        );
        assert_eq!(
            a.pulldown_requests,
            a.pulldown_fulfilled + a.pulldown_denied,
            "every request resolves: {a:?}"
        );
        if a.pulldown_fulfilled > 0 {
            assert!(a.pulldown_bytes > 0);
            assert!(a.pulldown_joules > 0.0);
        }
        // Against the same run without pull-down, every fulfilled fetch is
        // one more image the server actually holds.
        let base = run_fleet(&Bees::adaptive(&cfg), &cfg, &base_fleet).unwrap();
        assert_eq!(base.pulldown_requests, 0);
        assert_eq!(
            a.images_uploaded,
            base.images_uploaded + a.pulldown_fulfilled,
            "pull-down must add exactly the fulfilled images: {} vs {} + {}",
            a.images_uploaded,
            base.images_uploaded,
            a.pulldown_fulfilled
        );
        assert_eq!(a.partials_upgraded + a.partials_pending, a.salvaged_images);
    }

    #[test]
    fn report_json_shape_is_stable() {
        let report = FleetReport {
            scheme: "bees".to_string(),
            n_devices: 1,
            rounds_completed: 1,
            images_captured: 2,
            images_uploaded: 1,
            skipped_cross_batch: 1,
            skipped_in_batch: 0,
            uplink_bytes: 42,
            redundancy_elimination: 0.5,
            server_queries: 2,
            devices_exhausted: 0,
            salvaged_images: 1,
            partials_upgraded: 1,
            partials_pending: 0,
            grants_issued: 2,
            grants_denied: 1,
            deadline_abandons: 1,
            unique_locations: 1,
            energy_spent_j: 12.5,
            pulldown_requests: 3,
            pulldown_fulfilled: 2,
            pulldown_denied: 1,
            pulldown_bytes: 64,
            pulldown_joules: 0.5,
            stored_bytes: 100,
            reclaimed_bytes: 20,
            dedup_hits: 3,
            live_blob_bytes: 80,
            storage_epochs: vec![EpochStorage {
                stored_bytes: 100,
                reclaimed_bytes: 20,
                dedup_hits: 3,
            }],
            cell_utilization: vec![0.5, 0.25],
            devices: vec![DeviceSummary {
                device: 0,
                rounds: 1,
                uploaded_images: 1,
                uplink_bytes: 42,
                grants: 2,
                denied: 1,
                deadline_abandons: 1,
                final_ebat: 1.0,
                exhausted: false,
            }],
        };
        assert_eq!(
            report.to_json(),
            "{\"scheme\":\"bees\",\"n_devices\":1,\"rounds_completed\":1,\
             \"images_captured\":2,\"images_uploaded\":1,\
             \"skipped_cross_batch\":1,\"skipped_in_batch\":0,\
             \"uplink_bytes\":42,\"redundancy_elimination\":0.5,\
             \"server_queries\":2,\"devices_exhausted\":0,\
             \"salvaged_images\":1,\"partials_upgraded\":1,\
             \"partials_pending\":0,\"grants_issued\":2,\
             \"grants_denied\":1,\"deadline_abandons\":1,\
             \"unique_locations\":1,\"energy_spent_j\":12.5,\
             \"pulldown_requests\":3,\"pulldown_fulfilled\":2,\
             \"pulldown_denied\":1,\"pulldown_bytes\":64,\
             \"pulldown_joules\":0.5,\
             \"stored_bytes\":100,\"reclaimed_bytes\":20,\
             \"dedup_hits\":3,\"live_blob_bytes\":80,\
             \"storage_epochs\":[{\"stored_bytes\":100,\
             \"reclaimed_bytes\":20,\"dedup_hits\":3}],\
             \"cell_utilization\":[0.5,0.25],\
             \"devices\":[{\"device\":0,\"rounds\":1,\"uploaded_images\":1,\
             \"uplink_bytes\":42,\"grants\":2,\"denied\":1,\
             \"deadline_abandons\":1,\"final_ebat\":1,\"exhausted\":false}]}"
        );
    }
}
