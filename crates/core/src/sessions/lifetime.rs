//! The battery-lifetime session (paper Fig. 9).
//!
//! One phone uploads a 40-image group every 20 minutes (screen bright the
//! whole time) until its battery dies; the remaining energy is sampled at
//! every interval. The paper's headline shape: BEES' curve is convex — its
//! slope flattens as `Ebat` drops because the adaptive schemes shed load —
//! while every other scheme discharges linearly.

use crate::schemes::{BatchCtx, UploadScheme};
use crate::{BeesConfig, Client, Result, Server};
use bees_datasets::{disaster_batch, SceneConfig};
use bees_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

/// Parameters of a lifetime run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeConfig {
    /// Images per group (paper: 40).
    pub group_size: usize,
    /// Maximum number of groups available (paper: 150).
    pub n_groups: usize,
    /// Interval between group uploads in seconds (paper: 20 minutes).
    pub interval_s: f64,
    /// Cross-batch redundancy ratio staged for each group (paper: ~50%).
    pub cross_ratio: f64,
    /// Scene parameters for the generated groups.
    pub scene: SceneConfig,
    /// Workload seed.
    pub seed: u64,
}

impl Default for LifetimeConfig {
    fn default() -> Self {
        LifetimeConfig {
            group_size: 40,
            n_groups: 150,
            interval_s: 1200.0,
            cross_ratio: 0.5,
            scene: SceneConfig::default(),
            seed: 0xF19,
        }
    }
}

/// One sample of the discharge curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeSample {
    /// Simulated time in seconds.
    pub time_s: f64,
    /// Remaining battery fraction at that time.
    pub ebat: f64,
}

/// Result of a lifetime run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeResult {
    /// Scheme name.
    pub scheme: String,
    /// The discharge curve, one sample per completed interval (starting
    /// with `(0, 1.0)`).
    pub samples: Vec<LifetimeSample>,
    /// Simulated seconds until the battery died (or the workload ran out).
    pub lifetime_s: f64,
    /// Groups fully uploaded before exhaustion.
    pub groups_uploaded: usize,
}

/// Runs the lifetime session for one scheme.
///
/// # Errors
///
/// Returns a network error if the channel stalls beyond its limit;
/// battery exhaustion is the expected terminal state, not an error.
pub fn run_lifetime(
    scheme: &dyn UploadScheme,
    config: &BeesConfig,
    lt: &LifetimeConfig,
) -> Result<LifetimeResult> {
    run_lifetime_traced(scheme, config, lt, Telemetry::disabled())
}

/// Runs the lifetime session with a telemetry handle installed on the
/// client and server, so every stage span and `net.*`/`srv.*` record of
/// the whole discharge curve lands in one trace. With a disabled handle
/// this is exactly [`run_lifetime`].
///
/// # Errors
///
/// Returns a network error if the channel stalls beyond its limit;
/// battery exhaustion is the expected terminal state, not an error.
pub fn run_lifetime_traced(
    scheme: &dyn UploadScheme,
    config: &BeesConfig,
    lt: &LifetimeConfig,
    telemetry: Telemetry,
) -> Result<LifetimeResult> {
    let mut server = Server::try_new(config)?;
    let mut client = Client::try_new(0, config)?;
    client.set_telemetry(telemetry.clone());
    server.set_telemetry(telemetry);
    let mut samples = vec![LifetimeSample {
        time_s: 0.0,
        ebat: 1.0,
    }];
    let mut groups_uploaded = 0usize;

    for g in 0..lt.n_groups {
        let interval_start = client.now();
        // Each group gets fresh scenes; the server is preloaded so that the
        // staged fraction of the group is cross-batch redundant. There are
        // no in-batch similars in this workload (paper: "almost no in-batch
        // similar images in each group").
        let data = disaster_batch(
            lt.seed.wrapping_add(g as u64 * 7919),
            lt.group_size,
            0,
            lt.cross_ratio,
            lt.scene,
        );
        scheme.preload_server(&mut server, &data.server_preload);
        let report = scheme.upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))?;
        if report.exhausted {
            break;
        }
        groups_uploaded += 1;

        // Idle out the rest of the interval with the screen on.
        let elapsed = client.now() - interval_start;
        if elapsed < lt.interval_s && client.idle(lt.interval_s - elapsed).is_err() {
            break;
        }
        samples.push(LifetimeSample {
            time_s: client.now(),
            ebat: client.ebat(),
        });
        if client.battery().is_empty() {
            break;
        }
    }

    Ok(LifetimeResult {
        scheme: scheme.kind().to_string(),
        lifetime_s: client.now(),
        samples,
        groups_uploaded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{Bees, DirectUpload};
    use bees_energy::Battery;
    use bees_net::BandwidthTrace;

    fn tiny_lifetime() -> LifetimeConfig {
        LifetimeConfig {
            group_size: 3,
            n_groups: 12,
            interval_s: 300.0,
            cross_ratio: 0.3,
            scene: SceneConfig {
                width: 96,
                height: 72,
                n_shapes: 8,
                texture_amp: 8.0,
            },
            seed: 5,
        }
    }

    fn config_with_small_battery() -> BeesConfig {
        let mut c = BeesConfig::default();
        c.trace = BandwidthTrace::constant(256_000.0).unwrap();
        // Small battery so the test exhausts it quickly: ~20 min of idle.
        c.battery = Battery::from_joules(1200.0);
        c
    }

    #[test]
    fn battery_discharges_monotonically_until_death() {
        let cfg = config_with_small_battery();
        let res = run_lifetime(&DirectUpload::new(&cfg), &cfg, &tiny_lifetime()).unwrap();
        assert!(res.samples.len() >= 2);
        for pair in res.samples.windows(2) {
            assert!(pair[1].ebat <= pair[0].ebat);
            assert!(pair[1].time_s > pair[0].time_s);
        }
        assert!(res.lifetime_s > 0.0);
    }

    #[test]
    fn bees_outlives_direct_upload() {
        let cfg = config_with_small_battery();
        let direct = run_lifetime(&DirectUpload::new(&cfg), &cfg, &tiny_lifetime()).unwrap();
        let bees = run_lifetime(&Bees::adaptive(&cfg), &cfg, &tiny_lifetime()).unwrap();
        assert!(
            bees.lifetime_s >= direct.lifetime_s,
            "BEES {} vs Direct {}",
            bees.lifetime_s,
            direct.lifetime_s
        );
        assert!(bees.groups_uploaded >= direct.groups_uploaded);
    }

    #[test]
    fn workload_can_outlast_battery() {
        let mut cfg = config_with_small_battery();
        cfg.battery = Battery::from_joules(1e9); // effectively infinite
        let lt = LifetimeConfig {
            n_groups: 2,
            ..tiny_lifetime()
        };
        let res = run_lifetime(&DirectUpload::new(&cfg), &cfg, &lt).unwrap();
        assert_eq!(res.groups_uploaded, 2);
        assert!(res.samples.last().unwrap().ebat > 0.99);
    }
}
