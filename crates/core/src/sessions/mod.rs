//! Long-running experiment drivers: battery lifetime (Fig. 9), multi-phone
//! coverage (Fig. 12), and the deterministic multi-device fleet.

mod coverage;
mod fleet;
mod lifetime;

pub use coverage::{run_coverage, CoverageConfig, CoverageResult};
pub use fleet::{
    run_fleet, run_fleet_traced, run_fleet_with_server, DeviceSummary, FleetConfig, FleetReport,
    PulldownConfig,
};
pub use lifetime::{
    run_lifetime, run_lifetime_traced, LifetimeConfig, LifetimeResult, LifetimeSample,
};
