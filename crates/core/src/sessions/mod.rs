//! Long-running experiment drivers: battery lifetime (Fig. 9) and
//! multi-phone coverage (Fig. 12).

mod coverage;
mod lifetime;

pub use coverage::{run_coverage, CoverageConfig, CoverageResult};
pub use lifetime::{
    run_lifetime, run_lifetime_traced, LifetimeConfig, LifetimeResult, LifetimeSample,
};
