//! Server-side airtime scheduling for a shared uplink cell.
//!
//! When a whole fleet draws airtime from one [`bees_net::SharedCell`],
//! somebody has to decide who transmits, at what fidelity, each epoch.
//! This module is that somebody: the [`AirtimeScheduler`] ranks pending
//! uploads by **marginal utility** — SSMM novelty × battery state ×
//! geotag coverage gap — and walks the ranking, admitting each device at
//! the highest [`UploadTier`] whose airtime still fits under the cell
//! budget (scaled by the validated oversubscription threshold). Devices
//! past the budget are told to *degrade before spending radio energy*:
//! full progressive upload → partial scans → thumbnail → defer.
//!
//! Two simpler policies ([`SchedulerPolicy::Fifo`] and
//! [`SchedulerPolicy::RoundRobin`]) share the same admission walk so the
//! `contention` bench compares rankings, not mechanisms. A starvation
//! bound (`max_consecutive_denials`) force-grants any device the utility
//! ranking has deferred too many epochs in a row.
//!
//! Everything here is pure integer/float arithmetic over explicit inputs
//! — no clocks, no randomness — so fleet reports stay byte-identical
//! across thread counts and shard counts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Fraction of a full-tier upload's bytes a partial-scans upload costs
/// (the first spectral bands of the progressive stream).
pub const PARTIAL_TIER_FRACTION: f64 = 0.4;
/// Fraction of a full-tier upload's bytes a thumbnail upload costs.
pub const THUMBNAIL_TIER_FRACTION: f64 = 0.1;

/// How the scheduler ranks devices competing for cell airtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Arrival order (event-queue pop order): first come, first granted.
    Fifo,
    /// A rotating cursor over device ids: fairness without content
    /// awareness.
    RoundRobin,
    /// Marginal utility: SSMM novelty × battery state × coverage gap,
    /// highest first — the BEES answer.
    Utility,
}

impl Default for SchedulerPolicy {
    /// Defaults to [`Utility`](SchedulerPolicy::Utility): the policy only
    /// engages when the shared cell is enabled, and when it is, the
    /// content-aware ranking is the one the system is built around.
    fn default() -> Self {
        SchedulerPolicy::Utility
    }
}

impl SchedulerPolicy {
    /// Stable lowercase name, used in bench output and telemetry attrs.
    pub fn as_str(&self) -> &'static str {
        match self {
            SchedulerPolicy::Fifo => "fifo",
            SchedulerPolicy::RoundRobin => "round_robin",
            SchedulerPolicy::Utility => "utility",
        }
    }
}

impl fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SchedulerPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().replace('-', "_").as_str() {
            "fifo" => Ok(SchedulerPolicy::Fifo),
            "round_robin" | "rr" => Ok(SchedulerPolicy::RoundRobin),
            "utility" => Ok(SchedulerPolicy::Utility),
            other => Err(format!("unknown scheduler policy `{other}`")),
        }
    }
}

/// The fidelity a device is granted for one epoch — the degradation
/// ladder admission control walks down under overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UploadTier {
    /// The full progressive upload at the scheme's adapted quality.
    Full,
    /// Only the leading spectral-selection scans — a deliberate partial
    /// image, ingested through the salvage machinery.
    PartialScans,
    /// A thumbnail only.
    Thumbnail,
    /// No airtime this epoch: the device idles and re-queues.
    Defer,
}

impl UploadTier {
    /// Estimated uplink bytes of this tier given the full-tier estimate.
    pub fn est_bytes(&self, full_bytes: usize) -> usize {
        match self {
            UploadTier::Full => full_bytes,
            UploadTier::PartialScans => {
                ((full_bytes as f64 * PARTIAL_TIER_FRACTION).ceil() as usize).max(1)
            }
            UploadTier::Thumbnail => {
                ((full_bytes as f64 * THUMBNAIL_TIER_FRACTION).ceil() as usize).max(1)
            }
            UploadTier::Defer => 0,
        }
    }

    /// Stable lowercase name for telemetry attributes.
    pub fn as_str(&self) -> &'static str {
        match self {
            UploadTier::Full => "full",
            UploadTier::PartialScans => "partial_scans",
            UploadTier::Thumbnail => "thumbnail",
            UploadTier::Defer => "defer",
        }
    }
}

impl fmt::Display for UploadTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One device's standing request for epoch airtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceDemand {
    /// Device index in the fleet.
    pub device: usize,
    /// Novelty proxy in `[0, 1]`: the fraction of last round's captures
    /// that survived redundancy elimination (1.0 before any history).
    pub novelty: f64,
    /// Battery fraction in `[0, 1]`.
    pub ebat: f64,
    /// Geotag coverage gap in `[0, 1]`: 1.0 when the server has nothing
    /// from this device's location yet, low when the spot is covered.
    pub coverage_gap: f64,
    /// Estimated full-tier uplink bytes for the device's pending batch.
    pub est_bytes: usize,
    /// Arrival rank in the event queue (FIFO order).
    pub arrival_order: usize,
    /// Epochs in a row this device has been denied (tier `Defer`).
    pub consecutive_denials: u32,
}

impl DeviceDemand {
    /// The marginal-utility score the `Utility` policy ranks by.
    pub fn utility(&self) -> f64 {
        let clamp = |x: f64| {
            if x.is_finite() {
                x.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        clamp(self.novelty) * clamp(self.ebat) * clamp(self.coverage_gap)
    }
}

/// One device's verdict for the epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grant {
    /// Device index.
    pub device: usize,
    /// Granted fidelity tier (`Defer` = denied).
    pub tier: UploadTier,
    /// The utility score the verdict was ranked under.
    pub utility: f64,
    /// Whether the starvation bound forced this grant past the budget.
    pub forced: bool,
}

/// The scheduler's output for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPlan {
    /// Per-demand verdicts, in the *input* demand order.
    pub grants: Vec<Grant>,
    /// Devices granted airtime (tier != `Defer`).
    pub granted: usize,
    /// Full-tier demand airtime over the epoch budget (∞ when the budget
    /// is zero but demand is not) — the oversubscription ratio.
    pub demand_ratio: f64,
}

impl EpochPlan {
    /// The grant for `device`, if it was in the demand set.
    pub fn grant_for(&self, device: usize) -> Option<&Grant> {
        self.grants.iter().find(|g| g.device == device)
    }
}

/// Issues per-epoch airtime grants under a shared-cell budget.
///
/// Stateful only for the round-robin cursor; everything else is a pure
/// function of the inputs.
#[derive(Debug, Clone)]
pub struct AirtimeScheduler {
    policy: SchedulerPolicy,
    oversubscription_threshold: f64,
    max_consecutive_denials: u32,
    rr_cursor: usize,
}

impl AirtimeScheduler {
    /// A scheduler running `policy` with the cell's admission knobs.
    pub fn new(
        policy: SchedulerPolicy,
        oversubscription_threshold: f64,
        max_consecutive_denials: u32,
    ) -> Self {
        AirtimeScheduler {
            policy,
            oversubscription_threshold: oversubscription_threshold.max(1.0),
            max_consecutive_denials: max_consecutive_denials.max(1),
            rr_cursor: 0,
        }
    }

    /// The active ranking policy.
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Plans one epoch: ranks `demands` under `policy`, then admits each
    /// device at the highest tier whose cumulative airtime (at the shared
    /// rate `capacity_bps`) stays within `budget_s` ×
    /// `oversubscription_threshold`. A device denied
    /// `max_consecutive_denials` epochs in a row is force-granted a
    /// thumbnail even past the budget.
    ///
    /// `budget_s` is the epoch length minus cell-outage overlap;
    /// `capacity_bps` is the cell capacity sampled at the epoch start.
    /// When either is zero every device defers — transmitting into a dark
    /// cell only books `Wasted` joules.
    pub fn plan_epoch(
        &mut self,
        demands: &[DeviceDemand],
        budget_s: f64,
        capacity_bps: f64,
    ) -> EpochPlan {
        let rr_cursor = self.rr_cursor;
        self.rr_cursor = self.rr_cursor.wrapping_add(1);

        if demands.is_empty() {
            return EpochPlan {
                grants: Vec::new(),
                granted: 0,
                demand_ratio: 0.0,
            };
        }

        let airtime_s = |bytes: usize| -> f64 {
            if capacity_bps <= 0.0 {
                f64::INFINITY
            } else {
                bytes as f64 * 8.0 / capacity_bps
            }
        };
        let full_demand_s: f64 = demands.iter().map(|d| airtime_s(d.est_bytes)).sum();
        let demand_ratio = if budget_s > 0.0 {
            full_demand_s / budget_s
        } else if full_demand_s > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };

        // Rank: a stable order of indices into `demands`.
        let mut order: Vec<usize> = (0..demands.len()).collect();
        match self.policy {
            SchedulerPolicy::Fifo => {
                order.sort_by_key(|&i| (demands[i].arrival_order, demands[i].device));
            }
            SchedulerPolicy::RoundRobin => {
                // Rotate device-id order by the epoch cursor.
                order.sort_by_key(|&i| demands[i].device);
                let n = order.len();
                order.rotate_left(rr_cursor % n);
            }
            SchedulerPolicy::Utility => {
                order.sort_by(|&a, &b| {
                    demands[b]
                        .utility()
                        .total_cmp(&demands[a].utility())
                        .then(demands[a].device.cmp(&demands[b].device))
                });
            }
        }
        // Starving devices jump the queue regardless of policy, keeping
        // their relative order. sort_by_key is stable.
        order.sort_by_key(|&i| demands[i].consecutive_denials < self.max_consecutive_denials);

        let allowance_s = budget_s * self.oversubscription_threshold;
        let mut spent_s = 0.0f64;
        let mut grants = vec![
            Grant {
                device: 0,
                tier: UploadTier::Defer,
                utility: 0.0,
                forced: false,
            };
            demands.len()
        ];
        let mut granted = 0usize;
        for &i in &order {
            let d = &demands[i];
            let starving = d.consecutive_denials >= self.max_consecutive_denials;
            let mut tier = UploadTier::Defer;
            for candidate in [
                UploadTier::Full,
                UploadTier::PartialScans,
                UploadTier::Thumbnail,
            ] {
                let cost = airtime_s(candidate.est_bytes(d.est_bytes));
                if spent_s + cost <= allowance_s {
                    tier = candidate;
                    break;
                }
            }
            let mut forced = false;
            if tier == UploadTier::Defer && starving && capacity_bps > 0.0 {
                // Starvation bound: the cell is up, so the device gets a
                // thumbnail slot even past the allowance.
                tier = UploadTier::Thumbnail;
                forced = true;
            }
            if tier != UploadTier::Defer {
                spent_s += airtime_s(tier.est_bytes(d.est_bytes));
                granted += 1;
            }
            grants[i] = Grant {
                device: d.device,
                tier,
                utility: d.utility(),
                forced,
            };
        }
        EpochPlan {
            grants,
            granted,
            demand_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(device: usize, novelty: f64, ebat: f64, gap: f64, bytes: usize) -> DeviceDemand {
        DeviceDemand {
            device,
            novelty,
            ebat,
            coverage_gap: gap,
            est_bytes: bytes,
            arrival_order: device,
            consecutive_denials: 0,
        }
    }

    fn sched(policy: SchedulerPolicy) -> AirtimeScheduler {
        AirtimeScheduler::new(policy, 1.0, 8)
    }

    #[test]
    fn utility_is_the_clamped_product() {
        let d = demand(0, 0.5, 0.5, 0.5, 1);
        assert!((d.utility() - 0.125).abs() < 1e-12);
        let wild = demand(0, 7.0, -1.0, f64::NAN, 1);
        assert_eq!(wild.utility(), 0.0);
    }

    #[test]
    fn undersubscribed_epochs_grant_everyone_full() {
        // 4 devices × 10_000 B = 320_000 bits over 256 Kbps = 1.25 s of
        // airtime against a 30 s budget.
        let demands: Vec<_> = (0..4).map(|d| demand(d, 1.0, 1.0, 1.0, 10_000)).collect();
        for policy in [
            SchedulerPolicy::Fifo,
            SchedulerPolicy::RoundRobin,
            SchedulerPolicy::Utility,
        ] {
            let plan = sched(policy).plan_epoch(&demands, 30.0, 256_000.0);
            assert_eq!(plan.granted, 4, "{policy}");
            assert!(plan.grants.iter().all(|g| g.tier == UploadTier::Full));
            assert!(plan.demand_ratio < 0.1);
        }
    }

    #[test]
    fn oversubscription_degrades_the_lowest_utility_first() {
        // Budget fits exactly one full upload; device 2 has the highest
        // utility and must keep Full while the others degrade.
        let demands = vec![
            demand(0, 0.2, 1.0, 1.0, 96_000),
            demand(1, 0.5, 1.0, 1.0, 96_000),
            demand(2, 1.0, 1.0, 1.0, 96_000),
        ];
        // 96_000 B = 768_000 bits at 256 Kbps = 3 s each; budget 3 s.
        let plan = sched(SchedulerPolicy::Utility).plan_epoch(&demands, 3.0, 256_000.0);
        assert_eq!(plan.grant_for(2).unwrap().tier, UploadTier::Full);
        assert!(plan.grant_for(0).unwrap().tier > UploadTier::Full);
        assert!(plan.demand_ratio >= 2.9);
        // FIFO instead favors arrival order: device 0 keeps Full.
        let plan = sched(SchedulerPolicy::Fifo).plan_epoch(&demands, 3.0, 256_000.0);
        assert_eq!(plan.grant_for(0).unwrap().tier, UploadTier::Full);
    }

    #[test]
    fn ties_break_by_device_id() {
        let demands: Vec<_> = (0..3).map(|d| demand(d, 1.0, 1.0, 1.0, 96_000)).collect();
        let plan = sched(SchedulerPolicy::Utility).plan_epoch(&demands, 3.0, 256_000.0);
        assert_eq!(plan.grant_for(0).unwrap().tier, UploadTier::Full);
        assert_ne!(plan.grant_for(2).unwrap().tier, UploadTier::Full);
    }

    #[test]
    fn round_robin_rotates_across_epochs() {
        let demands: Vec<_> = (0..3).map(|d| demand(d, 1.0, 1.0, 1.0, 96_000)).collect();
        let mut s = sched(SchedulerPolicy::RoundRobin);
        let first: Vec<_> = (0..3)
            .map(|_| {
                let plan = s.plan_epoch(&demands, 3.0, 256_000.0);
                plan.grants
                    .iter()
                    .position(|g| g.tier == UploadTier::Full)
                    .unwrap()
            })
            .collect();
        assert_eq!(first, vec![0, 1, 2], "the full slot rotates");
    }

    #[test]
    fn dark_cell_defers_everyone() {
        let demands: Vec<_> = (0..3).map(|d| demand(d, 1.0, 1.0, 1.0, 1_000)).collect();
        let mut s = sched(SchedulerPolicy::Utility);
        let plan = s.plan_epoch(&demands, 0.0, 256_000.0);
        assert_eq!(plan.granted, 0);
        assert!(plan.demand_ratio.is_infinite());
        let plan = s.plan_epoch(&demands, 30.0, 0.0);
        assert_eq!(plan.granted, 0);
        assert!(plan.grants.iter().all(|g| g.tier == UploadTier::Defer));
    }

    #[test]
    fn starvation_bound_forces_a_thumbnail_grant() {
        let mut hungry = demand(0, 0.0, 0.0, 0.0, 96_000); // utility 0
        let rich = demand(1, 1.0, 1.0, 1.0, 96_000);
        hungry.consecutive_denials = 8;
        let mut s = AirtimeScheduler::new(SchedulerPolicy::Utility, 1.0, 8);
        // Budget fits one full upload; the starving device jumps the queue.
        let plan = s.plan_epoch(&[hungry, rich], 3.0, 256_000.0);
        let g = plan.grant_for(0).unwrap();
        assert_ne!(g.tier, UploadTier::Defer, "starving device is granted");
        // Below the bound the same device is simply outranked.
        let mut s = AirtimeScheduler::new(SchedulerPolicy::Utility, 1.0, 8);
        let mut hungry = hungry;
        hungry.consecutive_denials = 7;
        let plan = s.plan_epoch(&[hungry, rich], 0.001, 256_000.0);
        assert_eq!(plan.grant_for(0).unwrap().tier, UploadTier::Defer);
    }

    #[test]
    fn threshold_stretches_the_allowance() {
        // Two full uploads need 6 s against a 3 s budget: threshold 2.0
        // admits both at Full, threshold 1.0 degrades the second.
        let demands = vec![
            demand(0, 1.0, 1.0, 1.0, 96_000),
            demand(1, 0.5, 1.0, 1.0, 96_000),
        ];
        let mut loose = AirtimeScheduler::new(SchedulerPolicy::Utility, 2.0, 8);
        let plan = loose.plan_epoch(&demands, 3.0, 256_000.0);
        assert!(plan.grants.iter().all(|g| g.tier == UploadTier::Full));
        let mut tight = AirtimeScheduler::new(SchedulerPolicy::Utility, 1.0, 8);
        let plan = tight.plan_epoch(&demands, 3.0, 256_000.0);
        assert_ne!(plan.grant_for(1).unwrap().tier, UploadTier::Full);
    }

    #[test]
    fn tier_byte_estimates_shrink_down_the_ladder() {
        let full = 100_000;
        assert_eq!(UploadTier::Full.est_bytes(full), 100_000);
        assert_eq!(UploadTier::PartialScans.est_bytes(full), 40_000);
        assert_eq!(UploadTier::Thumbnail.est_bytes(full), 10_000);
        assert_eq!(UploadTier::Defer.est_bytes(full), 0);
        // Tiny estimates never round to zero for a granted tier.
        assert_eq!(UploadTier::Thumbnail.est_bytes(1), 1);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [
            SchedulerPolicy::Fifo,
            SchedulerPolicy::RoundRobin,
            SchedulerPolicy::Utility,
        ] {
            assert_eq!(p.as_str().parse::<SchedulerPolicy>().unwrap(), p);
        }
        assert_eq!(
            "rr".parse::<SchedulerPolicy>().unwrap(),
            SchedulerPolicy::RoundRobin
        );
        assert!("bogus".parse::<SchedulerPolicy>().is_err());
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::Utility);
    }

    #[test]
    fn plans_are_deterministic() {
        let demands: Vec<_> = (0..6)
            .map(|d| {
                demand(
                    d,
                    0.1 * d as f64,
                    1.0 - 0.1 * d as f64,
                    1.0,
                    50_000 + d * 1000,
                )
            })
            .collect();
        let mut a = sched(SchedulerPolicy::Utility);
        let mut b = sched(SchedulerPolicy::Utility);
        for _ in 0..5 {
            assert_eq!(
                a.plan_epoch(&demands, 10.0, 256_000.0),
                b.plan_epoch(&demands, 10.0, 256_000.0)
            );
        }
    }
}
