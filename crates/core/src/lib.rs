#![warn(missing_docs)]

//! The BEES system: client pipeline, server, and the paper's comparison
//! schemes.
//!
//! This crate assembles every substrate into the system of Fig. 2:
//!
//! * [`Client`] — the smartphone: battery, energy ledger, simulated clock,
//!   and the bandwidth-limited channel to the server,
//! * [`Server`] — the cloud side: a feature index answering max-similarity
//!   queries (Cross-Batch Redundancy Detection) and ingesting uploads,
//! * [`schemes`] — the five upload schemes evaluated in §IV:
//!   [`DirectUpload`](schemes::DirectUpload) (baseline),
//!   [`SmartEye`](schemes::SmartEye) (PCA-SIFT + cross-batch dedup),
//!   [`Mrc`](schemes::Mrc) (ORB + cross-batch dedup + thumbnail feedback),
//!   and [`Bees`](schemes::Bees) with or without energy-aware adaptation
//!   (BEES vs BEES-EA),
//! * [`sessions`] — the long-running experiment drivers: battery lifetime
//!   (Fig. 9) and multi-phone geotagged coverage (Fig. 12).
//!
//! # Examples
//!
//! ```no_run
//! use bees_core::{BeesConfig, Client, Server};
//! use bees_core::schemes::{BatchCtx, Bees, UploadScheme};
//! use bees_datasets::{disaster_batch, SceneConfig};
//!
//! # fn main() -> Result<(), bees_core::CoreError> {
//! let config = BeesConfig::default();
//! let mut server = Server::try_new(&config)?;
//! let mut client = Client::try_new(1, &config)?;
//! let data = disaster_batch(7, 10, 1, 0.25, SceneConfig::default());
//! server.preload(bees_core::PreloadBatch::new(&data.server_preload));
//! let mut ctx = BatchCtx::new(&mut client, &mut server, &data.batch);
//! let report = Bees::adaptive(&config).upload(&mut ctx)?;
//! println!("uploaded {} of {}", report.uploaded_images, report.batch_size);
//! # Ok(())
//! # }
//! ```

mod client;
mod config;
mod error;
mod ingest;
mod report;
pub mod retrieval;
mod scheduler;
pub mod schemes;
mod server;
pub mod sessions;

pub use client::{Client, ResumableOutcome, SalvageSummary, TransmitSummary};
pub use config::{BeesConfig, IndexBackend};
pub use error::CoreError;
pub use ingest::{IngestOutcome, IngestReceipt, IngestRequest, PreloadBatch};
pub use report::BatchReport;
pub use retrieval::{Provenance, RetrievalHit, RetrievalQuery, RetrievalResult};
pub use scheduler::{
    AirtimeScheduler, DeviceDemand, EpochPlan, Grant, SchedulerPolicy, UploadTier,
    PARTIAL_TIER_FRACTION, THUMBNAIL_TIER_FRACTION,
};
pub use server::{OnDeviceImage, PartialImage, Server};

/// Shorthand result type for system operations.
pub type Result<T> = std::result::Result<T, CoreError>;
