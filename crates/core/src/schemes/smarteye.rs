//! SmartEye (Hua et al., INFOCOM 2015), reimplemented from the BEES
//! paper's description: PCA-SIFT features, cross-batch redundancy
//! elimination at the source, no in-batch detection, no approximate
//! sharing. The paper's measurements hinge on PCA-SIFT's cost: "SmartEye
//! extracts image features using PCA-SIFT that consumes more energy than
//! MRC".

use crate::schemes::cross_batch::{run_cross_batch_scheme, CrossBatchOptions};
use crate::schemes::{BatchCtx, SchemeKind, UploadScheme};
use crate::{BatchReport, BeesConfig, PreloadBatch, Result, Server};
use bees_features::pca::PcaSift;
use bees_image::RgbImage;

/// The SmartEye scheme.
pub struct SmartEye {
    extractor: PcaSift,
    threshold: f64,
    camera_quality: u8,
}

impl SmartEye {
    /// Builds SmartEye from the system configuration (PCA-SIFT with the
    /// configured deterministic basis).
    pub fn new(config: &BeesConfig) -> Self {
        SmartEye {
            extractor: PcaSift::with_seeded_basis(config.pca_sift, config.pca_basis_seed),
            threshold: config.fixed_threshold_pca,
            camera_quality: config.camera_quality,
        }
    }
}

impl UploadScheme for SmartEye {
    fn kind(&self) -> SchemeKind {
        SchemeKind::SmartEye
    }

    fn upload(&self, ctx: &mut BatchCtx<'_>) -> Result<BatchReport> {
        let opts = CrossBatchOptions {
            scheme: self.kind(),
            threshold: self.threshold,
            thumbnail_feedback: false,
            camera_quality: self.camera_quality,
        };
        run_cross_batch_scheme(&self.extractor, &opts, ctx)
    }

    fn preload_server(&self, server: &mut Server, images: &[RgbImage]) {
        // SmartEye's server index stores PCA-SIFT features; ORB preloads
        // would be invisible to its queries.
        server.preload(PreloadBatch::new(images).with_extractor(&self.extractor));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;
    use bees_datasets::{disaster_batch, SceneConfig};
    use bees_energy::EnergyCategory;
    use bees_net::BandwidthTrace;

    fn config() -> BeesConfig {
        let mut c = BeesConfig::default();
        c.trace = BandwidthTrace::constant(256_000.0).unwrap();
        c
    }

    #[test]
    fn detects_cross_batch_redundancy_with_pca_features() {
        let cfg = config();
        let scheme = SmartEye::new(&cfg);
        let mut server = Server::try_new(&cfg).unwrap();
        let mut client = Client::try_new(0, &cfg).unwrap();
        let small = SceneConfig {
            width: 96,
            height: 72,
            n_shapes: 10,
            texture_amp: 8.0,
        };
        let data = disaster_batch(11, 6, 0, 0.5, small);
        scheme.preload_server(&mut server, &data.server_preload);
        let r = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap();
        assert_eq!(r.batch_size, 6);
        assert_eq!(r.uploaded_images + r.skipped_cross_batch, 6);
        // Feature extraction energy must be nonzero and no in-batch
        // elimination ever happens.
        assert!(r.energy.get(EnergyCategory::FeatureExtraction) > 0.0);
        assert_eq!(r.skipped_in_batch, 0);
    }

    #[test]
    fn costs_more_extraction_energy_than_direct() {
        let cfg = config();
        let scheme = SmartEye::new(&cfg);
        let mut server = Server::try_new(&cfg).unwrap();
        let mut client = Client::try_new(0, &cfg).unwrap();
        let small = SceneConfig {
            width: 96,
            height: 72,
            n_shapes: 10,
            texture_amp: 8.0,
        };
        let data = disaster_batch(13, 3, 0, 0.0, small);
        let r = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap();
        // With zero redundancy, SmartEye pays extraction + features on top
        // of the same image uploads: strictly worse than Direct Upload.
        let extraction = r.energy.get(EnergyCategory::FeatureExtraction);
        assert!(extraction > 0.0);
        assert_eq!(r.uploaded_images, 3);
    }
}
