//! MRC (Dao et al., CoNEXT 2014), reimplemented from the BEES paper's
//! description (the BEES authors did the same: "due to our lack of the
//! source code of MRC, we implement the MRC based on the scheme described
//! in its paper"): ORB features, cross-batch redundancy elimination, plus
//! thumbnail feedback — the server returns a small thumbnail per redundant
//! candidate for client-side confirmation, which is why "MRC consumes a
//! little more bandwidth overhead than SmartEye".

use crate::schemes::cross_batch::{run_cross_batch_scheme, CrossBatchOptions};
use crate::schemes::{BatchCtx, SchemeKind, UploadScheme};
use crate::{BatchReport, BeesConfig, Result};
use bees_features::orb::Orb;

/// The MRC scheme.
#[derive(Debug)]
pub struct Mrc {
    extractor: Orb,
    threshold: f64,
    camera_quality: u8,
}

impl Mrc {
    /// Builds MRC from the system configuration.
    pub fn new(config: &BeesConfig) -> Self {
        Mrc {
            extractor: Orb::new(config.orb),
            threshold: config.fixed_threshold,
            camera_quality: config.camera_quality,
        }
    }
}

impl UploadScheme for Mrc {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Mrc
    }

    fn upload(&self, ctx: &mut BatchCtx<'_>) -> Result<BatchReport> {
        let opts = CrossBatchOptions {
            scheme: self.kind(),
            threshold: self.threshold,
            thumbnail_feedback: true,
            camera_quality: self.camera_quality,
        };
        run_cross_batch_scheme(&self.extractor, &opts, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::SmartEye;
    use crate::{Client, Server};
    use bees_datasets::{disaster_batch, SceneConfig};
    use bees_net::BandwidthTrace;

    fn config() -> BeesConfig {
        let mut c = BeesConfig::default();
        c.trace = BandwidthTrace::constant(256_000.0).unwrap();
        c
    }

    fn small() -> SceneConfig {
        SceneConfig {
            width: 96,
            height: 72,
            n_shapes: 10,
            texture_amp: 8.0,
        }
    }

    #[test]
    fn eliminates_staged_redundancy() {
        let cfg = config();
        let scheme = Mrc::new(&cfg);
        let mut server = Server::try_new(&cfg).unwrap();
        let mut client = Client::try_new(0, &cfg).unwrap();
        let data = disaster_batch(21, 8, 0, 0.5, small());
        scheme.preload_server(&mut server, &data.server_preload);
        let r = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap();
        assert!(
            r.skipped_cross_batch >= 3,
            "staged 4 redundant images, detected {}",
            r.skipped_cross_batch
        );
        assert_eq!(r.uploaded_images + r.skipped_cross_batch, 8);
    }

    #[test]
    fn thumbnail_feedback_adds_downlink_over_smarteye() {
        let cfg = config();
        let data = disaster_batch(22, 6, 0, 0.5, small());

        let mrc = Mrc::new(&cfg);
        let mut server_m = Server::try_new(&cfg).unwrap();
        let mut client_m = Client::try_new(0, &cfg).unwrap();
        mrc.preload_server(&mut server_m, &data.server_preload);
        let rm = mrc
            .upload(&mut BatchCtx::new(
                &mut client_m,
                &mut server_m,
                &data.batch,
            ))
            .unwrap();

        let se = SmartEye::new(&cfg);
        let mut server_s = Server::try_new(&cfg).unwrap();
        let mut client_s = Client::try_new(0, &cfg).unwrap();
        se.preload_server(&mut server_s, &data.server_preload);
        let rs = se
            .upload(&mut BatchCtx::new(
                &mut client_s,
                &mut server_s,
                &data.batch,
            ))
            .unwrap();

        if rm.skipped_cross_batch > 0 {
            assert!(
                rm.downlink_bytes > rs.downlink_bytes,
                "MRC {} vs SmartEye {}",
                rm.downlink_bytes,
                rs.downlink_bytes
            );
        }
    }

    #[test]
    fn extraction_is_cheaper_than_smarteye() {
        use bees_energy::EnergyCategory;
        let cfg = config();
        let data = disaster_batch(23, 3, 0, 0.0, small());

        let mrc = Mrc::new(&cfg);
        let mut server = Server::try_new(&cfg).unwrap();
        let mut client = Client::try_new(0, &cfg).unwrap();
        let rm = mrc
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap();

        let se = SmartEye::new(&cfg);
        let mut server2 = Server::try_new(&cfg).unwrap();
        let mut client2 = Client::try_new(0, &cfg).unwrap();
        let rs = se
            .upload(&mut BatchCtx::new(&mut client2, &mut server2, &data.batch))
            .unwrap();

        assert!(
            rm.energy.get(EnergyCategory::FeatureExtraction)
                < rs.energy.get(EnergyCategory::FeatureExtraction),
            "ORB must be cheaper than PCA-SIFT"
        );
        // Per-descriptor wire size is asserted in bees-features' PCA tests
        // (32 B vs 144 B); totals depend on each detector's keypoint count.
    }
}
