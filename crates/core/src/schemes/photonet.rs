//! A PhotoNet-like baseline: redundancy elimination by *global* features.
//!
//! PhotoNet (Uddin et al., RTSS 2011 — the BEES paper's reference [3])
//! "uses image metadata, i.e., geotags and color histograms of images, to
//! approximately evaluate and eliminate similar images". This scheme
//! reproduces the histogram half of that idea in the source-side
//! architecture: compute a 64-cell color histogram per image (far cheaper
//! than any local-feature extraction), upload the histograms, and drop
//! images whose histogram-intersection similarity against the server's
//! store exceeds a threshold.
//!
//! It exists to make the paper's §III-D claim measurable: global features
//! are cheap but markedly less accurate than local ones (see the
//! `global_vs_local` experiment), which is why BEES pays for ORB.

use crate::schemes::{transmit_or_defer, try_power, BatchCtx, Delivery, SchemeKind, UploadScheme};
use crate::{BatchReport, BeesConfig, IngestRequest, PreloadBatch, Result, RetrievalQuery, Server};
use bees_energy::EnergyCategory;
use bees_features::global::ColorHistogram;
use bees_image::RgbImage;
use bees_net::wire;
use bees_telemetry::names;

/// The PhotoNet-like scheme.
#[derive(Debug, Clone, Copy)]
pub struct PhotoNetLike {
    threshold: f64,
    camera_quality: u8,
}

impl PhotoNetLike {
    /// Builds the scheme from the system configuration.
    pub fn new(config: &BeesConfig) -> Self {
        PhotoNetLike {
            threshold: config.histogram_threshold,
            camera_quality: config.camera_quality,
        }
    }
}

impl UploadScheme for PhotoNetLike {
    fn kind(&self) -> SchemeKind {
        SchemeKind::PhotoNetLike
    }

    fn upload(&self, ctx: &mut BatchCtx<'_>) -> Result<BatchReport> {
        let tel = ctx.telemetry.clone();
        let batch = ctx.batch;
        let geotags = ctx.geotags();
        let client = &mut *ctx.client;
        let server = &mut *ctx.server;
        let mut report = BatchReport::new(self.kind().to_string(), batch.len());
        client.reset_ledger();
        let start = client.now();
        let model = *client.energy_model();

        // 1. Global feature extraction: one pass over the pixels.
        let joules_before_afe = client.ledger().total();
        let mut histograms = Vec::with_capacity(batch.len());
        for img in batch {
            let joules = model.histogram_energy(img.pixel_count());
            try_power!(
                report,
                client,
                client.spend_cpu(EnergyCategory::FeatureExtraction, joules)
            );
            histograms.push(ColorHistogram::from_image(img));
        }
        tel.span(names::AFE_ORB, start)
            .attr_str("scheme", self.kind().as_str())
            .attr_str("extractor", "histogram")
            .attr_u64("images", batch.len() as u64)
            .attr_f64("joules", client.ledger().total() - joules_before_afe)
            .close(client.now());

        // 2. Upload the histograms (256 B each) and receive verdicts. A
        //    deferred query degrades to "nothing is redundant".
        let t_query = client.now();
        let joules_before_query = client.ledger().total();
        let feature_payload = histograms.len() * ColorHistogram::WIRE_SIZE;
        let query_bytes = wire::feature_query_bytes(feature_payload);
        let redundant: Vec<bool> = match try_power!(
            report,
            client,
            transmit_or_defer(client, EnergyCategory::FeatureUpload, query_bytes)
        ) {
            Delivery::Delivered(summary) => {
                report.transfer_attempts += summary.attempts as u64;
                report.uplink_bytes += query_bytes;
                report.feature_bytes += feature_payload;
                let verdict_bytes = wire::query_response_bytes(batch.len());
                try_power!(report, client, client.receive(verdict_bytes));
                report.downlink_bytes += verdict_bytes;

                // 3. Dedup by histogram intersection. Verdicts are computed
                //    for the whole batch against the server's *current*
                //    store before any upload (as in the other cross-batch
                //    schemes): in-batch duplicates are invisible to this
                //    scheme.
                histograms
                    .iter()
                    .map(|h| {
                        server
                            .answer(&RetrievalQuery::new().similar_to_histogram(h).top_k(1))
                            .hits
                            .first()
                            .map(|hit| hit.score > self.threshold)
                            .unwrap_or(false)
                    })
                    .collect()
            }
            Delivery::Salvaged(_) => unreachable!("only BEES salvages uploads"),
            Delivery::Deferred { attempts } => {
                report.transfer_attempts += attempts as u64;
                report.feature_query_deferred = true;
                vec![false; batch.len()]
            }
        };
        report.skipped_cross_batch = redundant.iter().filter(|&&r| r).count();
        tel.span(names::ARD_QUERY, t_query)
            .attr_str("scheme", self.kind().as_str())
            .attr_u64("bytes", query_bytes as u64)
            .attr_u64("redundant", report.skipped_cross_batch as u64)
            .attr_bool("deferred", report.feature_query_deferred)
            .attr_f64("joules", client.ledger().total() - joules_before_query)
            .close(client.now());
        for (i, img) in batch.iter().enumerate() {
            if redundant[i] {
                continue;
            }
            let payload = bees_image::codec::encoded_rgb_size(img, self.camera_quality)?;
            let bytes = wire::image_upload_bytes(payload);
            match try_power!(
                report,
                client,
                transmit_or_defer(client, EnergyCategory::ImageUpload, bytes)
            ) {
                Delivery::Delivered(summary) => {
                    report.transfer_attempts += summary.attempts as u64;
                    report.uplink_bytes += bytes;
                    report.image_bytes += payload;
                    report.uploaded_images += 1;
                    server.ingest(
                        IngestRequest::full(payload)
                            .with_histogram(histograms[i].clone())
                            .maybe_geotag(geotags.map(|t| t[i])),
                    );
                }
                Delivery::Salvaged(_) => unreachable!("only BEES salvages uploads"),
                Delivery::Deferred { attempts } => {
                    report.transfer_attempts += attempts as u64;
                    report.deferred_images += 1;
                }
            }
        }

        report.total_delay_s = client.now() - start;
        report.energy = client.ledger().clone();
        Ok(report)
    }

    fn preload_server(&self, server: &mut Server, images: &[RgbImage]) {
        server.preload(PreloadBatch::histograms(images));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::Mrc;
    use crate::Client;
    use bees_datasets::{disaster_batch, SceneConfig};
    use bees_net::BandwidthTrace;

    fn config() -> BeesConfig {
        let mut c = BeesConfig::default();
        c.trace = BandwidthTrace::constant(256_000.0).unwrap();
        c
    }

    #[test]
    fn extraction_is_far_cheaper_than_orb() {
        let cfg = config();
        let data = disaster_batch(61, 4, 0, 0.0, SceneConfig::default());
        let run = |scheme: &dyn UploadScheme| {
            let mut server = Server::try_new(&cfg).unwrap();
            let mut client = Client::try_new(0, &cfg).unwrap();
            scheme
                .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
                .unwrap()
        };
        let pn = run(&PhotoNetLike::new(&cfg));
        let mrc = run(&Mrc::new(&cfg));
        let e = |r: &BatchReport| r.energy.get(EnergyCategory::FeatureExtraction);
        assert!(
            e(&pn) < e(&mrc) / 5.0,
            "photonet {} vs mrc {}",
            e(&pn),
            e(&mrc)
        );
        // And its feature payload is far smaller too.
        assert!(pn.feature_bytes < mrc.feature_bytes / 5);
    }

    #[test]
    fn detects_exact_duplicates() {
        let cfg = config();
        let data = disaster_batch(62, 6, 0, 0.5, SceneConfig::default());
        let scheme = PhotoNetLike::new(&cfg);
        let mut server = Server::try_new(&cfg).unwrap();
        scheme.preload_server(&mut server, &data.server_preload);
        let mut client = Client::try_new(0, &cfg).unwrap();
        let r = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap();
        assert_eq!(r.uploaded_images + r.skipped_cross_batch, 6);
        // Histogram dedup should catch at least some of the staged similar
        // views (they differ only by small jitter/brightness shifts).
        assert!(r.skipped_cross_batch >= 1, "no histogram dedup at all");
    }

    #[test]
    fn conservation_holds_with_exhaustion() {
        let cfg = config();
        let data = disaster_batch(63, 4, 0, 0.0, SceneConfig::default());
        let scheme = PhotoNetLike::new(&cfg);
        let mut server = Server::try_new(&cfg).unwrap();
        let mut client = Client::try_new(0, &cfg).unwrap();
        client.battery_mut().set_fraction(0.0);
        let r = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap();
        assert!(r.exhausted);
    }
}
