//! Direct Upload: the baseline that sends every image verbatim.

use crate::schemes::{transmit_or_defer, try_power, BatchCtx, Delivery, SchemeKind, UploadScheme};
use crate::{BatchReport, IngestRequest, Result};
use bees_energy::EnergyCategory;
use bees_features::ImageFeatures;
use bees_net::wire;

/// Uploads every stored photo file verbatim, with no redundancy detection.
///
/// The "file" is the camera-quality encoding of the image (phones store
/// JPEGs, not raw bitmaps), so Direct Upload's bytes are the same files the
/// feature-based schemes would have sent for their unique images.
///
/// # Examples
///
/// ```no_run
/// use bees_core::schemes::{BatchCtx, DirectUpload, UploadScheme};
/// use bees_core::{BeesConfig, Client, Server};
/// use bees_datasets::{Scene, SceneConfig, ViewJitter};
///
/// # fn main() -> Result<(), bees_core::CoreError> {
/// let config = BeesConfig::default();
/// let mut server = Server::try_new(&config)?;
/// let mut client = Client::try_new(0, &config)?;
/// let img = Scene::new(1, SceneConfig::default()).render(&ViewJitter::identity());
/// let report =
///     DirectUpload::new(&config).upload(&mut BatchCtx::new(&mut client, &mut server, &[img]))?;
/// assert_eq!(report.uploaded_images, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DirectUpload {
    camera_quality: u8,
}

impl DirectUpload {
    /// Creates the scheme with the configured stored-photo quality.
    pub fn new(config: &crate::BeesConfig) -> Self {
        DirectUpload {
            camera_quality: config.camera_quality,
        }
    }
}

impl UploadScheme for DirectUpload {
    fn kind(&self) -> SchemeKind {
        SchemeKind::DirectUpload
    }

    fn upload(&self, ctx: &mut BatchCtx<'_>) -> Result<BatchReport> {
        let batch = ctx.batch;
        let geotags = ctx.geotags();
        let client = &mut *ctx.client;
        let server = &mut *ctx.server;
        let mut report = BatchReport::new(self.kind().to_string(), batch.len());
        client.reset_ledger();
        let start = client.now();
        for (i, img) in batch.iter().enumerate() {
            // The stored photo file; encoding happened at capture time, so
            // no CPU is charged here.
            let payload = bees_image::codec::encoded_rgb_size(img, self.camera_quality)?;
            let bytes = wire::image_upload_bytes(payload);
            match try_power!(
                report,
                client,
                transmit_or_defer(client, EnergyCategory::ImageUpload, bytes)
            ) {
                Delivery::Delivered(summary) => {
                    report.transfer_attempts += summary.attempts as u64;
                    report.uplink_bytes += bytes;
                    report.image_bytes += payload;
                    report.uploaded_images += 1;
                    // Direct Upload carries no features; the server stores an
                    // empty feature set (it performs no deduplication for
                    // this scheme).
                    server.ingest(
                        IngestRequest::full(payload)
                            .with_features(ImageFeatures::empty_binary())
                            .maybe_geotag(geotags.map(|t| t[i])),
                    );
                }
                Delivery::Salvaged(_) => unreachable!("only BEES salvages uploads"),
                Delivery::Deferred { attempts } => {
                    report.transfer_attempts += attempts as u64;
                    report.deferred_images += 1;
                }
            }
            report.total_delay_s = client.now() - start;
        }
        report.total_delay_s = client.now() - start;
        report.energy = client.ledger().clone();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BeesConfig, Client, Server};
    use bees_datasets::{Scene, SceneConfig, ViewJitter};
    use bees_image::RgbImage;
    use bees_net::BandwidthTrace;

    fn setup() -> (BeesConfig, Server, Client) {
        let mut cfg = BeesConfig::default();
        cfg.trace = BandwidthTrace::constant(256_000.0).unwrap();
        let server = Server::try_new(&cfg).unwrap();
        let client = Client::try_new(0, &cfg).unwrap();
        (cfg, server, client)
    }

    fn images(n: usize) -> Vec<RgbImage> {
        (0..n)
            .map(|i| {
                Scene::new(
                    i as u64,
                    SceneConfig {
                        width: 96,
                        height: 72,
                        n_shapes: 8,
                        texture_amp: 8.0,
                    },
                )
                .render(&ViewJitter::identity())
            })
            .collect()
    }

    #[test]
    fn uploads_everything() {
        let (cfg, mut server, mut client) = setup();
        let batch = images(3);
        let r = DirectUpload::new(&cfg)
            .upload(&mut BatchCtx::new(&mut client, &mut server, &batch))
            .unwrap();
        assert_eq!(r.uploaded_images, 3);
        assert_eq!(r.skipped_cross_batch, 0);
        assert_eq!(r.skipped_in_batch, 0);
        assert_eq!(server.received_images(), 3);
        // Camera files are encoded: smaller than raw, larger than zero.
        assert!(r.image_bytes > 0);
        assert!(r.image_bytes < 3 * 96 * 72 * 3);
        assert!(r.uplink_bytes > r.image_bytes);
        assert!(!r.exhausted);
        assert!(r.total_delay_s > 0.0);
    }

    #[test]
    fn all_energy_is_image_upload() {
        let (cfg, mut server, mut client) = setup();
        let batch = images(2);
        let r = DirectUpload::new(&cfg)
            .upload(&mut BatchCtx::new(&mut client, &mut server, &batch))
            .unwrap();
        assert!(r.energy.get(EnergyCategory::ImageUpload) > 0.0);
        assert_eq!(r.energy.get(EnergyCategory::FeatureExtraction), 0.0);
        assert_eq!(r.energy.get(EnergyCategory::FeatureUpload), 0.0);
    }

    #[test]
    fn exhaustion_stops_mid_batch() {
        let (cfg, mut server, mut client) = setup();
        client.battery_mut().set_fraction(0.0);
        let batch = images(2);
        let r = DirectUpload::new(&cfg)
            .upload(&mut BatchCtx::new(&mut client, &mut server, &batch))
            .unwrap();
        assert!(r.exhausted);
        assert_eq!(r.uploaded_images, 0);
    }

    #[test]
    fn geotags_reach_the_server() {
        let (cfg, mut server, mut client) = setup();
        let batch = images(2);
        let tags = vec![(2.32, 48.86), (2.33, 48.87)];
        let mut ctx = BatchCtx::new(&mut client, &mut server, &batch)
            .with_geotags(&tags)
            .unwrap();
        DirectUpload::new(&cfg).upload(&mut ctx).unwrap();
        assert_eq!(server.unique_locations(), 2);
    }

    #[test]
    fn mismatched_geotags_are_rejected_up_front() {
        let (_cfg, mut server, mut client) = setup();
        let batch = images(2);
        let tags = vec![(2.32, 48.86)];
        let err = BatchCtx::new(&mut client, &mut server, &batch).with_geotags(&tags);
        assert!(matches!(
            err.map(|_| ()),
            Err(crate::CoreError::GeotagMismatch {
                images: 2,
                geotags: 1
            })
        ));
    }
}
