//! Shared machinery for the feature-based cross-batch-only schemes
//! (SmartEye and MRC).
//!
//! Both follow the traditional architecture of Fig. 1: extract features →
//! upload features → server answers redundancy verdicts → upload the
//! unique images verbatim. They differ only in the extractor (PCA-SIFT vs
//! ORB) and in MRC's thumbnail feedback downlink.

use crate::schemes::{transmit_or_defer, try_power, BatchCtx, Delivery, SchemeKind};
use crate::{BatchReport, IngestRequest, Result, RetrievalQuery};
use bees_energy::EnergyCategory;
use bees_features::{ExtractorKind, FeatureExtractor};
use bees_net::wire;
use bees_telemetry::names;

/// Knobs distinguishing SmartEye from MRC.
pub(crate) struct CrossBatchOptions {
    pub scheme: SchemeKind,
    /// Fixed similarity threshold `T` (neither scheme adapts it).
    pub threshold: f64,
    /// Whether the server sends a thumbnail per redundant candidate for
    /// client-side confirmation (MRC).
    pub thumbnail_feedback: bool,
    /// Stored-photo codec quality (the file that gets uploaded verbatim).
    pub camera_quality: u8,
}

/// The extractor's stable trace label (no allocation — span attributes on
/// the hot path must stay free when telemetry is disabled).
pub(crate) fn extractor_name(kind: ExtractorKind) -> &'static str {
    match kind {
        ExtractorKind::Orb => "ORB",
        ExtractorKind::Sift => "SIFT",
        ExtractorKind::PcaSift => "PCA-SIFT",
    }
}

pub(crate) fn run_cross_batch_scheme(
    extractor: &dyn FeatureExtractor,
    opts: &CrossBatchOptions,
    ctx: &mut BatchCtx<'_>,
) -> Result<BatchReport> {
    let tel = ctx.telemetry.clone();
    let batch = ctx.batch;
    let geotags = ctx.geotags();
    let client = &mut *ctx.client;
    let server = &mut *ctx.server;
    let mut report = BatchReport::new(opts.scheme.to_string(), batch.len());
    client.reset_ledger();
    let start = client.now();

    // 1. Image Feature Extraction (on the full-resolution bitmaps — these
    //    schemes have no approximate stage).
    let joules_before_afe = client.ledger().total();
    let mut features = Vec::with_capacity(batch.len());
    for img in batch {
        let gray = img.to_gray();
        let (f, stats) = extractor.extract_with_stats(&gray);
        let joules = client
            .energy_model()
            .extraction_energy(extractor.kind(), &stats);
        try_power!(
            report,
            client,
            client.spend_cpu(EnergyCategory::FeatureExtraction, joules)
        );
        features.push(f);
    }
    tel.span(names::AFE_ORB, start)
        .attr_str("scheme", opts.scheme.as_str())
        .attr_str("extractor", extractor_name(extractor.kind()))
        .attr_u64("images", batch.len() as u64)
        .attr_f64("joules", client.ledger().total() - joules_before_afe)
        .close(client.now());

    // 2. Upload the feature payload for the whole batch. If the query
    //    itself exhausts its retries, degrade gracefully: treat every image
    //    as non-redundant rather than aborting the batch.
    let t_query = client.now();
    let joules_before_query = client.ledger().total();
    let feature_payload: usize = features.iter().map(|f| f.wire_size()).sum();
    let query_bytes = wire::feature_query_bytes(feature_payload);
    let redundant: Vec<bool> = match try_power!(
        report,
        client,
        transmit_or_defer(client, EnergyCategory::FeatureUpload, query_bytes)
    ) {
        Delivery::Delivered(summary) => {
            report.transfer_attempts += summary.attempts as u64;
            report.uplink_bytes += query_bytes;
            report.feature_bytes += feature_payload;

            // 3. Server answers one verdict per image.
            let verdict_bytes = wire::query_response_bytes(batch.len());
            try_power!(report, client, client.receive(verdict_bytes));
            report.downlink_bytes += verdict_bytes;

            features
                .iter()
                .map(|f| {
                    server
                        .answer(&RetrievalQuery::new().similar_to(f).top_k(1))
                        .hits
                        .first()
                        .map(|hit| hit.score > opts.threshold)
                        .unwrap_or(false)
                })
                .collect()
        }
        Delivery::Salvaged(_) => unreachable!("only BEES salvages uploads"),
        Delivery::Deferred { attempts } => {
            report.transfer_attempts += attempts as u64;
            report.feature_query_deferred = true;
            vec![false; batch.len()]
        }
    };
    let n_redundant = redundant.iter().filter(|&&r| r).count();
    report.skipped_cross_batch = n_redundant;

    // 4. MRC: the server sends a thumbnail per redundant candidate so the
    //    client can confirm the match before dropping the image.
    if opts.thumbnail_feedback && n_redundant > 0 {
        let thumb_bytes = wire::thumbnail_feedback_bytes(n_redundant);
        try_power!(report, client, client.receive(thumb_bytes));
        report.downlink_bytes += thumb_bytes;
    }
    tel.span(names::ARD_QUERY, t_query)
        .attr_str("scheme", opts.scheme.as_str())
        .attr_u64("bytes", query_bytes as u64)
        .attr_u64("redundant", n_redundant as u64)
        .attr_bool("deferred", report.feature_query_deferred)
        .attr_f64("joules", client.ledger().total() - joules_before_query)
        .close(client.now());

    // 5. Upload the unique images verbatim; the server indexes the features
    //    it already received.
    for (i, img) in batch.iter().enumerate() {
        if redundant[i] {
            continue;
        }
        // The stored photo file (encoded at capture time; no CPU charged).
        let payload = bees_image::codec::encoded_rgb_size(img, opts.camera_quality)?;
        let bytes = wire::image_upload_bytes(payload);
        match try_power!(
            report,
            client,
            transmit_or_defer(client, EnergyCategory::ImageUpload, bytes)
        ) {
            Delivery::Delivered(summary) => {
                report.transfer_attempts += summary.attempts as u64;
                report.uplink_bytes += bytes;
                report.image_bytes += payload;
                report.uploaded_images += 1;
                server.ingest(
                    IngestRequest::full(payload)
                        .with_features(features[i].clone())
                        .maybe_geotag(geotags.map(|t| t[i])),
                );
            }
            Delivery::Salvaged(_) => unreachable!("only BEES salvages uploads"),
            Delivery::Deferred { attempts } => {
                report.transfer_attempts += attempts as u64;
                report.deferred_images += 1;
            }
        }
    }

    report.total_delay_s = client.now() - start;
    report.energy = client.ledger().clone();
    Ok(report)
}
