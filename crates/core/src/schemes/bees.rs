//! BEES: Approximate Image Sharing with energy-aware adaptation.
//!
//! The full pipeline of Fig. 2, per batch:
//!
//! 1. **AFE** — compress each bitmap by the EAC proportion
//!    `C = 0.4 − 0.4·Ebat`, then extract ORB features from the compressed
//!    bitmap,
//! 2. **CBRD** — upload the features, receive per-image verdicts, and drop
//!    images whose max server similarity exceeds the EDR threshold
//!    `T = T0 + k·Ebat`,
//! 3. **IBRD** — build the pairwise similarity graph over the survivors and
//!    run SSMM (partition at `Tw`, budget = #subgraphs, greedy
//!    coverage+diversity maximization) to pick the unique subset,
//! 4. **AIU** — resolution-compress each selected image by the EAU
//!    proportion `Cr = 0.8 − 0.8·Ebat`, quality-compress with the DCT codec
//!    at the fixed 0.85 proportion, and upload as a *progressive*
//!    (spectral-selection) stream so a cut transfer's confirmed chunk
//!    prefix still decodes into a usable partial image. The degradation
//!    ladder per image is full → salvaged-partial → thumbnail → defer.
//!
//! `BEES-EA` is the ablation without adaptation: identical pipeline with
//! every scheme frozen at its `Ebat = 1` value (no bitmap compression,
//! highest threshold, no resolution compression) — quality compression,
//! ORB, and both redundancy eliminations still apply.

use crate::schemes::{
    transmit_or_defer, transmit_or_salvage, try_power, BatchCtx, Delivery, SchemeKind, UploadScheme,
};
use crate::{
    BatchReport, BeesConfig, Client, IngestRequest, PartialImage, Result, RetrievalQuery,
    UploadTier,
};
use bees_energy::{AdaptiveScheme, EnergyCategory, LinearScheme};
use bees_features::orb::Orb;
use bees_features::similarity::{jaccard_similarity, jaccard_similarity_blocks};
use bees_features::{FeatureExtractor, ImageFeatures};
use bees_image::codec::progressive;
use bees_image::metrics::ssim;
use bees_image::{codec, resize};
use bees_net::wire;
use bees_submodular::{SimilarityGraph, Ssmm};
use bees_telemetry::names;

/// Resolution-compression proportion of the degraded (thumbnail) upload
/// tried after the full-quality upload exhausts its retries: 75 % of the
/// pixel information is discarded.
const THUMBNAIL_RESOLUTION_PROPORTION: f64 = 0.75;
/// Codec quality of the degraded upload — a recognizable but very small
/// rendition, so *some* situational awareness still reaches the server.
const THUMBNAIL_QUALITY: u8 = 20;

/// The BEES scheme (or BEES-EA when adaptation is disabled).
pub struct Bees {
    extractor: Orb,
    eac: LinearScheme,
    edr: LinearScheme,
    tw: LinearScheme,
    eau: LinearScheme,
    ssmm: Ssmm,
    similarity: bees_features::similarity::SimilarityConfig,
    upload_quality: u8,
    camera_quality: u8,
    adaptive: bool,
    salvage_partials: bool,
    chunk_bytes: usize,
}

impl Bees {
    /// Full BEES with energy-aware adaptation.
    pub fn adaptive(config: &BeesConfig) -> Self {
        Self::build(config, true)
    }

    /// BEES-EA: the same pipeline with every EAAS scheme frozen at its
    /// `Ebat = 1` value.
    pub fn without_adaptation(config: &BeesConfig) -> Self {
        Self::build(config, false)
    }

    fn build(config: &BeesConfig, adaptive: bool) -> Self {
        Bees {
            extractor: Orb::new(config.orb),
            eac: config.eac,
            edr: config.edr,
            tw: config.tw,
            eau: config.eau,
            ssmm: Ssmm::new(config.ssmm),
            similarity: config.similarity,
            upload_quality: config.upload_quality(),
            camera_quality: config.camera_quality,
            adaptive,
            salvage_partials: config.salvage_partials,
            chunk_bytes: config.retry.chunk_bytes,
        }
    }

    /// The `Ebat` the EAAS schemes see: the real battery fraction when
    /// adaptive, a constant 1.0 for BEES-EA.
    fn effective_ebat(&self, client: &Client) -> f64 {
        if self.adaptive {
            client.ebat()
        } else {
            1.0
        }
    }
}

impl UploadScheme for Bees {
    fn kind(&self) -> SchemeKind {
        if self.adaptive {
            SchemeKind::Bees
        } else {
            SchemeKind::BeesEa
        }
    }

    fn upload(&self, ctx: &mut BatchCtx<'_>) -> Result<BatchReport> {
        let tel = ctx.telemetry.clone();
        let batch = ctx.batch;
        let geotags = ctx.geotags();
        let tier = ctx.tier();
        let catalog = ctx.deferral_catalog();
        let client = &mut *ctx.client;
        let server = &mut *ctx.server;
        let mut report = BatchReport::new(self.kind().to_string(), batch.len());
        client.reset_ledger();
        let start = client.now();
        let model = *client.energy_model();

        // ---- Stage 1: Approximate Feature Extraction --------------------
        let joules_before_afe = client.ledger().total();
        let mut features: Vec<ImageFeatures> = Vec::with_capacity(batch.len());
        for img in batch {
            let ebat = self.effective_ebat(client);
            let c = self.eac.value(ebat);
            let gray = img.to_gray();
            let resize_j = model.resize_energy(gray.pixel_count());
            try_power!(
                report,
                client,
                client.spend_cpu(EnergyCategory::Compression, resize_j)
            );
            let compressed = resize::compress_bitmap(&gray, c)?;
            let (f, stats) = self.extractor.extract_with_stats(&compressed);
            let extract_j = model.extraction_energy(self.extractor.kind(), &stats);
            try_power!(
                report,
                client,
                client.spend_cpu(EnergyCategory::FeatureExtraction, extract_j)
            );
            features.push(f);
        }
        tel.span(names::AFE_ORB, start)
            .attr_str("scheme", self.kind().as_str())
            .attr_str("extractor", "ORB")
            .attr_u64("images", batch.len() as u64)
            .attr_f64("joules", client.ledger().total() - joules_before_afe)
            .close(client.now());

        // ---- Stage 2: Cross-Batch Redundancy Detection -------------------
        // A deferred feature query degrades gracefully: every image is
        // treated as non-redundant (the in-batch stage still runs locally).
        let t_query = client.now();
        let joules_before_query = client.ledger().total();
        let feature_payload: usize = features.iter().map(|f| f.wire_size()).sum();
        let query_bytes = wire::feature_query_bytes(feature_payload);
        let mut survivors: Vec<usize> = Vec::with_capacity(batch.len());
        // A deferred grant spends no radio energy at all: the feature query
        // is skipped the same way a failed one degrades.
        let query_delivery = if tier == UploadTier::Defer {
            Delivery::Deferred { attempts: 0 }
        } else {
            try_power!(
                report,
                client,
                transmit_or_defer(client, EnergyCategory::FeatureUpload, query_bytes)
            )
        };
        match query_delivery {
            Delivery::Delivered(summary) => {
                report.transfer_attempts += summary.attempts as u64;
                report.corrupt_chunks_detected += summary.corrupt_chunks_detected;
                report.uplink_bytes += query_bytes;
                report.feature_bytes += feature_payload;

                let verdict_bytes = wire::query_response_bytes(batch.len());
                try_power!(report, client, client.receive(verdict_bytes));
                report.downlink_bytes += verdict_bytes;

                let t = self.edr.value(self.effective_ebat(client));
                for (i, f) in features.iter().enumerate() {
                    let redundant = server
                        .answer(&RetrievalQuery::new().similar_to(f).top_k(1))
                        .hits
                        .first()
                        .map(|hit| hit.score > t)
                        .unwrap_or(false);
                    if redundant {
                        report.skipped_cross_batch += 1;
                    } else {
                        survivors.push(i);
                    }
                }
            }
            Delivery::Salvaged(_) => unreachable!("feature queries go through the defer path"),
            Delivery::Deferred { attempts } => {
                report.transfer_attempts += attempts as u64;
                report.feature_query_deferred = true;
                survivors.extend(0..batch.len());
            }
        }
        tel.span(names::ARD_QUERY, t_query)
            .attr_str("scheme", self.kind().as_str())
            .attr_u64("bytes", query_bytes as u64)
            .attr_u64("redundant", report.skipped_cross_batch as u64)
            .attr_bool("deferred", report.feature_query_deferred)
            .attr_f64("joules", client.ledger().total() - joules_before_query)
            .close(client.now());

        // ---- Stage 3: In-Batch Redundancy Detection (SSMM) ---------------
        let t_ssmm = client.now();
        let joules_before_ssmm = client.ledger().total();
        let n_survivors = survivors.len();
        let selected: Vec<usize> = if survivors.len() > 1 {
            // Pairwise matching cost on the phone.
            let mut pair_j = 0.0;
            for (a, &i) in survivors.iter().enumerate() {
                for &j in survivors.iter().skip(a + 1) {
                    pair_j += model.matching_energy(features[i].len(), features[j].len());
                }
            }
            try_power!(
                report,
                client,
                client.spend_cpu(EnergyCategory::FeatureExtraction, pair_j)
            );
            // The pairwise Jaccard closure is pure, so the graph can be
            // built row-parallel without changing a single weight. Each
            // survivor's descriptors are packed into a SoA block once here,
            // then reused across all O(n²) pairings; vector feature sets
            // (no block) fall back to the general scorer.
            let blocks: Vec<Option<bees_features::DescriptorBlock>> = survivors
                .iter()
                .map(|&i| features[i].descriptors.to_block())
                .collect();
            let graph = SimilarityGraph::from_pairwise_par(survivors.len(), |a, b| {
                match (&blocks[a], &blocks[b]) {
                    (Some(ba), Some(bb)) => jaccard_similarity_blocks(ba, bb, &self.similarity),
                    _ => jaccard_similarity(
                        &features[survivors[a]],
                        &features[survivors[b]],
                        &self.similarity,
                    ),
                }
            });
            let tw = self.tw.value(self.effective_ebat(client));
            let summary = self.ssmm.summarize(&graph, tw);
            report.skipped_in_batch = survivors.len() - summary.selected.len();
            summary
                .selected
                .iter()
                .map(|&local| survivors[local])
                .collect()
        } else {
            survivors
        };
        tel.span(names::ARD_SSMM, t_ssmm)
            .attr_str("scheme", self.kind().as_str())
            .attr_u64("survivors", n_survivors as u64)
            .attr_u64("selected", selected.len() as u64)
            .attr_f64("joules", client.ledger().total() - joules_before_ssmm)
            .close(client.now());

        // ---- Stage 4: Approximate Image Uploading ------------------------
        // Degradation ladder per image: progressive full-quality upload →
        // (on retry exhaustion) salvage the banked scan prefix as a partial
        // image → (nothing decodable) thumbnail-quality upload → (again
        // exhausted) defer.
        let t_aiu = client.now();
        let joules_before_aiu = client.ledger().total();
        for &i in &selected {
            if tier == UploadTier::Defer {
                report.deferred_images += 1;
                if let Some(device) = catalog {
                    // The catalog bills a later pull-down for the stored
                    // camera-quality photo file; encoding happened at
                    // capture, so sizing it costs no CPU here.
                    server.ingest(
                        IngestRequest::on_device(
                            device,
                            codec::encoded_rgb_size(&batch[i], self.camera_quality)?,
                        )
                        .with_features(features[i].clone())
                        .maybe_geotag(geotags.map(|g| g[i])),
                    );
                }
                continue;
            }
            // `Some(attempts)` sends the image down the thumbnail rung.
            let mut fall_back: Option<u32> = None;
            if tier == UploadTier::Thumbnail {
                // The grant only covers a thumbnail: skip the full-quality
                // attempt instead of burning airtime it would lose anyway.
                fall_back = Some(0);
            } else {
                let ebat = self.effective_ebat(client);
                let cr = self.eau.value(ebat);
                let resize_j = model.resize_energy(batch[i].pixel_count());
                try_power!(
                    report,
                    client,
                    client.spend_cpu(EnergyCategory::Compression, resize_j)
                );
                let shrunk = resize::compress_resolution_rgb(&batch[i], cr)?;
                let encode_j = model.encode_energy(shrunk.pixel_count());
                try_power!(
                    report,
                    client,
                    client.spend_cpu(EnergyCategory::Compression, encode_j)
                );
                let full_payload =
                    progressive::encode_progressive_rgb(&shrunk, self.upload_quality)?;
                // A PartialScans grant transmits only a prefix of the
                // progressive stream; whatever it delivers is ingested
                // through the partial-image machinery, upgradeable later.
                let send_len = if tier == UploadTier::PartialScans {
                    tier.est_bytes(full_payload.len()).min(full_payload.len())
                } else {
                    full_payload.len()
                };
                let capped = send_len < full_payload.len();
                let payload = &full_payload[..send_len];
                let bytes = wire::framed_upload_bytes(payload.len(), self.chunk_bytes);
                let delivery = if self.salvage_partials || capped {
                    try_power!(
                        report,
                        client,
                        transmit_or_salvage(client, EnergyCategory::ImageUpload, bytes)
                    )
                } else {
                    try_power!(
                        report,
                        client,
                        transmit_or_defer(client, EnergyCategory::ImageUpload, bytes)
                    )
                };
                match delivery {
                    Delivery::Delivered(summary) => {
                        report.transfer_attempts += summary.attempts as u64;
                        report.corrupt_chunks_detected += summary.corrupt_chunks_detected;
                        if capped {
                            match progressive::decode_partial(payload) {
                                Ok((decoded, progress)) => {
                                    let s = ssim(&shrunk.to_gray(), &decoded.to_gray())?;
                                    report.uplink_bytes += bytes;
                                    report.image_bytes += payload.len();
                                    report.salvaged_images += 1;
                                    report.salvage_ssim_sum += s;
                                    server.ingest(
                                        IngestRequest::partial(PartialImage {
                                            scans_complete: progress.scans_complete,
                                            scans_total: progress.scans_total,
                                            payload_bytes: payload.len(),
                                            total_bytes: full_payload.len(),
                                            ssim_estimate: s,
                                        })
                                        .with_bytes(payload.to_vec())
                                        .with_features(features[i].clone())
                                        .maybe_geotag(geotags.map(|g| g[i])),
                                    );
                                    let now = client.now();
                                    tel.span(names::AIU_SCAN, now)
                                        .attr_str("scheme", self.kind().as_str())
                                        .attr_u64("scans", progress.scans_complete as u64)
                                        .attr_u64("scans_total", progress.scans_total as u64)
                                        .attr_u64("payload_bytes", payload.len() as u64)
                                        .attr_f64("ssim", s)
                                        .close(now);
                                }
                                Err(_) => {
                                    // The granted prefix ends before even
                                    // the DC scan completes: nothing
                                    // decodable reached the server, so the
                                    // ladder falls through to the thumbnail
                                    // rung.
                                    fall_back = Some(0);
                                }
                            }
                        } else {
                            report.uplink_bytes += bytes;
                            report.image_bytes += payload.len();
                            report.uploaded_images += 1;
                            server.ingest(
                                IngestRequest::full(payload.len())
                                    .with_bytes(payload.to_vec())
                                    .with_features(features[i].clone())
                                    .maybe_geotag(geotags.map(|g| g[i])),
                            );
                        }
                    }
                    Delivery::Salvaged(summary) => {
                        report.transfer_attempts += summary.attempts as u64;
                        report.corrupt_chunks_detected += summary.corrupt_chunks_detected;
                        let prefix = wire::salvaged_payload_bytes(
                            summary.banked_bytes,
                            payload.len(),
                            self.chunk_bytes,
                        );
                        match progressive::decode_partial(&payload[..prefix]) {
                            Ok((decoded, progress)) => {
                                let s = ssim(&shrunk.to_gray(), &decoded.to_gray())?;
                                report.uplink_bytes += summary.banked_bytes;
                                report.image_bytes += prefix;
                                report.salvaged_images += 1;
                                report.salvage_ssim_sum += s;
                                server.ingest(
                                    IngestRequest::partial(PartialImage {
                                        scans_complete: progress.scans_complete,
                                        scans_total: progress.scans_total,
                                        payload_bytes: prefix,
                                        total_bytes: full_payload.len(),
                                        ssim_estimate: s,
                                    })
                                    .with_bytes(payload[..prefix].to_vec())
                                    .with_features(features[i].clone())
                                    .maybe_geotag(geotags.map(|g| g[i])),
                                );
                                let now = client.now();
                                tel.span(names::AIU_SCAN, now)
                                    .attr_str("scheme", self.kind().as_str())
                                    .attr_u64("scans", progress.scans_complete as u64)
                                    .attr_u64("scans_total", progress.scans_total as u64)
                                    .attr_u64("payload_bytes", prefix as u64)
                                    .attr_f64("ssim", s)
                                    .close(now);
                            }
                            Err(_) => {
                                // The banked prefix ends before the DC scan
                                // completes: nothing decodable was bought, so
                                // the energy goes back to waste and the ladder
                                // falls through to the thumbnail rung.
                                client.demote_salvage(summary.salvaged_joules);
                                fall_back = Some(0);
                            }
                        }
                    }
                    Delivery::Deferred { attempts } => fall_back = Some(attempts),
                }
            }
            if let Some(attempts) = fall_back {
                report.transfer_attempts += attempts as u64;
                let resize_j = model.resize_energy(batch[i].pixel_count());
                try_power!(
                    report,
                    client,
                    client.spend_cpu(EnergyCategory::Compression, resize_j)
                );
                let thumb =
                    resize::compress_resolution_rgb(&batch[i], THUMBNAIL_RESOLUTION_PROPORTION)?;
                let encode_j = model.encode_energy(thumb.pixel_count());
                try_power!(
                    report,
                    client,
                    client.spend_cpu(EnergyCategory::Compression, encode_j)
                );
                let thumb_payload = codec::encode_rgb(&thumb, THUMBNAIL_QUALITY)?;
                let thumb_bytes = wire::image_upload_bytes(thumb_payload.len());
                match try_power!(
                    report,
                    client,
                    transmit_or_defer(client, EnergyCategory::ImageUpload, thumb_bytes)
                ) {
                    Delivery::Delivered(summary) => {
                        report.transfer_attempts += summary.attempts as u64;
                        report.corrupt_chunks_detected += summary.corrupt_chunks_detected;
                        report.uplink_bytes += thumb_bytes;
                        report.image_bytes += thumb_payload.len();
                        report.degraded_images += 1;
                        server.ingest(
                            IngestRequest::thumbnail(thumb_payload.len())
                                .with_bytes(thumb_payload.clone())
                                .with_features(features[i].clone())
                                .maybe_geotag(geotags.map(|g| g[i])),
                        );
                    }
                    Delivery::Salvaged(_) => {
                        unreachable!("thumbnails go through the defer path")
                    }
                    Delivery::Deferred { attempts } => {
                        report.transfer_attempts += attempts as u64;
                        report.deferred_images += 1;
                        if let Some(device) = catalog {
                            server.ingest(
                                IngestRequest::on_device(
                                    device,
                                    codec::encoded_rgb_size(&batch[i], self.camera_quality)?,
                                )
                                .with_features(features[i].clone())
                                .maybe_geotag(geotags.map(|g| g[i])),
                            );
                        }
                    }
                }
            }
        }
        tel.span(names::AIU_ENCODE, t_aiu)
            .attr_str("scheme", self.kind().as_str())
            .attr_u64("selected", selected.len() as u64)
            .attr_u64("uploaded", report.uploaded_images as u64)
            .attr_u64("salvaged", report.salvaged_images as u64)
            .attr_u64("degraded", report.degraded_images as u64)
            .attr_u64("bytes", report.image_bytes as u64)
            .attr_f64("joules", client.ledger().total() - joules_before_aiu)
            .close(client.now());

        report.total_delay_s = client.now() - start;
        report.energy = client.ledger().clone();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::DirectUpload;
    use crate::Server;
    use bees_datasets::{disaster_batch, SceneConfig};
    use bees_net::BandwidthTrace;

    fn config() -> BeesConfig {
        let mut c = BeesConfig::default();
        c.trace = BandwidthTrace::constant(256_000.0).unwrap();
        c
    }

    fn small() -> SceneConfig {
        SceneConfig {
            width: 96,
            height: 72,
            n_shapes: 10,
            texture_amp: 8.0,
        }
    }

    #[test]
    fn eliminates_both_redundancy_kinds() {
        let cfg = config();
        let scheme = Bees::adaptive(&cfg);
        let mut server = Server::try_new(&cfg).unwrap();
        let mut client = Client::try_new(0, &cfg).unwrap();
        // 10 images: 2 in-batch extras, 25% cross-batch (2-3 images).
        let data = disaster_batch(31, 10, 2, 0.25, small());
        scheme.preload_server(&mut server, &data.server_preload);
        let r = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap();
        assert!(
            r.skipped_cross_batch >= 1,
            "cross-batch: {}",
            r.skipped_cross_batch
        );
        assert!(r.skipped_in_batch >= 1, "in-batch: {}", r.skipped_in_batch);
        assert_eq!(
            r.uploaded_images + r.skipped_cross_batch + r.skipped_in_batch,
            r.batch_size
        );
    }

    #[test]
    fn uses_far_less_bandwidth_than_direct_even_without_redundancy() {
        let cfg = config();
        // Realistic scene sizes: with tiny test scenes the camera files are
        // no larger than feature payloads and the comparison is meaningless.
        let data = disaster_batch(32, 5, 0, 0.0, SceneConfig::default());

        let mut server1 = Server::try_new(&cfg).unwrap();
        let mut client1 = Client::try_new(0, &cfg).unwrap();
        let rb = Bees::adaptive(&cfg)
            .upload(&mut BatchCtx::new(&mut client1, &mut server1, &data.batch))
            .unwrap();

        let mut server2 = Server::try_new(&cfg).unwrap();
        let mut client2 = Client::try_new(0, &cfg).unwrap();
        let rd = DirectUpload::new(&cfg)
            .upload(&mut BatchCtx::new(&mut client2, &mut server2, &data.batch))
            .unwrap();

        assert!(
            (rb.bandwidth_bytes() as f64) < 0.5 * rd.bandwidth_bytes() as f64,
            "BEES {} vs Direct {}",
            rb.bandwidth_bytes(),
            rd.bandwidth_bytes()
        );
        assert!(rb.active_energy() < rd.active_energy());
    }

    #[test]
    fn low_battery_uploads_smaller_images() {
        let cfg = config();
        let data = disaster_batch(33, 3, 0, 0.0, small());

        let mut server1 = Server::try_new(&cfg).unwrap();
        let mut client1 = Client::try_new(0, &cfg).unwrap();
        let r_full = Bees::adaptive(&cfg)
            .upload(&mut BatchCtx::new(&mut client1, &mut server1, &data.batch))
            .unwrap();

        let mut server2 = Server::try_new(&cfg).unwrap();
        let mut client2 = Client::try_new(0, &cfg).unwrap();
        client2.battery_mut().set_fraction(0.1);
        let r_low = Bees::adaptive(&cfg)
            .upload(&mut BatchCtx::new(&mut client2, &mut server2, &data.batch))
            .unwrap();

        assert!(
            r_low.image_bytes < r_full.image_bytes,
            "low battery {} vs full {}",
            r_low.image_bytes,
            r_full.image_bytes
        );
    }

    #[test]
    fn bees_ea_ignores_battery_level() {
        let cfg = config();
        let data = disaster_batch(34, 3, 0, 0.0, small());

        let run = |fraction: f64| {
            let mut server = Server::try_new(&cfg).unwrap();
            let mut client = Client::try_new(0, &cfg).unwrap();
            client.battery_mut().set_fraction(fraction);
            Bees::without_adaptation(&cfg)
                .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
                .unwrap()
        };
        let full = run(1.0);
        let low = run(0.3);
        assert_eq!(full.image_bytes, low.image_bytes);
        assert_eq!(full.uploaded_images, low.uploaded_images);
    }

    #[test]
    fn adaptive_saves_energy_at_low_battery_vs_ea() {
        let cfg = config();
        let data = disaster_batch(35, 4, 0, 0.0, small());
        let run = |adaptive: bool| {
            let mut server = Server::try_new(&cfg).unwrap();
            let mut client = Client::try_new(0, &cfg).unwrap();
            client.battery_mut().set_fraction(0.15);
            let scheme = if adaptive {
                Bees::adaptive(&cfg)
            } else {
                Bees::without_adaptation(&cfg)
            };
            scheme
                .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
                .unwrap()
        };
        let r_adaptive = run(true);
        let r_ea = run(false);
        assert!(
            r_adaptive.active_energy() < r_ea.active_energy(),
            "adaptive {} vs EA {}",
            r_adaptive.active_energy(),
            r_ea.active_energy()
        );
    }

    #[test]
    fn faults_degrade_instead_of_aborting() {
        // A hostile channel (85 % of attempts cut) with a tight retry
        // budget: the batch must still complete without panicking or
        // erroring, every image accounted for as uploaded, degraded,
        // deferred, or skipped, and the failed attempts' energy recorded.
        let mut cfg = config();
        cfg.battery = bees_energy::Battery::from_joules(1e9);
        cfg.fault = bees_net::FaultModel::new(0xDE6, 0.85, 0.0, 30.0, 10.0).unwrap();
        cfg.retry.max_attempts = 2;
        let data = disaster_batch(44, 6, 1, 0.25, small());
        let scheme = Bees::adaptive(&cfg);
        let mut server = Server::try_new(&cfg).unwrap();
        scheme.preload_server(&mut server, &data.server_preload);
        let mut client = Client::try_new(0, &cfg).unwrap();
        let r = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap();
        assert!(!r.exhausted);
        assert_eq!(
            r.uploaded_images
                + r.salvaged_images
                + r.degraded_images
                + r.deferred_images
                + r.skipped_cross_batch
                + r.skipped_in_batch,
            r.batch_size,
            "every image must be accounted for: {r:?}"
        );
        assert!(
            r.salvaged_images + r.degraded_images + r.deferred_images > 0,
            "an 85% drop rate with budget 2 must force the ladder down: {r:?}"
        );
        assert!(
            r.wasted_energy() > 0.0,
            "cut attempts must burn recorded energy"
        );
        assert!(r.transfer_attempts >= (r.uploaded_images + r.degraded_images) as u64);
        // The same run twice is byte-identical (fault injection is seeded).
        let mut server2 = Server::try_new(&cfg).unwrap();
        scheme.preload_server(&mut server2, &data.server_preload);
        let mut client2 = Client::try_new(0, &cfg).unwrap();
        let r2 = scheme
            .upload(&mut BatchCtx::new(&mut client2, &mut server2, &data.batch))
            .unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn cut_uploads_salvage_partials_and_shrink_the_wasted_bucket() {
        // A hostile channel cuts most attempts and the budget is tight, so
        // full uploads rarely finish. With salvage on, the banked scan
        // prefixes become partial images on the server; with salvage off
        // (the pre-salvage ladder) the same joules are written off as
        // waste. Equal seeds throughout.
        let mut cfg = config();
        cfg.battery = bees_energy::Battery::from_joules(1e9);
        cfg.fault = bees_net::FaultModel::new(0x5A17A6E, 0.9, 0.0, 1e9, 1.0).unwrap();
        // Three attempts whose cuts each bank 5–95% of the *remaining*
        // bytes leave most exhausted transfers with a couple of complete
        // scans; 128-byte chunks keep the banked prefix fine-grained
        // relative to the ~500-byte progressive payloads.
        cfg.retry.max_attempts = 3;
        cfg.retry.chunk_bytes = 128;
        let data = disaster_batch(45, 5, 0, 0.0, small());
        let run = |salvage: bool| {
            let mut c = cfg.clone();
            c.salvage_partials = salvage;
            let scheme = Bees::adaptive(&c);
            let mut server = Server::try_new(&c).unwrap();
            let mut client = Client::try_new(0, &c).unwrap();
            let r = scheme
                .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
                .unwrap();
            (r, server)
        };
        let (on, srv_on) = run(true);
        let (off, srv_off) = run(false);
        assert!(on.salvaged_images > 0, "no upload salvaged: {on:?}");
        assert!(
            on.salvage_ssim_sum / on.salvaged_images as f64 > 0.5,
            "mean salvage ssim {}",
            on.salvage_ssim_sum / on.salvaged_images as f64
        );
        assert_eq!(srv_on.partial_images().len(), on.salvaged_images);
        for (r, label) in [(&on, "on"), (&off, "off")] {
            assert_eq!(
                r.uploaded_images
                    + r.salvaged_images
                    + r.degraded_images
                    + r.deferred_images
                    + r.skipped_cross_batch
                    + r.skipped_in_batch,
                r.batch_size,
                "conservation with salvage {label}: {r:?}"
            );
        }
        assert_eq!(off.salvaged_images, 0);
        assert!(srv_off.partial_images().is_empty());
        assert!(
            on.wasted_energy() + 1e-9 < off.wasted_energy(),
            "salvage must strictly shrink waste: on {} vs off {}",
            on.wasted_energy(),
            off.wasted_energy()
        );
    }

    #[test]
    fn partial_scans_tier_uploads_a_prefix_per_image() {
        let cfg = config();
        let data = disaster_batch(46, 4, 0, 0.0, small());
        let run = |tier: UploadTier| {
            let scheme = Bees::adaptive(&cfg);
            let mut server = Server::try_new(&cfg).unwrap();
            let mut client = Client::try_new(0, &cfg).unwrap();
            let r = scheme
                .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch).with_tier(tier))
                .unwrap();
            (r, server)
        };
        let (full, _) = run(UploadTier::Full);
        let (partial, srv) = run(UploadTier::PartialScans);
        assert_eq!(partial.uploaded_images, 0);
        assert_eq!(
            partial.salvaged_images, full.uploaded_images,
            "every would-be full upload lands as a partial: {partial:?}"
        );
        assert_eq!(srv.partial_images().len(), partial.salvaged_images);
        assert!(
            partial.uplink_bytes < full.uplink_bytes,
            "the prefix tier must spend less airtime: {} vs {}",
            partial.uplink_bytes,
            full.uplink_bytes
        );
        for (_, p) in srv.partial_images() {
            assert!(p.payload_bytes < p.total_bytes, "{p:?}");
            assert!(p.scans_complete >= 1, "{p:?}");
        }
    }

    #[test]
    fn thumbnail_tier_skips_the_full_attempt() {
        let cfg = config();
        let data = disaster_batch(47, 4, 0, 0.0, small());
        let run = |tier: UploadTier| {
            let scheme = Bees::adaptive(&cfg);
            let mut server = Server::try_new(&cfg).unwrap();
            let mut client = Client::try_new(0, &cfg).unwrap();
            scheme
                .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch).with_tier(tier))
                .unwrap()
        };
        let full = run(UploadTier::Full);
        let thumb = run(UploadTier::Thumbnail);
        assert_eq!(thumb.uploaded_images, 0);
        assert_eq!(thumb.salvaged_images, 0);
        assert_eq!(thumb.degraded_images, full.uploaded_images);
        assert!(
            thumb.uplink_bytes < full.uplink_bytes,
            "thumbnails must spend less airtime: {} vs {}",
            thumb.uplink_bytes,
            full.uplink_bytes
        );
    }

    #[test]
    fn defer_tier_spends_no_radio_energy() {
        let cfg = config();
        let data = disaster_batch(48, 4, 0, 0.0, small());
        let scheme = Bees::adaptive(&cfg);
        let mut server = Server::try_new(&cfg).unwrap();
        let mut client = Client::try_new(0, &cfg).unwrap();
        let r = scheme
            .upload(
                &mut BatchCtx::new(&mut client, &mut server, &data.batch)
                    .with_tier(UploadTier::Defer),
            )
            .unwrap();
        assert!(r.feature_query_deferred);
        assert_eq!(r.uplink_bytes, 0);
        assert_eq!(r.uploaded_images + r.salvaged_images + r.degraded_images, 0);
        assert!(r.deferred_images > 0);
        assert_eq!(r.energy.get(EnergyCategory::FeatureUpload), 0.0);
        assert_eq!(r.energy.get(EnergyCategory::ImageUpload), 0.0);
        assert_eq!(server.received_images(), 0);
    }

    #[test]
    fn deferral_catalog_records_deferred_images_on_device() {
        let cfg = config();
        let data = disaster_batch(49, 4, 0, 0.0, small());
        let scheme = Bees::adaptive(&cfg);
        let mut server = Server::try_new(&cfg).unwrap();
        let mut client = Client::try_new(0, &cfg).unwrap();
        let r = scheme
            .upload(
                &mut BatchCtx::new(&mut client, &mut server, &data.batch)
                    .with_tier(UploadTier::Defer)
                    .with_deferral_catalog(7),
            )
            .unwrap();
        assert!(r.deferred_images > 0);
        assert_eq!(server.on_device_images().len(), r.deferred_images);
        assert!(server.on_device_images().values().all(|e| e.device_id == 7));
        // The catalog stays invisible to the legacy surface.
        assert_eq!(server.received_images(), 0);
        assert_eq!(server.indexed_images(), 0);
        // Without the opt-in, deferral leaves no trace (the default).
        let mut server2 = Server::try_new(&cfg).unwrap();
        let mut client2 = Client::try_new(0, &cfg).unwrap();
        scheme
            .upload(
                &mut BatchCtx::new(&mut client2, &mut server2, &data.batch)
                    .with_tier(UploadTier::Defer),
            )
            .unwrap();
        assert!(server2.on_device_images().is_empty());
    }

    #[test]
    fn uploaded_images_reach_the_server_index() {
        let cfg = config();
        let scheme = Bees::adaptive(&cfg);
        let mut server = Server::try_new(&cfg).unwrap();
        let mut client = Client::try_new(0, &cfg).unwrap();
        let data = disaster_batch(36, 4, 0, 0.0, small());
        let r = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap();
        assert_eq!(server.received_images(), r.uploaded_images);
        assert_eq!(server.indexed_images(), r.uploaded_images);
        // A second identical batch should now be (mostly) cross-redundant.
        let mut client2 = Client::try_new(1, &cfg).unwrap();
        let r2 = scheme
            .upload(&mut BatchCtx::new(&mut client2, &mut server, &data.batch))
            .unwrap();
        assert!(
            r2.skipped_cross_batch >= r.uploaded_images / 2,
            "second pass skipped only {}",
            r2.skipped_cross_batch
        );
    }

    #[test]
    fn stage_spans_cover_the_whole_pipeline() {
        use bees_telemetry::{Aggregator, Telemetry};
        use std::sync::Arc;
        let cfg = config();
        let scheme = Bees::adaptive(&cfg);
        let mut server = Server::try_new(&cfg).unwrap();
        let mut client = Client::try_new(0, &cfg).unwrap();
        let data = disaster_batch(37, 4, 1, 0.25, small());
        scheme.preload_server(&mut server, &data.server_preload);
        let agg = Arc::new(Aggregator::new());
        let mut ctx = BatchCtx::new(&mut client, &mut server, &data.batch)
            .with_telemetry(Telemetry::with_sinks(vec![agg.clone()]));
        let r = scheme.upload(&mut ctx).unwrap();
        let stages: Vec<&str> = agg.snapshot().iter().map(|(name, _)| *name).collect();
        for expected in [
            names::AFE_ORB,
            names::ARD_QUERY,
            names::ARD_SSMM,
            names::AIU_ENCODE,
            names::NET_TRANSMIT,
            names::SRV_QUERY,
        ] {
            assert!(stages.contains(&expected), "missing {expected}: {stages:?}");
        }
        // Stage joules sum to (almost) the ledger's active total: the four
        // stage spans partition the pipeline.
        let stage_joules: f64 = agg
            .snapshot()
            .iter()
            .filter(|(name, _)| {
                matches!(*name, "afe.orb" | "ard.query" | "ard.ssmm" | "aiu.encode")
            })
            .map(|(_, s)| s.joules)
            .sum();
        assert!(
            (stage_joules - r.energy.total()).abs() < 1e-6,
            "stages {} vs ledger {}",
            stage_joules,
            r.energy.total()
        );
    }
}
