//! The five upload schemes of the paper's evaluation (§IV).
//!
//! | Scheme | Features | Cross-batch dedup | In-batch dedup | AIS | EAAS |
//! |---|---|---|---|---|---|
//! | Direct Upload | — | — | — | — | — |
//! | PhotoNet-like | color histogram | yes | — | — | — |
//! | SmartEye | PCA-SIFT | yes | — | — | — |
//! | MRC | ORB | yes (+ thumbnail feedback) | — | — | — |
//! | BEES-EA | ORB | yes | SSMM | yes | fixed at `Ebat = 1` |
//! | BEES | ORB | yes | SSMM | yes | adaptive |
//!
//! All schemes are written against [`Client`]'s power/clock primitives, so
//! their energy, bandwidth, and delay accounting is directly comparable.

mod bees;
mod cross_batch;
mod direct;
mod mrc;
mod photonet;
mod smarteye;

pub use bees::Bees;
pub use direct::DirectUpload;
pub use mrc::Mrc;
pub use photonet::PhotoNetLike;
pub use smarteye::SmartEye;

use crate::{BatchReport, Client, Result, Server, TransmitSummary};
use bees_energy::EnergyCategory;
use bees_image::RgbImage;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a scheme in reports and experiment output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Upload every image as-is.
    DirectUpload,
    /// SmartEye (INFOCOM'15): PCA-SIFT features, cross-batch dedup.
    SmartEye,
    /// PhotoNet-like (RTSS'11): global color-histogram dedup only.
    PhotoNetLike,
    /// MRC (CoNEXT'14): ORB features, cross-batch dedup, thumbnails.
    Mrc,
    /// BEES without energy-aware adaptation.
    BeesEa,
    /// Full BEES.
    Bees,
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SchemeKind::DirectUpload => "Direct Upload",
            SchemeKind::SmartEye => "SmartEye",
            SchemeKind::PhotoNetLike => "PhotoNet-like",
            SchemeKind::Mrc => "MRC",
            SchemeKind::BeesEa => "BEES-EA",
            SchemeKind::Bees => "BEES",
        };
        f.write_str(name)
    }
}

/// An image-upload scheme.
///
/// Object-safe so experiment drivers can iterate over
/// `Vec<Box<dyn UploadScheme>>`.
pub trait UploadScheme {
    /// Which scheme this is.
    fn kind(&self) -> SchemeKind;

    /// Uploads a batch, optionally tagging each image with a geotag (used
    /// by the coverage experiment). `geotags`, when given, must be the same
    /// length as `batch`.
    ///
    /// If the client battery dies mid-batch the report of the completed
    /// prefix is returned with [`BatchReport::exhausted`] set.
    ///
    /// # Errors
    ///
    /// Returns a network error if the channel stalls beyond its limit.
    fn upload_batch_tagged(
        &self,
        client: &mut Client,
        server: &mut Server,
        batch: &[RgbImage],
        geotags: Option<&[(f64, f64)]>,
    ) -> Result<BatchReport>;

    /// Uploads a batch without geotags.
    ///
    /// # Errors
    ///
    /// Returns a network error if the channel stalls beyond its limit.
    fn upload_batch(
        &self,
        client: &mut Client,
        server: &mut Server,
        batch: &[RgbImage],
    ) -> Result<BatchReport> {
        self.upload_batch_tagged(client, server, batch, None)
    }

    /// Pre-loads server-side images using this scheme's *own* feature kind,
    /// so staged cross-batch redundancy is detectable by the scheme. The
    /// default extracts ORB features (what the BEES/MRC servers store).
    fn preload_server(&self, server: &mut Server, images: &[RgbImage]) {
        server.preload(images);
    }
}

/// Runs a power primitive inside a scheme body: on battery exhaustion,
/// snapshots the ledger into the report, marks it exhausted, and returns
/// it as the (partial) result.
macro_rules! try_power {
    ($report:expr, $client:expr, $call:expr) => {
        match $call {
            Ok(v) => v,
            Err($crate::CoreError::BatteryExhausted { .. }) => {
                $report.exhausted = true;
                $report.energy = $client.ledger().clone();
                return Ok($report);
            }
            Err(other) => return Err(other),
        }
    };
}
pub(crate) use try_power;

/// Outcome of a fault-tolerant payload transmit inside a scheme body.
pub(crate) enum Delivery {
    /// Every byte was confirmed; the summary carries attempt/waste stats.
    Delivered(TransmitSummary),
    /// The retry budget ran out; the payload was given up on (the batch
    /// continues — graceful degradation instead of an aborted run).
    Deferred {
        /// Attempts made before giving up.
        attempts: u32,
    },
}

/// Transmits through [`Client::transmit_resumable`], converting retry
/// exhaustion into [`Delivery::Deferred`] so schemes can degrade or skip
/// the payload instead of aborting the whole batch. Battery exhaustion and
/// genuine channel errors still propagate (the former is caught by
/// `try_power!`).
pub(crate) fn transmit_or_defer(
    client: &mut Client,
    category: EnergyCategory,
    bytes: usize,
) -> Result<Delivery> {
    match client.transmit_resumable(category, bytes) {
        Ok(summary) => Ok(Delivery::Delivered(summary)),
        Err(crate::CoreError::Net(bees_net::NetError::RetriesExhausted { attempts, .. })) => {
            Ok(Delivery::Deferred { attempts })
        }
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_displays_paper_names() {
        assert_eq!(SchemeKind::DirectUpload.to_string(), "Direct Upload");
        assert_eq!(SchemeKind::SmartEye.to_string(), "SmartEye");
        assert_eq!(SchemeKind::PhotoNetLike.to_string(), "PhotoNet-like");
        assert_eq!(SchemeKind::Mrc.to_string(), "MRC");
        assert_eq!(SchemeKind::BeesEa.to_string(), "BEES-EA");
        assert_eq!(SchemeKind::Bees.to_string(), "BEES");
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_s: &dyn UploadScheme) {}
    }
}
