//! The five upload schemes of the paper's evaluation (§IV).
//!
//! | Scheme | Features | Cross-batch dedup | In-batch dedup | AIS | EAAS |
//! |---|---|---|---|---|---|
//! | Direct Upload | — | — | — | — | — |
//! | PhotoNet-like | color histogram | yes | — | — | — |
//! | SmartEye | PCA-SIFT | yes | — | — | — |
//! | MRC | ORB | yes (+ thumbnail feedback) | — | — | — |
//! | BEES-EA | ORB | yes | SSMM | yes | fixed at `Ebat = 1` |
//! | BEES | ORB | yes | SSMM | yes | adaptive |
//!
//! All schemes are written against [`Client`]'s power/clock primitives, so
//! their energy, bandwidth, and delay accounting is directly comparable.

mod bees;
mod cross_batch;
mod direct;
mod mrc;
mod photonet;
mod smarteye;

pub use bees::Bees;
pub use direct::DirectUpload;
pub use mrc::Mrc;
pub use photonet::PhotoNetLike;
pub use smarteye::SmartEye;

use crate::{
    BatchReport, BeesConfig, Client, CoreError, Result, Server, TransmitSummary, UploadTier,
};
use bees_energy::EnergyCategory;
use bees_image::RgbImage;
use bees_telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Identifies a scheme in reports and experiment output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Upload every image as-is.
    DirectUpload,
    /// SmartEye (INFOCOM'15): PCA-SIFT features, cross-batch dedup.
    SmartEye,
    /// PhotoNet-like (RTSS'11): global color-histogram dedup only.
    PhotoNetLike,
    /// MRC (CoNEXT'14): ORB features, cross-batch dedup, thumbnails.
    Mrc,
    /// BEES without energy-aware adaptation.
    BeesEa,
    /// Full BEES.
    Bees,
}

impl SchemeKind {
    /// Every scheme, in the canonical evaluation order (the row order of
    /// the experiment tables).
    pub const ALL: [SchemeKind; 6] = [
        SchemeKind::DirectUpload,
        SchemeKind::PhotoNetLike,
        SchemeKind::SmartEye,
        SchemeKind::Mrc,
        SchemeKind::BeesEa,
        SchemeKind::Bees,
    ];

    /// The paper's name for the scheme — the stable spelling used in
    /// reports, traces, and CLI arguments. Round-trips through
    /// [`FromStr`]: `kind.as_str().parse() == Ok(kind)`.
    pub fn as_str(&self) -> &'static str {
        match self {
            SchemeKind::DirectUpload => "Direct Upload",
            SchemeKind::SmartEye => "SmartEye",
            SchemeKind::PhotoNetLike => "PhotoNet-like",
            SchemeKind::Mrc => "MRC",
            SchemeKind::BeesEa => "BEES-EA",
            SchemeKind::Bees => "BEES",
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The input did not name a scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeKindError {
    input: String,
}

impl fmt::Display for ParseSchemeKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scheme `{}` (expected one of: Direct Upload, PhotoNet-like, \
             SmartEye, MRC, BEES-EA, BEES)",
            self.input
        )
    }
}

impl std::error::Error for ParseSchemeKindError {}

impl FromStr for SchemeKind {
    type Err = ParseSchemeKindError;

    /// Parses a scheme name, tolerating the spelling drift that has shown
    /// up in bench arguments and reports: case, and `-`/`_`/space
    /// separators, are ignored, so `"BEES-EA"`, `"bees_ea"`, and `"BeesEa"`
    /// all parse to [`SchemeKind::BeesEa`].
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        let normalized: String = s
            .chars()
            .filter(|c| !matches!(c, '-' | '_' | ' '))
            .map(|c| c.to_ascii_lowercase())
            .collect();
        match normalized.as_str() {
            "directupload" | "direct" => Ok(SchemeKind::DirectUpload),
            "smarteye" => Ok(SchemeKind::SmartEye),
            "photonetlike" | "photonet" => Ok(SchemeKind::PhotoNetLike),
            "mrc" => Ok(SchemeKind::Mrc),
            "beesea" => Ok(SchemeKind::BeesEa),
            "bees" => Ok(SchemeKind::Bees),
            _ => Err(ParseSchemeKindError {
                input: s.to_owned(),
            }),
        }
    }
}

/// Constructs the scheme a [`SchemeKind`] names, boxed for the
/// `Vec<Box<dyn UploadScheme>>` experiment drivers.
pub fn make_scheme(kind: SchemeKind, config: &BeesConfig) -> Box<dyn UploadScheme> {
    match kind {
        SchemeKind::DirectUpload => Box::new(DirectUpload::new(config)),
        SchemeKind::SmartEye => Box::new(SmartEye::new(config)),
        SchemeKind::PhotoNetLike => Box::new(PhotoNetLike::new(config)),
        SchemeKind::Mrc => Box::new(Mrc::new(config)),
        SchemeKind::BeesEa => Box::new(Bees::without_adaptation(config)),
        SchemeKind::Bees => Box::new(Bees::adaptive(config)),
    }
}

/// Everything one batch upload needs, in one place.
///
/// Replaces the old positional `(client, server, batch, geotags)`
/// signature: the geotag/batch length invariant is validated by
/// [`with_geotags`](BatchCtx::with_geotags) before any scheme runs, and
/// the [`Telemetry`] handle rides along instead of being smuggled through
/// globals. `client`, `server`, and `batch` are public fields — scheme
/// bodies reborrow them directly.
pub struct BatchCtx<'a> {
    /// The uploading phone.
    pub client: &'a mut Client,
    /// The shared receiving server.
    pub server: &'a mut Server,
    /// The images to upload.
    pub batch: &'a [RgbImage],
    geotags: Option<&'a [(f64, f64)]>,
    tier: UploadTier,
    deferral_catalog: Option<u64>,
    /// Telemetry handle stage spans are emitted through. Defaults to the
    /// client's handle; override with
    /// [`with_telemetry`](BatchCtx::with_telemetry).
    pub telemetry: Telemetry,
}

impl<'a> BatchCtx<'a> {
    /// A context with no geotags, inheriting the client's telemetry
    /// handle.
    pub fn new(client: &'a mut Client, server: &'a mut Server, batch: &'a [RgbImage]) -> Self {
        let telemetry = client.telemetry().clone();
        BatchCtx {
            client,
            server,
            batch,
            geotags: None,
            tier: UploadTier::Full,
            deferral_catalog: None,
            telemetry,
        }
    }

    /// Attaches one geotag per batch image (the coverage experiment's
    /// input), enforcing the length invariant the old positional API
    /// documented but could not check until deep inside a scheme.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::GeotagMismatch`] if the lengths differ.
    pub fn with_geotags(mut self, geotags: &'a [(f64, f64)]) -> Result<Self> {
        if geotags.len() != self.batch.len() {
            return Err(CoreError::GeotagMismatch {
                images: self.batch.len(),
                geotags: geotags.len(),
            });
        }
        self.geotags = Some(geotags);
        Ok(self)
    }

    /// Installs a telemetry handle on the context (stage spans), the client
    /// (`net.*` spans), and the server (`srv.*` events), so the whole batch
    /// reports into one stream.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.client.set_telemetry(telemetry.clone());
        self.server.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Caps the upload tier for this batch — an airtime grant from the
    /// shared-cell scheduler. [`UploadTier::Full`] (the default) changes
    /// nothing; [`UploadTier::PartialScans`] makes the BEES scheme transmit
    /// only a progressive-scan prefix per image (ingested through the
    /// partial-image machinery, upgradeable later);
    /// [`UploadTier::Thumbnail`] sends every selected image straight down
    /// the thumbnail rung; [`UploadTier::Defer`] spends no radio energy at
    /// all — the whole batch (feature query included) defers.
    ///
    /// Schemes without a degradation ladder ignore the cap.
    #[must_use]
    pub fn with_tier(mut self, tier: UploadTier) -> Self {
        self.tier = tier;
        self
    }

    /// The upload-tier cap in force for this batch.
    pub fn tier(&self) -> UploadTier {
        self.tier
    }

    /// Tightens the tier cap in place: the batch keeps the *weaker* of its
    /// current cap and `tier`. Lets a wrapping scheme degrade a batch that
    /// already carries a scheduler grant (tiers order `Full <
    /// PartialScans < Thumbnail < Defer`, so weaker == larger).
    pub fn cap_tier(&mut self, tier: UploadTier) {
        self.tier = self.tier.max(tier);
    }

    /// Opts this batch into the server's on-device catalog: images the
    /// scheme ends up deferring are recorded (with their already-extracted
    /// features) as living on device `device_id`, so a later retrieval
    /// pull-down can fetch them on demand. Off by default — without it,
    /// deferred images simply vanish, as they always have.
    #[must_use]
    pub fn with_deferral_catalog(mut self, device_id: u64) -> Self {
        self.deferral_catalog = Some(device_id);
        self
    }

    /// The device id deferred images are cataloged under, if the batch
    /// opted in.
    pub fn deferral_catalog(&self) -> Option<u64> {
        self.deferral_catalog
    }

    /// The geotags, if attached (guaranteed to be `batch.len()` long).
    pub fn geotags(&self) -> Option<&'a [(f64, f64)]> {
        self.geotags
    }

    /// The geotag of batch image `i`, if geotags are attached.
    pub fn geotag(&self, i: usize) -> Option<(f64, f64)> {
        self.geotags.map(|tags| tags[i])
    }
}

/// An image-upload scheme.
///
/// Object-safe so experiment drivers can iterate over
/// `Vec<Box<dyn UploadScheme>>`.
pub trait UploadScheme {
    /// Which scheme this is.
    fn kind(&self) -> SchemeKind;

    /// Uploads the batch described by `ctx` (build one with
    /// [`BatchCtx::new`]; attach geotags or telemetry with its builder
    /// methods).
    ///
    /// If the client battery dies mid-batch the report of the completed
    /// prefix is returned with [`BatchReport::exhausted`] set.
    ///
    /// # Errors
    ///
    /// Returns a network error if the channel stalls beyond its limit.
    fn upload(&self, ctx: &mut BatchCtx<'_>) -> Result<BatchReport>;

    /// Pre-loads server-side images using this scheme's *own* feature kind,
    /// so staged cross-batch redundancy is detectable by the scheme. The
    /// default extracts ORB features (what the BEES/MRC servers store).
    fn preload_server(&self, server: &mut Server, images: &[RgbImage]) {
        server.preload(crate::PreloadBatch::new(images));
    }
}

/// Runs a power primitive inside a scheme body: on battery exhaustion,
/// snapshots the ledger into the report, marks it exhausted, and returns
/// it as the (partial) result.
macro_rules! try_power {
    ($report:expr, $client:expr, $call:expr) => {
        match $call {
            Ok(v) => v,
            Err($crate::CoreError::BatteryExhausted { .. }) => {
                $report.exhausted = true;
                $report.energy = $client.ledger().clone();
                return Ok($report);
            }
            Err(other) => return Err(other),
        }
    };
}
pub(crate) use try_power;

/// Outcome of a fault-tolerant payload transmit inside a scheme body.
pub(crate) enum Delivery {
    /// Every byte was confirmed; the summary carries attempt/waste stats.
    Delivered(TransmitSummary),
    /// The retry budget ran out with whole chunks banked; the summary says
    /// how much of the payload survived for partial decoding.
    Salvaged(crate::SalvageSummary),
    /// The retry budget ran out; the payload was given up on (the batch
    /// continues — graceful degradation instead of an aborted run).
    Deferred {
        /// Attempts made before giving up.
        attempts: u32,
    },
}

/// Transmits through [`Client::transmit_resumable`], converting retry
/// exhaustion into [`Delivery::Deferred`] so schemes can degrade or skip
/// the payload instead of aborting the whole batch. Battery exhaustion and
/// genuine channel errors still propagate (the former is caught by
/// `try_power!`).
pub(crate) fn transmit_or_defer(
    client: &mut Client,
    category: EnergyCategory,
    bytes: usize,
) -> Result<Delivery> {
    match client.transmit_resumable(category, bytes) {
        Ok(summary) => Ok(Delivery::Delivered(summary)),
        Err(crate::CoreError::Net(bees_net::NetError::RetriesExhausted { attempts, .. })) => {
            Ok(Delivery::Deferred { attempts })
        }
        Err(other) => Err(other),
    }
}

/// Transmits through [`Client::transmit_salvageable`]: retry exhaustion
/// with banked chunks becomes [`Delivery::Salvaged`] (the caller decodes
/// the prefix), with nothing banked it becomes [`Delivery::Deferred`].
pub(crate) fn transmit_or_salvage(
    client: &mut Client,
    category: EnergyCategory,
    bytes: usize,
) -> Result<Delivery> {
    match client.transmit_salvageable(category, bytes) {
        Ok(crate::ResumableOutcome::Complete(summary)) => Ok(Delivery::Delivered(summary)),
        Ok(crate::ResumableOutcome::Salvaged(summary)) => Ok(Delivery::Salvaged(summary)),
        Err(crate::CoreError::Net(bees_net::NetError::RetriesExhausted { attempts, .. })) => {
            Ok(Delivery::Deferred { attempts })
        }
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_displays_paper_names() {
        assert_eq!(SchemeKind::DirectUpload.to_string(), "Direct Upload");
        assert_eq!(SchemeKind::SmartEye.to_string(), "SmartEye");
        assert_eq!(SchemeKind::PhotoNetLike.to_string(), "PhotoNet-like");
        assert_eq!(SchemeKind::Mrc.to_string(), "MRC");
        assert_eq!(SchemeKind::BeesEa.to_string(), "BEES-EA");
        assert_eq!(SchemeKind::Bees.to_string(), "BEES");
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_s: &dyn UploadScheme) {}
    }

    #[test]
    fn kind_round_trips_through_from_str() {
        for kind in SchemeKind::ALL {
            assert_eq!(kind.as_str().parse::<SchemeKind>(), Ok(kind));
        }
    }

    #[test]
    fn from_str_tolerates_spelling_drift() {
        assert_eq!("BEES-EA".parse(), Ok(SchemeKind::BeesEa));
        assert_eq!("bees_ea".parse(), Ok(SchemeKind::BeesEa));
        assert_eq!("BeesEa".parse(), Ok(SchemeKind::BeesEa));
        assert_eq!("photonet".parse(), Ok(SchemeKind::PhotoNetLike));
        assert_eq!("PhotoNet-like".parse(), Ok(SchemeKind::PhotoNetLike));
        assert_eq!("direct".parse(), Ok(SchemeKind::DirectUpload));
        let err = "smarteyes".parse::<SchemeKind>().unwrap_err();
        assert!(err.to_string().contains("smarteyes"));
    }

    #[test]
    fn factory_builds_every_kind() {
        let cfg = BeesConfig::default();
        for kind in SchemeKind::ALL {
            assert_eq!(make_scheme(kind, &cfg).kind(), kind);
        }
    }

    #[test]
    fn geotag_length_mismatch_is_a_typed_error() {
        use bees_datasets::{Scene, SceneConfig, ViewJitter};
        let mut cfg = BeesConfig::default();
        cfg.trace = bees_net::BandwidthTrace::constant(256_000.0).unwrap();
        let mut server = Server::try_new(&cfg).unwrap();
        let mut client = Client::try_new(0, &cfg).unwrap();
        let img = Scene::new(
            1,
            SceneConfig {
                width: 96,
                height: 72,
                n_shapes: 8,
                texture_amp: 8.0,
            },
        )
        .render(&ViewJitter::identity());
        let batch = [img];
        let bad = BatchCtx::new(&mut client, &mut server, &batch).with_geotags(&[]);
        assert!(matches!(bad, Err(CoreError::GeotagMismatch { .. })));
    }
}
