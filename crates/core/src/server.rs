//! The cloud server: feature index plus received-image bookkeeping.

use crate::config::{BeesConfig, IndexBackend};
use bees_features::global::ColorHistogram;
use bees_features::orb::Orb;
use bees_features::{FeatureExtractor, ImageFeatures};
use bees_image::RgbImage;
use bees_index::{FeatureIndex, ImageId, LinearIndex, MihIndex, QueryHit};
use bees_telemetry::{names, Telemetry};

/// The server side of the system.
///
/// Holds the feature index used by Cross-Batch Redundancy Detection and
/// counts what it has received. Per the paper, server resources are assumed
/// plentiful: server-side CPU is not charged to any battery and query time
/// is excluded from the delay metric.
pub struct Server {
    index: Box<dyn FeatureIndex>,
    orb: Orb,
    next_id: u64,
    received_images: usize,
    received_image_bytes: usize,
    /// Optional geotag per stored image (coverage experiment).
    geotags: Vec<(ImageId, (f64, f64))>,
    /// Global-feature store for PhotoNet-like schemes (histogram dedup).
    histograms: Vec<(ImageId, ColorHistogram)>,
    telemetry: Telemetry,
}

impl Server {
    /// Creates an empty server configured like the client.
    pub fn new(config: &BeesConfig) -> Self {
        let index: Box<dyn FeatureIndex> = match config.index_backend {
            IndexBackend::Linear => Box::new(LinearIndex::new(config.similarity)),
            IndexBackend::Mih => Box::new(MihIndex::new(config.similarity)),
        };
        Server {
            index,
            orb: Orb::new(config.orb),
            next_id: 0,
            received_images: 0,
            received_image_bytes: 0,
            geotags: Vec::new(),
            histograms: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// The telemetry handle `srv.*` events are emitted through (disabled by
    /// default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Installs a telemetry handle. The server has no clock of its own, so
    /// its events carry `t = 0.0`; per the paper, server time is excluded
    /// from the delay metric anyway.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn fresh_id(&mut self) -> ImageId {
        let id = ImageId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Pre-loads images into the index (extracting ORB features
    /// server-side), used to stage a target cross-batch redundancy ratio.
    pub fn preload(&mut self, images: &[RgbImage]) {
        for img in images {
            let features = self.orb.extract(&img.to_gray());
            let id = self.fresh_id();
            self.index.insert(id, features);
        }
    }

    /// Pre-loads images using an explicit extractor. Schemes whose clients
    /// speak a different feature language (SmartEye's PCA-SIFT) stage their
    /// redundancy with this.
    pub fn preload_with(&mut self, extractor: &dyn FeatureExtractor, images: &[RgbImage]) {
        for img in images {
            let features = extractor.extract(&img.to_gray());
            let id = self.fresh_id();
            self.index.insert(id, features);
        }
    }

    /// Answers a CBRD query: the highest similarity any indexed image has
    /// to the queried features.
    pub fn query_max_similarity(&self, features: &ImageFeatures) -> Option<QueryHit> {
        let hit = self.index.max_similarity(features);
        self.telemetry
            .event(names::SRV_QUERY, 0.0)
            .attr_u64("indexed", self.index.len() as u64)
            .attr_bool("hit", hit.is_some())
            .close(0.0);
        hit
    }

    /// Top-k query (precision experiments).
    pub fn query_top_k(&self, features: &ImageFeatures, k: usize) -> Vec<QueryHit> {
        self.index.top_k(features, k)
    }

    /// Ingests an uploaded image: records the payload size and indexes the
    /// supplied features (the ones the client already uploaded for CBRD)
    /// so later batches can deduplicate against it. Returns the new id.
    pub fn ingest_image(
        &mut self,
        features: ImageFeatures,
        payload_bytes: usize,
        geotag: Option<(f64, f64)>,
    ) -> ImageId {
        let id = self.fresh_id();
        self.index.insert(id, features);
        self.received_images += 1;
        self.received_image_bytes += payload_bytes;
        if let Some(g) = geotag {
            self.geotags.push((id, g));
        }
        self.telemetry
            .event(names::SRV_INGEST, 0.0)
            .attr_u64("image", id.0)
            .attr_u64("bytes", payload_bytes as u64)
            .close(0.0);
        id
    }

    /// Number of images stored in the index (preloads + uploads).
    pub fn indexed_images(&self) -> usize {
        self.index.len()
    }

    /// Number of images actually uploaded (excludes preloads).
    pub fn received_images(&self) -> usize {
        self.received_images
    }

    /// Total uploaded image payload bytes.
    pub fn received_image_bytes(&self) -> usize {
        self.received_image_bytes
    }

    /// Geotags of received images (coverage experiment).
    pub fn geotags(&self) -> &[(ImageId, (f64, f64))] {
        &self.geotags
    }

    /// Number of unique geotagged locations among received images — the
    /// paper's coverage metric (Fig. 12).
    pub fn unique_locations(&self) -> usize {
        let mut coords: Vec<(u64, u64)> = self
            .geotags
            .iter()
            .map(|&(_, (lon, lat))| (lon.to_bits(), lat.to_bits()))
            .collect();
        coords.sort_unstable();
        coords.dedup();
        coords.len()
    }

    /// Stored feature bytes (Table I space overhead).
    pub fn feature_bytes(&self) -> usize {
        self.index.feature_bytes()
    }

    /// Pre-loads global features (color histograms) for the PhotoNet-like
    /// scheme's staging.
    pub fn preload_histograms(&mut self, images: &[RgbImage]) {
        for img in images {
            let h = ColorHistogram::from_image(img);
            let id = self.fresh_id();
            self.histograms.push((id, h));
        }
    }

    /// Maximum histogram-intersection similarity of `query` against every
    /// stored histogram, or `None` when none are stored.
    pub fn query_max_histogram(&self, query: &ColorHistogram) -> Option<(ImageId, f64)> {
        self.histograms
            .iter()
            .map(|(id, h)| (*id, query.intersection(h)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("similarities are finite"))
    }

    /// Ingests an image deduplicated by global features: stores its
    /// histogram and payload accounting. Returns the new id.
    pub fn ingest_image_with_histogram(
        &mut self,
        histogram: ColorHistogram,
        payload_bytes: usize,
        geotag: Option<(f64, f64)>,
    ) -> ImageId {
        let id = self.fresh_id();
        self.histograms.push((id, histogram));
        self.received_images += 1;
        self.received_image_bytes += payload_bytes;
        if let Some(g) = geotag {
            self.geotags.push((id, g));
        }
        self.telemetry
            .event(names::SRV_INGEST, 0.0)
            .attr_u64("image", id.0)
            .attr_u64("bytes", payload_bytes as u64)
            .close(0.0);
        id
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("indexed_images", &self.index.len())
            .field("received_images", &self.received_images)
            .field("received_image_bytes", &self.received_image_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bees_datasets::{Scene, SceneConfig, ViewJitter};

    fn config() -> BeesConfig {
        BeesConfig::default()
    }

    fn small_scene(seed: u64) -> RgbImage {
        Scene::new(
            seed,
            SceneConfig {
                width: 96,
                height: 72,
                n_shapes: 10,
                texture_amp: 8.0,
            },
        )
        .render(&ViewJitter::identity())
    }

    #[test]
    fn preload_populates_index() {
        let mut s = Server::new(&config());
        assert_eq!(s.indexed_images(), 0);
        s.preload(&[small_scene(1), small_scene(2)]);
        assert_eq!(s.indexed_images(), 2);
        assert_eq!(s.received_images(), 0);
        assert!(s.feature_bytes() > 0);
    }

    #[test]
    fn query_finds_preloaded_similars() {
        let cfg = config();
        let mut s = Server::new(&cfg);
        let scene = Scene::new(
            5,
            SceneConfig {
                width: 96,
                height: 72,
                n_shapes: 10,
                texture_amp: 8.0,
            },
        );
        s.preload(&[scene.render(&ViewJitter::identity())]);
        let orb = Orb::new(cfg.orb);
        let other_view = scene.render(&ViewJitter {
            dx: 2.0,
            brightness: 5,
            ..ViewJitter::identity()
        });
        let f = orb.extract(&other_view.to_gray());
        let hit = s.query_max_similarity(&f).expect("similar image indexed");
        assert!(hit.similarity > 0.1, "similarity {}", hit.similarity);
    }

    #[test]
    fn ingest_tracks_bytes_and_geotags() {
        let mut s = Server::new(&config());
        let id1 = s.ingest_image(ImageFeatures::empty_binary(), 1000, Some((2.32, 48.86)));
        let id2 = s.ingest_image(ImageFeatures::empty_binary(), 500, Some((2.32, 48.86)));
        let id3 = s.ingest_image(ImageFeatures::empty_binary(), 200, Some((2.33, 48.87)));
        assert_ne!(id1, id2);
        assert_ne!(id2, id3);
        assert_eq!(s.received_images(), 3);
        assert_eq!(s.received_image_bytes(), 1700);
        assert_eq!(s.unique_locations(), 2);
    }

    #[test]
    fn mih_backend_works_too() {
        let cfg = BeesConfig {
            index_backend: IndexBackend::Mih,
            ..config()
        };
        let mut s = Server::new(&cfg);
        s.preload(&[small_scene(3)]);
        assert_eq!(s.indexed_images(), 1);
    }
}
