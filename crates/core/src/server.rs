//! The cloud server: sharded feature index plus received-image bookkeeping.
//!
//! The index is partitioned over [`BeesConfig::server_shards`] shards (see
//! `DESIGN.md` §9): uploads buffer into a *pending epoch* and are committed
//! to all shards in one parallel batch the moment the next query arrives.
//! Every scheme issues all of a batch's redundancy queries before any of
//! its ingests, so epoch boundaries always fall between batches and the
//! results are identical to immediate insertion — while ingest cost scales
//! with the shard count.

use crate::config::{BeesConfig, IndexBackend};
use bees_features::global::ColorHistogram;
use bees_features::orb::Orb;
use bees_features::{FeatureExtractor, ImageFeatures};
use bees_image::RgbImage;
use bees_index::{
    FeatureIndex, ImageId, LinearIndex, MihIndex, Query, QueryHit, QueryScratch, ShardedIndex,
};
use bees_telemetry::{names, Telemetry};
use std::collections::BTreeMap;

/// The server side of the system.
///
/// Holds the feature index used by Cross-Batch Redundancy Detection and
/// counts what it has received. Per the paper, server resources are assumed
/// plentiful: server-side CPU is not charged to any battery and query time
/// is excluded from the delay metric.
pub struct Server {
    index: Box<dyn FeatureIndex>,
    /// Recycled per-query buffers (merge heaps, candidate lists, per-shard
    /// children) threaded through every feature query; contents never
    /// influence results.
    scratch: QueryScratch,
    n_shards: usize,
    /// Features ingested since the last query; committed to all shards in
    /// one parallel `insert_batch` when the next query arrives.
    pending: Vec<(ImageId, ImageFeatures)>,
    orb: Orb,
    next_id: u64,
    received_images: usize,
    received_image_bytes: usize,
    queries_served: usize,
    /// Optional geotag per stored image (coverage experiment), keyed by id.
    geotags: BTreeMap<ImageId, (f64, f64)>,
    /// Global-feature store for PhotoNet-like schemes (histogram dedup),
    /// keyed by id.
    histograms: BTreeMap<ImageId, ColorHistogram>,
    /// Salvaged progressive uploads awaiting their tail scans, keyed by id.
    partials: BTreeMap<ImageId, PartialImage>,
    telemetry: Telemetry,
}

/// Bookkeeping for a salvaged progressive upload: the server holds a
/// decodable scan prefix and can upgrade it in place when a later session
/// delivers the tail scans.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialImage {
    /// Progressive scans fully received (≥ 1: the DC scan decoded).
    pub scans_complete: usize,
    /// Scans a complete stream carries.
    pub scans_total: usize,
    /// Decodable payload bytes banked so far.
    pub payload_bytes: usize,
    /// Bytes of the complete encoded stream.
    pub total_bytes: usize,
    /// SSIM of the partial reconstruction against the full-quality encode,
    /// as estimated by the uploading client.
    pub ssim_estimate: f64,
}

fn build_index(config: &BeesConfig) -> Box<dyn FeatureIndex> {
    let similarity = config.similarity;
    let radius = config.mih_probe_radius;
    match (config.index_backend, config.server_shards) {
        (IndexBackend::Linear, 1) => Box::new(LinearIndex::new(similarity)),
        (IndexBackend::Linear, n) => Box::new(ShardedIndex::with_shards(n, || {
            LinearIndex::new(similarity)
        })),
        (IndexBackend::Mih, 1) => Box::new(MihIndex::new(similarity).with_probe_radius(radius)),
        (IndexBackend::Mih, n) => Box::new(ShardedIndex::with_shards(n, || {
            MihIndex::new(similarity).with_probe_radius(radius)
        })),
    }
}

impl Server {
    /// Creates an empty server configured like the clients.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`](crate::CoreError::InvalidConfig)
    /// when the configuration fails [`BeesConfig::validate`] — in
    /// particular `server_shards == 0` or an out-of-range
    /// `mih_probe_radius`.
    pub fn try_new(config: &BeesConfig) -> crate::Result<Server> {
        config.validate()?;
        Ok(Server {
            index: build_index(config),
            scratch: QueryScratch::new(),
            n_shards: config.server_shards,
            pending: Vec::new(),
            orb: Orb::new(config.orb),
            next_id: 0,
            received_images: 0,
            received_image_bytes: 0,
            queries_served: 0,
            geotags: BTreeMap::new(),
            histograms: BTreeMap::new(),
            partials: BTreeMap::new(),
            telemetry: Telemetry::disabled(),
        })
    }

    /// Creates a server from the default configuration, which is valid by
    /// construction. Use [`Server::try_new`] for any custom configuration.
    pub fn new() -> Self {
        Server::try_new(&BeesConfig::default()).expect("default config is valid")
    }

    /// The telemetry handle `srv.*` events are emitted through (disabled by
    /// default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Installs a telemetry handle. The server has no clock of its own, so
    /// its events carry `t = 0.0`; per the paper, server time is excluded
    /// from the delay metric anyway.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of index shards this server partitions images over.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Number of index queries answered so far (similarity, top-k, and
    /// histogram queries).
    pub fn queries_served(&self) -> usize {
        self.queries_served
    }

    fn fresh_id(&mut self) -> ImageId {
        let id = ImageId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Commits the pending epoch: one parallel `insert_batch` over all
    /// shards. Called from every feature-query path, so queries never see a
    /// partially ingested epoch.
    fn commit_epoch(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        let images = batch.len();
        self.index.insert_batch(batch);
        if self.n_shards > 1 {
            self.telemetry
                .event(names::SRV_SHARD_COMMIT, 0.0)
                .attr_u64("images", images as u64)
                .attr_u64("shards", self.n_shards as u64)
                .close(0.0);
        }
    }

    /// Pre-loads images into the index (extracting ORB features
    /// server-side), used to stage a target cross-batch redundancy ratio.
    pub fn preload(&mut self, images: &[RgbImage]) {
        for img in images {
            let features = self.orb.extract(&img.to_gray());
            let id = self.fresh_id();
            self.pending.push((id, features));
        }
        self.commit_epoch();
    }

    /// Pre-loads images using an explicit extractor. Schemes whose clients
    /// speak a different feature language (SmartEye's PCA-SIFT) stage their
    /// redundancy with this.
    pub fn preload_with(&mut self, extractor: &dyn FeatureExtractor, images: &[RgbImage]) {
        for img in images {
            let features = extractor.extract(&img.to_gray());
            let id = self.fresh_id();
            self.pending.push((id, features));
        }
        self.commit_epoch();
    }

    /// Answers a CBRD query: the highest similarity any indexed image has
    /// to the queried features. Commits the pending epoch first.
    pub fn query_max_similarity(&mut self, features: &ImageFeatures) -> Option<QueryHit> {
        self.commit_epoch();
        let hit = self
            .index
            .query_with_scratch(&Query::new(features), &mut self.scratch)
            .into_iter()
            .next();
        self.queries_served += 1;
        self.telemetry
            .event(names::SRV_QUERY, 0.0)
            .attr_u64("indexed", self.index.len() as u64)
            .attr_bool("hit", hit.is_some())
            .close(0.0);
        if self.n_shards > 1 {
            self.telemetry
                .event(names::SRV_SHARD_QUERY, 0.0)
                .attr_u64("shards", self.n_shards as u64)
                .close(0.0);
        }
        hit
    }

    /// Top-k query (precision experiments). Commits the pending epoch
    /// first.
    pub fn query_top_k(&mut self, features: &ImageFeatures, k: usize) -> Vec<QueryHit> {
        self.commit_epoch();
        self.queries_served += 1;
        self.index
            .query_with_scratch(&Query::top_k(features, k), &mut self.scratch)
    }

    /// Ingests an uploaded image: records the payload size and stages the
    /// supplied features (the ones the client already uploaded for CBRD)
    /// for the next epoch commit, so later batches can deduplicate against
    /// it. Returns the new id.
    pub fn ingest_image(
        &mut self,
        features: ImageFeatures,
        payload_bytes: usize,
        geotag: Option<(f64, f64)>,
    ) -> ImageId {
        let id = self.fresh_id();
        self.pending.push((id, features));
        self.received_images += 1;
        self.received_image_bytes += payload_bytes;
        if let Some(g) = geotag {
            self.geotags.insert(id, g);
        }
        self.telemetry
            .event(names::SRV_INGEST, 0.0)
            .attr_u64("image", id.0)
            .attr_u64("bytes", payload_bytes as u64)
            .close(0.0);
        id
    }

    /// Ingests a *salvaged* progressive upload: the decodable scan prefix
    /// of a transfer whose tail never arrived. The image is fully
    /// query-able — its features (extracted client-side and uploaded for
    /// CBRD) stage for the next epoch commit like any other upload — but it
    /// is tracked as partial until [`upgrade_partial_image`] delivers the
    /// tail. Returns the new id.
    ///
    /// [`upgrade_partial_image`]: Server::upgrade_partial_image
    pub fn ingest_partial_image(
        &mut self,
        features: ImageFeatures,
        partial: PartialImage,
        geotag: Option<(f64, f64)>,
    ) -> ImageId {
        let id = self.fresh_id();
        self.pending.push((id, features));
        self.received_images += 1;
        self.received_image_bytes += partial.payload_bytes;
        if let Some(g) = geotag {
            self.geotags.insert(id, g);
        }
        self.telemetry
            .event(names::SRV_INGEST, 0.0)
            .attr_u64("image", id.0)
            .attr_u64("bytes", partial.payload_bytes as u64)
            .attr_bool("partial", true)
            .attr_u64("scans", partial.scans_complete as u64)
            .close(0.0);
        self.partials.insert(id, partial);
        id
    }

    /// Upgrades a partial image in place: a later session delivered the
    /// tail scans, so the stored prefix becomes the full-fidelity image.
    /// Accounts only the tail bytes (the prefix was already counted).
    /// Returns `false` when `id` is not a partial image.
    pub fn upgrade_partial_image(&mut self, id: ImageId) -> bool {
        let Some(partial) = self.partials.remove(&id) else {
            return false;
        };
        let tail = partial.total_bytes.saturating_sub(partial.payload_bytes);
        self.received_image_bytes += tail;
        self.telemetry
            .event(names::SRV_INGEST, 0.0)
            .attr_u64("image", id.0)
            .attr_u64("bytes", tail as u64)
            .attr_bool("upgrade", true)
            .close(0.0);
        true
    }

    /// Salvaged uploads still awaiting their tail scans, keyed by id.
    pub fn partial_images(&self) -> &BTreeMap<ImageId, PartialImage> {
        &self.partials
    }

    /// Number of images stored (preloads + uploads), including the pending
    /// epoch.
    pub fn indexed_images(&self) -> usize {
        self.index.len() + self.pending.len()
    }

    /// Number of images actually uploaded (excludes preloads).
    pub fn received_images(&self) -> usize {
        self.received_images
    }

    /// Total uploaded image payload bytes.
    pub fn received_image_bytes(&self) -> usize {
        self.received_image_bytes
    }

    /// Geotags of received images, keyed by id (coverage experiment).
    pub fn geotags(&self) -> &BTreeMap<ImageId, (f64, f64)> {
        &self.geotags
    }

    /// Number of unique geotagged locations among received images — the
    /// paper's coverage metric (Fig. 12).
    pub fn unique_locations(&self) -> usize {
        let mut coords: Vec<(u64, u64)> = self
            .geotags
            .values()
            .map(|&(lon, lat)| (lon.to_bits(), lat.to_bits()))
            .collect();
        coords.sort_unstable();
        coords.dedup();
        coords.len()
    }

    /// Stored feature bytes (Table I space overhead), including the pending
    /// epoch.
    pub fn feature_bytes(&self) -> usize {
        self.index.feature_bytes()
            + self
                .pending
                .iter()
                .map(|(_, f)| f.wire_size())
                .sum::<usize>()
    }

    /// Pre-loads global features (color histograms) for the PhotoNet-like
    /// scheme's staging.
    pub fn preload_histograms(&mut self, images: &[RgbImage]) {
        for img in images {
            let h = ColorHistogram::from_image(img);
            let id = self.fresh_id();
            self.histograms.insert(id, h);
        }
    }

    /// Maximum histogram-intersection similarity of `query` against every
    /// stored histogram, or `None` when none are stored. Ties go to the
    /// highest id (iteration is in ascending-id order).
    pub fn query_max_histogram(&mut self, query: &ColorHistogram) -> Option<(ImageId, f64)> {
        self.queries_served += 1;
        self.histograms
            .iter()
            .map(|(id, h)| (*id, query.intersection(h)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("similarities are finite"))
    }

    /// Ingests an image deduplicated by global features: stores its
    /// histogram and payload accounting. Returns the new id.
    pub fn ingest_image_with_histogram(
        &mut self,
        histogram: ColorHistogram,
        payload_bytes: usize,
        geotag: Option<(f64, f64)>,
    ) -> ImageId {
        let id = self.fresh_id();
        self.histograms.insert(id, histogram);
        self.received_images += 1;
        self.received_image_bytes += payload_bytes;
        if let Some(g) = geotag {
            self.geotags.insert(id, g);
        }
        self.telemetry
            .event(names::SRV_INGEST, 0.0)
            .attr_u64("image", id.0)
            .attr_u64("bytes", payload_bytes as u64)
            .close(0.0);
        id
    }
}

impl Default for Server {
    fn default() -> Self {
        Server::new()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("indexed_images", &self.indexed_images())
            .field("n_shards", &self.n_shards)
            .field("pending", &self.pending.len())
            .field("received_images", &self.received_images)
            .field("received_image_bytes", &self.received_image_bytes)
            .field("partial_images", &self.partials.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreError;
    use bees_datasets::{Scene, SceneConfig, ViewJitter};

    fn config() -> BeesConfig {
        BeesConfig::default()
    }

    fn small_scene(seed: u64) -> RgbImage {
        Scene::new(
            seed,
            SceneConfig {
                width: 96,
                height: 72,
                n_shapes: 10,
                texture_amp: 8.0,
            },
        )
        .render(&ViewJitter::identity())
    }

    #[test]
    fn preload_populates_index() {
        let mut s = Server::try_new(&config()).unwrap();
        assert_eq!(s.indexed_images(), 0);
        s.preload(&[small_scene(1), small_scene(2)]);
        assert_eq!(s.indexed_images(), 2);
        assert_eq!(s.received_images(), 0);
        assert!(s.feature_bytes() > 0);
    }

    #[test]
    fn query_finds_preloaded_similars() {
        let cfg = config();
        let mut s = Server::try_new(&cfg).unwrap();
        let scene = Scene::new(
            5,
            SceneConfig {
                width: 96,
                height: 72,
                n_shapes: 10,
                texture_amp: 8.0,
            },
        );
        s.preload(&[scene.render(&ViewJitter::identity())]);
        let orb = Orb::new(cfg.orb);
        let other_view = scene.render(&ViewJitter {
            dx: 2.0,
            brightness: 5,
            ..ViewJitter::identity()
        });
        let f = orb.extract(&other_view.to_gray());
        let hit = s.query_max_similarity(&f).expect("similar image indexed");
        assert!(hit.similarity > 0.1, "similarity {}", hit.similarity);
        assert_eq!(s.queries_served(), 1);
    }

    #[test]
    fn ingest_tracks_bytes_and_geotags() {
        let mut s = Server::try_new(&config()).unwrap();
        let id1 = s.ingest_image(ImageFeatures::empty_binary(), 1000, Some((2.32, 48.86)));
        let id2 = s.ingest_image(ImageFeatures::empty_binary(), 500, Some((2.32, 48.86)));
        let id3 = s.ingest_image(ImageFeatures::empty_binary(), 200, Some((2.33, 48.87)));
        assert_ne!(id1, id2);
        assert_ne!(id2, id3);
        assert_eq!(s.received_images(), 3);
        assert_eq!(s.received_image_bytes(), 1700);
        assert_eq!(s.unique_locations(), 2);
        assert_eq!(s.geotags().len(), 3);
    }

    #[test]
    fn mih_backend_works_too() {
        let cfg = BeesConfig {
            index_backend: IndexBackend::Mih,
            ..config()
        };
        let mut s = Server::try_new(&cfg).unwrap();
        s.preload(&[small_scene(3)]);
        assert_eq!(s.indexed_images(), 1);
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let cfg = BeesConfig {
            server_shards: 0,
            ..config()
        };
        assert!(matches!(
            Server::try_new(&cfg),
            Err(CoreError::InvalidConfig { .. })
        ));
        let cfg = BeesConfig {
            mih_probe_radius: 3,
            ..config()
        };
        assert!(matches!(
            Server::try_new(&cfg),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn default_server_uses_default_config() {
        let s = Server::new();
        assert_eq!(s.n_shards(), 1);
        assert_eq!(s.indexed_images(), 0);
    }

    #[test]
    fn pending_epoch_commits_on_query() {
        let cfg = BeesConfig {
            server_shards: 4,
            ..config()
        };
        let mut s = Server::try_new(&cfg).unwrap();
        let orb = Orb::new(cfg.orb);
        let f = orb.extract(&small_scene(7).to_gray());
        s.ingest_image(f.clone(), 100, None);
        // Pending images count as indexed before the commit...
        assert_eq!(s.indexed_images(), 1);
        assert!(s.feature_bytes() > 0);
        // ...and the query sees them (flushing the epoch first).
        let hit = s.query_max_similarity(&f).expect("just-ingested image");
        assert!((hit.similarity - 1.0).abs() < 1e-9);
        assert_eq!(s.indexed_images(), 1);
    }

    #[test]
    fn partial_images_are_queryable_and_upgrade_in_place() {
        let cfg = config();
        let mut s = Server::try_new(&cfg).unwrap();
        let orb = Orb::new(cfg.orb);
        let f = orb.extract(&small_scene(9).to_gray());
        let id = s.ingest_partial_image(
            f.clone(),
            PartialImage {
                scans_complete: 2,
                scans_total: 5,
                payload_bytes: 4_000,
                total_bytes: 10_000,
                ssim_estimate: 0.7,
            },
            Some((1.0, 2.0)),
        );
        // The salvaged image answers feature queries like any upload.
        let hit = s.query_max_similarity(&f).expect("partial is indexed");
        assert!((hit.similarity - 1.0).abs() < 1e-9);
        assert_eq!(hit.id, id);
        assert_eq!(s.received_images(), 1);
        assert_eq!(s.received_image_bytes(), 4_000);
        assert_eq!(s.partial_images().len(), 1);
        assert_eq!(s.partial_images()[&id].scans_complete, 2);
        // Tail completion upgrades in place: only the tail bytes are new,
        // and the image stops being partial.
        assert!(s.upgrade_partial_image(id));
        assert_eq!(s.received_image_bytes(), 10_000);
        assert_eq!(s.received_images(), 1);
        assert!(s.partial_images().is_empty());
        // A second upgrade (or a bogus id) is a no-op.
        assert!(!s.upgrade_partial_image(id));
        assert!(!s.upgrade_partial_image(ImageId(999)));
        assert_eq!(s.received_image_bytes(), 10_000);
    }

    /// The sharded server must answer every query exactly like the
    /// unsharded one over the same uploads.
    #[test]
    fn sharded_server_matches_unsharded() {
        let orb = Orb::new(config().orb);
        let scenes: Vec<RgbImage> = (0..8).map(small_scene).collect();
        let features: Vec<ImageFeatures> =
            scenes.iter().map(|s| orb.extract(&s.to_gray())).collect();

        let mut answers: Vec<Vec<Option<(ImageId, f64)>>> = Vec::new();
        for shards in [1usize, 2, 4] {
            let cfg = BeesConfig {
                index_backend: IndexBackend::Mih,
                server_shards: shards,
                ..config()
            };
            let mut s = Server::try_new(&cfg).unwrap();
            assert_eq!(s.n_shards(), shards);
            for f in &features {
                s.ingest_image(f.clone(), 10, None);
            }
            let hits: Vec<Option<(ImageId, f64)>> = features
                .iter()
                .map(|f| s.query_max_similarity(f).map(|h| (h.id, h.similarity)))
                .collect();
            answers.push(hits);
        }
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[0], answers[2]);
    }
}
