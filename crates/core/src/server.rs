//! The cloud server: sharded feature index plus received-image bookkeeping.
//!
//! The index is partitioned over [`BeesConfig::server_shards`] shards (see
//! `DESIGN.md` §9): uploads buffer into a *pending epoch* and are committed
//! to all shards in one parallel batch the moment the next query arrives.
//! Every scheme issues all of a batch's redundancy queries before any of
//! its ingests, so epoch boundaries always fall between batches and the
//! results are identical to immediate insertion — while ingest cost scales
//! with the shard count.

use crate::config::{BeesConfig, IndexBackend};
use crate::ingest::{IngestKind, IngestOutcome, IngestReceipt, IngestRequest, PreloadBatch};
use crate::retrieval::{
    rank_retrieval_hits, Provenance, RetrievalHit, RetrievalQuery, RetrievalResult,
};
use bees_features::global::ColorHistogram;
use bees_features::orb::Orb;
use bees_features::similarity::jaccard_similarity;
use bees_features::{Descriptors, FeatureExtractor, ImageFeatures};
use bees_image::RgbImage;
use bees_index::{
    FeatureIndex, ImageId, LinearIndex, MihIndex, Query, QueryHit, QueryScratch, ShardedIndex,
};
use bees_store::{
    ContentStore, Fidelity, Fnv64, InsertOutcome, RecompressionReport, StorageConfig, StorePayload,
};
use bees_telemetry::{names, Telemetry};
use std::collections::{BTreeMap, BTreeSet};

/// The server side of the system.
///
/// Holds the feature index used by Cross-Batch Redundancy Detection and
/// counts what it has received. Per the paper, server resources are assumed
/// plentiful: server-side CPU is not charged to any battery and query time
/// is excluded from the delay metric.
pub struct Server {
    index: Box<dyn FeatureIndex>,
    /// Recycled per-query buffers (merge heaps, candidate lists, per-shard
    /// children) threaded through every feature query; contents never
    /// influence results.
    scratch: QueryScratch,
    n_shards: usize,
    /// Features ingested since the last query; committed to all shards in
    /// one parallel `insert_batch` when the next query arrives.
    pending: Vec<(ImageId, ImageFeatures)>,
    orb: Orb,
    next_id: u64,
    received_images: usize,
    received_image_bytes: usize,
    queries_served: usize,
    /// Optional geotag per stored image (coverage experiment), keyed by id.
    geotags: BTreeMap<ImageId, (f64, f64)>,
    /// Global-feature store for PhotoNet-like schemes (histogram dedup),
    /// keyed by id.
    histograms: BTreeMap<ImageId, ColorHistogram>,
    /// Salvaged progressive uploads awaiting their tail scans, keyed by id.
    partials: BTreeMap<ImageId, PartialImage>,
    /// The fleet's virtual clock, installed by [`Server::set_time`]; `None`
    /// until a session installs one (legacy ingests then carry no time and
    /// never satisfy a retrieval time-window predicate).
    clock_s: Option<f64>,
    /// Virtual ingest time per received image, keyed by id.
    times: BTreeMap<ImageId, f64>,
    /// Received images whose payload is the degraded thumbnail rung.
    thumbnails: BTreeSet<ImageId>,
    /// The on-device catalog: deferred images whose features the server
    /// knows but whose payload still lives on the capturing device.
    on_device: BTreeMap<ImageId, OnDeviceImage>,
    /// The content-addressed storage tier: every ingest files its payload
    /// (or size-only stub) here; epoch commits group near-duplicates and
    /// snapshot the capacity ledger.
    store: ContentStore,
    storage_config: StorageConfig,
    telemetry: Telemetry,
}

/// A deferred image's catalog entry: the fleet session recorded that a
/// device captured (and feature-extracted) an image it could not afford to
/// upload. Retrieval can match the entry and the pull-down path can fetch
/// the payload on demand.
#[derive(Debug, Clone, PartialEq)]
pub struct OnDeviceImage {
    /// The device holding the payload.
    pub device_id: u64,
    /// Features extracted client-side (the same ones CBRD would upload).
    pub features: ImageFeatures,
    /// Capture geotag, when known.
    pub geotag: Option<(f64, f64)>,
    /// Virtual time the deferral was recorded, when the clock was set.
    pub time_s: Option<f64>,
    /// Estimated full-fidelity payload size, in bytes.
    pub est_bytes: usize,
}

/// Bookkeeping for a salvaged progressive upload: the server holds a
/// decodable scan prefix and can upgrade it in place when a later session
/// delivers the tail scans.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialImage {
    /// Progressive scans fully received (≥ 1: the DC scan decoded).
    pub scans_complete: usize,
    /// Scans a complete stream carries.
    pub scans_total: usize,
    /// Decodable payload bytes banked so far.
    pub payload_bytes: usize,
    /// Bytes of the complete encoded stream.
    pub total_bytes: usize,
    /// SSIM of the partial reconstruction against the full-quality encode,
    /// as estimated by the uploading client.
    pub ssim_estimate: f64,
}

/// How many neighbors an epoch-commit grouping probe retrieves: enough to
/// skip the image itself and any interleaved preloads (which hold no stored
/// payload and therefore cannot anchor a group).
const GROUPING_PROBE_K: usize = 8;

fn build_index(config: &BeesConfig) -> Box<dyn FeatureIndex> {
    let similarity = config.similarity;
    let radius = config.mih_probe_radius;
    match (config.index_backend, config.server_shards) {
        (IndexBackend::Linear, 1) => Box::new(LinearIndex::new(similarity)),
        (IndexBackend::Linear, n) => Box::new(ShardedIndex::with_shards(n, || {
            LinearIndex::new(similarity)
        })),
        (IndexBackend::Mih, 1) => Box::new(MihIndex::new(similarity).with_probe_radius(radius)),
        (IndexBackend::Mih, n) => Box::new(ShardedIndex::with_shards(n, || {
            MihIndex::new(similarity).with_probe_radius(radius)
        })),
    }
}

impl Server {
    /// Creates an empty server configured like the clients.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`](crate::CoreError::InvalidConfig)
    /// when the configuration fails [`BeesConfig::validate`] — in
    /// particular `server_shards == 0` or an out-of-range
    /// `mih_probe_radius`.
    pub fn try_new(config: &BeesConfig) -> crate::Result<Server> {
        config.validate()?;
        Ok(Server {
            index: build_index(config),
            scratch: QueryScratch::new(),
            n_shards: config.server_shards,
            pending: Vec::new(),
            orb: Orb::new(config.orb),
            next_id: 0,
            received_images: 0,
            received_image_bytes: 0,
            queries_served: 0,
            geotags: BTreeMap::new(),
            histograms: BTreeMap::new(),
            partials: BTreeMap::new(),
            clock_s: None,
            times: BTreeMap::new(),
            thumbnails: BTreeSet::new(),
            on_device: BTreeMap::new(),
            store: ContentStore::new(),
            storage_config: config.storage.clone(),
            telemetry: Telemetry::disabled(),
        })
    }

    /// Creates a server from the default configuration, which is valid by
    /// construction. Use [`Server::try_new`] for any custom configuration.
    pub fn new() -> Self {
        Server::try_new(&BeesConfig::default()).expect("default config is valid")
    }

    /// The telemetry handle `srv.*` events are emitted through (disabled by
    /// default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Installs a telemetry handle. The server has no clock of its own, so
    /// its events carry `t = 0.0`; per the paper, server time is excluded
    /// from the delay metric anyway.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of index shards this server partitions images over.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Number of index queries answered so far (similarity, top-k, and
    /// histogram queries).
    pub fn queries_served(&self) -> usize {
        self.queries_served
    }

    fn fresh_id(&mut self) -> ImageId {
        let id = ImageId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Commits the pending epoch: one parallel `insert_batch` over all
    /// shards. Called from every feature-query path, so queries never see a
    /// partially ingested epoch.
    ///
    /// After the commit, each newly indexed image that carries a stored
    /// payload joins its best already-stored neighbor's near-duplicate
    /// group (when the similarity clears `storage.group_threshold`), and
    /// the storage ledger takes an epoch snapshot. The grouping probes go
    /// straight to the index — they are bookkeeping, not served queries,
    /// so `queries_served` and the `srv.query` telemetry stay untouched.
    fn commit_epoch(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        let images = batch.len();
        let to_group: Vec<(ImageId, ImageFeatures)> = batch
            .iter()
            .filter(|(id, f)| !f.is_empty() && self.store.contains(id.0))
            .cloned()
            .collect();
        self.index.insert_batch(batch);
        for (id, features) in &to_group {
            let query = Query::top_k(features, GROUPING_PROBE_K);
            let hits = self.index.query_with_scratch(&query, &mut self.scratch);
            let neighbor = hits.iter().find(|h| {
                h.id != *id
                    && h.similarity >= self.storage_config.group_threshold
                    && self.store.contains(h.id.0)
            });
            if let Some(best) = neighbor {
                self.store.merge_groups(id.0, best.id.0);
            }
        }
        self.store.commit_epoch();
        if self.n_shards > 1 {
            self.telemetry
                .event(names::SRV_SHARD_COMMIT, 0.0)
                .attr_u64("images", images as u64)
                .attr_u64("shards", self.n_shards as u64)
                .close(0.0);
        }
    }

    /// Pre-loads images to stage a target cross-batch redundancy ratio:
    /// into the feature index (with the server's ORB or the batch's
    /// explicit extractor) or as global histograms only — see
    /// [`PreloadBatch`]. Feature preloads commit the epoch immediately;
    /// histogram preloads never touch the index, matching the historical
    /// trio of preload entry points.
    pub fn preload(&mut self, batch: PreloadBatch<'_>) {
        if batch.histograms_only {
            for img in batch.images {
                let h = ColorHistogram::from_image(img);
                let id = self.fresh_id();
                self.histograms.insert(id, h);
            }
            return;
        }
        for img in batch.images {
            let features = match batch.extractor {
                Some(extractor) => extractor.extract(&img.to_gray()),
                None => self.orb.extract(&img.to_gray()),
            };
            let id = self.fresh_id();
            self.pending.push((id, features));
        }
        self.commit_epoch();
    }

    /// Pre-loads images using an explicit extractor. Schemes whose clients
    /// speak a different feature language (SmartEye's PCA-SIFT) stage their
    /// redundancy with this.
    #[deprecated(
        since = "0.1.0",
        note = "build a `PreloadBatch::new(..).with_extractor(..)` and call `Server::preload`"
    )]
    pub fn preload_with(&mut self, extractor: &dyn FeatureExtractor, images: &[RgbImage]) {
        self.preload(PreloadBatch::new(images).with_extractor(extractor));
    }

    /// Installs the fleet's virtual clock. Subsequent ingests are stamped
    /// with this time so retrieval time-window predicates can filter them;
    /// until the first call, ingests carry no time.
    pub fn set_time(&mut self, t_s: f64) {
        self.clock_s = Some(t_s);
    }

    /// The `(provenance, geotag, time)` side-table view of a received
    /// image, used to decorate retrieval hits.
    fn provenance_of(&self, id: ImageId) -> Provenance {
        if let Some(p) = self.partials.get(&id) {
            Provenance::SalvagedPartial {
                scans_complete: p.scans_complete,
                scans_total: p.scans_total,
            }
        } else if self.thumbnails.contains(&id) {
            Provenance::ThumbnailOnly
        } else {
            Provenance::Full
        }
    }

    /// Resolves the query's geo/time predicates against the side tables
    /// into a sorted id allow-list — `None` when a similarity probe runs
    /// unfiltered over the whole index. This is the list that gets pushed
    /// below the shard merge.
    fn resolve_filters(&self, query: &RetrievalQuery<'_>) -> Option<Vec<ImageId>> {
        if query.has_filter() {
            // A geo predicate needs a geotag, a time predicate a time — so
            // iterating the side table the predicate demands covers every
            // image that could possibly pass.
            let mut ids: Vec<ImageId> = Vec::new();
            if query.geo.is_some() {
                for (&id, &g) in &self.geotags {
                    if query.passes_filters(Some(g), self.times.get(&id).copied()) {
                        ids.push(id);
                    }
                }
            } else {
                for (&id, &t) in &self.times {
                    if query.passes_filters(self.geotags.get(&id).copied(), Some(t)) {
                        ids.push(id);
                    }
                }
            }
            Some(ids)
        } else if !query.has_probe() {
            // Unconstrained browse: every image with any side-table data.
            let mut ids: BTreeSet<ImageId> = self.geotags.keys().copied().collect();
            ids.extend(self.times.keys().copied());
            Some(ids.into_iter().collect())
        } else {
            None
        }
    }

    /// Executes a responder query: geo/time predicates are resolved into an
    /// allow-list pushed below the shard merge, the similarity probe (if
    /// any) ranks survivors, and — when the query opts in — the on-device
    /// catalog is matched alongside the received images. Hits come back in
    /// the canonical total order (descending score, ascending id), truncated
    /// to the query's `top_k` budget.
    ///
    /// Commits the pending epoch first when a descriptor probe is present,
    /// exactly like the legacy CBRD path.
    pub fn retrieve(
        &mut self,
        query: &RetrievalQuery<'_>,
        scratch: &mut QueryScratch,
    ) -> RetrievalResult {
        let allowed = self.resolve_filters(query);
        let mut hits: Vec<RetrievalHit> = Vec::new();
        let mut candidates;
        if let Some(features) = query.features {
            self.commit_epoch();
            candidates = allowed.as_ref().map_or(self.index.len(), Vec::len);
            let k = if query.top_k == 0 {
                usize::MAX
            } else {
                query.top_k
            };
            let mut iq = Query::top_k(features, k).with_max_candidates(query.max_candidates);
            if let Some(ids) = allowed.as_deref() {
                iq = iq.with_allowed(ids);
            }
            let index_hits = self.index.query_with_scratch(&iq, scratch);
            self.telemetry
                .event(names::SRV_QUERY, 0.0)
                .attr_u64("indexed", self.index.len() as u64)
                .attr_bool("hit", !index_hits.is_empty())
                .close(0.0);
            if self.n_shards > 1 {
                self.telemetry
                    .event(names::SRV_SHARD_QUERY, 0.0)
                    .attr_u64("shards", self.n_shards as u64)
                    .close(0.0);
            }
            for h in index_hits {
                hits.push(RetrievalHit {
                    id: h.id,
                    score: h.similarity,
                    provenance: self.provenance_of(h.id),
                    geotag: self.geotags.get(&h.id).copied(),
                    time_s: self.times.get(&h.id).copied(),
                });
            }
        } else if let Some(probe) = query.histogram {
            candidates = allowed.as_ref().map_or(self.histograms.len(), Vec::len);
            for (&id, h) in &self.histograms {
                if let Some(ids) = allowed.as_deref() {
                    if ids.binary_search(&id).is_err() {
                        continue;
                    }
                }
                let s = probe.intersection(h);
                if s > 0.0 {
                    hits.push(RetrievalHit {
                        id,
                        score: s,
                        provenance: self.provenance_of(id),
                        geotag: self.geotags.get(&id).copied(),
                        time_s: self.times.get(&id).copied(),
                    });
                }
            }
        } else {
            // Predicate-only: every allowed image is a hit, ranked by
            // geographic proximity (or id order for pure time windows).
            let ids = allowed.as_deref().unwrap_or(&[]);
            candidates = ids.len();
            for &id in ids {
                let geotag = self.geotags.get(&id).copied();
                hits.push(RetrievalHit {
                    id,
                    score: query.filter_score(geotag),
                    provenance: self.provenance_of(id),
                    geotag,
                    time_s: self.times.get(&id).copied(),
                });
            }
        }
        if query.on_device {
            candidates += self.on_device.len();
            for (&id, entry) in &self.on_device {
                if !query.passes_filters(entry.geotag, entry.time_s) {
                    continue;
                }
                let score = if let Some(f) = query.features {
                    let s = jaccard_similarity(f, &entry.features, self.index.similarity_config());
                    if s <= 0.0 {
                        continue;
                    }
                    s
                } else if query.histogram.is_some() {
                    // The catalog stores descriptors only; a histogram
                    // probe has nothing to score against.
                    continue;
                } else {
                    query.filter_score(entry.geotag)
                };
                hits.push(RetrievalHit {
                    id,
                    score,
                    provenance: Provenance::OnDevice {
                        device_id: entry.device_id,
                    },
                    geotag: entry.geotag,
                    time_s: entry.time_s,
                });
            }
        }
        rank_retrieval_hits(&mut hits, query.top_k);
        let on_device_matches = hits
            .iter()
            .filter(|h| matches!(h.provenance, Provenance::OnDevice { .. }))
            .count();
        self.queries_served += 1;
        self.telemetry
            .event(names::SRV_RETRIEVE, 0.0)
            .attr_u64("hits", hits.len() as u64)
            .attr_u64("candidates", candidates as u64)
            .attr_u64("on_device", on_device_matches as u64)
            .close(0.0);
        RetrievalResult {
            hits,
            candidates_considered: candidates,
            on_device_matches,
        }
    }

    /// [`Server::retrieve`] with the server's own recycled scratch arena —
    /// the convenience form for callers that don't manage a
    /// [`QueryScratch`] of their own (the schemes' CBRD loop, the fleet
    /// pull-down phase). Results are identical.
    pub fn answer(&mut self, query: &RetrievalQuery<'_>) -> RetrievalResult {
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.retrieve(query, &mut scratch);
        self.scratch = scratch;
        result
    }

    /// Answers a CBRD query: the highest similarity any indexed image has
    /// to the queried features. Commits the pending epoch first.
    #[deprecated(
        since = "0.1.0",
        note = "compose a `RetrievalQuery::new().similar_to(..)` and call `Server::retrieve` (or `Server::answer`)"
    )]
    pub fn query_max_similarity(&mut self, features: &ImageFeatures) -> Option<QueryHit> {
        self.answer(&RetrievalQuery::new().similar_to(features).top_k(1))
            .hits
            .into_iter()
            .next()
            .map(|h| QueryHit {
                id: h.id,
                similarity: h.score,
            })
    }

    /// Top-k query (precision experiments). Commits the pending epoch
    /// first.
    #[deprecated(
        since = "0.1.0",
        note = "compose a `RetrievalQuery::new().similar_to(..).top_k(k)` and call `Server::retrieve` (or `Server::answer`)"
    )]
    pub fn query_top_k(&mut self, features: &ImageFeatures, k: usize) -> Vec<QueryHit> {
        // The index's `k` is a hard cap (k = 0 returns nothing), while the
        // retrieval budget treats 0 as unlimited — preserve the old edge.
        let hits = self
            .answer(&RetrievalQuery::new().similar_to(features).top_k(k.max(1)))
            .hits;
        if k == 0 {
            return Vec::new();
        }
        hits.into_iter()
            .map(|h| QueryHit {
                id: h.id,
                similarity: h.score,
            })
            .collect()
    }

    /// Executes one write against the unified storage path. Every ingest —
    /// full, thumbnail, partial, catalog record, upgrade, fulfillment —
    /// flows through here: the request names the payload fidelity and
    /// carries whatever the upload included (bytes, features, histogram,
    /// geotag); the receipt reports the id and the storage provenance
    /// (stored fresh / dedup hit / upgraded / fulfilled / cataloged).
    ///
    /// Payloads are filed in the content-addressed [`ContentStore`]: real
    /// bytes are keyed by their own hash, size-only stubs by a content
    /// fingerprint (feature digest, else histogram digest, else the unique
    /// image id). An ingest whose key is already stored becomes a
    /// [`IngestOutcome::DedupHit`] — the legacy uplink counters still
    /// account the payload (the bytes crossed the network), but no new
    /// physical bytes enter the store.
    pub fn ingest(&mut self, request: IngestRequest) -> IngestReceipt {
        let IngestRequest {
            kind,
            bytes,
            features,
            histogram,
            geotag,
        } = request;
        let now = self.clock_s.unwrap_or(0.0);
        match kind {
            IngestKind::Full { payload_bytes } => self.ingest_upload(
                payload_bytes,
                Fidelity::Full,
                None,
                bytes,
                features,
                histogram,
                geotag,
                now,
            ),
            IngestKind::Thumbnail { payload_bytes } => {
                let receipt = self.ingest_upload(
                    payload_bytes,
                    Fidelity::Thumbnail,
                    None,
                    bytes,
                    features,
                    histogram,
                    geotag,
                    now,
                );
                self.thumbnails.insert(receipt.id);
                receipt
            }
            IngestKind::Partial { partial } => {
                let accounted = partial.payload_bytes;
                self.ingest_upload(
                    accounted,
                    Fidelity::Partial,
                    Some(partial),
                    bytes,
                    features,
                    histogram,
                    geotag,
                    now,
                )
            }
            IngestKind::OnDevice {
                device_id,
                est_bytes,
            } => {
                let id = self.fresh_id();
                let fingerprint = content_fingerprint(id, features.as_ref(), histogram.as_ref());
                self.on_device.insert(
                    id,
                    OnDeviceImage {
                        device_id,
                        features: features.unwrap_or_else(ImageFeatures::empty_binary),
                        geotag,
                        time_s: self.clock_s,
                        est_bytes,
                    },
                );
                self.store.insert(
                    id.0,
                    StorePayload::Size {
                        size: est_bytes,
                        fingerprint,
                    },
                    Fidelity::OnDevice,
                    now,
                );
                IngestReceipt {
                    id,
                    outcome: IngestOutcome::Cataloged,
                    accounted_bytes: 0,
                }
            }
            IngestKind::Upgrade { id } => {
                let Some(partial) = self.partials.remove(&id) else {
                    return IngestReceipt {
                        id,
                        outcome: IngestOutcome::NoOp,
                        accounted_bytes: 0,
                    };
                };
                let tail = partial.total_bytes.saturating_sub(partial.payload_bytes);
                self.received_image_bytes += tail;
                self.telemetry
                    .event(names::SRV_INGEST, 0.0)
                    .attr_u64("image", id.0)
                    .attr_u64("bytes", tail as u64)
                    .attr_bool("upgrade", true)
                    .close(0.0);
                self.store.upgrade(id.0, tail, now);
                IngestReceipt {
                    id,
                    outcome: IngestOutcome::Upgraded,
                    accounted_bytes: tail,
                }
            }
            IngestKind::Fulfill { id } => {
                let Some(entry) = self.on_device.remove(&id) else {
                    return IngestReceipt {
                        id,
                        outcome: IngestOutcome::NoOp,
                        accounted_bytes: 0,
                    };
                };
                self.pending.push((id, entry.features));
                self.received_images += 1;
                self.received_image_bytes += entry.est_bytes;
                if let Some(g) = entry.geotag {
                    self.geotags.insert(id, g);
                }
                if let Some(t) = entry.time_s {
                    self.times.insert(id, t);
                }
                self.telemetry
                    .event(names::SRV_INGEST, 0.0)
                    .attr_u64("image", id.0)
                    .attr_u64("bytes", entry.est_bytes as u64)
                    .attr_bool("pulldown", true)
                    .close(0.0);
                self.store.fulfill(id.0, entry.est_bytes, now);
                IngestReceipt {
                    id,
                    outcome: IngestOutcome::Fulfilled,
                    accounted_bytes: entry.est_bytes,
                }
            }
        }
    }

    /// The shared upload path behind `Full`, `Thumbnail`, and `Partial`
    /// requests: fresh id, legacy counters and side tables, the
    /// `srv.ingest` event, feature staging, and the content-addressed store
    /// insert.
    #[allow(clippy::too_many_arguments)]
    fn ingest_upload(
        &mut self,
        accounted: usize,
        fidelity: Fidelity,
        partial: Option<PartialImage>,
        bytes: Option<Vec<u8>>,
        features: Option<ImageFeatures>,
        histogram: Option<ColorHistogram>,
        geotag: Option<(f64, f64)>,
        now: f64,
    ) -> IngestReceipt {
        let id = self.fresh_id();
        let fingerprint = content_fingerprint(id, features.as_ref(), histogram.as_ref());
        self.received_images += 1;
        self.received_image_bytes += accounted;
        if let Some(g) = geotag {
            self.geotags.insert(id, g);
        }
        if let Some(t) = self.clock_s {
            self.times.insert(id, t);
        }
        let event = self
            .telemetry
            .event(names::SRV_INGEST, 0.0)
            .attr_u64("image", id.0)
            .attr_u64("bytes", accounted as u64);
        let event = match &partial {
            Some(p) => event
                .attr_bool("partial", true)
                .attr_u64("scans", p.scans_complete as u64),
            None => event,
        };
        event.close(0.0);
        if let Some(h) = histogram {
            self.histograms.insert(id, h);
        }
        if let Some(f) = features {
            self.pending.push((id, f));
        }
        let payload = match bytes {
            Some(b) => {
                debug_assert_eq!(
                    b.len(),
                    accounted,
                    "attached bytes must be the accounted payload"
                );
                StorePayload::Bytes(b)
            }
            None => StorePayload::Size {
                size: accounted,
                fingerprint,
            },
        };
        let outcome = match self.store.insert(id.0, payload, fidelity, now) {
            InsertOutcome::Stored { .. } => IngestOutcome::Stored,
            InsertOutcome::DedupHit => IngestOutcome::DedupHit,
        };
        if let Some(p) = partial {
            self.partials.insert(id, p);
        }
        IngestReceipt {
            id,
            outcome,
            accounted_bytes: accounted,
        }
    }

    /// The content-addressed storage tier: blobs, near-duplicate groups,
    /// and the capacity ledger.
    pub fn storage(&self) -> &ContentStore {
        &self.store
    }

    /// Runs the cold-recompression pass at the fleet's current virtual
    /// time, with the configured gates (`storage.recompress_*`): blobs
    /// untouched for the configured age whose near-duplicate group holds
    /// enough redundant members are re-encoded at the lower quality tier.
    /// The reclaimed bytes land in the storage ledger.
    pub fn run_cold_recompression(&mut self) -> RecompressionReport {
        let now = self.clock_s.unwrap_or(0.0);
        self.store.run_recompression(now, &self.storage_config)
    }

    /// Ingests an uploaded image: records the payload size and stages the
    /// supplied features (the ones the client already uploaded for CBRD)
    /// for the next epoch commit, so later batches can deduplicate against
    /// it. Returns the new id.
    #[deprecated(
        since = "0.1.0",
        note = "build an `IngestRequest::full(..).with_features(..)` and call `Server::ingest`"
    )]
    pub fn ingest_image(
        &mut self,
        features: ImageFeatures,
        payload_bytes: usize,
        geotag: Option<(f64, f64)>,
    ) -> ImageId {
        let mut request = IngestRequest::full(payload_bytes).with_features(features);
        if let Some(g) = geotag {
            request = request.with_geotag(g);
        }
        self.ingest(request).id
    }

    /// Ingests a *thumbnail-rung* upload: identical to a full ingest but
    /// the image is remembered as degraded, so retrieval reports
    /// [`Provenance::ThumbnailOnly`] and the pull-down path knows a
    /// full-fidelity fetch would still add information.
    #[deprecated(
        since = "0.1.0",
        note = "build an `IngestRequest::thumbnail(..).with_features(..)` and call `Server::ingest`"
    )]
    pub fn ingest_thumbnail_image(
        &mut self,
        features: ImageFeatures,
        payload_bytes: usize,
        geotag: Option<(f64, f64)>,
    ) -> ImageId {
        let mut request = IngestRequest::thumbnail(payload_bytes).with_features(features);
        if let Some(g) = geotag {
            request = request.with_geotag(g);
        }
        self.ingest(request).id
    }

    /// Ingests a *salvaged* progressive upload: the decodable scan prefix
    /// of a transfer whose tail never arrived. The image is fully
    /// query-able — its features (extracted client-side and uploaded for
    /// CBRD) stage for the next epoch commit like any other upload — but it
    /// is tracked as partial until an upgrade delivers the tail. Returns
    /// the new id.
    #[deprecated(
        since = "0.1.0",
        note = "build an `IngestRequest::partial(..).with_features(..)` and call `Server::ingest`"
    )]
    pub fn ingest_partial_image(
        &mut self,
        features: ImageFeatures,
        partial: PartialImage,
        geotag: Option<(f64, f64)>,
    ) -> ImageId {
        let mut request = IngestRequest::partial(partial).with_features(features);
        if let Some(g) = geotag {
            request = request.with_geotag(g);
        }
        self.ingest(request).id
    }

    /// Upgrades a partial image in place: a later session delivered the
    /// tail scans, so the stored prefix becomes the full-fidelity image.
    /// Accounts only the tail bytes (the prefix was already counted).
    /// Returns `false` when `id` is not a partial image.
    #[deprecated(
        since = "0.1.0",
        note = "build an `IngestRequest::upgrade(id)` and call `Server::ingest`"
    )]
    pub fn upgrade_partial_image(&mut self, id: ImageId) -> bool {
        self.ingest(IngestRequest::upgrade(id)).outcome == IngestOutcome::Upgraded
    }

    /// Salvaged uploads still awaiting their tail scans, keyed by id.
    pub fn partial_images(&self) -> &BTreeMap<ImageId, PartialImage> {
        &self.partials
    }

    /// Number of images stored (preloads + uploads), including the pending
    /// epoch.
    pub fn indexed_images(&self) -> usize {
        self.index.len() + self.pending.len()
    }

    /// Number of images actually uploaded (excludes preloads).
    pub fn received_images(&self) -> usize {
        self.received_images
    }

    /// Total uploaded image payload bytes.
    pub fn received_image_bytes(&self) -> usize {
        self.received_image_bytes
    }

    /// Geotags of received images, keyed by id (coverage experiment).
    pub fn geotags(&self) -> &BTreeMap<ImageId, (f64, f64)> {
        &self.geotags
    }

    /// Number of unique geotagged locations among received images — the
    /// paper's coverage metric (Fig. 12).
    pub fn unique_locations(&self) -> usize {
        let mut coords: Vec<(u64, u64)> = self
            .geotags
            .values()
            .map(|&(lon, lat)| (lon.to_bits(), lat.to_bits()))
            .collect();
        coords.sort_unstable();
        coords.dedup();
        coords.len()
    }

    /// Stored feature bytes (Table I space overhead), including the pending
    /// epoch.
    pub fn feature_bytes(&self) -> usize {
        self.index.feature_bytes()
            + self
                .pending
                .iter()
                .map(|(_, f)| f.wire_size())
                .sum::<usize>()
    }

    /// Pre-loads global features (color histograms) for the PhotoNet-like
    /// scheme's staging.
    #[deprecated(
        since = "0.1.0",
        note = "build a `PreloadBatch::histograms(..)` and call `Server::preload`"
    )]
    pub fn preload_histograms(&mut self, images: &[RgbImage]) {
        self.preload(PreloadBatch::histograms(images));
    }

    /// Maximum histogram-intersection similarity of `query` against every
    /// stored histogram, or `None` when none are stored. Ties go to the
    /// highest id (matching the historical ascending-iteration `max_by`).
    #[deprecated(
        since = "0.1.0",
        note = "compose a `RetrievalQuery::new().similar_to_histogram(..)` and call `Server::retrieve` (or `Server::answer`)"
    )]
    pub fn query_max_histogram(&mut self, query: &ColorHistogram) -> Option<(ImageId, f64)> {
        let r = self.answer(&RetrievalQuery::new().similar_to_histogram(query));
        match r.hits.first() {
            Some(top) => {
                // Retrieval breaks score ties toward the *lowest* id; the
                // legacy `max_by` kept the last (highest-id) maximum.
                let best = r
                    .hits
                    .iter()
                    .take_while(|h| {
                        h.score.partial_cmp(&top.score) == Some(std::cmp::Ordering::Equal)
                    })
                    .last()
                    .expect("run starts at the top hit");
                Some((best.id, best.score))
            }
            // Retrieval omits zero-score hits; the legacy query reported
            // the best of an all-disjoint store as (highest id, 0.0).
            None => self.histograms.keys().next_back().map(|id| (*id, 0.0)),
        }
    }

    /// Ingests an image deduplicated by global features: stores its
    /// histogram and payload accounting. Returns the new id.
    #[deprecated(
        since = "0.1.0",
        note = "build an `IngestRequest::full(..).with_histogram(..)` and call `Server::ingest`"
    )]
    pub fn ingest_image_with_histogram(
        &mut self,
        histogram: ColorHistogram,
        payload_bytes: usize,
        geotag: Option<(f64, f64)>,
    ) -> ImageId {
        let mut request = IngestRequest::full(payload_bytes).with_histogram(histogram);
        if let Some(g) = geotag {
            request = request.with_geotag(g);
        }
        self.ingest(request).id
    }

    /// Catalogs a deferred image: the fleet session records that `device`
    /// holds a payload it could not afford to upload, along with the
    /// features it already extracted. The entry is invisible to the legacy
    /// query surface (it is not indexed and counts as neither received nor
    /// pending) — only retrieval queries that opt into the catalog see it.
    /// Returns the catalog id, under which [`fulfill_on_device`] later
    /// ingests the real payload.
    ///
    /// [`fulfill_on_device`]: Server::fulfill_on_device
    #[deprecated(
        since = "0.1.0",
        note = "build an `IngestRequest::on_device(..).with_features(..)` and call `Server::ingest`"
    )]
    pub fn record_on_device(
        &mut self,
        device_id: u64,
        features: ImageFeatures,
        geotag: Option<(f64, f64)>,
        est_bytes: usize,
    ) -> ImageId {
        let mut request = IngestRequest::on_device(device_id, est_bytes).with_features(features);
        if let Some(g) = geotag {
            request = request.with_geotag(g);
        }
        self.ingest(request).id
    }

    /// The on-device catalog, keyed by id (the pull-down phase groups it
    /// by owning device).
    pub fn on_device_images(&self) -> &BTreeMap<ImageId, OnDeviceImage> {
        &self.on_device
    }

    /// Fulfills a pull-down: the device delivered the payload for catalog
    /// entry `id`, which becomes a received image *under the same id* —
    /// its features stage for the next epoch commit, its geotag and capture
    /// time enter the side tables, and the payload bytes are accounted.
    /// Returns the payload size, or `None` when `id` is not cataloged.
    #[deprecated(
        since = "0.1.0",
        note = "build an `IngestRequest::fulfill(id)` and call `Server::ingest`"
    )]
    pub fn fulfill_on_device(&mut self, id: ImageId) -> Option<usize> {
        let receipt = self.ingest(IngestRequest::fulfill(id));
        (receipt.outcome == IngestOutcome::Fulfilled).then_some(receipt.accounted_bytes)
    }
}

/// Content fingerprint for size-only stubs: folds the descriptor bytes (or
/// the histogram bins) so identical content dedups across devices; with no
/// content to key on, falls back to the unique image id so distinct images
/// never alias on size alone.
fn content_fingerprint(
    id: ImageId,
    features: Option<&ImageFeatures>,
    histogram: Option<&ColorHistogram>,
) -> u64 {
    let mut h = Fnv64::new();
    if let Some(f) = features.filter(|f| !f.is_empty()) {
        match &f.descriptors {
            Descriptors::Binary(ds) => {
                h.write_u64(1);
                for d in ds {
                    h.write(d.as_bytes());
                }
            }
            Descriptors::Vector(ds) => {
                h.write_u64(2);
                for d in ds {
                    for v in d.values() {
                        h.write(&v.to_bits().to_le_bytes());
                    }
                }
            }
        }
    } else if let Some(hist) = histogram {
        h.write_u64(3);
        for c in hist.cells() {
            h.write(&c.to_bits().to_le_bytes());
        }
    } else {
        h.write_u64(4);
        h.write_u64(id.0);
    }
    h.finish()
}

impl Default for Server {
    fn default() -> Self {
        Server::new()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("indexed_images", &self.indexed_images())
            .field("n_shards", &self.n_shards)
            .field("pending", &self.pending.len())
            .field("received_images", &self.received_images)
            .field("received_image_bytes", &self.received_image_bytes)
            .field("partial_images", &self.partials.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreError;
    use bees_datasets::{Scene, SceneConfig, ViewJitter};

    fn config() -> BeesConfig {
        BeesConfig::default()
    }

    fn small_scene(seed: u64) -> RgbImage {
        Scene::new(
            seed,
            SceneConfig {
                width: 96,
                height: 72,
                n_shapes: 10,
                texture_amp: 8.0,
            },
        )
        .render(&ViewJitter::identity())
    }

    #[test]
    fn preload_populates_index() {
        let mut s = Server::try_new(&config()).unwrap();
        assert_eq!(s.indexed_images(), 0);
        s.preload(PreloadBatch::new(&[small_scene(1), small_scene(2)]));
        assert_eq!(s.indexed_images(), 2);
        assert_eq!(s.received_images(), 0);
        assert!(s.feature_bytes() > 0);
        // Preloads hold no payload, so the storage tier stays empty.
        assert_eq!(s.storage().blob_count(), 0);
        assert_eq!(s.storage().ledger().stored_bytes, 0);
    }

    #[test]
    fn query_finds_preloaded_similars() {
        let cfg = config();
        let mut s = Server::try_new(&cfg).unwrap();
        let scene = Scene::new(
            5,
            SceneConfig {
                width: 96,
                height: 72,
                n_shapes: 10,
                texture_amp: 8.0,
            },
        );
        s.preload(PreloadBatch::new(&[scene.render(&ViewJitter::identity())]));
        let orb = Orb::new(cfg.orb);
        let other_view = scene.render(&ViewJitter {
            dx: 2.0,
            brightness: 5,
            ..ViewJitter::identity()
        });
        let f = orb.extract(&other_view.to_gray());
        let r = s.answer(&RetrievalQuery::new().similar_to(&f).top_k(1));
        let hit = r.hits.first().expect("similar image indexed");
        assert!(hit.score > 0.1, "similarity {}", hit.score);
        assert_eq!(hit.provenance, Provenance::Full);
        assert_eq!(s.queries_served(), 1);
    }

    #[test]
    fn ingest_tracks_bytes_and_geotags() {
        let mut s = Server::try_new(&config()).unwrap();
        let full = |bytes: usize, geo: (f64, f64)| {
            IngestRequest::full(bytes)
                .with_features(ImageFeatures::empty_binary())
                .with_geotag(geo)
        };
        let id1 = s.ingest(full(1000, (2.32, 48.86))).id;
        let id2 = s.ingest(full(500, (2.32, 48.86))).id;
        let id3 = s.ingest(full(200, (2.33, 48.87))).id;
        assert_ne!(id1, id2);
        assert_ne!(id2, id3);
        assert_eq!(s.received_images(), 3);
        assert_eq!(s.received_image_bytes(), 1700);
        assert_eq!(s.unique_locations(), 2);
        assert_eq!(s.geotags().len(), 3);
        // Empty features give the store nothing to key on, so distinct
        // images never alias even at equal sizes.
        assert_eq!(s.storage().blob_count(), 3);
        assert_eq!(s.storage().ledger().dedup_hits, 0);
        assert_eq!(s.storage().ledger().stored_bytes, 1700);
    }

    #[test]
    fn mih_backend_works_too() {
        let cfg = BeesConfig {
            index_backend: IndexBackend::Mih,
            ..config()
        };
        let mut s = Server::try_new(&cfg).unwrap();
        s.preload(PreloadBatch::new(&[small_scene(3)]));
        assert_eq!(s.indexed_images(), 1);
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let cfg = BeesConfig {
            server_shards: 0,
            ..config()
        };
        assert!(matches!(
            Server::try_new(&cfg),
            Err(CoreError::InvalidConfig { .. })
        ));
        let cfg = BeesConfig {
            mih_probe_radius: 3,
            ..config()
        };
        assert!(matches!(
            Server::try_new(&cfg),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn default_server_uses_default_config() {
        let s = Server::new();
        assert_eq!(s.n_shards(), 1);
        assert_eq!(s.indexed_images(), 0);
    }

    #[test]
    fn pending_epoch_commits_on_query() {
        let cfg = BeesConfig {
            server_shards: 4,
            ..config()
        };
        let mut s = Server::try_new(&cfg).unwrap();
        let orb = Orb::new(cfg.orb);
        let f = orb.extract(&small_scene(7).to_gray());
        s.ingest(IngestRequest::full(100).with_features(f.clone()));
        // Pending images count as indexed before the commit...
        assert_eq!(s.indexed_images(), 1);
        assert!(s.feature_bytes() > 0);
        // ...and the query sees them (flushing the epoch first).
        let r = s.answer(&RetrievalQuery::new().similar_to(&f).top_k(1));
        let hit = r.hits.first().expect("just-ingested image");
        assert!((hit.score - 1.0).abs() < 1e-9);
        assert_eq!(s.indexed_images(), 1);
    }

    #[test]
    fn partial_images_are_queryable_and_upgrade_in_place() {
        let cfg = config();
        let mut s = Server::try_new(&cfg).unwrap();
        let orb = Orb::new(cfg.orb);
        let f = orb.extract(&small_scene(9).to_gray());
        let receipt = s.ingest(
            IngestRequest::partial(PartialImage {
                scans_complete: 2,
                scans_total: 5,
                payload_bytes: 4_000,
                total_bytes: 10_000,
                ssim_estimate: 0.7,
            })
            .with_features(f.clone())
            .with_geotag((1.0, 2.0)),
        );
        assert_eq!(receipt.outcome, IngestOutcome::Stored);
        assert_eq!(receipt.accounted_bytes, 4_000);
        let id = receipt.id;
        // The salvaged image answers feature queries like any upload, and
        // retrieval reports its partial provenance.
        let r = s.answer(&RetrievalQuery::new().similar_to(&f).top_k(1));
        let hit = r.hits.first().expect("partial is indexed").clone();
        assert!((hit.score - 1.0).abs() < 1e-9);
        assert_eq!(hit.id, id);
        assert_eq!(
            hit.provenance,
            Provenance::SalvagedPartial {
                scans_complete: 2,
                scans_total: 5
            }
        );
        assert_eq!(s.received_images(), 1);
        assert_eq!(s.received_image_bytes(), 4_000);
        assert_eq!(s.partial_images().len(), 1);
        assert_eq!(s.partial_images()[&id].scans_complete, 2);
        // Tail completion upgrades in place: only the tail bytes are new,
        // and the image stops being partial.
        let up = s.ingest(IngestRequest::upgrade(id));
        assert_eq!(up.outcome, IngestOutcome::Upgraded);
        assert_eq!(up.accounted_bytes, 6_000);
        assert_eq!(s.received_image_bytes(), 10_000);
        assert_eq!(s.received_images(), 1);
        assert!(s.partial_images().is_empty());
        // The store promoted the blob and accounted the tail too.
        assert_eq!(s.storage().blob_of(id.0).unwrap().len, 10_000);
        assert_eq!(s.storage().ledger().stored_bytes, 10_000);
        // A second upgrade (or a bogus id) is a no-op.
        assert_eq!(s.ingest(IngestRequest::upgrade(id)).outcome, IngestOutcome::NoOp);
        assert_eq!(
            s.ingest(IngestRequest::upgrade(ImageId(999))).outcome,
            IngestOutcome::NoOp
        );
        assert_eq!(s.received_image_bytes(), 10_000);
    }

    /// The sharded server must answer every query exactly like the
    /// unsharded one over the same uploads.
    #[test]
    fn sharded_server_matches_unsharded() {
        let orb = Orb::new(config().orb);
        let scenes: Vec<RgbImage> = (0..8).map(small_scene).collect();
        let features: Vec<ImageFeatures> =
            scenes.iter().map(|s| orb.extract(&s.to_gray())).collect();

        let mut answers: Vec<Vec<Option<(ImageId, f64)>>> = Vec::new();
        let mut digests: Vec<u64> = Vec::new();
        for shards in [1usize, 2, 4] {
            let cfg = BeesConfig {
                index_backend: IndexBackend::Mih,
                server_shards: shards,
                ..config()
            };
            let mut s = Server::try_new(&cfg).unwrap();
            assert_eq!(s.n_shards(), shards);
            for f in &features {
                s.ingest(IngestRequest::full(10).with_features(f.clone()));
            }
            let hits: Vec<Option<(ImageId, f64)>> = features
                .iter()
                .map(|f| {
                    s.answer(&RetrievalQuery::new().similar_to(f).top_k(1))
                        .hits
                        .first()
                        .map(|h| (h.id, h.score))
                })
                .collect();
            answers.push(hits);
            digests.push(s.storage().layout_digest());
        }
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[0], answers[2]);
        // The storage tier (blobs, groups, ledger) is shard-invariant too.
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[0], digests[2]);
    }

    #[test]
    fn retrieval_filters_by_geo_radius_and_time_window() {
        let mut s = Server::try_new(&config()).unwrap();
        let full = |geo: (f64, f64)| {
            IngestRequest::full(100)
                .with_features(ImageFeatures::empty_binary())
                .with_geotag(geo)
        };
        s.set_time(10.0);
        let a = s.ingest(full((0.0, 0.0))).id;
        s.set_time(20.0);
        let b = s.ingest(full((0.01, 0.0))).id;
        s.set_time(30.0);
        let c = s.ingest(full((10.0, 10.0))).id;
        // A 2 km radius covers a (0 km) and b (~1.1 km), ranked by
        // proximity; c is ~1560 km away.
        let r = s.answer(&RetrievalQuery::new().near(0.0, 0.0, 2.0));
        assert_eq!(r.hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(r.candidates_considered, 2);
        assert!(r.hits[0].score > r.hits[1].score);
        // Predicates compose conjunctively.
        let r = s.answer(
            &RetrievalQuery::new()
                .near(0.0, 0.0, 2.0)
                .within_time(15.0, 25.0),
        );
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].id, b);
        assert_eq!(r.hits[0].time_s, Some(20.0));
        // A pure time window matches everything in range, id-ordered.
        let r = s.answer(&RetrievalQuery::new().within_time(0.0, 100.0));
        assert_eq!(
            r.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
            vec![a, b, c]
        );
        // Radius 0 means exact-coordinate match.
        let r = s.answer(&RetrievalQuery::new().near(0.01, 0.0, 0.0));
        assert_eq!(r.hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![b]);
        // The top_k budget caps the ranked list.
        let r = s.answer(&RetrievalQuery::new().within_time(0.0, 100.0).top_k(2));
        assert_eq!(r.hits.len(), 2);
    }

    #[test]
    fn on_device_catalog_is_opt_in_and_fulfillable() {
        let cfg = config();
        let mut s = Server::try_new(&cfg).unwrap();
        let orb = Orb::new(cfg.orb);
        let f = orb.extract(&small_scene(11).to_gray());
        s.set_time(5.0);
        let receipt = s.ingest(
            IngestRequest::on_device(3, 32_000)
                .with_features(f.clone())
                .with_geotag((0.01, 0.0)),
        );
        assert_eq!(receipt.outcome, IngestOutcome::Cataloged);
        assert_eq!(receipt.accounted_bytes, 0);
        let id = receipt.id;
        // Catalog entries occupy no server-side storage until fulfilled.
        assert_eq!(s.storage().ledger().stored_bytes, 0);
        assert_eq!(s.storage().live_bytes(), 0);
        // Invisible to the legacy surface and to opted-out retrieval.
        assert_eq!(s.received_images(), 0);
        assert_eq!(s.indexed_images(), 0);
        assert!(s
            .answer(&RetrievalQuery::new().similar_to(&f))
            .hits
            .is_empty());
        assert_eq!(s.on_device_images().len(), 1);
        // Opting in surfaces the match with on-device provenance.
        let r = s.answer(&RetrievalQuery::new().similar_to(&f).include_on_device(true));
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.on_device_matches, 1);
        assert_eq!(r.hits[0].provenance, Provenance::OnDevice { device_id: 3 });
        assert!((r.hits[0].score - 1.0).abs() < 1e-9);
        assert_eq!(r.hits[0].time_s, Some(5.0));
        // Geo predicates apply to catalog entries too.
        let near = RetrievalQuery::new()
            .near(0.01, 0.0, 1.0)
            .include_on_device(true);
        assert_eq!(s.answer(&near).hits.len(), 1);
        let far = RetrievalQuery::new()
            .near(5.0, 5.0, 1.0)
            .include_on_device(true);
        assert!(s.answer(&far).hits.is_empty());
        // Fulfillment ingests under the same id and empties the catalog.
        let fulfilled = s.ingest(IngestRequest::fulfill(id));
        assert_eq!(fulfilled.outcome, IngestOutcome::Fulfilled);
        assert_eq!(fulfilled.accounted_bytes, 32_000);
        assert_eq!(s.ingest(IngestRequest::fulfill(id)).outcome, IngestOutcome::NoOp);
        assert_eq!(s.received_images(), 1);
        assert_eq!(s.received_image_bytes(), 32_000);
        // The pulled-down payload now occupies real storage.
        assert_eq!(s.storage().ledger().stored_bytes, 32_000);
        assert_eq!(s.storage().live_bytes(), 32_000);
        assert!(s.on_device_images().is_empty());
        let r = s.answer(&RetrievalQuery::new().similar_to(&f).top_k(1));
        assert_eq!(r.hits[0].id, id);
        assert_eq!(r.hits[0].provenance, Provenance::Full);
        assert_eq!(r.on_device_matches, 0);
    }

    #[test]
    fn thumbnail_ingest_reports_degraded_provenance() {
        let mut s = Server::try_new(&config()).unwrap();
        s.set_time(1.0);
        let id = s
            .ingest(
                IngestRequest::thumbnail(400)
                    .with_features(ImageFeatures::empty_binary())
                    .with_geotag((1.0, 1.0)),
            )
            .id;
        let r = s.answer(&RetrievalQuery::new().near(1.0, 1.0, 0.0));
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].id, id);
        assert_eq!(r.hits[0].provenance, Provenance::ThumbnailOnly);
        assert_eq!(s.received_images(), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_query_shims_match_retrieval() {
        let cfg = config();
        let mut s = Server::try_new(&cfg).unwrap();
        let orb = Orb::new(cfg.orb);
        for seed in 0..4 {
            let f = orb.extract(&small_scene(seed).to_gray());
            s.ingest_image(f, 10, None);
        }
        let probe = orb.extract(&small_scene(0).to_gray());
        let max = s.query_max_similarity(&probe).expect("indexed");
        let r = s.answer(&RetrievalQuery::new().similar_to(&probe).top_k(1));
        assert_eq!((max.id, max.similarity), (r.hits[0].id, r.hits[0].score));
        let top = s.query_top_k(&probe, 3);
        assert!(!top.is_empty() && top.len() <= 3);
        assert_eq!(top[0].id, max.id);
        assert!(s.query_top_k(&probe, 0).is_empty());

        // Histogram ties keep the legacy highest-id winner; an all-disjoint
        // store keeps the legacy (highest id, 0.0) answer.
        let red = ColorHistogram::from_image(&RgbImage::from_fn(8, 8, |_, _| {
            bees_image::Rgb::new(255, 0, 0)
        }));
        let blue = ColorHistogram::from_image(&RgbImage::from_fn(8, 8, |_, _| {
            bees_image::Rgb::new(0, 0, 255)
        }));
        let _first = s.ingest_image_with_histogram(blue.clone(), 1, None);
        let second = s.ingest_image_with_histogram(blue.clone(), 1, None);
        let (best, sim) = s.query_max_histogram(&blue).expect("histograms stored");
        assert_eq!(best, second, "ties go to the highest id");
        assert!((sim - 1.0).abs() < 1e-6);
        assert_eq!(s.query_max_histogram(&red), Some((second, 0.0)));
        assert!(s
            .answer(&RetrievalQuery::new().similar_to_histogram(&red))
            .hits
            .is_empty());
    }

    /// The seven deprecated ingest entry points must behave exactly like
    /// the `IngestRequest` forms they shim: same ids, same counters, same
    /// side tables, same storage layout.
    #[test]
    #[allow(deprecated)]
    fn deprecated_ingest_shims_match_ingest() {
        let cfg = config();
        let orb = Orb::new(cfg.orb);
        let f: Vec<ImageFeatures> = (0..3)
            .map(|seed| orb.extract(&small_scene(20 + seed).to_gray()))
            .collect();
        let hist = ColorHistogram::from_image(&small_scene(30));
        let partial = PartialImage {
            scans_complete: 1,
            scans_total: 5,
            payload_bytes: 2_000,
            total_bytes: 9_000,
            ssim_estimate: 0.5,
        };

        let mut legacy = Server::try_new(&cfg).unwrap();
        legacy.set_time(3.0);
        let l0 = legacy.ingest_image(f[0].clone(), 700, Some((1.0, 2.0)));
        let l1 = legacy.ingest_thumbnail_image(f[1].clone(), 300, None);
        let l2 = legacy.ingest_partial_image(f[2].clone(), partial.clone(), None);
        assert!(legacy.upgrade_partial_image(l2));
        let l3 = legacy.ingest_image_with_histogram(hist.clone(), 150, None);
        let l4 = legacy.record_on_device(9, f[0].clone(), Some((5.0, 6.0)), 4_000);
        assert_eq!(legacy.fulfill_on_device(l4), Some(4_000));
        legacy.preload_histograms(&[small_scene(31)]);
        legacy.preload_with(&orb, &[small_scene(32)]);

        let mut new = Server::try_new(&cfg).unwrap();
        new.set_time(3.0);
        let n0 = new
            .ingest(
                IngestRequest::full(700)
                    .with_features(f[0].clone())
                    .with_geotag((1.0, 2.0)),
            )
            .id;
        let n1 = new
            .ingest(IngestRequest::thumbnail(300).with_features(f[1].clone()))
            .id;
        let n2 = new
            .ingest(IngestRequest::partial(partial).with_features(f[2].clone()))
            .id;
        assert_eq!(
            new.ingest(IngestRequest::upgrade(n2)).outcome,
            IngestOutcome::Upgraded
        );
        let n3 = new
            .ingest(IngestRequest::full(150).with_histogram(hist))
            .id;
        let n4 = new
            .ingest(
                IngestRequest::on_device(9, 4_000)
                    .with_features(f[0].clone())
                    .with_geotag((5.0, 6.0)),
            )
            .id;
        assert_eq!(
            new.ingest(IngestRequest::fulfill(n4)).outcome,
            IngestOutcome::Fulfilled
        );
        new.preload(PreloadBatch::histograms(&[small_scene(31)]));
        new.preload(PreloadBatch::new(&[small_scene(32)]).with_extractor(&orb));

        assert_eq!((l0, l1, l2, l3, l4), (n0, n1, n2, n3, n4));
        assert_eq!(legacy.received_images(), new.received_images());
        assert_eq!(legacy.received_image_bytes(), new.received_image_bytes());
        assert_eq!(legacy.indexed_images(), new.indexed_images());
        assert_eq!(legacy.geotags(), new.geotags());
        assert_eq!(legacy.partial_images(), new.partial_images());
        assert_eq!(
            legacy.storage().layout_digest(),
            new.storage().layout_digest()
        );
    }

    /// Identical payload bytes dedup in the store (while the uplink
    /// counters keep legacy accounting), and near-duplicate uploads group
    /// at epoch commit without disturbing the served-query counter.
    #[test]
    fn ingest_dedups_identical_bytes_and_groups_near_duplicates() {
        let cfg = config();
        let mut s = Server::try_new(&cfg).unwrap();
        let orb = Orb::new(cfg.orb);
        let scene = Scene::new(
            40,
            SceneConfig {
                width: 96,
                height: 72,
                n_shapes: 10,
                texture_amp: 8.0,
            },
        );
        let base = scene.render(&ViewJitter::identity());
        let near = scene.render(&ViewJitter {
            dx: 2.0,
            brightness: 5,
            ..ViewJitter::identity()
        });
        let payload = bees_image::codec::encode_rgb(&base, 60).unwrap();
        let near_payload = bees_image::codec::encode_rgb(&near, 60).unwrap();

        let first = s.ingest(
            IngestRequest::full(payload.len())
                .with_bytes(payload.clone())
                .with_features(orb.extract(&base.to_gray())),
        );
        assert_eq!(first.outcome, IngestOutcome::Stored);
        // Byte-identical payload from another device: dedup hit, legacy
        // counters still account the upload.
        let dup = s.ingest(
            IngestRequest::full(payload.len())
                .with_bytes(payload.clone())
                .with_features(orb.extract(&base.to_gray())),
        );
        assert_eq!(dup.outcome, IngestOutcome::DedupHit);
        assert_eq!(s.received_image_bytes(), 2 * payload.len());
        assert_eq!(s.storage().ledger().stored_bytes, payload.len());
        assert_eq!(s.storage().ledger().dedup_hits, 1);
        // A near-duplicate view stores fresh bytes...
        let nearby = s.ingest(
            IngestRequest::full(near_payload.len())
                .with_bytes(near_payload)
                .with_features(orb.extract(&near.to_gray())),
        );
        assert_eq!(nearby.outcome, IngestOutcome::Stored);
        let served_before = s.queries_served();
        // ...and the commit (forced by any feature query) merges it into
        // the duplicate pair's group via the similarity index.
        let probe = orb.extract(&base.to_gray());
        s.answer(&RetrievalQuery::new().similar_to(&probe).top_k(1));
        let group = s.storage().group_of(first.id.0);
        assert_eq!(group, &[first.id.0, dup.id.0, nearby.id.0]);
        // Grouping probes are bookkeeping, not served queries.
        assert_eq!(s.queries_served(), served_before + 1);
        // The ledger identity holds and the epoch series recorded it.
        let ledger = s.storage().ledger();
        assert_eq!(
            ledger.stored_bytes - ledger.reclaimed_bytes,
            s.storage().live_bytes()
        );
        assert!(!ledger.epochs.is_empty());
    }
}
