//! System-wide configuration.

use crate::error::CoreError;
use crate::scheduler::SchedulerPolicy;
use bees_energy::{Battery, EnergyModel, LinearScheme};
use bees_features::orb::OrbConfig;
use bees_features::pca::PcaSiftConfig;
use bees_features::similarity::SimilarityConfig;
use bees_net::{BandwidthTrace, FaultModel, RetryPolicy, SharedCellConfig, DEFAULT_STALL_LIMIT_S};
use bees_store::StorageConfig;
use bees_submodular::SsmmConfig;
use serde::{Deserialize, Serialize};

/// Which index backend the server uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexBackend {
    /// Exact linear scan.
    Linear,
    /// Multi-index hashing acceleration (binary descriptors only).
    Mih,
}

/// Every tunable of the reproduction in one place.
///
/// The defaults mirror the paper where it gives numbers (EAC/EAU forms,
/// 3150 mAh battery, 0–512 Kbps WiFi, quality proportion 0.85) and are
/// calibrated to our measured ORB score distribution where it does not
/// (the EDR constants; see `DESIGN.md` §5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BeesConfig {
    /// ORB extractor settings (client and server must agree).
    pub orb: OrbConfig,
    /// PCA-SIFT settings (SmartEye's extractor).
    pub pca_sift: PcaSiftConfig,
    /// Seed of PCA-SIFT's deterministic projection basis.
    pub pca_basis_seed: u64,
    /// Similarity-scoring thresholds (Eq. 2 matching).
    pub similarity: SimilarityConfig,
    /// SSMM objective weights.
    pub ssmm: SsmmConfig,
    /// EAC: bitmap compression proportion vs `Ebat`.
    pub eac: LinearScheme,
    /// EDR: cross-batch similarity threshold vs `Ebat`.
    pub edr: LinearScheme,
    /// SSMM partition threshold `Tw` vs `Ebat` (the paper reuses EDR's
    /// form).
    pub tw: LinearScheme,
    /// EAU: resolution compression proportion vs `Ebat`.
    pub eau: LinearScheme,
    /// Codec quality of the photo files stored on the phone (what Direct
    /// Upload, SmartEye, and MRC transmit verbatim — the analogue of the
    /// paper's ~700 KB camera JPEGs).
    pub camera_quality: u8,
    /// Fixed quality-compression proportion (paper §III-C suggests 0.85).
    pub quality_proportion: f64,
    /// Fixed ORB similarity threshold used by MRC (no adaptation).
    pub fixed_threshold: f64,
    /// Fixed PCA-SIFT similarity threshold used by SmartEye; vector
    /// descriptors produce a different score distribution than binary ones,
    /// so the two thresholds are calibrated independently.
    pub fixed_threshold_pca: f64,
    /// Histogram-intersection threshold for the PhotoNet-like scheme's
    /// global-feature dedup (conservatively high: histograms overlap badly
    /// across scenes, which is the paper's argument for local features).
    pub histogram_threshold: f64,
    /// The battery every client starts with.
    pub battery: Battery,
    /// The energy cost model.
    pub energy: EnergyModel,
    /// Uplink/downlink bandwidth trace.
    pub trace: BandwidthTrace,
    /// Fault injection layered on the trace (disconnections, drops);
    /// defaults to [`FaultModel::none`], i.e. the perfectly reliable
    /// channel. Each client reseeds the model with its id so a fleet does
    /// not fail in lockstep.
    #[serde(default)]
    pub fault: FaultModel,
    /// Retry/backoff/chunking policy for the resumable transfer path.
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Channel stall limit in seconds (must be finite and positive).
    #[serde(default = "default_stall_limit")]
    pub stall_limit_s: f64,
    /// Server index backend.
    pub index_backend: IndexBackend,
    /// Number of index shards the server partitions images over (must be
    /// at least 1). With `n > 1` the chosen backend is wrapped in a
    /// `ShardedIndex`: ingest and queries fan out over the shards in
    /// parallel while results stay byte-identical to a single shard.
    #[serde(default = "default_server_shards")]
    pub server_shards: usize,
    /// Multi-probe radius of the MIH backend (0 or 1; MIH splits each
    /// 256-bit descriptor into 4 substrings and radius 1 also probes every
    /// single-bit neighbor of each substring).
    #[serde(default = "default_mih_probe_radius")]
    pub mih_probe_radius: u8,
    /// Whether BEES salvages uploads whose retry budget runs out: the
    /// confirmed chunk prefix of the progressive stream is decoded into a
    /// partial image and ingested, instead of the whole transfer being
    /// written off as waste. Disable to reproduce the pre-salvage ladder
    /// (full → thumbnail → defer).
    #[serde(default = "default_salvage_partials")]
    pub salvage_partials: bool,
    /// The shared uplink cell the fleet draws airtime from; defaults to
    /// disabled, i.e. the historical one-private-channel-per-device
    /// behavior.
    #[serde(default)]
    pub cell: SharedCellConfig,
    /// How the server ranks devices competing for cell airtime; only
    /// consulted when `cell.enabled` is set.
    #[serde(default)]
    pub scheduler: SchedulerPolicy,
    /// Storage-tier knobs: near-duplicate grouping threshold and the
    /// cold-recompression gates (age, group size, re-encode quality).
    #[serde(default)]
    pub storage: StorageConfig,
}

fn default_stall_limit() -> f64 {
    DEFAULT_STALL_LIMIT_S
}

fn default_salvage_partials() -> bool {
    true
}

fn default_server_shards() -> usize {
    1
}

fn default_mih_probe_radius() -> u8 {
    1
}

impl Default for BeesConfig {
    fn default() -> Self {
        BeesConfig {
            orb: OrbConfig::default(),
            pca_sift: PcaSiftConfig::default(),
            pca_basis_seed: 0xBEE5,
            similarity: SimilarityConfig::default(),
            ssmm: SsmmConfig::default(),
            eac: LinearScheme::eac(),
            // Calibrated from our measured distribution (similar pairs
            // score >= ~0.16, dissimilar <= ~0.11 on the synthetic
            // Kentucky set; see fig4_distribution): T in [0.12, 0.15], so
            // the floor still clears the dissimilar maximum.
            edr: LinearScheme::edr(0.12, 0.03),
            tw: LinearScheme::edr(0.12, 0.03),
            eau: LinearScheme::eau(),
            camera_quality: 90,
            quality_proportion: 0.85,
            fixed_threshold: 0.12,
            fixed_threshold_pca: 0.15,
            histogram_threshold: 0.85,
            battery: Battery::default(),
            energy: EnergyModel::default(),
            trace: BandwidthTrace::disaster_wifi(0xB335),
            fault: FaultModel::none(),
            retry: RetryPolicy::default(),
            stall_limit_s: DEFAULT_STALL_LIMIT_S,
            index_backend: IndexBackend::Linear,
            server_shards: 1,
            mih_probe_radius: 1,
            salvage_partials: true,
            cell: SharedCellConfig::default(),
            scheduler: SchedulerPolicy::default(),
            storage: StorageConfig::default(),
        }
    }
}

impl BeesConfig {
    /// Maps a quality-compression *proportion* (the paper's axis: the
    /// fraction of pixel information discarded) to the DCT codec's quality
    /// parameter in `1..=100`.
    pub fn quality_for_proportion(proportion: f64) -> u8 {
        let p = proportion.clamp(0.0, 0.99);
        ((1.0 - p) * 100.0).round().clamp(1.0, 100.0) as u8
    }

    /// The codec quality BEES uploads at (from `quality_proportion`).
    pub fn upload_quality(&self) -> u8 {
        Self::quality_for_proportion(self.quality_proportion)
    }

    /// Starts a [`BeesConfigBuilder`] from the paper defaults. The builder
    /// validates at [`build()`](BeesConfigBuilder::build), so invalid
    /// fault/retry/stall/quality knobs are caught where they are set
    /// rather than deep inside a simulation.
    pub fn builder() -> BeesConfigBuilder {
        BeesConfigBuilder::default()
    }

    /// Validates the network-robustness knobs (fault model, retry policy,
    /// stall limit) and the compression/threshold knobs. Called by
    /// [`crate::Client::try_new`] and [`BeesConfigBuilder::build`] so an
    /// invalid configuration surfaces as a typed error instead of a panic
    /// deep in the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> crate::Result<()> {
        self.fault
            .validate()
            .map_err(|e| CoreError::InvalidConfig {
                detail: format!("fault model: {e}"),
            })?;
        self.retry
            .validate()
            .map_err(|e| CoreError::InvalidConfig {
                detail: format!("retry policy: {e}"),
            })?;
        if !self.stall_limit_s.is_finite() || self.stall_limit_s <= 0.0 {
            return Err(CoreError::InvalidConfig {
                detail: format!(
                    "stall_limit_s must be finite and positive, got {}",
                    self.stall_limit_s
                ),
            });
        }
        if self.camera_quality == 0 || self.camera_quality > 100 {
            return Err(CoreError::InvalidConfig {
                detail: format!(
                    "camera_quality must be in 1..=100, got {}",
                    self.camera_quality
                ),
            });
        }
        if !self.quality_proportion.is_finite() || !(0.0..1.0).contains(&self.quality_proportion) {
            return Err(CoreError::InvalidConfig {
                detail: format!(
                    "quality_proportion must be in [0, 1), got {}",
                    self.quality_proportion
                ),
            });
        }
        for (name, value) in [
            ("fixed_threshold", self.fixed_threshold),
            ("fixed_threshold_pca", self.fixed_threshold_pca),
            ("histogram_threshold", self.histogram_threshold),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(CoreError::InvalidConfig {
                    detail: format!("{name} must be in [0, 1], got {value}"),
                });
            }
        }
        if self.server_shards == 0 {
            return Err(CoreError::InvalidConfig {
                detail: "server_shards must be at least 1".to_string(),
            });
        }
        if self.mih_probe_radius > 1 {
            return Err(CoreError::InvalidConfig {
                detail: format!(
                    "mih_probe_radius must be 0 or 1 (MIH probes the 4 \
                     64-bit substrings of each descriptor), got {}",
                    self.mih_probe_radius
                ),
            });
        }
        self.cell.validate().map_err(|e| CoreError::InvalidConfig {
            detail: format!("shared cell: {e}"),
        })?;
        self.storage
            .validate()
            .map_err(|e| CoreError::InvalidConfig {
                detail: format!("storage: {e}"),
            })?;
        Ok(())
    }
}

/// Builds a validated [`BeesConfig`].
///
/// Every setter takes the same type as the corresponding public field;
/// [`build()`](BeesConfigBuilder::build) runs [`BeesConfig::validate`], so
/// a config obtained through the builder is usable by construction:
///
/// ```
/// use bees_core::BeesConfig;
/// use bees_net::BandwidthTrace;
///
/// let config = BeesConfig::builder()
///     .trace(BandwidthTrace::constant(256_000.0).unwrap())
///     .quality_proportion(0.85)
///     .build()
///     .expect("knobs are in range");
/// assert_eq!(config.upload_quality(), 15);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BeesConfigBuilder {
    config: BeesConfig,
}

macro_rules! builder_setters {
    ($( $(#[$doc:meta])* $name:ident: $ty:ty ),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $name(mut self, value: $ty) -> Self {
                self.config.$name = value;
                self
            }
        )*
    };
}

impl BeesConfigBuilder {
    builder_setters! {
        /// Sets the ORB extractor settings.
        orb: OrbConfig,
        /// Sets the PCA-SIFT settings.
        pca_sift: PcaSiftConfig,
        /// Sets the PCA projection-basis seed.
        pca_basis_seed: u64,
        /// Sets the similarity-scoring thresholds.
        similarity: SimilarityConfig,
        /// Sets the SSMM objective weights.
        ssmm: SsmmConfig,
        /// Sets the EAC adaptation scheme.
        eac: LinearScheme,
        /// Sets the EDR adaptation scheme.
        edr: LinearScheme,
        /// Sets the SSMM partition-threshold scheme.
        tw: LinearScheme,
        /// Sets the EAU adaptation scheme.
        eau: LinearScheme,
        /// Sets the on-phone camera JPEG quality (1..=100).
        camera_quality: u8,
        /// Sets the fixed quality-compression proportion (in `[0, 1)`).
        quality_proportion: f64,
        /// Sets MRC's fixed ORB similarity threshold.
        fixed_threshold: f64,
        /// Sets SmartEye's fixed PCA-SIFT similarity threshold.
        fixed_threshold_pca: f64,
        /// Sets the PhotoNet-like histogram-intersection threshold.
        histogram_threshold: f64,
        /// Sets the starting battery.
        battery: Battery,
        /// Sets the energy cost model.
        energy: EnergyModel,
        /// Sets the bandwidth trace.
        trace: BandwidthTrace,
        /// Sets the fault-injection model.
        fault: FaultModel,
        /// Sets the retry/backoff/chunking policy.
        retry: RetryPolicy,
        /// Sets the channel stall limit in seconds.
        stall_limit_s: f64,
        /// Sets the server index backend.
        index_backend: IndexBackend,
        /// Sets how many shards the server partitions its index over.
        server_shards: usize,
        /// Sets the MIH multi-probe radius (0 or 1).
        mih_probe_radius: u8,
        /// Sets whether cut uploads are salvaged into partial images.
        salvage_partials: bool,
        /// Sets the shared uplink cell the fleet contends for.
        cell: SharedCellConfig,
        /// Sets the airtime-scheduler ranking policy.
        scheduler: SchedulerPolicy,
        /// Sets the storage-tier knobs (grouping + cold recompression).
        storage: StorageConfig,
    }

    /// Validates and returns the configuration.
    ///
    /// On top of [`BeesConfig::validate`], the builder enforces stricter
    /// retry-policy hygiene than the raw struct allows: a zero backoff
    /// base is *representable* (and kept valid at the struct level for
    /// old serialized policies), but a config built here must back off for
    /// real, and its jitter amplitude must stay below the backoff base it
    /// modulates.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the offending knob.
    pub fn build(self) -> crate::Result<BeesConfig> {
        if self.config.retry.base_backoff_s <= 0.0 {
            return Err(CoreError::InvalidConfig {
                detail: format!(
                    "retry.base_backoff_s must be positive when built through \
                     BeesConfigBuilder, got {}",
                    self.config.retry.base_backoff_s
                ),
            });
        }
        if self.config.retry.jitter >= self.config.retry.base_backoff_s {
            return Err(CoreError::InvalidConfig {
                detail: format!(
                    "retry.jitter ({}) must stay below retry.base_backoff_s ({})",
                    self.config.retry.jitter, self.config.retry.base_backoff_s
                ),
            });
        }
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_internally_consistent() {
        let c = BeesConfig::default();
        assert!(c.quality_proportion > 0.0 && c.quality_proportion < 1.0);
        assert!(c.fixed_threshold > 0.0 && c.fixed_threshold < 1.0);
        assert_eq!(c.upload_quality(), 15); // 1 - 0.85
    }

    #[test]
    fn quality_mapping_clamps() {
        assert_eq!(BeesConfig::quality_for_proportion(0.0), 100);
        assert_eq!(BeesConfig::quality_for_proportion(1.0), 1);
        assert_eq!(BeesConfig::quality_for_proportion(0.5), 50);
    }

    #[test]
    fn default_config_validates() {
        BeesConfig::default()
            .validate()
            .expect("default config is valid");
    }

    #[test]
    fn validate_names_the_offending_knob() {
        let detail = |c: &BeesConfig| match c.validate() {
            Err(CoreError::InvalidConfig { detail }) => detail,
            other => panic!("expected InvalidConfig, got {other:?}"),
        };

        let mut c = BeesConfig::default();
        c.stall_limit_s = 0.0;
        assert!(detail(&c).contains("stall_limit_s"));

        let mut c = BeesConfig::default();
        c.fault.drop_probability = 1.5;
        assert!(detail(&c).contains("fault model"));

        let mut c = BeesConfig::default();
        c.retry.backoff_factor = 0.0;
        assert!(detail(&c).contains("retry policy"));

        let c = BeesConfig {
            server_shards: 0,
            ..BeesConfig::default()
        };
        assert!(detail(&c).contains("server_shards"));

        let c = BeesConfig {
            mih_probe_radius: 2,
            ..BeesConfig::default()
        };
        assert!(detail(&c).contains("mih_probe_radius"));
    }

    #[test]
    fn malformed_blackout_schedules_are_rejected_by_config_validation() {
        let detail = |c: &BeesConfig| match c.validate() {
            Err(CoreError::InvalidConfig { detail }) => detail,
            other => panic!("expected InvalidConfig, got {other:?}"),
        };

        // Overlapping windows: the second starts inside the first.
        let mut c = BeesConfig::default();
        c.fault.blackout_windows = vec![(10.0, 20.0), (15.0, 25.0)];
        assert!(detail(&c).contains("blackout_windows"));

        // Unsorted windows: a later entry starts before an earlier one.
        let mut c = BeesConfig::default();
        c.fault.blackout_windows = vec![(30.0, 40.0), (5.0, 10.0)];
        assert!(detail(&c).contains("blackout_windows"));

        // An empty-span window is rejected too.
        let mut c = BeesConfig::default();
        c.fault.blackout_windows = vec![(10.0, 10.0)];
        assert!(detail(&c).contains("blackout_windows"));

        // A sorted, disjoint (even adjacent) schedule passes.
        let mut c = BeesConfig::default();
        c.fault.blackout_windows = vec![(10.0, 20.0), (20.0, 25.0), (40.0, 41.5)];
        c.validate().expect("sorted disjoint windows are valid");
    }

    #[test]
    fn builder_sets_fleet_knobs() {
        let config = BeesConfig::builder()
            .server_shards(4)
            .mih_probe_radius(0)
            .build()
            .expect("knobs are in range");
        assert_eq!(config.server_shards, 4);
        assert_eq!(config.mih_probe_radius, 0);
        let err = BeesConfig::builder().server_shards(0).build();
        assert!(matches!(err, Err(CoreError::InvalidConfig { .. })));
    }

    #[test]
    fn builder_round_trips_the_defaults() {
        let built = BeesConfig::builder().build().expect("defaults are valid");
        let json_built = serde_json::to_string(&built).unwrap();
        let json_default = serde_json::to_string(&BeesConfig::default()).unwrap();
        assert_eq!(json_built, json_default);
    }

    #[test]
    fn builder_applies_setters_and_validates() {
        let config = BeesConfig::builder()
            .camera_quality(80)
            .quality_proportion(0.5)
            .stall_limit_s(120.0)
            .index_backend(IndexBackend::Mih)
            .build()
            .expect("knobs are in range");
        assert_eq!(config.camera_quality, 80);
        assert_eq!(config.upload_quality(), 50);
        assert_eq!(config.index_backend, IndexBackend::Mih);

        let err = BeesConfig::builder().camera_quality(0).build();
        assert!(matches!(err, Err(CoreError::InvalidConfig { .. })));
        let err = BeesConfig::builder().quality_proportion(1.0).build();
        assert!(matches!(err, Err(CoreError::InvalidConfig { .. })));
        let err = BeesConfig::builder().fixed_threshold(f64::NAN).build();
        assert!(matches!(err, Err(CoreError::InvalidConfig { .. })));
        let err = BeesConfig::builder().stall_limit_s(-1.0).build();
        assert!(matches!(err, Err(CoreError::InvalidConfig { .. })));
    }

    #[test]
    fn robustness_knobs_deserialize_with_defaults() {
        // A config JSON from before the robustness knobs existed must still
        // deserialize, landing on the no-fault defaults.
        let json = serde_json::to_string(&BeesConfig::default()).unwrap();
        let stripped = {
            let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
            let obj = v.as_object_mut().unwrap();
            obj.remove("fault");
            obj.remove("retry");
            obj.remove("stall_limit_s");
            obj.remove("server_shards");
            obj.remove("mih_probe_radius");
            obj.remove("salvage_partials");
            obj.remove("cell");
            obj.remove("scheduler");
            obj.remove("storage");
            serde_json::to_string(obj).unwrap()
        };
        let back: BeesConfig = serde_json::from_str(&stripped).unwrap();
        assert!(back.fault.is_none());
        assert_eq!(back.retry.max_attempts, RetryPolicy::default().max_attempts);
        assert_eq!(back.retry.transfer_deadline_s, None);
        assert_eq!(back.stall_limit_s, DEFAULT_STALL_LIMIT_S);
        assert_eq!(back.server_shards, 1);
        assert_eq!(back.mih_probe_radius, 1);
        assert!(back.salvage_partials, "salvage defaults on");
        assert!(!back.cell.enabled, "shared cell defaults off");
        assert_eq!(back.scheduler, SchedulerPolicy::Utility);
        assert_eq!(back.storage, StorageConfig::default());
    }

    #[test]
    fn builder_sets_contention_knobs() {
        let cell = SharedCellConfig {
            enabled: true,
            epoch_s: 15.0,
            ..SharedCellConfig::default()
        };
        let config = BeesConfig::builder()
            .cell(cell.clone())
            .scheduler(SchedulerPolicy::Fifo)
            .build()
            .expect("knobs are in range");
        assert!(config.cell.enabled);
        assert_eq!(config.cell.epoch_s, 15.0);
        assert_eq!(config.scheduler, SchedulerPolicy::Fifo);
    }

    #[test]
    fn invalid_cell_knobs_are_named_by_validate() {
        let mut c = BeesConfig::default();
        c.cell.epoch_s = -1.0;
        match c.validate() {
            Err(CoreError::InvalidConfig { detail }) => {
                assert!(detail.contains("shared cell"), "{detail}");
                assert!(detail.contains("epoch_s"), "{detail}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        let bad = BeesConfig::builder()
            .cell(SharedCellConfig {
                oversubscription_threshold: 0.2,
                ..SharedCellConfig::default()
            })
            .build();
        assert!(matches!(bad, Err(CoreError::InvalidConfig { .. })));
    }

    #[test]
    fn builder_rejects_zero_backoff_base() {
        let err = BeesConfig::builder()
            .retry(RetryPolicy {
                base_backoff_s: 0.0,
                jitter: 0.0,
                ..RetryPolicy::default()
            })
            .build();
        match err {
            Err(CoreError::InvalidConfig { detail }) => {
                assert!(detail.contains("base_backoff_s"), "{detail}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn builder_rejects_negative_backoff_base() {
        let err = BeesConfig::builder()
            .retry(RetryPolicy {
                base_backoff_s: -2.5,
                ..RetryPolicy::default()
            })
            .build();
        match err {
            Err(CoreError::InvalidConfig { detail }) => {
                assert!(detail.contains("base_backoff_s"), "{detail}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn builder_rejects_jitter_at_or_above_the_backoff_base() {
        // jitter == base
        let err = BeesConfig::builder()
            .retry(RetryPolicy {
                base_backoff_s: 0.25,
                jitter: 0.25,
                ..RetryPolicy::default()
            })
            .build();
        match err {
            Err(CoreError::InvalidConfig { detail }) => {
                assert!(detail.contains("jitter"), "{detail}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // jitter > base
        let err = BeesConfig::builder()
            .retry(RetryPolicy {
                base_backoff_s: 0.1,
                jitter: 0.9,
                ..RetryPolicy::default()
            })
            .build();
        assert!(matches!(err, Err(CoreError::InvalidConfig { .. })));
        // The raw struct keeps accepting what the builder rejects, so old
        // serialized policies stay loadable.
        assert!(RetryPolicy {
            base_backoff_s: 0.0,
            jitter: 0.0,
            ..RetryPolicy::default()
        }
        .validate()
        .is_ok());
    }
}
