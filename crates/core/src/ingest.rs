//! The unified server write path: [`IngestRequest`] → [`IngestReceipt`].
//!
//! The server historically grew seven ad-hoc ingest entry points (full,
//! thumbnail, partial, histogram, catalog, fulfill, upgrade), each with its
//! own side-table wiring. The storage tier needs every write to flow through
//! one content-addressed path, so the entry points collapse into a single
//! [`Server::ingest`](crate::Server::ingest): the request names the payload
//! fidelity and carries whatever the upload included (bytes, features,
//! histogram, geotag), and the receipt reports what the store did with it —
//! stored fresh, answered by an existing blob (dedup hit), upgraded in
//! place, or fulfilled from the on-device catalog. The legacy entry points
//! remain as thin `#[deprecated]` shims with exact historical semantics.
//!
//! [`PreloadBatch`] does the same for the three preload variants: one
//! [`Server::preload`](crate::Server::preload) stages ORB features,
//! explicit-extractor features, or global histograms.

use crate::server::PartialImage;
use bees_features::global::ColorHistogram;
use bees_features::{FeatureExtractor, ImageFeatures};
use bees_image::RgbImage;
use bees_index::ImageId;

/// Which write the request performs (and its fidelity tier).
#[derive(Debug, Clone)]
pub(crate) enum IngestKind {
    /// A full-fidelity upload of `payload_bytes` bytes.
    Full {
        /// Payload size accounted against the uplink.
        payload_bytes: usize,
    },
    /// A degraded thumbnail-rung upload of `payload_bytes` bytes.
    Thumbnail {
        /// Payload size accounted against the uplink.
        payload_bytes: usize,
    },
    /// A salvaged progressive prefix (tracked until its tail arrives).
    Partial {
        /// Scan bookkeeping of the salvaged prefix.
        partial: PartialImage,
    },
    /// A catalog entry: the payload stays on the capturing device.
    OnDevice {
        /// The device holding the payload.
        device_id: u64,
        /// Estimated full-fidelity payload size.
        est_bytes: usize,
    },
    /// Tail delivery for a previously salvaged partial.
    Upgrade {
        /// The partial image to complete.
        id: ImageId,
    },
    /// Pull-down delivery for a previously cataloged on-device image.
    Fulfill {
        /// The catalog entry to fulfill.
        id: ImageId,
    },
}

/// A builder-style description of one server write.
///
/// Construct with the fidelity-naming constructor ([`full`](Self::full),
/// [`thumbnail`](Self::thumbnail), [`partial`](Self::partial),
/// [`on_device`](Self::on_device), [`upgrade`](Self::upgrade),
/// [`fulfill`](Self::fulfill)), then attach whatever the upload carried:
///
/// ```
/// use bees_core::{IngestRequest, Server};
/// use bees_features::ImageFeatures;
///
/// let mut server = Server::new();
/// let receipt = server.ingest(
///     IngestRequest::full(32_000)
///         .with_features(ImageFeatures::empty_binary())
///         .with_geotag((2.32, 48.86)),
/// );
/// assert_eq!(receipt.accounted_bytes, 32_000);
/// assert!(receipt.outcome.is_stored());
/// ```
#[derive(Debug, Clone)]
pub struct IngestRequest {
    pub(crate) kind: IngestKind,
    pub(crate) bytes: Option<Vec<u8>>,
    pub(crate) features: Option<ImageFeatures>,
    pub(crate) histogram: Option<ColorHistogram>,
    pub(crate) geotag: Option<(f64, f64)>,
}

impl IngestRequest {
    fn new(kind: IngestKind) -> Self {
        IngestRequest {
            kind,
            bytes: None,
            features: None,
            histogram: None,
            geotag: None,
        }
    }

    /// A full-fidelity upload of `payload_bytes` bytes.
    pub fn full(payload_bytes: usize) -> Self {
        Self::new(IngestKind::Full { payload_bytes })
    }

    /// A thumbnail-rung upload of `payload_bytes` bytes; retrieval will
    /// report [`Provenance::ThumbnailOnly`](crate::Provenance::ThumbnailOnly)
    /// and the pull-down path knows a full fetch would still add
    /// information.
    pub fn thumbnail(payload_bytes: usize) -> Self {
        Self::new(IngestKind::Thumbnail { payload_bytes })
    }

    /// A salvaged progressive prefix; the server tracks it as partial until
    /// an [`upgrade`](Self::upgrade) delivers the tail scans.
    pub fn partial(partial: PartialImage) -> Self {
        Self::new(IngestKind::Partial { partial })
    }

    /// A catalog-only record: `device_id` holds a payload of about
    /// `est_bytes` bytes it could not afford to upload. Invisible to the
    /// legacy query surface; only retrieval queries that opt into the
    /// catalog see it, and a later [`fulfill`](Self::fulfill) ingests the
    /// real payload under the same id.
    pub fn on_device(device_id: u64, est_bytes: usize) -> Self {
        Self::new(IngestKind::OnDevice {
            device_id,
            est_bytes,
        })
    }

    /// Tail delivery for partial image `id`: the stored prefix becomes the
    /// full-fidelity image and only the tail bytes are newly accounted.
    pub fn upgrade(id: ImageId) -> Self {
        Self::new(IngestKind::Upgrade { id })
    }

    /// Pull-down delivery for catalog entry `id`: the entry becomes a
    /// received image under the same id.
    pub fn fulfill(id: ImageId) -> Self {
        Self::new(IngestKind::Fulfill { id })
    }

    /// Attaches the encoded payload itself. The store then content-addresses
    /// the real bytes (enabling exact dedup across devices) and the cold
    /// pass can re-encode them; without bytes the blob is a size-only stub.
    #[must_use]
    pub fn with_bytes(mut self, bytes: Vec<u8>) -> Self {
        self.bytes = Some(bytes);
        self
    }

    /// Attaches the client-extracted features; they stage for the next
    /// epoch commit so later batches can deduplicate against this image.
    #[must_use]
    pub fn with_features(mut self, features: ImageFeatures) -> Self {
        self.features = Some(features);
        self
    }

    /// Attaches a global color histogram (the PhotoNet-like schemes' dedup
    /// key); it enters the histogram side table, not the feature index.
    #[must_use]
    pub fn with_histogram(mut self, histogram: ColorHistogram) -> Self {
        self.histogram = Some(histogram);
        self
    }

    /// Attaches the capture geotag.
    #[must_use]
    pub fn with_geotag(mut self, geotag: (f64, f64)) -> Self {
        self.geotag = Some(geotag);
        self
    }

    /// Attaches the capture geotag when one is known — the `Option` form
    /// the schemes' per-image geotag tables produce.
    #[must_use]
    pub fn maybe_geotag(mut self, geotag: Option<(f64, f64)>) -> Self {
        self.geotag = geotag;
        self
    }
}

/// What [`Server::ingest`](crate::Server::ingest) did with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// New content: a fresh blob was written to the store.
    Stored,
    /// Identical content was already stored; the existing blob gained a
    /// reference and no new physical bytes were written.
    DedupHit,
    /// A catalog entry was recorded; no payload reached the server.
    Cataloged,
    /// A partial image was completed in place by its tail bytes.
    Upgraded,
    /// An on-device catalog entry was fulfilled by its pull-down payload.
    Fulfilled,
    /// The request referenced an id that is not (or no longer) upgradable
    /// or fulfillable; nothing changed.
    NoOp,
}

impl IngestOutcome {
    /// True when the request wrote new physical bytes to the store
    /// (`Stored`, `Upgraded`, or `Fulfilled`).
    pub fn is_stored(&self) -> bool {
        matches!(
            self,
            IngestOutcome::Stored | IngestOutcome::Upgraded | IngestOutcome::Fulfilled
        )
    }
}

/// The server's answer to an [`IngestRequest`]: the id the image is filed
/// under, what the storage tier did, and the bytes accounted against the
/// legacy uplink counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestReceipt {
    /// The image id (fresh for uploads and catalog records; the caller's id
    /// for upgrades and fulfillments).
    pub id: ImageId,
    /// Storage provenance of the write.
    pub outcome: IngestOutcome,
    /// Payload bytes this request added to `received_image_bytes` (zero for
    /// catalog records and no-ops). Dedup hits still account their payload
    /// — the bytes crossed the uplink even though the store kept one copy.
    pub accounted_bytes: usize,
}

/// A unified description of one preload: which images to stage and in what
/// feature language. Replaces the `preload` / `preload_with` /
/// `preload_histograms` trio.
///
/// ```
/// use bees_core::{PreloadBatch, Server};
/// use bees_image::RgbImage;
///
/// let mut server = Server::new();
/// let images = vec![RgbImage::from_fn(32, 32, |x, y| {
///     bees_image::Rgb::new((x * 8) as u8, (y * 8) as u8, 0)
/// })];
/// server.preload(PreloadBatch::new(&images));
/// assert_eq!(server.indexed_images(), 1);
/// ```
#[derive(Clone, Copy)]
pub struct PreloadBatch<'a> {
    pub(crate) images: &'a [RgbImage],
    pub(crate) extractor: Option<&'a dyn FeatureExtractor>,
    pub(crate) histograms_only: bool,
}

impl<'a> PreloadBatch<'a> {
    /// Stages `images` into the feature index using the server's own ORB
    /// extractor (the historical `preload`).
    pub fn new(images: &'a [RgbImage]) -> Self {
        PreloadBatch {
            images,
            extractor: None,
            histograms_only: false,
        }
    }

    /// Stages `images` as global color histograms only — nothing enters the
    /// feature index (the historical `preload_histograms`).
    pub fn histograms(images: &'a [RgbImage]) -> Self {
        PreloadBatch {
            images,
            extractor: None,
            histograms_only: true,
        }
    }

    /// Extracts features with `extractor` instead of the server's ORB —
    /// for schemes whose clients speak a different feature language
    /// (SmartEye's PCA-SIFT).
    #[must_use]
    pub fn with_extractor(mut self, extractor: &'a dyn FeatureExtractor) -> Self {
        self.extractor = Some(extractor);
        self
    }
}

impl std::fmt::Debug for PreloadBatch<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreloadBatch")
            .field("images", &self.images.len())
            .field("explicit_extractor", &self.extractor.is_some())
            .field("histograms_only", &self.histograms_only)
            .finish()
    }
}
