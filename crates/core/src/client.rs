//! The smartphone client: battery, ledger, clock, channel.

use crate::config::BeesConfig;
use crate::error::CoreError;
use crate::Result;
use bees_energy::{Battery, EnergyCategory, EnergyLedger, EnergyModel};
use bees_net::{BandwidthTrace, Channel, SimClock};

/// A simulated smartphone.
///
/// Holds the physical state every scheme manipulates — remaining battery,
/// the per-category energy ledger, a simulated clock, and the
/// bandwidth-limited channel to the server — and exposes the primitive
/// operations (spend CPU, transmit, receive, idle) that drain them
/// consistently. Schemes are written purely in terms of these primitives,
/// so energy/delay accounting cannot diverge between schemes.
#[derive(Debug)]
pub struct Client {
    id: u64,
    battery: Battery,
    ledger: EnergyLedger,
    clock: SimClock,
    channel: Channel,
    energy: EnergyModel,
}

impl Client {
    /// Creates a client with a full battery. Each client gets its own
    /// bandwidth trace, derived from the configured trace and `id` so that
    /// phones in a fleet do not see identical fluctuations.
    pub fn new(id: u64, config: &BeesConfig) -> Self {
        let trace = match &config.trace {
            BandwidthTrace::Fluctuating { seed, min_bps, max_bps, interval_s } => {
                BandwidthTrace::Fluctuating {
                    seed: seed.wrapping_add(id.wrapping_mul(0x5851_F42D_4C95_7F2D)),
                    min_bps: *min_bps,
                    max_bps: *max_bps,
                    interval_s: *interval_s,
                }
            }
            other => other.clone(),
        };
        Client {
            id,
            battery: config.battery,
            ledger: EnergyLedger::new(),
            clock: SimClock::new(),
            channel: Channel::new(trace),
            energy: config.energy,
        }
    }

    /// The client's identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Remaining battery fraction — the `Ebat` every EAAS scheme reads.
    pub fn ebat(&self) -> f64 {
        self.battery.fraction()
    }

    /// The battery.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Mutable battery access (experiments stage specific `Ebat` values).
    pub fn battery_mut(&mut self) -> &mut Battery {
        &mut self.battery
    }

    /// The energy ledger so far.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Clears the ledger (between experiment phases).
    pub fn reset_ledger(&mut self) {
        self.ledger.clear();
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// The energy model in force.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Drains the baseline (screen/system) power for `seconds` of elapsed
    /// activity — the screen stays bright while computing or transferring,
    /// so every wall-clock second costs `idle_watts` on top of the
    /// activity-specific energy.
    fn drain_baseline(&mut self, seconds: f64) -> bool {
        let joules = self.energy.idle_energy(seconds);
        let drained = self.battery.drain(joules);
        self.ledger.record(EnergyCategory::Idle, drained);
        drained >= joules
    }

    /// Spends CPU energy on `category`, advancing the clock by the
    /// corresponding CPU time (and draining the screen baseline for that
    /// time). Returns the CPU seconds spent.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BatteryExhausted`] if the battery empties.
    pub fn spend_cpu(&mut self, category: EnergyCategory, joules: f64) -> Result<f64> {
        let drained = self.battery.drain(joules);
        self.ledger.record(category, drained);
        let seconds = self.energy.cpu_seconds(joules);
        self.clock.advance(seconds);
        let baseline_ok = self.drain_baseline(seconds);
        if drained < joules || !baseline_ok {
            return Err(CoreError::BatteryExhausted { during: category_name(category) });
        }
        Ok(seconds)
    }

    /// Transmits `bytes` to the server, draining radio energy and advancing
    /// the clock by the transfer duration. Returns that duration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BatteryExhausted`] if the battery empties, or a
    /// network error if the channel stalls.
    pub fn transmit(&mut self, category: EnergyCategory, bytes: usize) -> Result<f64> {
        let duration = self.channel.transfer_duration(self.clock.now(), bytes)?;
        let joules = self.energy.radio_tx_energy(duration);
        let drained = self.battery.drain(joules);
        self.ledger.record(category, drained);
        self.clock.advance(duration);
        let baseline_ok = self.drain_baseline(duration);
        if drained < joules || !baseline_ok {
            return Err(CoreError::BatteryExhausted { during: category_name(category) });
        }
        Ok(duration)
    }

    /// Receives `bytes` from the server (verdicts, thumbnails).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BatteryExhausted`] if the battery empties, or a
    /// network error if the channel stalls.
    pub fn receive(&mut self, bytes: usize) -> Result<f64> {
        let duration = self.channel.transfer_duration(self.clock.now(), bytes)?;
        let joules = self.energy.radio_rx_energy(duration);
        let drained = self.battery.drain(joules);
        self.ledger.record(EnergyCategory::Download, drained);
        self.clock.advance(duration);
        let baseline_ok = self.drain_baseline(duration);
        if drained < joules || !baseline_ok {
            return Err(CoreError::BatteryExhausted { during: "download" });
        }
        Ok(duration)
    }

    /// Idles for `seconds` of wall-clock time (screen on), draining the
    /// baseline power.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BatteryExhausted`] if the battery empties.
    pub fn idle(&mut self, seconds: f64) -> Result<()> {
        let joules = self.energy.idle_energy(seconds);
        let drained = self.battery.drain(joules);
        self.ledger.record(EnergyCategory::Idle, drained);
        self.clock.advance(seconds);
        if drained < joules {
            return Err(CoreError::BatteryExhausted { during: "idle" });
        }
        Ok(())
    }
}

fn category_name(category: EnergyCategory) -> &'static str {
    match category {
        EnergyCategory::FeatureExtraction => "feature extraction",
        EnergyCategory::FeatureUpload => "feature upload",
        EnergyCategory::ImageUpload => "image upload",
        EnergyCategory::Download => "download",
        EnergyCategory::Compression => "compression",
        EnergyCategory::Idle => "idle",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BeesConfig {
        let mut c = BeesConfig::default();
        c.trace = BandwidthTrace::constant(256_000.0).unwrap();
        c
    }

    #[test]
    fn spend_cpu_drains_and_advances() {
        let mut c = Client::new(1, &config());
        let t = c.spend_cpu(EnergyCategory::FeatureExtraction, 4.0).unwrap();
        assert!((t - 2.0).abs() < 1e-9); // 4 J at 2 W
        assert!((c.now() - 2.0).abs() < 1e-9);
        assert!((c.ledger().get(EnergyCategory::FeatureExtraction) - 4.0).abs() < 1e-9);
        assert!(c.ebat() < 1.0);
    }

    #[test]
    fn transmit_uses_channel_and_radio_power() {
        let mut c = Client::new(1, &config());
        // 32 KB at 256 Kbps = 1 s at 0.8 W.
        let d = c.transmit(EnergyCategory::ImageUpload, 32_000).unwrap();
        assert!((d - 1.0).abs() < 1e-9);
        assert!((c.ledger().get(EnergyCategory::ImageUpload) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn screen_keeps_draining_during_activity() {
        // The battery pays idle_watts for every wall-clock second, whether
        // the phone is transferring, computing, or waiting: slow uploads
        // cost screen time too (the effect Fig. 9/12 depend on).
        let mut c = Client::new(1, &config());
        let d = c.transmit(EnergyCategory::ImageUpload, 32_000).unwrap(); // 1 s
        assert!((c.ledger().get(EnergyCategory::Idle) - d * 1.0).abs() < 1e-9);
        c.spend_cpu(EnergyCategory::FeatureExtraction, 4.0).unwrap(); // 2 s CPU
        assert!((c.ledger().get(EnergyCategory::Idle) - (d + 2.0)).abs() < 1e-9);
        // Total drain = activity + baseline.
        let expected = 0.8 + 4.0 + (d + 2.0) * 1.0;
        let drained = c.battery().capacity_joules() - c.battery().remaining_joules();
        assert!((drained - expected).abs() < 1e-9);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut c = Client::new(1, &config());
        c.battery_mut().set_fraction(0.0);
        let err = c.spend_cpu(EnergyCategory::Compression, 1.0);
        assert!(matches!(err, Err(CoreError::BatteryExhausted { .. })));
    }

    #[test]
    fn idle_records_idle_category() {
        let mut c = Client::new(1, &config());
        c.idle(10.0).unwrap();
        assert!((c.ledger().get(EnergyCategory::Idle) - 10.0).abs() < 1e-9);
        assert!((c.now() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fleet_clients_get_distinct_traces() {
        let mut cfg = BeesConfig::default(); // fluctuating trace
        cfg.battery = bees_energy::Battery::from_joules(1e9);
        let mut a = Client::new(1, &cfg);
        let mut b = Client::new(2, &cfg);
        let da = a.transmit(EnergyCategory::ImageUpload, 200_000).unwrap();
        let db = b.transmit(EnergyCategory::ImageUpload, 200_000).unwrap();
        assert_ne!(da, db);
    }

    #[test]
    fn reset_ledger_clears_counters() {
        let mut c = Client::new(3, &config());
        c.idle(1.0).unwrap();
        c.reset_ledger();
        assert_eq!(c.ledger().total(), 0.0);
    }
}
