//! The smartphone client: battery, ledger, clock, channel.

use crate::config::BeesConfig;
use crate::error::CoreError;
use crate::Result;
use bees_energy::{Battery, EnergyCategory, EnergyLedger, EnergyModel};
use bees_net::{
    BandwidthTrace, Channel, FaultKind, FaultyChannel, NetError, RetryPolicy, SimClock,
};
use bees_telemetry::{names, Telemetry};

/// A simulated smartphone.
///
/// Holds the physical state every scheme manipulates — remaining battery,
/// the per-category energy ledger, a simulated clock, and the
/// bandwidth-limited channel to the server — and exposes the primitive
/// operations (spend CPU, transmit, receive, idle) that drain them
/// consistently. Schemes are written purely in terms of these primitives,
/// so energy/delay accounting cannot diverge between schemes.
#[derive(Debug)]
pub struct Client {
    id: u64,
    battery: Battery,
    ledger: EnergyLedger,
    clock: SimClock,
    channel: FaultyChannel,
    retry: RetryPolicy,
    fault_seed: u64,
    energy: EnergyModel,
    telemetry: Telemetry,
    /// Absolute virtual-time deadline of the device's current airtime
    /// grant; resumable transfers abandon (not retry) past it.
    grant_deadline_s: Option<f64>,
    /// Transfers abandoned at a virtual-time deadline so far.
    deadline_abandons: u64,
}

impl Client {
    /// Creates a client with a full battery, validating the
    /// configuration's network and robustness knobs first. Each client gets
    /// its own bandwidth trace and fault-model seed, derived from the
    /// configured ones and `id`, so that phones in a fleet do not see
    /// identical fluctuations or fail in lockstep. Telemetry starts
    /// disabled; install a handle with
    /// [`set_telemetry`](Client::set_telemetry) to trace transfers.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the offending knob.
    pub fn try_new(id: u64, config: &BeesConfig) -> Result<Self> {
        config.validate()?;
        let trace = match &config.trace {
            BandwidthTrace::Fluctuating {
                seed,
                min_bps,
                max_bps,
                interval_s,
            } => BandwidthTrace::Fluctuating {
                seed: seed.wrapping_add(id.wrapping_mul(0x5851_F42D_4C95_7F2D)),
                min_bps: *min_bps,
                max_bps: *max_bps,
                interval_s: *interval_s,
            },
            other => other.clone(),
        };
        let channel = Channel::new(trace)
            .with_stall_limit(config.stall_limit_s)
            .map_err(|e| CoreError::InvalidConfig {
                detail: e.to_string(),
            })?;
        let fault_seed = config.fault.seed ^ id.wrapping_mul(0x2545_F491_4F6C_DD1D);
        Ok(Client {
            id,
            battery: config.battery,
            ledger: EnergyLedger::new(),
            clock: SimClock::new(),
            channel: FaultyChannel::new(channel, config.fault.reseeded(fault_seed)),
            retry: config.retry,
            fault_seed,
            energy: config.energy,
            telemetry: Telemetry::disabled(),
            grant_deadline_s: None,
            deadline_abandons: 0,
        })
    }

    /// The client's identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The telemetry handle `net.*` spans are emitted through (disabled by
    /// default, so untraced runs pay nothing).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Installs a telemetry handle; subsequent transfers emit `net.*`
    /// spans against this client's virtual clock.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Remaining battery fraction — the `Ebat` every EAAS scheme reads.
    pub fn ebat(&self) -> f64 {
        self.battery.fraction()
    }

    /// Installs (or clears) the absolute virtual-time deadline of the
    /// device's current airtime grant. While set, every resumable transfer
    /// treats it as a hard stop: once the clock passes it, the transfer is
    /// abandoned — salvage ladder still applying — instead of retried, and
    /// backoff waits never sleep past it. The shared-cell fleet loop sets
    /// this to the grant's epoch end and clears it between rounds.
    pub fn set_grant_deadline(&mut self, deadline_s: Option<f64>) {
        self.grant_deadline_s = deadline_s;
    }

    /// The active grant deadline, if any.
    pub fn grant_deadline_s(&self) -> Option<f64> {
        self.grant_deadline_s
    }

    /// Installs (or clears) a constant-rate override on the underlying
    /// channel — the device's granted slice of a shared cell.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Net`] if the rate is negative or not finite.
    pub fn set_rate_override(&mut self, bps: Option<f64>) -> Result<()> {
        self.channel.channel_mut().set_rate_override(bps)?;
        Ok(())
    }

    /// The active channel rate override, if any.
    pub fn rate_override_bps(&self) -> Option<f64> {
        self.channel.channel().rate_override_bps()
    }

    /// Transfers abandoned at a virtual-time deadline (grant expiry or
    /// [`RetryPolicy::transfer_deadline_s`]) so far — the zombie retries
    /// that were *not* made.
    pub fn deadline_abandons(&self) -> u64 {
        self.deadline_abandons
    }

    /// The battery.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Mutable battery access (experiments stage specific `Ebat` values).
    pub fn battery_mut(&mut self) -> &mut Battery {
        &mut self.battery
    }

    /// The energy ledger so far.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Clears the ledger (between experiment phases).
    pub fn reset_ledger(&mut self) {
        self.ledger.clear();
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// The energy model in force.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Drains the baseline (screen/system) power for `seconds` of elapsed
    /// activity — the screen stays bright while computing or transferring,
    /// so every wall-clock second costs `idle_watts` on top of the
    /// activity-specific energy.
    fn drain_baseline(&mut self, seconds: f64) -> bool {
        let joules = self.energy.idle_energy(seconds);
        let drained = self.battery.drain(joules);
        self.ledger.record(EnergyCategory::Idle, drained);
        drained >= joules
    }

    /// Spends CPU energy on `category`, advancing the clock by the
    /// corresponding CPU time (and draining the screen baseline for that
    /// time). Returns the CPU seconds spent.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BatteryExhausted`] if the battery empties.
    pub fn spend_cpu(&mut self, category: EnergyCategory, joules: f64) -> Result<f64> {
        let drained = self.battery.drain(joules);
        self.ledger.record(category, drained);
        let seconds = self.energy.cpu_seconds(joules);
        self.clock.advance(seconds);
        let baseline_ok = self.drain_baseline(seconds);
        if drained < joules || !baseline_ok {
            return Err(CoreError::BatteryExhausted {
                during: category_name(category),
            });
        }
        Ok(seconds)
    }

    /// Transmits `bytes` to the server, draining radio energy and advancing
    /// the clock by the transfer duration. Returns that duration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BatteryExhausted`] if the battery empties, or a
    /// network error if the channel stalls.
    pub fn transmit(&mut self, category: EnergyCategory, bytes: usize) -> Result<f64> {
        let start = self.clock.now();
        let duration = self.channel.channel().transfer_duration(start, bytes)?;
        let joules = self.energy.radio_tx_energy(duration);
        let drained = self.battery.drain(joules);
        self.ledger.record(category, drained);
        self.clock.advance(duration);
        let baseline_ok = self.drain_baseline(duration);
        if drained < joules || !baseline_ok {
            return Err(CoreError::BatteryExhausted {
                during: category_name(category),
            });
        }
        self.telemetry
            .span(names::NET_TRANSMIT, start)
            .attr_str("category", category_name(category))
            .attr_u64("bytes", bytes as u64)
            .attr_f64("joules", drained)
            .close(self.clock.now());
        Ok(duration)
    }

    /// Receives `bytes` from the server (verdicts, thumbnails).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BatteryExhausted`] if the battery empties, or a
    /// network error if the channel stalls.
    pub fn receive(&mut self, bytes: usize) -> Result<f64> {
        let start = self.clock.now();
        let duration = self.channel.channel().transfer_duration(start, bytes)?;
        let joules = self.energy.radio_rx_energy(duration);
        let drained = self.battery.drain(joules);
        self.ledger.record(EnergyCategory::Download, drained);
        self.clock.advance(duration);
        let baseline_ok = self.drain_baseline(duration);
        if drained < joules || !baseline_ok {
            return Err(CoreError::BatteryExhausted { during: "download" });
        }
        self.telemetry
            .span(names::NET_RECEIVE, start)
            .attr_u64("bytes", bytes as u64)
            .attr_f64("joules", drained)
            .close(self.clock.now());
        Ok(duration)
    }

    /// Transmits `bytes` through the fault-injected channel with chunked
    /// resume: attempts that are disconnected, dropped, or timed out keep
    /// their whole delivered chunks (the torn tail chunk is retransmitted),
    /// wait out a deterministic jittered exponential backoff, and try
    /// again. The retry budget is energy-aware — it shrinks linearly with
    /// `Ebat` per the configured [`RetryPolicy`] — and energy burnt on
    /// bytes that were never confirmed is recorded against
    /// [`EnergyCategory::Wasted`].
    ///
    /// With [`bees_net::FaultModel::none`] this is byte-for-byte identical
    /// to [`transmit`](Client::transmit).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BatteryExhausted`] if the battery empties,
    /// [`NetError::RetriesExhausted`] (wrapped in [`CoreError::Net`]) if
    /// the budget runs out first, or any other network error from the
    /// underlying channel.
    pub fn transmit_resumable(
        &mut self,
        category: EnergyCategory,
        bytes: usize,
    ) -> Result<TransmitSummary> {
        match self.resumable_loop(category, bytes, false)? {
            ResumableOutcome::Complete(summary) => Ok(summary),
            ResumableOutcome::Salvaged(_) => unreachable!("salvage is disabled on this path"),
        }
    }

    /// Like [`transmit_resumable`](Client::transmit_resumable), but when the
    /// retry budget runs out with confirmed chunks banked, the transfer is
    /// *salvaged* instead of failed: the banked prefix's radio energy moves
    /// to [`EnergyCategory::Salvaged`] and the call returns
    /// [`ResumableOutcome::Salvaged`] describing what survived. The caller
    /// decides whether the prefix actually decodes (and may demote the
    /// energy back to waste via [`demote_salvage`](Client::demote_salvage)
    /// if it does not).
    ///
    /// # Errors
    ///
    /// Same as `transmit_resumable`, except [`NetError::RetriesExhausted`]
    /// only surfaces when *nothing* was banked.
    pub fn transmit_salvageable(
        &mut self,
        category: EnergyCategory,
        bytes: usize,
    ) -> Result<ResumableOutcome> {
        self.resumable_loop(category, bytes, true)
    }

    /// Reclassifies up to `joules` of salvaged energy as wasted — the
    /// caller found the banked prefix undecodable after all. Returns the
    /// joules actually moved.
    pub fn demote_salvage(&mut self, joules: f64) -> f64 {
        self.ledger
            .reassign(EnergyCategory::Salvaged, EnergyCategory::Wasted, joules)
    }

    fn resumable_loop(
        &mut self,
        category: EnergyCategory,
        bytes: usize,
        salvage: bool,
    ) -> Result<ResumableOutcome> {
        let start = self.clock.now();
        // The transfer's virtual-time deadline: the earlier of the airtime
        // grant's expiry and the policy's per-transfer cap, when either is
        // set.
        let deadline = match (self.grant_deadline_s, self.retry.transfer_deadline_s) {
            (Some(g), Some(d)) => Some(g.min(start + d)),
            (Some(g), None) => Some(g),
            (None, Some(d)) => Some(start + d),
            (None, None) => None,
        };
        if self.channel.faults().is_none() && deadline.is_none() {
            let duration = self.transmit(category, bytes)?;
            return Ok(ResumableOutcome::Complete(TransmitSummary {
                attempts: 1,
                delivered_bytes: bytes,
                corrupt_chunks_detected: 0,
                wasted_joules: 0.0,
                backoff_s: 0.0,
                elapsed_s: duration,
            }));
        }
        let chunk = self.retry.chunk_bytes.max(1);
        let mut confirmed = 0usize;
        let mut attempts = 0u32;
        let mut wasted = 0.0f64;
        let mut banked_joules = 0.0f64;
        let mut corrupt_total = 0u64;
        let mut backoff_total = 0.0f64;
        loop {
            let loop_now = self.clock.now();
            let past_deadline = deadline.is_some_and(|d| loop_now >= d);
            let over_budget = attempts >= self.retry.budget(self.battery.fraction());
            if over_budget || past_deadline {
                if past_deadline && !over_budget {
                    // The deadline, not the budget, killed this transfer:
                    // the retries it *would* have made are the zombie
                    // retries the grant mechanism exists to prevent.
                    self.deadline_abandons += 1;
                    self.telemetry
                        .span(names::SCHED_PREEMPT, loop_now)
                        .attr_str("category", category_name(category))
                        .attr_u64("attempts", u64::from(attempts))
                        .attr_u64("banked_bytes", confirmed as u64)
                        .attr_u64("total_bytes", bytes as u64)
                        .close(loop_now);
                }
                if salvage && confirmed > 0 {
                    // The budget is gone but whole verified chunks are
                    // banked: their energy bought fidelity, not waste.
                    let moved =
                        self.ledger
                            .reassign(category, EnergyCategory::Salvaged, banked_joules);
                    let now = self.clock.now();
                    self.telemetry
                        .span(names::NET_SALVAGE, now)
                        .attr_str("category", category_name(category))
                        .attr_u64("banked_bytes", confirmed as u64)
                        .attr_u64("total_bytes", bytes as u64)
                        .attr_u64("attempts", u64::from(attempts))
                        .attr_f64("salvaged_joules", moved)
                        .close(now);
                    return Ok(ResumableOutcome::Salvaged(SalvageSummary {
                        attempts,
                        banked_bytes: confirmed,
                        total_bytes: bytes,
                        salvaged_joules: moved,
                        wasted_joules: wasted,
                        corrupt_chunks_detected: corrupt_total,
                        backoff_s: backoff_total,
                        elapsed_s: now - start,
                    }));
                }
                // An abandoned transfer's banked bytes bought nothing —
                // their energy is reclassified as wasted.
                self.ledger
                    .reassign(category, EnergyCategory::Wasted, banked_joules);
                return Err(CoreError::Net(NetError::RetriesExhausted {
                    attempts,
                    delivered_bytes: confirmed,
                    total_bytes: bytes,
                }));
            }
            attempts += 1;
            let now = loop_now;
            // Clamp the attempt so it cannot run past the deadline (we
            // know `now < deadline` here, so the clamp stays positive).
            let timeout = match deadline {
                Some(d) => Some(match self.retry.attempt_timeout_s {
                    Some(t) => t.min(d - now),
                    None => d - now,
                }),
                None => self.retry.attempt_timeout_s,
            };
            let outcome = self.channel.transfer(now, bytes - confirmed, timeout);
            let attempt_key = self.channel.attempts().saturating_sub(1);
            let mut kept = if outcome.completed() {
                outcome.delivered_bytes
            } else {
                (outcome.delivered_bytes / chunk) * chunk
            };
            // CRC-verify every delivered transport chunk (deterministic
            // stand-in for `wire::verify_chunk` on the receiver): a corrupt
            // chunk is detected, it and everything after it are
            // re-requested, and it must never reach the decoder.
            let mut fault = outcome.fault;
            if self.channel.faults().corrupt_probability > 0.0 {
                let base = (confirmed / chunk) as u64;
                let mut first_bad: Option<usize> = None;
                for c in 0..kept.div_ceil(chunk) {
                    if self
                        .channel
                        .faults()
                        .chunk_corrupted(attempt_key, base + c as u64)
                    {
                        corrupt_total += 1;
                        first_bad.get_or_insert(c);
                    }
                }
                if let Some(c0) = first_bad {
                    kept = c0 * chunk;
                    if fault.is_none() {
                        fault = Some(FaultKind::Corrupted);
                    }
                }
            }
            let joules = self.energy.radio_tx_energy(outcome.elapsed_s);
            let useful_j = if outcome.delivered_bytes > 0 {
                joules * (kept as f64 / outcome.delivered_bytes as f64)
            } else {
                0.0
            };
            let waste_j = joules - useful_j;
            let drained_useful = self.battery.drain(useful_j);
            self.ledger.record(category, drained_useful);
            banked_joules += drained_useful;
            let drained_waste = if waste_j > 0.0 {
                let d = self.battery.drain(waste_j);
                self.ledger.record(EnergyCategory::Wasted, d);
                d
            } else {
                0.0
            };
            wasted += drained_waste;
            self.clock.advance(outcome.elapsed_s);
            let baseline_ok = self.drain_baseline(outcome.elapsed_s);
            if let Some(fault) = fault {
                // Record the interrupted attempt even if the battery died
                // paying for it — the trace should show what was tried.
                self.telemetry
                    .span(names::NET_RETRY, now)
                    .attr_str("category", category_name(category))
                    .attr_str("fault", fault_name(fault))
                    .attr_u64("attempt", u64::from(attempts))
                    .attr_u64("kept_bytes", kept as u64)
                    .attr_f64("wasted_joules", drained_waste)
                    .close(self.clock.now());
            }
            if drained_useful < useful_j || drained_waste < waste_j || !baseline_ok {
                return Err(CoreError::BatteryExhausted {
                    during: category_name(category),
                });
            }
            confirmed += kept;
            if confirmed >= bytes {
                self.telemetry
                    .span(names::NET_TRANSMIT, start)
                    .attr_str("category", category_name(category))
                    .attr_u64("bytes", bytes as u64)
                    .attr_u64("attempts", u64::from(attempts))
                    .attr_u64("corrupt_chunks", corrupt_total)
                    .attr_f64("wasted_joules", wasted)
                    .close(self.clock.now());
                return Ok(ResumableOutcome::Complete(TransmitSummary {
                    attempts,
                    delivered_bytes: confirmed,
                    corrupt_chunks_detected: corrupt_total,
                    wasted_joules: wasted,
                    backoff_s: backoff_total,
                    elapsed_s: self.clock.now() - start,
                }));
            }
            let mut wait = self.retry.backoff_s(attempts - 1, self.fault_seed);
            if let Some(d) = deadline {
                // Never sleep past the deadline: the next loop iteration
                // abandons the transfer the moment the clock reaches it.
                wait = wait.min((d - self.clock.now()).max(0.0));
            }
            backoff_total += wait;
            self.idle(wait)?;
        }
    }

    /// Idles for `seconds` of wall-clock time (screen on), draining the
    /// baseline power.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BatteryExhausted`] if the battery empties.
    pub fn idle(&mut self, seconds: f64) -> Result<()> {
        let joules = self.energy.idle_energy(seconds);
        let drained = self.battery.drain(joules);
        self.ledger.record(EnergyCategory::Idle, drained);
        self.clock.advance(seconds);
        if drained < joules {
            return Err(CoreError::BatteryExhausted { during: "idle" });
        }
        Ok(())
    }
}

/// What one [`Client::transmit_resumable`] call cost and achieved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransmitSummary {
    /// Transfer attempts made (1 = no retries needed).
    pub attempts: u32,
    /// Bytes confirmed delivered (equals the payload on success).
    pub delivered_bytes: usize,
    /// Corrupted transport chunks caught by CRC verification and
    /// re-requested along the way (none ever reached the decoder).
    pub corrupt_chunks_detected: u64,
    /// Radio joules burnt on bytes that were never confirmed.
    pub wasted_joules: f64,
    /// Total simulated seconds spent backing off between attempts.
    pub backoff_s: f64,
    /// Total simulated seconds from first attempt to completion,
    /// including backoff waits.
    pub elapsed_s: f64,
}

/// How a [`Client::transmit_salvageable`] call ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResumableOutcome {
    /// Every byte was confirmed delivered.
    Complete(TransmitSummary),
    /// The retry budget ran out mid-transfer, but the confirmed chunk
    /// prefix was banked for partial decoding.
    Salvaged(SalvageSummary),
}

/// What survived a transfer that exhausted its retry budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SalvageSummary {
    /// Transfer attempts made before the budget ran out.
    pub attempts: u32,
    /// Bytes confirmed delivered — the decodable-prefix budget.
    pub banked_bytes: usize,
    /// Bytes the full transfer would have carried.
    pub total_bytes: usize,
    /// Radio joules reclassified from the upload category to
    /// [`EnergyCategory::Salvaged`] for the banked prefix.
    pub salvaged_joules: f64,
    /// Radio joules burnt on bytes that were never confirmed.
    pub wasted_joules: f64,
    /// Corrupted transport chunks caught by CRC verification (none ever
    /// reached the decoder).
    pub corrupt_chunks_detected: u64,
    /// Total simulated seconds spent backing off between attempts.
    pub backoff_s: f64,
    /// Total simulated seconds from first attempt to abandonment.
    pub elapsed_s: f64,
}

fn category_name(category: EnergyCategory) -> &'static str {
    match category {
        EnergyCategory::FeatureExtraction => "feature extraction",
        EnergyCategory::FeatureUpload => "feature upload",
        EnergyCategory::ImageUpload => "image upload",
        EnergyCategory::Download => "download",
        EnergyCategory::Compression => "compression",
        EnergyCategory::Wasted => "wasted retry",
        EnergyCategory::Idle => "idle",
        EnergyCategory::Salvaged => "salvaged upload",
        EnergyCategory::PullDown => "pull-down upload",
    }
}

/// Stable, allocation-free trace label for a fault kind.
fn fault_name(fault: FaultKind) -> &'static str {
    match fault {
        FaultKind::Disconnected => "disconnected",
        FaultKind::Dropped => "dropped",
        FaultKind::TimedOut => "timed_out",
        FaultKind::Corrupted => "corrupted",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BeesConfig {
        let mut c = BeesConfig::default();
        c.trace = BandwidthTrace::constant(256_000.0).unwrap();
        c
    }

    #[test]
    fn spend_cpu_drains_and_advances() {
        let mut c = Client::try_new(1, &config()).unwrap();
        let t = c.spend_cpu(EnergyCategory::FeatureExtraction, 4.0).unwrap();
        assert!((t - 2.0).abs() < 1e-9); // 4 J at 2 W
        assert!((c.now() - 2.0).abs() < 1e-9);
        assert!((c.ledger().get(EnergyCategory::FeatureExtraction) - 4.0).abs() < 1e-9);
        assert!(c.ebat() < 1.0);
    }

    #[test]
    fn transmit_uses_channel_and_radio_power() {
        let mut c = Client::try_new(1, &config()).unwrap();
        // 32 KB at 256 Kbps = 1 s at 0.8 W.
        let d = c.transmit(EnergyCategory::ImageUpload, 32_000).unwrap();
        assert!((d - 1.0).abs() < 1e-9);
        assert!((c.ledger().get(EnergyCategory::ImageUpload) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn screen_keeps_draining_during_activity() {
        // The battery pays idle_watts for every wall-clock second, whether
        // the phone is transferring, computing, or waiting: slow uploads
        // cost screen time too (the effect Fig. 9/12 depend on).
        let mut c = Client::try_new(1, &config()).unwrap();
        let d = c.transmit(EnergyCategory::ImageUpload, 32_000).unwrap(); // 1 s
        assert!((c.ledger().get(EnergyCategory::Idle) - d * 1.0).abs() < 1e-9);
        c.spend_cpu(EnergyCategory::FeatureExtraction, 4.0).unwrap(); // 2 s CPU
        assert!((c.ledger().get(EnergyCategory::Idle) - (d + 2.0)).abs() < 1e-9);
        // Total drain = activity + baseline.
        let expected = 0.8 + 4.0 + (d + 2.0) * 1.0;
        let drained = c.battery().capacity_joules() - c.battery().remaining_joules();
        assert!((drained - expected).abs() < 1e-9);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut c = Client::try_new(1, &config()).unwrap();
        c.battery_mut().set_fraction(0.0);
        let err = c.spend_cpu(EnergyCategory::Compression, 1.0);
        assert!(matches!(err, Err(CoreError::BatteryExhausted { .. })));
    }

    #[test]
    fn idle_records_idle_category() {
        let mut c = Client::try_new(1, &config()).unwrap();
        c.idle(10.0).unwrap();
        assert!((c.ledger().get(EnergyCategory::Idle) - 10.0).abs() < 1e-9);
        assert!((c.now() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fleet_clients_get_distinct_traces() {
        let mut cfg = BeesConfig::default(); // fluctuating trace
        cfg.battery = bees_energy::Battery::from_joules(1e9);
        let mut a = Client::try_new(1, &cfg).unwrap();
        let mut b = Client::try_new(2, &cfg).unwrap();
        let da = a.transmit(EnergyCategory::ImageUpload, 200_000).unwrap();
        let db = b.transmit(EnergyCategory::ImageUpload, 200_000).unwrap();
        assert_ne!(da, db);
    }

    #[test]
    fn reset_ledger_clears_counters() {
        let mut c = Client::try_new(3, &config()).unwrap();
        c.idle(1.0).unwrap();
        c.reset_ledger();
        assert_eq!(c.ledger().total(), 0.0);
    }

    #[test]
    fn telemetry_starts_disabled_and_traces_when_installed() {
        use bees_telemetry::{JsonlSink, SharedBuf};
        use std::sync::Arc;
        let mut c = Client::try_new(1, &config()).unwrap();
        assert!(!c.telemetry().is_enabled());
        let buf = SharedBuf::new();
        c.set_telemetry(Telemetry::with_sinks(vec![Arc::new(JsonlSink::new(
            buf.clone(),
        ))]));
        c.transmit(EnergyCategory::ImageUpload, 32_000).unwrap();
        c.receive(1_000).unwrap();
        c.telemetry().flush().unwrap();
        let out = buf.contents_string();
        assert!(out.contains("\"span\":\"net.transmit\""));
        assert!(out.contains("\"span\":\"net.receive\""));
        assert!(out.contains("\"category\":\"image upload\""));
        // Spans run on the virtual clock: the first transmit starts at 0.
        assert!(out.contains("\"start_s\":0"));
    }

    #[test]
    fn faulted_retries_emit_retry_spans() {
        use bees_telemetry::{JsonlSink, SharedBuf};
        use std::sync::Arc;
        let mut cfg = config();
        cfg.battery = bees_energy::Battery::from_joules(1e9);
        cfg.fault = bees_net::FaultModel::new(0xF00D, 0.5, 0.0, 30.0, 10.0).unwrap();
        cfg.retry.max_attempts = 200;
        let mut c = Client::try_new(0, &cfg).unwrap();
        let buf = SharedBuf::new();
        c.set_telemetry(Telemetry::with_sinks(vec![Arc::new(JsonlSink::new(
            buf.clone(),
        ))]));
        for _ in 0..8 {
            c.transmit_resumable(EnergyCategory::ImageUpload, 200_000)
                .unwrap();
        }
        let out = buf.contents_string();
        assert!(
            out.contains("\"span\":\"net.retry\""),
            "p=0.5 drops must produce retry spans"
        );
        assert!(out.contains("\"fault\":"));
        assert!(out.contains("\"span\":\"net.transmit\""));
        assert!(out.contains("\"attempts\":"));
    }

    #[test]
    fn resumable_equals_plain_transmit_without_faults() {
        // The fast path must be *exactly* the legacy path: same duration,
        // same ledger, same battery, same clock — bit for bit.
        let cfg = config();
        let mut plain = Client::try_new(7, &cfg).unwrap();
        let mut resumable = Client::try_new(7, &cfg).unwrap();
        let d = plain
            .transmit(EnergyCategory::ImageUpload, 100_000)
            .unwrap();
        let s = resumable
            .transmit_resumable(EnergyCategory::ImageUpload, 100_000)
            .unwrap();
        assert_eq!(s.attempts, 1);
        assert_eq!(s.delivered_bytes, 100_000);
        assert_eq!(s.wasted_joules, 0.0);
        assert_eq!(s.elapsed_s, d);
        assert_eq!(plain.now(), resumable.now());
        assert_eq!(
            plain.battery().remaining_joules(),
            resumable.battery().remaining_joules()
        );
        assert_eq!(plain.ledger(), resumable.ledger());
    }

    #[test]
    fn resumable_retries_through_faults() {
        let mut cfg = config();
        cfg.battery = bees_energy::Battery::from_joules(1e9);
        cfg.fault = bees_net::FaultModel::new(0xF00D, 0.5, 0.0, 30.0, 10.0).unwrap();
        cfg.retry.max_attempts = 200;
        let mut c = Client::try_new(0, &cfg).unwrap();
        // Several transfers so at least one hits a dropped attempt.
        let mut total_attempts = 0;
        let mut total_wasted = 0.0;
        for _ in 0..8 {
            let s = c
                .transmit_resumable(EnergyCategory::ImageUpload, 200_000)
                .unwrap();
            assert_eq!(s.delivered_bytes, 200_000);
            total_attempts += s.attempts;
            total_wasted += s.wasted_joules;
        }
        assert!(total_attempts > 8, "p=0.5 drops must force retries");
        assert!(total_wasted > 0.0);
        assert!(c.ledger().get(EnergyCategory::Wasted) > 0.0);
        assert!(
            (c.ledger().get(EnergyCategory::Wasted) - total_wasted).abs() < 1e-9,
            "summary waste must match the ledger"
        );
    }

    #[test]
    fn retry_exhaustion_is_a_typed_error() {
        let mut cfg = config();
        cfg.battery = bees_energy::Battery::from_joules(1e9);
        // Every attempt drops, and the chunk is larger than any partial
        // delivery, so no progress is ever banked.
        cfg.fault = bees_net::FaultModel::new(1, 1.0, 0.0, 30.0, 10.0).unwrap();
        cfg.retry.max_attempts = 3;
        cfg.retry.chunk_bytes = 1 << 30;
        let mut c = Client::try_new(0, &cfg).unwrap();
        let err = c.transmit_resumable(EnergyCategory::ImageUpload, 50_000);
        match err {
            Err(CoreError::Net(NetError::RetriesExhausted {
                attempts,
                delivered_bytes,
                total_bytes,
            })) => {
                assert_eq!(attempts, 3);
                assert_eq!(delivered_bytes, 0);
                assert_eq!(total_bytes, 50_000);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // The failed attempts still burnt real energy.
        assert!(c.ledger().get(EnergyCategory::Wasted) > 0.0);
        assert_eq!(c.ledger().get(EnergyCategory::ImageUpload), 0.0);
    }

    #[test]
    fn resumable_banks_whole_chunks_across_attempts() {
        let mut cfg = config();
        cfg.battery = bees_energy::Battery::from_joules(1e9);
        // Constant 256 Kbps with a 1 s timeout: each attempt delivers
        // exactly 32 000 bytes, of which 16 384 (one chunk) is banked.
        cfg.fault = bees_net::FaultModel::new(2, 0.0, 1e-12, 1e9, 1.0).unwrap();
        cfg.retry.attempt_timeout_s = Some(1.0);
        let mut c = Client::try_new(0, &cfg).unwrap();
        let s = c
            .transmit_resumable(EnergyCategory::ImageUpload, 60_000)
            .unwrap();
        // Attempts 1 and 2 each time out after delivering 32 000 bytes and
        // bank one 16 384-byte chunk apiece; the remaining 27 232 bytes
        // (0.85 s) complete within the third attempt's timeout.
        assert_eq!(s.attempts, 3);
        assert_eq!(s.delivered_bytes, 60_000);
        assert!(s.wasted_joules > 0.0);
        assert!(s.backoff_s > 0.0);
    }

    #[test]
    fn salvageable_banks_a_prefix_and_reclassifies_its_energy() {
        let mut cfg = config();
        cfg.battery = bees_energy::Battery::from_joules(1e9);
        // Constant 256 Kbps with a 1 s timeout: each attempt delivers
        // 32 000 bytes and banks one 16 384-byte chunk. A 2-attempt budget
        // cannot finish 60 000 bytes, so the transfer is cut with two
        // chunks banked.
        cfg.fault = bees_net::FaultModel::new(2, 0.0, 1e-12, 1e9, 1.0).unwrap();
        cfg.retry.attempt_timeout_s = Some(1.0);
        cfg.retry.max_attempts = 2;
        let mut c = Client::try_new(0, &cfg).unwrap();
        let out = c
            .transmit_salvageable(EnergyCategory::ImageUpload, 60_000)
            .unwrap();
        let ResumableOutcome::Salvaged(s) = out else {
            panic!("2 attempts cannot deliver 60 kB, got {out:?}");
        };
        assert_eq!(s.attempts, 2);
        assert_eq!(s.banked_bytes, 2 * 16_384);
        assert_eq!(s.total_bytes, 60_000);
        assert!(s.salvaged_joules > 0.0);
        assert!(s.wasted_joules > 0.0);
        // The banked prefix's energy moved to Salvaged; nothing remains
        // booked as a completed image upload.
        assert!((c.ledger().get(EnergyCategory::Salvaged) - s.salvaged_joules).abs() < 1e-12);
        assert_eq!(c.ledger().get(EnergyCategory::ImageUpload), 0.0);
        assert!((c.ledger().get(EnergyCategory::Wasted) - s.wasted_joules).abs() < 1e-12);
        // Demotion sends it back to waste (undecodable prefix).
        let moved = c.demote_salvage(s.salvaged_joules);
        assert!((moved - s.salvaged_joules).abs() < 1e-12);
        assert_eq!(c.ledger().get(EnergyCategory::Salvaged), 0.0);
    }

    #[test]
    fn salvage_off_wastes_what_salvage_on_redeems() {
        // The A/B the fault_resilience bench reports: at identical seeds,
        // disabling salvage strictly grows the wasted bucket.
        let mut cfg = config();
        cfg.battery = bees_energy::Battery::from_joules(1e9);
        cfg.fault = bees_net::FaultModel::new(2, 0.0, 1e-12, 1e9, 1.0).unwrap();
        cfg.retry.attempt_timeout_s = Some(1.0);
        cfg.retry.max_attempts = 2;
        let mut on = Client::try_new(0, &cfg).unwrap();
        let mut off = Client::try_new(0, &cfg).unwrap();
        on.transmit_salvageable(EnergyCategory::ImageUpload, 60_000)
            .unwrap();
        let err = off.transmit_resumable(EnergyCategory::ImageUpload, 60_000);
        assert!(matches!(
            err,
            Err(CoreError::Net(NetError::RetriesExhausted { .. }))
        ));
        assert_eq!(off.ledger().get(EnergyCategory::ImageUpload), 0.0);
        assert!(
            off.ledger().get(EnergyCategory::Wasted)
                > on.ledger().get(EnergyCategory::Wasted) + 1e-9,
            "salvage-off must waste strictly more at equal seeds"
        );
        // Total drain is identical either way — salvage relabels energy,
        // it does not refund it.
        assert_eq!(
            on.battery().remaining_joules(),
            off.battery().remaining_joules()
        );
    }

    #[test]
    fn corrupt_chunks_are_detected_retried_and_deterministic() {
        let mut cfg = config();
        cfg.battery = bees_energy::Battery::from_joules(1e9);
        cfg.fault = bees_net::FaultModel::none().with_corruption(0.5).unwrap();
        cfg.retry.max_attempts = 200;
        let run = || {
            let mut c = Client::try_new(0, &cfg).unwrap();
            let s = c
                .transmit_resumable(EnergyCategory::ImageUpload, 200_000)
                .unwrap();
            (s, c.ledger().clone())
        };
        let (s, ledger) = run();
        assert_eq!(s.delivered_bytes, 200_000);
        assert!(
            s.corrupt_chunks_detected > 0,
            "p=0.5 must corrupt some of ~13 chunks"
        );
        assert!(s.attempts > 1, "corruption must force re-requests");
        assert!(
            ledger.get(EnergyCategory::Wasted) > 0.0,
            "re-sent corrupt chunks burn real energy"
        );
        // Pure function of the seed: an identical client repeats exactly.
        let (s2, ledger2) = run();
        assert_eq!(s, s2);
        assert_eq!(ledger, ledger2);
    }

    #[test]
    fn grant_deadline_abandons_instead_of_retrying() {
        let mut cfg = config();
        cfg.battery = bees_energy::Battery::from_joules(1e9);
        // Every attempt times out after 1 s having delivered 32 000 bytes;
        // without a deadline the 200-attempt budget would grind on.
        cfg.fault = bees_net::FaultModel::new(2, 0.0, 1e-12, 1e9, 1.0).unwrap();
        cfg.retry.attempt_timeout_s = Some(1.0);
        cfg.retry.max_attempts = 200;
        let mut c = Client::try_new(0, &cfg).unwrap();
        c.set_grant_deadline(Some(2.5));
        assert_eq!(c.grant_deadline_s(), Some(2.5));
        let err = c.transmit_resumable(EnergyCategory::ImageUpload, 10_000_000);
        assert!(matches!(
            err,
            Err(CoreError::Net(NetError::RetriesExhausted { .. }))
        ));
        assert_eq!(c.deadline_abandons(), 1);
        // No zombie retries: the clock never ran past the deadline.
        assert!(c.now() <= 2.5 + 1e-9, "clock at {}", c.now());
        // All spent airtime is accounted: banked bytes' energy was wasted
        // (non-salvage path), nothing lingers in the upload bucket.
        assert_eq!(c.ledger().get(EnergyCategory::ImageUpload), 0.0);
        assert!(c.ledger().get(EnergyCategory::Wasted) > 0.0);
    }

    #[test]
    fn deadline_abandons_still_salvage_banked_chunks() {
        let mut cfg = config();
        cfg.battery = bees_energy::Battery::from_joules(1e9);
        cfg.fault = bees_net::FaultModel::new(2, 0.0, 1e-12, 1e9, 1.0).unwrap();
        cfg.retry.attempt_timeout_s = Some(1.0);
        cfg.retry.max_attempts = 200;
        let mut c = Client::try_new(0, &cfg).unwrap();
        c.set_grant_deadline(Some(2.5));
        let out = c
            .transmit_salvageable(EnergyCategory::ImageUpload, 10_000_000)
            .unwrap();
        let ResumableOutcome::Salvaged(s) = out else {
            panic!("the deadline must cut this transfer, got {out:?}");
        };
        assert!(s.banked_bytes >= 16_384, "whole chunks were banked");
        assert!(s.salvaged_joules > 0.0);
        assert_eq!(c.deadline_abandons(), 1);
        assert!((c.ledger().get(EnergyCategory::Salvaged) - s.salvaged_joules).abs() < 1e-12);
    }

    #[test]
    fn expired_grant_defers_before_spending_radio_energy() {
        let mut cfg = config();
        cfg.fault = bees_net::FaultModel::new(2, 0.0, 1e-12, 1e9, 1.0).unwrap();
        let mut c = Client::try_new(0, &cfg).unwrap();
        c.idle(10.0).unwrap();
        c.set_grant_deadline(Some(5.0)); // already in the past
        let idle_before = c.ledger().get(EnergyCategory::Idle);
        let err = c.transmit_resumable(EnergyCategory::ImageUpload, 50_000);
        match err {
            Err(CoreError::Net(NetError::RetriesExhausted { attempts, .. })) => {
                assert_eq!(attempts, 0, "not a single attempt was made");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(c.ledger().get(EnergyCategory::Wasted), 0.0);
        assert_eq!(c.ledger().get(EnergyCategory::ImageUpload), 0.0);
        assert_eq!(c.ledger().get(EnergyCategory::Idle), idle_before);
    }

    #[test]
    fn policy_transfer_deadline_works_without_a_grant() {
        let mut cfg = config();
        cfg.battery = bees_energy::Battery::from_joules(1e9);
        cfg.fault = bees_net::FaultModel::new(2, 0.0, 1e-12, 1e9, 1.0).unwrap();
        cfg.retry.attempt_timeout_s = Some(1.0);
        cfg.retry.max_attempts = 200;
        cfg.retry.transfer_deadline_s = Some(2.5);
        let mut c = Client::try_new(0, &cfg).unwrap();
        // Burn some clock first: the policy deadline is *relative* to the
        // transfer start, unlike the absolute grant deadline.
        c.idle(100.0).unwrap();
        let err = c.transmit_resumable(EnergyCategory::ImageUpload, 10_000_000);
        assert!(matches!(
            err,
            Err(CoreError::Net(NetError::RetriesExhausted { .. }))
        ));
        assert_eq!(c.deadline_abandons(), 1);
        assert!(c.now() <= 102.5 + 1e-9, "clock at {}", c.now());
    }

    #[test]
    fn clearing_the_grant_deadline_restores_plain_behavior() {
        let cfg = config();
        let mut gated = Client::try_new(7, &cfg).unwrap();
        let mut plain = Client::try_new(7, &cfg).unwrap();
        gated.set_grant_deadline(Some(1e9));
        gated.set_grant_deadline(None);
        gated
            .transmit_resumable(EnergyCategory::ImageUpload, 100_000)
            .unwrap();
        plain
            .transmit_resumable(EnergyCategory::ImageUpload, 100_000)
            .unwrap();
        assert_eq!(gated.ledger(), plain.ledger());
        assert_eq!(gated.now(), plain.now());
        assert_eq!(gated.deadline_abandons(), 0);
    }

    #[test]
    fn rate_override_round_trips_through_the_client() {
        let mut c = Client::try_new(0, &config()).unwrap();
        assert_eq!(c.rate_override_bps(), None);
        c.set_rate_override(Some(64_000.0)).unwrap();
        assert_eq!(c.rate_override_bps(), Some(64_000.0));
        // 32 KB at a granted 64 Kbps slice = 4 s instead of 1 s.
        let d = c.transmit(EnergyCategory::ImageUpload, 32_000).unwrap();
        assert!((d - 4.0).abs() < 1e-9);
        c.set_rate_override(None).unwrap();
        assert!(c.set_rate_override(Some(-1.0)).is_err());
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let mut cfg = config();
        cfg.stall_limit_s = -1.0;
        assert!(matches!(
            Client::try_new(0, &cfg),
            Err(CoreError::InvalidConfig { .. })
        ));
        let mut cfg2 = config();
        cfg2.retry.max_attempts = 0;
        assert!(matches!(
            Client::try_new(0, &cfg2),
            Err(CoreError::InvalidConfig { .. })
        ));
        let mut cfg3 = config();
        cfg3.fault.drop_probability = 2.0;
        assert!(Client::try_new(0, &cfg3).is_err());
    }
}
