//! Pins the zero-cost-when-disabled contract: a disabled telemetry handle
//! must not allocate on the hot path. Measured with a counting global
//! allocator rather than asserted by inspection.

use bees_telemetry::{names, Telemetry};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn disabled_handle_allocates_nothing_on_the_hot_path() {
    let tel = Telemetry::disabled();
    let scheme_label = String::from("BEES"); // allocated once, outside the hot path
    let before = allocations();
    for i in 0..1_000u64 {
        let t = i as f64;
        tel.span(names::NET_TRANSMIT, t)
            .attr_u64("bytes", 32_000)
            .attr_f64("joules", 0.8)
            .attr_bool("hit", i % 2 == 0)
            .attr_str("scheme", &scheme_label)
            .close(t + 1.0);
        let clone = tel.clone();
        assert!(!clone.is_enabled());
    }
    assert_eq!(
        allocations(),
        before,
        "disabled telemetry must not touch the allocator"
    );
}

#[test]
fn enabled_handle_does_allocate() {
    // Sanity check that the counter actually observes the enabled path,
    // so the zero above is meaningful.
    use bees_telemetry::TraceSink;
    use std::sync::Arc;

    struct Null;
    impl TraceSink for Null {
        fn on_span(&self, _span: &bees_telemetry::SpanRecord) {}
    }
    let tel = Telemetry::with_sinks(vec![Arc::new(Null)]);
    let before = allocations();
    tel.span(names::NET_TRANSMIT, 0.0)
        .attr_str("scheme", "BEES")
        .close(1.0);
    assert!(
        allocations() > before,
        "enabled spans are expected to allocate"
    );
}
