//! In-memory per-stage aggregation.

use crate::sink::TraceSink;
use crate::span::{AttrValue, SpanRecord};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Upper edges (simulated seconds, inclusive) of the duration histogram
/// buckets; the final bucket is unbounded. Log-spaced because stage
/// durations span microseconds (a query verdict) to minutes (a lifetime
/// batch on a starved channel).
pub const DURATION_BUCKET_EDGES: [f64; 8] = [1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1e3, 1e4];

/// Accumulated statistics for one span name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageStats {
    /// Spans closed under this name.
    pub count: u64,
    /// Sum of span durations in simulated seconds.
    pub total_s: f64,
    /// Longest single span.
    pub max_s: f64,
    /// Sum of `bytes` attributes.
    pub bytes: u64,
    /// Sum of `joules` attributes.
    pub joules: f64,
    /// Duration histogram: `hist[i]` counts spans with duration ≤
    /// [`DURATION_BUCKET_EDGES`]`[i]`; the last slot counts the rest.
    pub hist: [u64; DURATION_BUCKET_EDGES.len() + 1],
}

impl StageStats {
    /// Mean span duration (0 when no spans were recorded).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }

    fn absorb(&mut self, span: &SpanRecord) {
        let d = span.duration_s();
        self.count += 1;
        self.total_s += d;
        self.max_s = self.max_s.max(d);
        if let Some(AttrValue::U64(b)) = span.attr("bytes") {
            self.bytes += b;
        }
        if let Some(AttrValue::F64(j)) = span.attr("joules") {
            self.joules += j;
        }
        self.hist[bucket_index(d)] += 1;
    }
}

fn bucket_index(duration_s: f64) -> usize {
    DURATION_BUCKET_EDGES
        .iter()
        .position(|&edge| duration_s <= edge)
        .unwrap_or(DURATION_BUCKET_EDGES.len())
}

/// A [`TraceSink`] that folds spans into per-stage counters and
/// histograms, keyed by span name in lexicographic order (a `BTreeMap`,
/// so snapshots are deterministically ordered).
#[derive(Default)]
pub struct Aggregator {
    stages: Mutex<BTreeMap<&'static str, StageStats>>,
}

impl Aggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-stage statistics so far, sorted by stage name.
    pub fn snapshot(&self) -> Vec<(&'static str, StageStats)> {
        self.stages
            .lock()
            .expect("aggregator poisoned")
            .iter()
            .map(|(name, stats)| (*name, stats.clone()))
            .collect()
    }
}

impl TraceSink for Aggregator {
    fn on_span(&self, span: &SpanRecord) {
        self.stages
            .lock()
            .expect("aggregator poisoned")
            .entry(span.name)
            .or_default()
            .absorb(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, start: f64, end: f64, bytes: Option<u64>) -> SpanRecord {
        let mut attrs = Vec::new();
        if let Some(b) = bytes {
            attrs.push(("bytes", AttrValue::U64(b)));
        }
        attrs.push(("joules", AttrValue::F64(0.5)));
        SpanRecord {
            name,
            start_s: start,
            end_s: end,
            attrs,
        }
    }

    #[test]
    fn folds_counts_bytes_and_joules() {
        let agg = Aggregator::new();
        agg.on_span(&span("net.transmit", 0.0, 1.0, Some(100)));
        agg.on_span(&span("net.transmit", 1.0, 4.0, Some(50)));
        agg.on_span(&span("afe.orb", 0.0, 0.25, None));
        let snap = agg.snapshot();
        assert_eq!(snap.len(), 2);
        // BTreeMap order: afe.orb before net.transmit.
        assert_eq!(snap[0].0, "afe.orb");
        let net = &snap[1].1;
        assert_eq!(net.count, 2);
        assert_eq!(net.bytes, 150);
        assert!((net.total_s - 4.0).abs() < 1e-12);
        assert!((net.max_s - 3.0).abs() < 1e-12);
        assert!((net.mean_s() - 2.0).abs() < 1e-12);
        assert!((net.joules - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_are_log_spaced() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(1e-3), 0);
        assert_eq!(bucket_index(0.002), 1);
        assert_eq!(bucket_index(0.5), 3);
        assert_eq!(bucket_index(5.0), 4);
        assert_eq!(bucket_index(1e9), DURATION_BUCKET_EDGES.len());
        let agg = Aggregator::new();
        agg.on_span(&span("s", 0.0, 0.5, None));
        agg.on_span(&span("s", 0.0, 5.0, None));
        let snap = agg.snapshot();
        assert_eq!(snap[0].1.hist[3], 1);
        assert_eq!(snap[0].1.hist[4], 1);
    }

    #[test]
    fn empty_mean_is_zero() {
        assert_eq!(StageStats::default().mean_s(), 0.0);
    }
}
