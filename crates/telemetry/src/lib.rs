//! Deterministic structured tracing for the BEES pipeline.
//!
//! The paper's evaluation (§IV) is an accounting exercise: where every
//! joule, byte, and second of a batch went. This crate is the spine that
//! accounting flows through. A [`Telemetry`] handle is threaded through the
//! client, server, and schemes; pipeline stages open *spans* against the
//! client's **virtual** clock and close them with typed attributes; spans
//! drain to pluggable [`TraceSink`]s — a JSONL writer ([`JsonlSink`]), an
//! in-memory per-stage aggregator ([`Aggregator`]), or anything
//! user-supplied.
//!
//! # Determinism rules
//!
//! Traces must be byte-identical across `BEES_THREADS=1/2/8` and across
//! reruns, so the crate enforces three rules:
//!
//! 1. **No wall clock.** Span timestamps are caller-supplied simulated
//!    seconds (`client.now()`). The crate never reads host time.
//! 2. **No host state.** The [`RunManifest`] hashes the configuration with
//!    FNV-1a and records the seed and crate versions — never thread counts,
//!    hostnames, or paths.
//! 3. **Stable encoding.** JSON is hand-rolled with insertion-ordered
//!    attribute maps and `f64` `Display` formatting (shortest round-trip,
//!    no exponent notation), so the same spans always serialize to the
//!    same bytes.
//!
//! # Zero cost when disabled
//!
//! A disabled handle ([`Telemetry::disabled`], also `Default`) makes every
//! span a `None`: no allocation, no attribute conversion, no sink calls.
//! `crates/telemetry/tests/no_alloc.rs` pins this with a counting global
//! allocator.
//!
//! # Example
//!
//! ```
//! use bees_telemetry::{names, Aggregator, JsonlSink, SharedBuf, Telemetry};
//! use std::sync::Arc;
//!
//! let buf = SharedBuf::new();
//! let agg = Arc::new(Aggregator::new());
//! let tel = Telemetry::with_sinks(vec![Arc::new(JsonlSink::new(buf.clone())), agg.clone()]);
//!
//! // A scheme body: open at the stage start time, close at the stage end.
//! tel.span(names::AFE_ORB, 0.0)
//!     .attr_u64("images", 8)
//!     .attr_f64("joules", 3.5)
//!     .close(2.25);
//!
//! let stats = agg.snapshot();
//! assert_eq!(stats[0].0, "afe.orb");
//! assert_eq!(stats[0].1.count, 1);
//! assert!(buf.contents_string().contains("\"span\":\"afe.orb\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregator;
mod json;
mod manifest;
mod sink;
mod span;

pub use aggregator::{Aggregator, StageStats, DURATION_BUCKET_EDGES};
pub use manifest::{fnv1a_64, RunManifest};
pub use sink::{JsonlSink, SharedBuf, TraceSink};
pub use span::{AttrValue, Span, SpanRecord};

use std::fmt;
use std::sync::Arc;

/// The canonical span names of the BEES pipeline, in pipeline order.
///
/// Schemes reuse these so traces from different schemes aggregate into the
/// same per-stage rows; scheme identity travels in the `scheme` attribute.
pub mod names {
    /// Approximate feature extraction (ORB, PCA-SIFT, or histograms — the
    /// `extractor` attribute says which).
    pub const AFE_ORB: &str = "afe.orb";
    /// Cross-batch redundancy detection: feature upload + server verdict.
    pub const ARD_QUERY: &str = "ard.query";
    /// In-batch redundancy detection: SSMM submodular selection.
    pub const ARD_SSMM: &str = "ard.ssmm";
    /// Approximate image upload: JPEG encode (+ EAAS degradation).
    pub const AIU_ENCODE: &str = "aiu.encode";
    /// Partial-image reconstruction from the banked prefix of a cut
    /// transfer: scans decoded, SSIM estimate (zero-duration event).
    pub const AIU_SCAN: &str = "aiu.scan";
    /// One confirmed client→server payload transfer.
    pub const NET_TRANSMIT: &str = "net.transmit";
    /// One server→client payload transfer.
    pub const NET_RECEIVE: &str = "net.receive";
    /// One attempt inside the fault-injected resumable-transfer loop.
    pub const NET_RETRY: &str = "net.retry";
    /// A resumable transfer that exhausted its retry budget but banked
    /// enough confirmed chunks to salvage (zero-duration event).
    pub const NET_SALVAGE: &str = "net.salvage";
    /// A server-side similarity query (zero-duration event).
    pub const SRV_QUERY: &str = "srv.query";
    /// A server-side image ingest (zero-duration event).
    pub const SRV_INGEST: &str = "srv.ingest";
    /// A sharded-index epoch commit: pending ingests distributed to shards
    /// (zero-duration event, emitted only when the server runs > 1 shard).
    pub const SRV_SHARD_COMMIT: &str = "srv.shard.commit";
    /// A fan-out query across index shards (zero-duration event, emitted
    /// only when the server runs > 1 shard).
    pub const SRV_SHARD_QUERY: &str = "srv.shard.query";
    /// The airtime scheduler granted a device an upload tier for one
    /// shared-cell epoch (zero-duration event; the `tier`, `policy`, and
    /// `utility` attributes say what and why).
    pub const SCHED_GRANT: &str = "sched.grant";
    /// The airtime scheduler denied a device airtime for one epoch — the
    /// device defers without spending radio energy (zero-duration event).
    pub const SCHED_DENY: &str = "sched.deny";
    /// A transfer was abandoned at its virtual-time deadline — the device
    /// lost its grant mid-flight and stopped retrying (zero-duration
    /// event).
    pub const SCHED_PREEMPT: &str = "sched.preempt";
    /// A responder-side retrieval: one `Server::retrieve` execution over
    /// the fleet index and its side tables (zero-duration event; the
    /// `hits` / `candidates` attributes carry the result shape).
    pub const SRV_RETRIEVE: &str = "srv.retrieve";
    /// A device pull-down fetch: an `OnDevice` retrieval hit being
    /// uploaded on demand, charged to the owning device's ledger
    /// (zero-duration event).
    pub const SRV_PULLDOWN: &str = "srv.pulldown";
}

pub(crate) struct Inner {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl Inner {
    pub(crate) fn emit(&self, record: &SpanRecord) {
        for sink in &self.sinks {
            sink.on_span(record);
        }
    }
}

/// A cheaply clonable telemetry handle.
///
/// Disabled by default; [`Telemetry::with_sinks`] turns it on. Clones share
/// the same sinks, so the client, server, and scheme all report into one
/// stream.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A handle that records nothing and allocates nothing.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A handle draining to `sinks`. An empty sink list still counts as
    /// enabled (spans are built, then dropped) — pass at least one sink.
    pub fn with_sinks(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner { sinks })),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span at simulated time `start_s`. Attach attributes with the
    /// builder methods, then [`Span::close`] it at the stage's end time.
    /// On a disabled handle this is free.
    pub fn span(&self, name: &'static str, start_s: f64) -> Span {
        Span::new(self.inner.clone(), name, start_s)
    }

    /// Emits a zero-duration span at simulated time `t_s` (server-side
    /// happenings have no client clock of their own).
    pub fn event(&self, name: &'static str, t_s: f64) -> Span {
        self.span(name, t_s)
    }

    /// Stamps the run manifest into every sink (a JSONL sink writes it as
    /// the first line of the trace).
    pub fn emit_manifest(&self, manifest: &RunManifest) {
        if let Some(inner) = &self.inner {
            for sink in &inner.sinks {
                sink.on_manifest(manifest);
            }
        }
    }

    /// Flushes every sink.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error a sink reports.
    pub fn flush(&self) -> std::io::Result<()> {
        if let Some(inner) = &self.inner {
            for sink in &inner.sinks {
                sink.flush()?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("sinks", &self.inner.as_ref().map_or(0, |i| i.sinks.len()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let span = tel.span(names::AFE_ORB, 1.0).attr_u64("images", 4);
        assert!(!span.is_recording());
        span.close(2.0); // no-op, no panic
        tel.emit_manifest(&RunManifest::new("cfg", 7));
        tel.flush().unwrap();
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn spans_reach_every_sink() {
        let buf = SharedBuf::new();
        let agg = Arc::new(Aggregator::new());
        let tel = Telemetry::with_sinks(vec![Arc::new(JsonlSink::new(buf.clone())), agg.clone()]);
        assert!(tel.is_enabled());
        tel.span(names::NET_TRANSMIT, 0.5)
            .attr_u64("bytes", 32_000)
            .attr_f64("joules", 0.8)
            .close(1.5);
        let text = buf.contents_string();
        assert_eq!(
            text,
            "{\"span\":\"net.transmit\",\"start_s\":0.5,\"end_s\":1.5,\
             \"attrs\":{\"bytes\":32000,\"joules\":0.8}}\n"
        );
        let stats = agg.snapshot();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.bytes, 32_000);
        assert!((stats[0].1.total_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clones_share_sinks() {
        let buf = SharedBuf::new();
        let tel = Telemetry::with_sinks(vec![Arc::new(JsonlSink::new(buf.clone()))]);
        let clone = tel.clone();
        clone.span(names::SRV_QUERY, 0.0).close(0.0);
        tel.span(names::SRV_INGEST, 0.0).close(0.0);
        let text = buf.contents_string();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn manifest_is_stamped_first() {
        let buf = SharedBuf::new();
        let tel = Telemetry::with_sinks(vec![Arc::new(JsonlSink::new(buf.clone()))]);
        tel.emit_manifest(&RunManifest::new("config", 0xBEE5).with_crate("bees-core", "0.1.0"));
        tel.span(names::AFE_ORB, 0.0).close(1.0);
        let text = buf.contents_string();
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("{\"manifest\":"), "{first}");
        assert!(first.contains("\"seed\":48869"), "{first}");
        assert!(first.contains("\"bees-core\":\"0.1.0\""), "{first}");
    }

    #[test]
    fn debug_does_not_expose_sinks() {
        let tel = Telemetry::with_sinks(vec![Arc::new(Aggregator::new())]);
        let s = format!("{tel:?}");
        assert!(s.contains("enabled: true"), "{s}");
    }
}
