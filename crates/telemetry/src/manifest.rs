//! Run manifests: the provenance stamp of a trace.

use crate::json;

/// Identifies the run a trace came from: a hash of the serialized
/// configuration, the workload seed, and the crate versions in play.
///
/// Deliberately excludes anything host- or schedule-dependent (thread
/// count, hostname, wall time, paths), so the same configuration and seed
/// produce the same manifest bytes everywhere — traces stay byte-identical
/// across `BEES_THREADS` settings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Manifest format version.
    pub schema: u32,
    /// FNV-1a 64-bit hash of the caller's canonical config serialization.
    pub config_hash: u64,
    /// The workload seed.
    pub seed: u64,
    /// `(crate name, version)` pairs, in the order registered.
    pub crates: Vec<(String, String)>,
}

impl RunManifest {
    /// Builds a manifest from the canonical string form of the run's
    /// configuration (e.g. its JSON serialization) and the workload seed.
    pub fn new(config_repr: &str, seed: u64) -> Self {
        RunManifest {
            schema: 1,
            config_hash: fnv1a_64(config_repr.as_bytes()),
            seed,
            crates: Vec::new(),
        }
    }

    /// Registers a crate version (builder-style).
    #[must_use]
    pub fn with_crate(mut self, name: &str, version: &str) -> Self {
        self.crates.push((name.to_owned(), version.to_owned()));
        self
    }

    /// Encodes the manifest as one JSONL line (no trailing newline):
    /// `{"manifest":{"schema":1,"config_hash":"…",…}}`. The hash is hex
    /// (JSON numbers cannot carry 64 bits losslessly).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"manifest\":{\"schema\":");
        out.push_str(&self.schema.to_string());
        out.push_str(",\"config_hash\":");
        json::push_str(&mut out, &format!("{:016x}", self.config_hash));
        out.push_str(",\"seed\":");
        out.push_str(&self.seed.to_string());
        out.push_str(",\"crates\":{");
        for (i, (name, version)) in self.crates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, name);
            out.push(':');
            json::push_str(&mut out, version);
        }
        out.push_str("}}}");
        out
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms —
/// exactly what a provenance hash needs (it is not cryptographic).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_json_is_stable() {
        let m = RunManifest::new("", 7).with_crate("bees-core", "0.1.0");
        assert_eq!(
            m.to_json_line(),
            "{\"manifest\":{\"schema\":1,\"config_hash\":\"cbf29ce484222325\",\
             \"seed\":7,\"crates\":{\"bees-core\":\"0.1.0\"}}}"
        );
    }

    #[test]
    fn same_config_same_hash() {
        let a = RunManifest::new("{\"x\":1}", 1);
        let b = RunManifest::new("{\"x\":1}", 2);
        let c = RunManifest::new("{\"x\":2}", 1);
        assert_eq!(a.config_hash, b.config_hash);
        assert_ne!(a.config_hash, c.config_hash);
    }
}
