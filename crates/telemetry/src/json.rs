//! Minimal deterministic JSON encoding.
//!
//! Hand-rolled on purpose: trace bytes must be identical across platforms,
//! thread counts, and dependency upgrades, so the encoder is pinned here
//! rather than delegated to a serialization crate. Numbers use Rust's
//! `Display` for `f64` (shortest round-trip form, no exponent notation for
//! the magnitudes simulated time produces), strings escape the JSON
//! control set, and object keys are emitted in insertion order.

/// Appends `s` as a JSON string literal (with surrounding quotes).
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. Non-finite values (which would be invalid
/// JSON) are encoded as `null`; simulated time and energy are always
/// finite, so this only triggers on caller bugs.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc_str(s: &str) -> String {
        let mut out = String::new();
        push_str(&mut out, s);
        out
    }

    fn enc_f64(v: f64) -> String {
        let mut out = String::new();
        push_f64(&mut out, v);
        out
    }

    #[test]
    fn escapes_the_control_set() {
        assert_eq!(enc_str("plain"), "\"plain\"");
        assert_eq!(enc_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(enc_str("x\n\r\ty"), "\"x\\n\\r\\ty\"");
        assert_eq!(enc_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(enc_str("über"), "\"über\"");
    }

    #[test]
    fn floats_round_trip_shortest() {
        assert_eq!(enc_f64(0.0), "0");
        assert_eq!(enc_f64(1.5), "1.5");
        assert_eq!(enc_f64(0.1), "0.1");
        assert_eq!(enc_f64(-2.25), "-2.25");
        // 1/3 prints its shortest round-trip form.
        let third: f64 = enc_f64(1.0 / 3.0).parse().unwrap();
        assert_eq!(third, 1.0 / 3.0);
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(enc_f64(f64::NAN), "null");
        assert_eq!(enc_f64(f64::INFINITY), "null");
        assert_eq!(enc_f64(f64::NEG_INFINITY), "null");
    }
}
