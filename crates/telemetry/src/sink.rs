//! Sink contract and the built-in JSONL writer.

use crate::manifest::RunManifest;
use crate::span::SpanRecord;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// Receives finished spans and manifests.
///
/// Sinks take `&self` (handles are shared across the pipeline), so
/// implementations use interior mutability. Delivery order is the order
/// spans were closed — which, because spans close against the simulated
/// clock on the single orchestration thread, is deterministic regardless
/// of `BEES_THREADS`.
pub trait TraceSink: Send + Sync {
    /// Called once per run, before any spans, with the run manifest.
    fn on_manifest(&self, _manifest: &RunManifest) {}

    /// Called for every closed span.
    fn on_span(&self, span: &SpanRecord);

    /// Flushes buffered output.
    ///
    /// # Errors
    ///
    /// Returns the underlying writer's I/O error.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Writes one JSON object per line: the manifest first (when emitted),
/// then every span in close order.
///
/// Writing is best-effort — an I/O error mid-trace is remembered and
/// surfaced by [`flush`](TraceSink::flush) rather than panicking the
/// simulation.
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<JsonlState<W>>,
}

struct JsonlState<W> {
    writer: W,
    error: Option<io::Error>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer (a `File`, a [`SharedBuf`], a `Vec<u8>`…).
    pub fn new(writer: W) -> Self {
        JsonlSink {
            out: Mutex::new(JsonlState {
                writer,
                error: None,
            }),
        }
    }

    fn write_line(&self, line: &str) {
        let mut state = self.out.lock().expect("trace writer poisoned");
        if state.error.is_some() {
            return;
        }
        if let Err(e) = state
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| state.writer.write_all(b"\n"))
        {
            state.error = Some(e);
        }
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn on_manifest(&self, manifest: &RunManifest) {
        self.write_line(&manifest.to_json_line());
    }

    fn on_span(&self, span: &SpanRecord) {
        self.write_line(&span.to_json_line());
    }

    fn flush(&self) -> io::Result<()> {
        let mut state = self.out.lock().expect("trace writer poisoned");
        if let Some(e) = state.error.take() {
            return Err(e);
        }
        state.writer.flush()
    }
}

/// A clonable in-memory byte buffer, for tests and for reading a trace
/// back after the run without touching the filesystem.
#[derive(Clone, Default)]
pub struct SharedBuf {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.bytes.lock().expect("shared buffer poisoned").clone()
    }

    /// The contents as UTF-8 (traces are always UTF-8).
    pub fn contents_string(&self) -> String {
        String::from_utf8(self.contents()).expect("trace output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes
            .lock()
            .expect("shared buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::AttrValue;

    fn span(name: &'static str) -> SpanRecord {
        SpanRecord {
            name,
            start_s: 0.0,
            end_s: 1.0,
            attrs: vec![("bytes", AttrValue::U64(10))],
        }
    }

    #[test]
    fn jsonl_writes_one_line_per_span() {
        let buf = SharedBuf::new();
        let sink = JsonlSink::new(buf.clone());
        sink.on_manifest(&RunManifest::new("c", 1));
        sink.on_span(&span("a"));
        sink.on_span(&span("b"));
        sink.flush().unwrap();
        let text = buf.contents_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"manifest\":"));
        assert!(lines[1].contains("\"span\":\"a\""));
        assert!(lines[2].contains("\"span\":\"b\""));
    }

    #[test]
    fn write_errors_surface_on_flush() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::Other, "disk gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Failing);
        sink.on_span(&span("a"));
        sink.on_span(&span("b")); // skipped once poisoned, no panic
        let err = TraceSink::flush(&sink).unwrap_err();
        assert_eq!(err.to_string(), "disk gone");
        // After reporting, the sink is clean again.
        assert!(TraceSink::flush(&sink).is_ok());
    }

    #[test]
    fn shared_buf_clones_observe_writes() {
        let buf = SharedBuf::new();
        let mut writer = buf.clone();
        writer.write_all(b"hello").unwrap();
        assert_eq!(buf.contents(), b"hello");
    }
}
