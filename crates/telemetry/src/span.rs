//! Spans: named intervals of simulated time with typed attributes.

use crate::json;
use crate::Inner;
use std::sync::Arc;

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An unsigned count (bytes, images, attempts).
    U64(u64),
    /// A measurement (seconds, joules, Ebat, similarity).
    F64(f64),
    /// A flag (hit, degraded).
    Bool(bool),
    /// A label (scheme, category, fault kind).
    Str(String),
}

/// A finished span as delivered to sinks: a name, a `[start_s, end_s]`
/// interval of *simulated* seconds, and insertion-ordered attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The span name — one of [`crate::names`] for pipeline stages.
    pub name: &'static str,
    /// Simulated time the span opened.
    pub start_s: f64,
    /// Simulated time the span closed (`== start_s` for events).
    pub end_s: f64,
    /// Attributes in insertion order. Keys are static so the hot path
    /// never hashes or allocates for them.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// The span's duration in simulated seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// The first attribute with this key, if any.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Encodes the span as one JSONL line (no trailing newline):
    /// `{"span":NAME,"start_s":T0,"end_s":T1,"attrs":{...}}`.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.attrs.len() * 16);
        out.push_str("{\"span\":");
        json::push_str(&mut out, self.name);
        out.push_str(",\"start_s\":");
        json::push_f64(&mut out, self.start_s);
        out.push_str(",\"end_s\":");
        json::push_f64(&mut out, self.end_s);
        out.push_str(",\"attrs\":{");
        for (i, (key, value)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, key);
            out.push(':');
            match value {
                AttrValue::U64(v) => out.push_str(&v.to_string()),
                AttrValue::F64(v) => json::push_f64(&mut out, *v),
                AttrValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                AttrValue::Str(v) => json::push_str(&mut out, v),
            }
        }
        out.push_str("}}");
        out
    }
}

/// An open span. Attach attributes with the builder methods and finish it
/// with [`close`](Span::close); dropping it unclosed discards it silently.
///
/// On a disabled [`crate::Telemetry`] handle every method is a no-op and
/// the span holds no heap memory at all.
#[must_use = "a span records nothing until close() is called"]
pub struct Span {
    active: Option<(Arc<Inner>, SpanRecord)>,
}

impl Span {
    pub(crate) fn new(inner: Option<Arc<Inner>>, name: &'static str, start_s: f64) -> Self {
        Span {
            active: inner.map(|inner| {
                (
                    inner,
                    SpanRecord {
                        name,
                        start_s,
                        end_s: start_s,
                        attrs: Vec::new(),
                    },
                )
            }),
        }
    }

    /// Whether this span will be delivered to sinks when closed.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches an unsigned count.
    pub fn attr_u64(mut self, key: &'static str, value: u64) -> Self {
        if let Some((_, record)) = &mut self.active {
            record.attrs.push((key, AttrValue::U64(value)));
        }
        self
    }

    /// Attaches a measurement.
    pub fn attr_f64(mut self, key: &'static str, value: f64) -> Self {
        if let Some((_, record)) = &mut self.active {
            record.attrs.push((key, AttrValue::F64(value)));
        }
        self
    }

    /// Attaches a flag.
    pub fn attr_bool(mut self, key: &'static str, value: bool) -> Self {
        if let Some((_, record)) = &mut self.active {
            record.attrs.push((key, AttrValue::Bool(value)));
        }
        self
    }

    /// Attaches a label. The string is only copied when recording.
    pub fn attr_str(mut self, key: &'static str, value: &str) -> Self {
        if let Some((_, record)) = &mut self.active {
            record.attrs.push((key, AttrValue::Str(value.to_owned())));
        }
        self
    }

    /// Closes the span at simulated time `end_s` and delivers it to every
    /// sink. No-op on a non-recording span.
    pub fn close(self, end_s: f64) {
        if let Some((inner, mut record)) = self.active {
            record.end_s = end_s;
            inner.emit(&record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> SpanRecord {
        SpanRecord {
            name: "afe.orb",
            start_s: 0.25,
            end_s: 1.5,
            attrs: vec![
                ("images", AttrValue::U64(8)),
                ("extractor", AttrValue::Str("orb".into())),
                ("hit", AttrValue::Bool(false)),
                ("joules", AttrValue::F64(0.125)),
            ],
        }
    }

    #[test]
    fn json_line_is_insertion_ordered() {
        assert_eq!(
            record().to_json_line(),
            "{\"span\":\"afe.orb\",\"start_s\":0.25,\"end_s\":1.5,\"attrs\":{\
             \"images\":8,\"extractor\":\"orb\",\"hit\":false,\"joules\":0.125}}"
        );
    }

    #[test]
    fn duration_and_lookup() {
        let r = record();
        assert!((r.duration_s() - 1.25).abs() < 1e-12);
        assert_eq!(r.attr("images"), Some(&AttrValue::U64(8)));
        assert_eq!(r.attr("missing"), None);
    }

    #[test]
    fn disabled_span_is_inert() {
        let span = Span::new(None, "x", 0.0)
            .attr_u64("a", 1)
            .attr_f64("b", 2.0)
            .attr_bool("c", true)
            .attr_str("d", "e");
        assert!(!span.is_recording());
        span.close(9.0);
    }
}
