//! End-to-end lifecycle of the content store on real encoded payloads:
//! ingest → dedup → grouping → cold recompression → ledger identity.

use bees_image::{codec, Rgb, RgbImage};
use bees_store::{ContentStore, Fidelity, InsertOutcome, StorageConfig, StorePayload};

/// A deterministic synthetic photo (no dataset dependency).
fn photo(seed: u64, shift: u32) -> RgbImage {
    RgbImage::from_fn(96, 72, |x, y| {
        let x = x + shift;
        let v = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(((x / 8) as u64) << 32 | (y / 8) as u64)
            .wrapping_mul(1442695040888963407);
        Rgb::new((v >> 40) as u8, (v >> 48) as u8, (v >> 56) as u8)
    })
}

fn permissive() -> StorageConfig {
    StorageConfig {
        recompress_min_age_s: 0.0,
        recompress_min_group: 2,
        ..StorageConfig::default()
    }
}

#[test]
fn full_lifecycle_holds_the_ledger_identity() {
    let mut store = ContentStore::new();
    // Three near-duplicate views of one subject, encoded at camera quality,
    // plus a byte-identical re-upload of the lead view.
    let payloads: Vec<Vec<u8>> = (0..3)
        .map(|v| codec::encode_rgb(&photo(9, v), 85).unwrap())
        .collect();
    for (i, p) in payloads.iter().enumerate() {
        let out = store.insert(
            i as u64,
            StorePayload::Bytes(p.clone()),
            Fidelity::Full,
            i as f64,
        );
        assert_eq!(out, InsertOutcome::Stored { len: p.len() });
    }
    let dup = store.insert(
        3,
        StorePayload::Bytes(payloads[0].clone()),
        Fidelity::Full,
        3.0,
    );
    assert_eq!(dup, InsertOutcome::DedupHit);
    assert_eq!(store.image_count(), 4);
    assert_eq!(store.blob_count(), 3);
    assert_eq!(store.ledger().dedup_hits, 1);

    // The epoch-commit grouping found the views similar.
    store.merge_groups(0, 1);
    store.merge_groups(2, 1);
    assert_eq!(store.group_of(2), &[0, 1, 2, 3]);
    assert_eq!(store.group_count(), 1);
    store.commit_epoch();
    assert_eq!(store.ledger().epochs.len(), 1);

    let stored = store.ledger().stored_bytes;
    assert_eq!(store.live_bytes(), stored);

    // The cold pass re-encodes the redundant members, never the reference.
    let reference = store.reference_member(0).unwrap();
    let ref_len_before = store.blob_of(reference).unwrap().len;
    let report = store.run_recompression(1_000.0, &permissive());
    assert!(report.recompressed >= 1, "{report:?}");
    assert!(report.bytes_reclaimed > 0);
    assert!(report.mean_ssim() > 0.5 && report.mean_ssim() <= 1.0);
    assert_eq!(store.blob_of(reference).unwrap().len, ref_len_before);

    // Ledger identity survives the pass; a second pass is a no-op.
    assert_eq!(
        store.live_bytes(),
        store.ledger().stored_bytes - store.ledger().reclaimed_bytes
    );
    let digest = store.layout_digest();
    let second = store.run_recompression(2_000.0, &permissive());
    assert_eq!(second.recompressed, 0);
    assert_eq!(second.bytes_reclaimed, 0);
    assert_eq!(store.layout_digest(), digest);
}

#[test]
fn catalog_entries_fulfill_and_partials_upgrade_into_real_bytes() {
    let mut store = ContentStore::new();
    // A catalog record holds no physical bytes until the pull-down.
    store.insert(
        0,
        StorePayload::Size {
            size: 32_000,
            fingerprint: 7,
        },
        Fidelity::OnDevice,
        0.0,
    );
    assert_eq!(store.live_bytes(), 0);
    store.fulfill(0, 32_000, 5.0);
    assert_eq!(store.live_bytes(), 32_000);
    assert_eq!(store.blob_of(0).unwrap().fidelity, Fidelity::Full);

    // A salvaged partial accounts its prefix now and its tail later.
    store.insert(
        1,
        StorePayload::Size {
            size: 6_000,
            fingerprint: 8,
        },
        Fidelity::Partial,
        6.0,
    );
    store.upgrade(1, 4_000, 7.0);
    assert_eq!(store.blob_of(1).unwrap().len, 10_000);
    assert_eq!(store.blob_of(1).unwrap().fidelity, Fidelity::Full);
    assert_eq!(store.ledger().stored_bytes, 42_000);
    assert_eq!(store.live_bytes(), 42_000);

    // Neither synthetic blob carries real bytes, so the cold pass must
    // leave both untouched even with every gate wide open.
    let report = store.run_recompression(1e9, &permissive());
    assert_eq!(report.recompressed, 0);
    assert_eq!(store.ledger().reclaimed_bytes, 0);
}
