#![warn(missing_docs)]

//! Deterministic content-addressed storage for the BEES server.
//!
//! At the millions-of-users scale the ROADMAP targets, the server's dominant
//! cost shifts from ingest bandwidth to *storage*. This crate holds every
//! fidelity tier the server receives — full uploads, salvaged partials,
//! thumbnails, and on-device catalog entries — in one [`ContentStore`]:
//!
//! * **Content addressing.** Each payload maps to a [`BlobKey`] (FNV-1a over
//!   the payload bytes, or over a feature fingerprint + size for size-only
//!   stubs). A second ingest of identical content is a *dedup hit*: the
//!   existing blob gains a reference and no new physical bytes are written.
//! * **Near-duplicate groups.** Images join reference-counted groups built
//!   from the server's `FeatureIndex` similarity hits (the grouping query
//!   runs server-side at epoch commit; this crate only records the merges).
//! * **Cold recompression.** A virtual-clock-driven pass re-encodes
//!   full-fidelity blobs untouched for a configurable age at a lower quality
//!   tier when their group holds ≥ k redundant members — reporting bytes
//!   reclaimed and the SSIM of each re-encode against the original decode.
//!   The group's highest-fidelity *reference member* is never recompressed,
//!   so dedup never drops the best copy.
//!
//! Everything is deterministic: `BTreeMap` layout everywhere, a canonical
//! [`ContentStore::layout_digest`], and a [`StorageLedger`] whose identity
//! `stored_bytes − reclaimed_bytes == live_bytes` is cross-checked by
//! `scripts/fleet_summary.py`.

use bees_image::{codec, metrics, GrayImage, RgbImage};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Content address of a stored payload: a 64-bit FNV-1a hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlobKey(pub u64);

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte slice — the content-address hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds a `u64` word into an FNV-1a accumulator (little-endian bytes).
fn fnv1a_u64(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Streaming FNV-1a 64 hasher, for composite content fingerprints (feature
/// digests, histogram digests) built up from multiple fields.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Starts at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` word (little-endian bytes) into the hash.
    pub fn write_u64(&mut self, word: u64) {
        self.write(&word.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Fidelity tier of a stored payload, ordered worst-to-best so the group's
/// *reference member* (the copy recompression must never touch) is simply
/// the maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fidelity {
    /// Catalog entry only: the payload still lives on the capturing device.
    OnDevice = 0,
    /// Degraded thumbnail rung.
    Thumbnail = 1,
    /// Salvaged progressive prefix awaiting its tail scans.
    Partial = 2,
    /// Full-fidelity upload.
    Full = 3,
}

impl Fidelity {
    fn as_u64(self) -> u64 {
        self as u64
    }
}

/// What the server hands the store for one ingest.
#[derive(Debug, Clone)]
pub enum StorePayload {
    /// The real encoded payload (BEES uploads carry their bitstream).
    /// Content-addressed by the bytes themselves; recompressible.
    Bytes(Vec<u8>),
    /// Only the payload *size* is known (baseline schemes model their
    /// uploads without materializing them). Content-addressed by
    /// `(fingerprint, size, fidelity)`; exact-dedup only, never
    /// recompressed.
    Size {
        /// Modeled payload size in bytes.
        size: usize,
        /// Caller-supplied content fingerprint (e.g. a feature digest).
        fingerprint: u64,
    },
}

/// One physical blob: a content-addressed payload plus its bookkeeping.
#[derive(Debug, Clone)]
pub struct BlobRecord {
    /// Real payload bytes, when the ingest carried them.
    pub bytes: Option<Vec<u8>>,
    /// Current physical length in bytes (tracks recompression and partial
    /// upgrades; may exceed `bytes.len()` for upgraded partials whose tail
    /// was accounted but never materialized).
    pub len: usize,
    /// Physical length when first stored.
    pub original_len: usize,
    /// Best fidelity any referencing image reached.
    pub fidelity: Fidelity,
    /// Number of image ids referencing this blob.
    pub refs: usize,
    /// Virtual time of the last write touch (store, dedup hit, upgrade).
    pub last_touch_s: f64,
    /// Whether the cold pass already re-encoded (or inspected and skipped)
    /// this blob — recompression is idempotent.
    pub recompressed: bool,
    /// Lowest image id referencing this blob (the group lookup handle).
    first_image: u64,
}

/// Cumulative storage counters plus the per-epoch capacity trajectory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StorageLedger {
    /// Physical bytes ever written (new blobs + partial-upgrade tails).
    pub stored_bytes: usize,
    /// Bytes recompression gave back.
    pub reclaimed_bytes: usize,
    /// Ingests answered by an existing blob (no new physical bytes).
    pub dedup_hits: usize,
    /// Ledger snapshots taken at each epoch commit, in commit order.
    pub epochs: Vec<EpochStorage>,
}

/// One epoch-commit snapshot of the cumulative counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStorage {
    /// Cumulative physical bytes written at this commit.
    pub stored_bytes: usize,
    /// Cumulative bytes reclaimed at this commit.
    pub reclaimed_bytes: usize,
    /// Cumulative dedup hits at this commit.
    pub dedup_hits: usize,
}

/// Storage-tier tuning knobs, embedded in `BeesConfig::storage`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageConfig {
    /// Similarity at or above which a committed image joins its best
    /// neighbor's near-duplicate group.
    #[serde(default = "default_group_threshold")]
    pub group_threshold: f64,
    /// Minimum virtual age (seconds since last write touch) before a blob
    /// is cold enough to recompress.
    #[serde(default = "default_recompress_min_age_s")]
    pub recompress_min_age_s: f64,
    /// Minimum near-duplicate group size (k) before any member is
    /// considered redundant enough to recompress.
    #[serde(default = "default_recompress_min_group")]
    pub recompress_min_group: usize,
    /// Codec quality the cold pass re-encodes at (1..=100).
    #[serde(default = "default_recompress_quality")]
    pub recompress_quality: u8,
}

fn default_group_threshold() -> f64 {
    0.12
}

fn default_recompress_min_age_s() -> f64 {
    300.0
}

fn default_recompress_min_group() -> usize {
    2
}

fn default_recompress_quality() -> u8 {
    40
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            group_threshold: default_group_threshold(),
            recompress_min_age_s: default_recompress_min_age_s(),
            recompress_min_group: default_recompress_min_group(),
            recompress_quality: default_recompress_quality(),
        }
    }
}

impl StorageConfig {
    /// Validates the knobs, naming the offending one.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid knob.
    pub fn validate(&self) -> Result<(), String> {
        if !self.group_threshold.is_finite() || !(0.0..=1.0).contains(&self.group_threshold) {
            return Err(format!(
                "group_threshold must be in [0, 1], got {}",
                self.group_threshold
            ));
        }
        if !self.recompress_min_age_s.is_finite() || self.recompress_min_age_s < 0.0 {
            return Err(format!(
                "recompress_min_age_s must be finite and non-negative, got {}",
                self.recompress_min_age_s
            ));
        }
        if self.recompress_min_group < 2 {
            return Err(format!(
                "recompress_min_group must be at least 2 (a singleton has no \
                 redundant copy to fall back on), got {}",
                self.recompress_min_group
            ));
        }
        if self.recompress_quality == 0 || self.recompress_quality > 100 {
            return Err(format!(
                "recompress_quality must be in 1..=100, got {}",
                self.recompress_quality
            ));
        }
        Ok(())
    }
}

/// Outcome of one cold-recompression pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecompressionReport {
    /// Blobs the pass inspected.
    pub scanned: usize,
    /// Blobs that passed every gate and were re-encoded.
    pub recompressed: usize,
    /// Physical bytes the pass gave back.
    pub bytes_reclaimed: usize,
    /// Sum of re-encode SSIM scores (new decode vs old decode).
    pub ssim_sum: f64,
}

impl RecompressionReport {
    /// Mean SSIM of the recompressed blobs (1.0 when none were touched).
    pub fn mean_ssim(&self) -> f64 {
        if self.recompressed == 0 {
            1.0
        } else {
            self.ssim_sum / self.recompressed as f64
        }
    }
}

/// The content-addressed blob store.
///
/// Keys, groups, and the ledger all live in `BTreeMap`s, so iteration order
/// — and therefore [`layout_digest`](ContentStore::layout_digest) and every
/// recompression decision — is a pure function of the ingest sequence.
#[derive(Debug, Clone, Default)]
pub struct ContentStore {
    blobs: BTreeMap<BlobKey, BlobRecord>,
    /// Image id → blob holding its payload.
    by_image: BTreeMap<u64, BlobKey>,
    /// Group id (the smallest member image id) → member image ids.
    groups: BTreeMap<u64, Vec<u64>>,
    /// Image id → group id.
    image_group: BTreeMap<u64, u64>,
    ledger: StorageLedger,
}

/// What [`ContentStore::insert`] did with the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// A new blob was written; `len` physical bytes were stored.
    Stored {
        /// Physical bytes written.
        len: usize,
    },
    /// Identical content was already stored; no new physical bytes.
    DedupHit,
}

impl ContentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ContentStore::default()
    }

    /// The content key of a payload (what [`insert`](ContentStore::insert)
    /// will file it under).
    pub fn key_of(payload: &StorePayload, fidelity: Fidelity) -> BlobKey {
        match payload {
            StorePayload::Bytes(b) => BlobKey(fnv1a(b)),
            StorePayload::Size { size, fingerprint } => {
                let mut h = fnv1a_u64(FNV_OFFSET, *fingerprint);
                h = fnv1a_u64(h, *size as u64);
                h = fnv1a_u64(h, fidelity.as_u64());
                BlobKey(h)
            }
        }
    }

    /// Files `payload` under image `image_id` at virtual time `now_s`.
    ///
    /// Identical content (same [`BlobKey`]) becomes a dedup hit: the
    /// existing blob gains a reference, its touch time refreshes, and the
    /// new image joins the blob's near-duplicate group. New content starts
    /// a singleton group (epoch-commit grouping may merge it later).
    pub fn insert(
        &mut self,
        image_id: u64,
        payload: StorePayload,
        fidelity: Fidelity,
        now_s: f64,
    ) -> InsertOutcome {
        debug_assert!(
            !self.by_image.contains_key(&image_id),
            "image {image_id} ingested twice"
        );
        let key = Self::key_of(&payload, fidelity);
        if let Some(blob) = self.blobs.get_mut(&key) {
            blob.refs += 1;
            blob.last_touch_s = now_s;
            blob.fidelity = blob.fidelity.max(fidelity);
            let gid = self.image_group[&blob.first_image];
            self.by_image.insert(image_id, key);
            self.groups.get_mut(&gid).expect("group exists").push(image_id);
            self.image_group.insert(image_id, gid);
            self.ledger.dedup_hits += 1;
            return InsertOutcome::DedupHit;
        }
        let (bytes, len) = match payload {
            StorePayload::Bytes(b) => {
                let len = b.len();
                (Some(b), len)
            }
            // Catalog entries hold no server-side payload: the size is an
            // estimate of what a pull-down would deliver, so they occupy
            // zero physical bytes until fulfilled.
            StorePayload::Size { size, .. } => {
                let len = if fidelity == Fidelity::OnDevice { 0 } else { size };
                (None, len)
            }
        };
        self.blobs.insert(
            key,
            BlobRecord {
                bytes,
                len,
                original_len: len,
                fidelity,
                refs: 1,
                last_touch_s: now_s,
                recompressed: false,
                first_image: image_id,
            },
        );
        self.by_image.insert(image_id, key);
        self.groups.insert(image_id, vec![image_id]);
        self.image_group.insert(image_id, image_id);
        self.ledger.stored_bytes += len;
        InsertOutcome::Stored { len }
    }

    /// Merges image `a`'s group into image `b`'s (the epoch-commit grouping
    /// found them similar). The surviving group id is the smaller of the
    /// two, so merge order cannot change the final layout. No-op when the
    /// images already share a group or either is unknown.
    pub fn merge_groups(&mut self, a: u64, b: u64) {
        let (Some(&ga), Some(&gb)) = (self.image_group.get(&a), self.image_group.get(&b)) else {
            return;
        };
        if ga == gb {
            return;
        }
        let (keep, drop) = if ga < gb { (ga, gb) } else { (gb, ga) };
        let moved = self.groups.remove(&drop).expect("group exists");
        for &m in &moved {
            self.image_group.insert(m, keep);
        }
        let merged = self.groups.get_mut(&keep).expect("group exists");
        merged.extend(moved);
        // Keep membership ascending so the layout (and its digest) depends
        // only on the final partition, never on the merge sequence.
        merged.sort_unstable();
    }

    /// Accounts `tail` extra physical bytes against image `image_id`'s blob
    /// (a salvaged partial completed in place) and promotes it to
    /// [`Fidelity::Full`]. No-op for unknown images.
    pub fn upgrade(&mut self, image_id: u64, tail: usize, now_s: f64) {
        let Some(key) = self.by_image.get(&image_id) else {
            return;
        };
        let blob = self.blobs.get_mut(key).expect("by_image points at a blob");
        blob.len += tail;
        blob.fidelity = Fidelity::Full;
        blob.last_touch_s = now_s;
        self.ledger.stored_bytes += tail;
    }

    /// Converts image `image_id`'s on-device catalog entry into a received
    /// payload of `size` physical bytes (the pull-down delivered it).
    /// No-op for unknown images.
    pub fn fulfill(&mut self, image_id: u64, size: usize, now_s: f64) {
        let Some(key) = self.by_image.get(&image_id) else {
            return;
        };
        let blob = self.blobs.get_mut(key).expect("by_image points at a blob");
        blob.len += size;
        blob.fidelity = Fidelity::Full;
        blob.last_touch_s = now_s;
        self.ledger.stored_bytes += size;
    }

    /// Takes an epoch snapshot of the cumulative counters (the server calls
    /// this at every epoch commit, building the capacity-over-time series).
    pub fn commit_epoch(&mut self) {
        self.ledger.epochs.push(EpochStorage {
            stored_bytes: self.ledger.stored_bytes,
            reclaimed_bytes: self.ledger.reclaimed_bytes,
            dedup_hits: self.ledger.dedup_hits,
        });
    }

    /// The cumulative counters and epoch trajectory.
    pub fn ledger(&self) -> &StorageLedger {
        &self.ledger
    }

    /// Physical bytes currently occupied by live blobs. The ledger identity
    /// `stored_bytes − reclaimed_bytes == live_bytes` holds at all times
    /// (there is no deletion path).
    pub fn live_bytes(&self) -> usize {
        self.blobs.values().map(|b| b.len).sum()
    }

    /// Number of distinct blobs.
    pub fn blob_count(&self) -> usize {
        self.blobs.len()
    }

    /// Number of image references across all blobs.
    pub fn image_count(&self) -> usize {
        self.by_image.len()
    }

    /// The blob holding image `image_id`'s payload, if stored.
    pub fn blob_of(&self, image_id: u64) -> Option<&BlobRecord> {
        self.by_image.get(&image_id).map(|k| &self.blobs[k])
    }

    /// Whether the store holds a payload for image `image_id`.
    pub fn contains(&self, image_id: u64) -> bool {
        self.by_image.contains_key(&image_id)
    }

    /// Members of image `image_id`'s near-duplicate group (ascending image
    /// id), or an empty slice for unknown images.
    pub fn group_of(&self, image_id: u64) -> &[u64] {
        self.image_group
            .get(&image_id)
            .and_then(|gid| self.groups.get(gid))
            .map_or(&[], Vec::as_slice)
    }

    /// Number of near-duplicate groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The group's *reference member*: the image whose blob has the highest
    /// fidelity, ties broken toward the lowest image id. This is the copy
    /// recompression must never degrade.
    pub fn reference_member(&self, image_id: u64) -> Option<u64> {
        let members = self.group_of(image_id);
        members
            .iter()
            .filter_map(|&m| self.blob_of(m).map(|b| (b.fidelity, m)))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .map(|(_, m)| m)
    }

    /// Runs the cold-recompression pass at virtual time `now_s`.
    ///
    /// A blob is re-encoded at `config.recompress_quality` when *all* gates
    /// pass:
    ///
    /// 1. it carries real bytes whose length matches the accounted length
    ///    (size-only stubs and upgraded partials are skipped),
    /// 2. it reached [`Fidelity::Full`],
    /// 3. it has not been recompressed before (idempotence),
    /// 4. it is cold: `now_s − last_touch_s ≥ recompress_min_age_s`,
    /// 5. its near-duplicate group holds ≥ `recompress_min_group` members,
    /// 6. it does not hold the group's [reference
    ///    member](ContentStore::reference_member).
    ///
    /// The re-encode is kept only when strictly smaller; either way the
    /// blob is marked `recompressed` so a second pass is a no-op. Each kept
    /// re-encode contributes its SSIM (new decode vs old decode, luminance)
    /// to the report.
    pub fn run_recompression(&mut self, now_s: f64, config: &StorageConfig) -> RecompressionReport {
        let mut report = RecompressionReport::default();
        let keys: Vec<BlobKey> = self.blobs.keys().copied().collect();
        for key in keys {
            report.scanned += 1;
            let blob = &self.blobs[&key];
            if blob.recompressed
                || blob.fidelity != Fidelity::Full
                || blob.bytes.as_ref().map(Vec::len) != Some(blob.len)
                || now_s - blob.last_touch_s < config.recompress_min_age_s
            {
                continue;
            }
            let group = self.group_of(blob.first_image);
            if group.len() < config.recompress_min_group {
                continue;
            }
            let reference = self.reference_member(blob.first_image);
            let holds_reference = reference
                .and_then(|m| self.by_image.get(&m))
                .is_some_and(|&k| k == key);
            if holds_reference {
                continue;
            }
            let old = self.blobs[&key].bytes.as_ref().expect("gated above").clone();
            let Some((old_gray, reencoded)) = reencode(&old, config.recompress_quality) else {
                // Undecodable or foreign bitstream: mark inspected so the
                // pass never retries it.
                self.blobs.get_mut(&key).expect("key exists").recompressed = true;
                continue;
            };
            let blob = self.blobs.get_mut(&key).expect("key exists");
            blob.recompressed = true;
            if reencoded.len() >= blob.len {
                continue;
            }
            let new_gray = match codec::decode_rgb(&reencoded) {
                Ok(img) => img.to_gray(),
                Err(_) => continue,
            };
            let Ok(s) = metrics::ssim(&old_gray, &new_gray) else {
                continue;
            };
            let saved = blob.len - reencoded.len();
            blob.len = reencoded.len();
            blob.bytes = Some(reencoded);
            self.ledger.reclaimed_bytes += saved;
            report.recompressed += 1;
            report.bytes_reclaimed += saved;
            report.ssim_sum += s;
        }
        report
    }

    /// A canonical digest of the whole store layout: every blob's key,
    /// lengths, fidelity, flags and refs, every image→blob edge, and every
    /// group's membership, folded through FNV-1a in `BTreeMap` order. Two
    /// stores built from the same ingest sequence — at any thread or shard
    /// count — digest identically.
    pub fn layout_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for (key, blob) in &self.blobs {
            h = fnv1a_u64(h, key.0);
            h = fnv1a_u64(h, blob.len as u64);
            h = fnv1a_u64(h, blob.original_len as u64);
            h = fnv1a_u64(h, blob.fidelity.as_u64());
            h = fnv1a_u64(h, blob.refs as u64);
            h = fnv1a_u64(h, blob.recompressed as u64);
        }
        for (&img, key) in &self.by_image {
            h = fnv1a_u64(h, img);
            h = fnv1a_u64(h, key.0);
        }
        for (&gid, members) in &self.groups {
            h = fnv1a_u64(h, gid);
            for &m in members {
                h = fnv1a_u64(h, m);
            }
        }
        h = fnv1a_u64(h, self.ledger.stored_bytes as u64);
        h = fnv1a_u64(h, self.ledger.reclaimed_bytes as u64);
        h = fnv1a_u64(h, self.ledger.dedup_hits as u64);
        h
    }
}

/// Decodes `bytes` (plain or progressive bitstream), returning the decoded
/// luminance plane and the re-encode at `quality`. `None` when the payload
/// is not one of our bitstreams.
fn reencode(bytes: &[u8], quality: u8) -> Option<(GrayImage, Vec<u8>)> {
    let rgb: RgbImage = match codec::decode_rgb(bytes) {
        Ok(img) => img,
        Err(_) => match codec::progressive::decode_partial(bytes) {
            Ok((codec::progressive::DecodedImage::Rgb(img), progress))
                if progress.is_complete() =>
            {
                img
            }
            _ => return None,
        },
    };
    let reencoded = codec::encode_rgb(&rgb, quality).ok()?;
    Some((rgb.to_gray(), reencoded))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene(seed: u64) -> RgbImage {
        // A deterministic textured test card (no dataset dep in this crate).
        RgbImage::from_fn(96, 72, |x, y| {
            let v = (x.wrapping_mul(31) ^ y.wrapping_mul(17)) as u64 ^ seed;
            bees_image::Rgb::new(
                (v % 251) as u8,
                ((v >> 3) % 251) as u8,
                ((v >> 6) % 251) as u8,
            )
        })
    }

    fn full_bytes(seed: u64, quality: u8) -> Vec<u8> {
        codec::encode_rgb(&scene(seed), quality).unwrap()
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn identical_bytes_dedup() {
        let mut s = ContentStore::new();
        let payload = full_bytes(1, 60);
        let len = payload.len();
        assert_eq!(
            s.insert(0, StorePayload::Bytes(payload.clone()), Fidelity::Full, 0.0),
            InsertOutcome::Stored { len }
        );
        assert_eq!(
            s.insert(1, StorePayload::Bytes(payload), Fidelity::Full, 5.0),
            InsertOutcome::DedupHit
        );
        assert_eq!(s.blob_count(), 1);
        assert_eq!(s.image_count(), 2);
        assert_eq!(s.ledger().stored_bytes, len);
        assert_eq!(s.ledger().dedup_hits, 1);
        assert_eq!(s.live_bytes(), len);
        // Both images share one group through the shared blob.
        assert_eq!(s.group_of(0), &[0, 1]);
        assert_eq!(s.blob_of(1).unwrap().refs, 2);
    }

    #[test]
    fn size_only_keys_fold_fingerprint_size_and_fidelity() {
        let a = ContentStore::key_of(
            &StorePayload::Size { size: 100, fingerprint: 7 },
            Fidelity::Full,
        );
        let b = ContentStore::key_of(
            &StorePayload::Size { size: 101, fingerprint: 7 },
            Fidelity::Full,
        );
        let c = ContentStore::key_of(
            &StorePayload::Size { size: 100, fingerprint: 8 },
            Fidelity::Full,
        );
        let d = ContentStore::key_of(
            &StorePayload::Size { size: 100, fingerprint: 7 },
            Fidelity::Thumbnail,
        );
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn catalog_entries_occupy_zero_bytes_until_fulfilled() {
        let mut s = ContentStore::new();
        s.insert(
            3,
            StorePayload::Size { size: 4096, fingerprint: 9 },
            Fidelity::OnDevice,
            0.0,
        );
        assert_eq!(s.ledger().stored_bytes, 0);
        assert_eq!(s.live_bytes(), 0);
        s.fulfill(3, 4096, 10.0);
        assert_eq!(s.ledger().stored_bytes, 4096);
        assert_eq!(s.live_bytes(), 4096);
        assert_eq!(s.blob_of(3).unwrap().fidelity, Fidelity::Full);
    }

    #[test]
    fn upgrade_accounts_tail_and_promotes() {
        let mut s = ContentStore::new();
        s.insert(
            0,
            StorePayload::Size { size: 400, fingerprint: 1 },
            Fidelity::Partial,
            0.0,
        );
        assert_eq!(s.ledger().stored_bytes, 400);
        s.upgrade(0, 600, 5.0);
        assert_eq!(s.ledger().stored_bytes, 1000);
        assert_eq!(s.blob_of(0).unwrap().fidelity, Fidelity::Full);
        assert_eq!(s.live_bytes(), 1000);
        // Unknown images are a no-op.
        s.upgrade(99, 10, 5.0);
        assert_eq!(s.ledger().stored_bytes, 1000);
    }

    #[test]
    fn merge_keeps_smallest_group_id_regardless_of_order() {
        let mut a = ContentStore::new();
        let mut b = ContentStore::new();
        for s in [&mut a, &mut b] {
            for id in 0..3u64 {
                s.insert(
                    id,
                    StorePayload::Size { size: 10 + id as usize, fingerprint: id },
                    Fidelity::Full,
                    0.0,
                );
            }
        }
        a.merge_groups(2, 1);
        a.merge_groups(1, 0);
        b.merge_groups(0, 1);
        b.merge_groups(2, 0);
        assert_eq!(a.layout_digest(), b.layout_digest());
        assert_eq!(a.group_of(2), &[0, 1, 2]);
        assert_eq!(a.group_count(), 1);
    }

    #[test]
    fn recompression_reclaims_cold_redundant_members() {
        let cfg = StorageConfig {
            recompress_min_age_s: 100.0,
            recompress_quality: 30,
            ..StorageConfig::default()
        };
        let mut s = ContentStore::new();
        for id in 0..3u64 {
            s.insert(id, StorePayload::Bytes(full_bytes(id, 85)), Fidelity::Full, 0.0);
        }
        s.merge_groups(0, 1);
        s.merge_groups(1, 2);
        let before = s.live_bytes();
        let report = s.run_recompression(500.0, &cfg);
        // The reference member (all Full: lowest id, image 0) is spared.
        assert_eq!(report.recompressed, 2);
        assert!(report.bytes_reclaimed > 0);
        assert!(report.mean_ssim() > 0.5 && report.mean_ssim() <= 1.0);
        assert_eq!(s.live_bytes(), before - report.bytes_reclaimed);
        assert_eq!(
            s.ledger().stored_bytes - s.ledger().reclaimed_bytes,
            s.live_bytes()
        );
        assert!(!s.blob_of(0).unwrap().recompressed);
        assert!(s.blob_of(1).unwrap().recompressed);
        // Idempotent: a second pass finds nothing new.
        let again = s.run_recompression(1000.0, &cfg);
        assert_eq!(again.recompressed, 0);
        assert_eq!(again.bytes_reclaimed, 0);
    }

    #[test]
    fn recompression_spares_hot_singleton_and_sizeonly_blobs() {
        let cfg = StorageConfig {
            recompress_min_age_s: 100.0,
            ..StorageConfig::default()
        };
        let mut s = ContentStore::new();
        // Hot pair: touched at t=450, pass runs at t=500.
        s.insert(0, StorePayload::Bytes(full_bytes(0, 85)), Fidelity::Full, 450.0);
        s.insert(1, StorePayload::Bytes(full_bytes(1, 85)), Fidelity::Full, 450.0);
        s.merge_groups(0, 1);
        // Cold singleton.
        s.insert(2, StorePayload::Bytes(full_bytes(2, 85)), Fidelity::Full, 0.0);
        // Cold size-only pair.
        s.insert(3, StorePayload::Size { size: 900, fingerprint: 3 }, Fidelity::Full, 0.0);
        s.insert(4, StorePayload::Size { size: 901, fingerprint: 4 }, Fidelity::Full, 0.0);
        s.merge_groups(3, 4);
        let report = s.run_recompression(500.0, &cfg);
        assert_eq!(report.recompressed, 0);
        assert_eq!(s.ledger().reclaimed_bytes, 0);
    }

    #[test]
    fn reference_member_prefers_fidelity_then_lowest_id() {
        let mut s = ContentStore::new();
        s.insert(0, StorePayload::Size { size: 10, fingerprint: 0 }, Fidelity::Thumbnail, 0.0);
        s.insert(1, StorePayload::Size { size: 11, fingerprint: 1 }, Fidelity::Full, 0.0);
        s.insert(2, StorePayload::Size { size: 12, fingerprint: 2 }, Fidelity::Full, 0.0);
        s.merge_groups(0, 1);
        s.merge_groups(1, 2);
        assert_eq!(s.reference_member(0), Some(1));
    }

    #[test]
    fn epoch_snapshots_accumulate() {
        let mut s = ContentStore::new();
        s.insert(0, StorePayload::Size { size: 100, fingerprint: 0 }, Fidelity::Full, 0.0);
        s.commit_epoch();
        s.insert(1, StorePayload::Size { size: 50, fingerprint: 1 }, Fidelity::Full, 1.0);
        s.commit_epoch();
        let epochs = &s.ledger().epochs;
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0].stored_bytes, 100);
        assert_eq!(epochs[1].stored_bytes, 150);
    }

    #[test]
    fn layout_digest_tracks_every_mutation() {
        let mut s = ContentStore::new();
        let d0 = s.layout_digest();
        s.insert(0, StorePayload::Size { size: 100, fingerprint: 0 }, Fidelity::Full, 0.0);
        let d1 = s.layout_digest();
        assert_ne!(d0, d1);
        s.insert(1, StorePayload::Size { size: 100, fingerprint: 1 }, Fidelity::Full, 0.0);
        let d2 = s.layout_digest();
        assert_ne!(d1, d2);
        s.merge_groups(0, 1);
        assert_ne!(d2, s.layout_digest());
    }

    #[test]
    fn config_validation_names_the_offending_knob() {
        let ok = StorageConfig::default();
        ok.validate().expect("defaults are valid");
        let bad = StorageConfig { group_threshold: 1.5, ..ok.clone() };
        assert!(bad.validate().unwrap_err().contains("group_threshold"));
        let bad = StorageConfig { recompress_min_age_s: -1.0, ..ok.clone() };
        assert!(bad.validate().unwrap_err().contains("recompress_min_age_s"));
        let bad = StorageConfig { recompress_min_group: 1, ..ok.clone() };
        assert!(bad.validate().unwrap_err().contains("recompress_min_group"));
        let bad = StorageConfig { recompress_quality: 0, ..ok };
        assert!(bad.validate().unwrap_err().contains("recompress_quality"));
    }
}
