//! Property-based tests of the feature substrate: the Hamming distance is
//! a metric, matching is one-to-one under cross-check, and Jaccard
//! similarity behaves like a similarity.

use bees_features::descriptor::{BinaryDescriptor, VectorDescriptor};
use bees_features::matcher::{match_binary, match_vector, MatchConfig};
use bees_features::similarity::{jaccard_similarity, SimilarityConfig};
use bees_features::{Descriptors, ImageFeatures, Keypoint};
use proptest::prelude::*;

fn arb_descriptor() -> impl Strategy<Value = BinaryDescriptor> {
    any::<[u8; 32]>().prop_map(BinaryDescriptor::from_bytes)
}

fn features(descs: Vec<BinaryDescriptor>) -> ImageFeatures {
    ImageFeatures {
        keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
        descriptors: Descriptors::Binary(descs),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hamming_distance_is_a_metric(a in arb_descriptor(), b in arb_descriptor(), c in arb_descriptor()) {
        // Identity of indiscernibles.
        prop_assert_eq!(a.hamming_distance(&a), 0);
        prop_assert_eq!(a.hamming_distance(&b) == 0, a == b);
        // Symmetry.
        prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
        // Triangle inequality.
        prop_assert!(a.hamming_distance(&c) <= a.hamming_distance(&b) + b.hamming_distance(&c));
        // Bounded by the descriptor width.
        prop_assert!(a.hamming_distance(&b) <= 256);
    }

    #[test]
    fn bit_flips_move_distance_by_exactly_one(a in arb_descriptor(), bit in 0usize..256) {
        let mut bytes = *a.as_bytes();
        bytes[bit / 8] ^= 1 << (bit % 8);
        let flipped = BinaryDescriptor::from_bytes(bytes);
        prop_assert_eq!(a.hamming_distance(&flipped), 1);
    }

    #[test]
    fn matches_reference_valid_indices(
        a in proptest::collection::vec(arb_descriptor(), 0..20),
        b in proptest::collection::vec(arb_descriptor(), 0..20),
    ) {
        let cfg = MatchConfig { max_hamming: 256, ..MatchConfig::default() };
        for m in match_binary(&a, &b, &cfg) {
            prop_assert!(m.query_idx < a.len());
            prop_assert!(m.train_idx < b.len());
            prop_assert_eq!(m.distance, a[m.query_idx].hamming_distance(&b[m.train_idx]) as f32);
        }
    }

    #[test]
    fn exact_duplicates_always_match_themselves(descs in proptest::collection::vec(arb_descriptor(), 1..15)) {
        // Deduplicate first: identical descriptors are legitimately
        // ambiguous under cross-check.
        let mut unique = descs.clone();
        unique.sort_by_key(|d| *d.as_bytes());
        unique.dedup();
        let matches = match_binary(&unique, &unique, &MatchConfig::default());
        prop_assert_eq!(matches.len(), unique.len());
        for m in matches {
            prop_assert_eq!(m.query_idx, m.train_idx);
        }
    }

    #[test]
    fn jaccard_with_self_is_one_or_zero(descs in proptest::collection::vec(arb_descriptor(), 0..20)) {
        let f = features(descs);
        let s = jaccard_similarity(&f, &f, &SimilarityConfig::default());
        if f.is_empty() {
            prop_assert_eq!(s, 0.0);
        } else {
            prop_assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn jaccard_never_exceeds_size_ratio(
        a in proptest::collection::vec(arb_descriptor(), 1..20),
        b in proptest::collection::vec(arb_descriptor(), 1..20),
    ) {
        // |A ∩ B| <= min(|A|, |B|), so J <= min/max.
        let (fa, fb) = (features(a), features(b));
        let bound = fa.len().min(fb.len()) as f64 / fa.len().max(fb.len()) as f64;
        let s = jaccard_similarity(&fa, &fb, &SimilarityConfig::default());
        prop_assert!(s <= bound + 1e-12, "J {s} exceeds bound {bound}");
    }

    #[test]
    fn vector_matching_indices_are_valid(
        a in proptest::collection::vec(proptest::collection::vec(-1.0f32..1.0, 4), 0..12),
        b in proptest::collection::vec(proptest::collection::vec(-1.0f32..1.0, 4), 0..12),
    ) {
        let va: Vec<VectorDescriptor> = a.into_iter().map(VectorDescriptor::from_values).collect();
        let vb: Vec<VectorDescriptor> = b.into_iter().map(VectorDescriptor::from_values).collect();
        let cfg = MatchConfig { max_l2: 10.0, lowe_ratio: 1.0, ..MatchConfig::default() };
        for m in match_vector(&va, &vb, &cfg) {
            prop_assert!(m.query_idx < va.len());
            prop_assert!(m.train_idx < vb.len());
        }
    }

    #[test]
    fn l2_distance_is_a_metric(
        a in proptest::collection::vec(-10.0f32..10.0, 6),
        b in proptest::collection::vec(-10.0f32..10.0, 6),
        c in proptest::collection::vec(-10.0f32..10.0, 6),
    ) {
        let (da, db, dc) = (
            VectorDescriptor::from_values(a),
            VectorDescriptor::from_values(b),
            VectorDescriptor::from_values(c),
        );
        prop_assert!(da.l2(&da) < 1e-6);
        prop_assert!((da.l2(&db) - db.l2(&da)).abs() < 1e-5);
        prop_assert!(da.l2(&dc) <= da.l2(&db) + db.l2(&dc) + 1e-4);
    }
}
