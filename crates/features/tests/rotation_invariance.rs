//! End-to-end rotation invariance: ORB's steered BRIEF should keep a
//! rotated view of an image far more similar to the original than an
//! unrelated image — the property that justifies the intensity-centroid
//! orientation and pattern steering.

use bees_features::orb::Orb;
use bees_features::similarity::{jaccard_similarity, SimilarityConfig};
use bees_features::FeatureExtractor;
use bees_image::{transform, GrayImage};

fn textured(seed: u64) -> GrayImage {
    GrayImage::from_fn(160, 160, |x, y| {
        let s = seed as f32;
        let v = 128.0
            + 55.0 * ((x as f32) * (0.21 + s * 0.01)).sin()
            + 45.0 * ((y as f32) * (0.17 + s * 0.013)).cos()
            + 30.0 * (((x + y) as f32) * 0.11 + s).sin()
            + if ((x / 16) + (y / 16)) % 2 == 0 {
                25.0
            } else {
                -25.0
            };
        v.clamp(0.0, 255.0) as u8
    })
}

#[test]
fn quarter_turn_rotation_preserves_similarity() {
    let orb = Orb::default();
    let cfg = SimilarityConfig::default();
    let img = textured(1);
    let f_orig = orb.extract(&img);
    assert!(
        f_orig.len() > 30,
        "base image too feature-poor: {}",
        f_orig.len()
    );

    let stranger = orb.extract(&textured(9));
    let baseline = jaccard_similarity(&f_orig, &stranger, &cfg);

    for (name, rotated) in [
        ("90", transform::rotate90(&img)),
        ("180", transform::rotate180(&img)),
        ("270", transform::rotate270(&img)),
    ] {
        let f_rot = orb.extract(&rotated);
        let sim = jaccard_similarity(&f_orig, &f_rot, &cfg);
        assert!(
            sim > 2.0 * baseline + 0.02,
            "rotation {name}: similarity {sim} vs stranger baseline {baseline}"
        );
    }
}

#[test]
fn mirrored_images_are_not_matched() {
    // BRIEF is not mirror-invariant (a mirror flips the sampling-pair
    // geometry), so a flipped image should score like a stranger — this
    // pins down that the rotation test above is not passing vacuously.
    let orb = Orb::default();
    let cfg = SimilarityConfig::default();
    let img = textured(2);
    let f_orig = orb.extract(&img);
    let f_flip = orb.extract(&transform::flip_horizontal(&img));
    let f_rot = orb.extract(&transform::rotate180(&img));
    let sim_flip = jaccard_similarity(&f_orig, &f_flip, &cfg);
    let sim_rot = jaccard_similarity(&f_orig, &f_rot, &cfg);
    assert!(
        sim_rot > sim_flip,
        "rotation ({sim_rot}) should outscore mirroring ({sim_flip})"
    );
}
