//! Seeded parity suite: the SoA descriptor paths must be byte-identical to
//! the AoS reference.
//!
//! Property-style tests over seeded random inputs (plain `ChaCha8Rng`
//! loops, not proptest, so the offline stub harness can run them) pinning:
//!
//! * `match_binary` (SoA + pruning) == `match_binary_exhaustive` (the
//!   unpruned AoS reference) for every config shape, at thread counts
//!   1/2/8;
//! * `jaccard_similarity_blocks` == `jaccard_similarity` to the last f64
//!   bit;
//! * `DescriptorBlock` round-trips descriptors exactly.
//!
//! Thread counts are set via `bees_runtime::set_threads`. The global
//! setting races across test threads by design: every assertion here is a
//! thread-count-invariance claim, so whichever count is live, results must
//! not move.

use bees_features::matcher::{
    match_binary, match_binary_blocks, match_binary_exhaustive, MatchConfig,
};
use bees_features::similarity::{jaccard_similarity, jaccard_similarity_blocks, SimilarityConfig};
use bees_features::{BinaryDescriptor, DescriptorBlock, Descriptors, ImageFeatures, Keypoint};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_descs(rng: &mut ChaCha8Rng, n: usize) -> Vec<BinaryDescriptor> {
    (0..n)
        .map(|_| {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes);
            BinaryDescriptor::from_bytes(bytes)
        })
        .collect()
}

/// A set correlated with `base`: some exact copies, some noisy
/// re-observations, some fresh randoms — so matches actually fall inside
/// realistic `max_hamming` thresholds instead of hovering near 128.
fn correlated_descs(
    rng: &mut ChaCha8Rng,
    base: &[BinaryDescriptor],
    n: usize,
) -> Vec<BinaryDescriptor> {
    (0..n)
        .map(|i| {
            if base.is_empty() || i % 3 == 2 {
                random_descs(rng, 1).remove(0)
            } else {
                let mut bytes = *base[rng.gen_range(0..base.len())].as_bytes();
                let flips = if i % 3 == 0 { 0 } else { rng.gen_range(1..12) };
                for _ in 0..flips {
                    let bit = rng.gen_range(0..256usize);
                    bytes[bit / 8] ^= 1 << (bit % 8);
                }
                BinaryDescriptor::from_bytes(bytes)
            }
        })
        .collect()
}

fn features_from(descs: Vec<BinaryDescriptor>) -> ImageFeatures {
    ImageFeatures {
        keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
        descriptors: Descriptors::Binary(descs),
    }
}

fn configs() -> Vec<MatchConfig> {
    let base = MatchConfig::default();
    vec![
        base,
        MatchConfig {
            cross_check: false,
            ..base
        },
        MatchConfig {
            max_hamming: 0,
            ..base
        },
        MatchConfig {
            max_hamming: 30,
            ..base
        },
        MatchConfig {
            max_hamming: 256,
            ..base
        },
    ]
}

#[test]
fn matcher_soa_and_pruning_match_the_aos_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEE5_50A0);
    for case in 0..20 {
        let nq = rng.gen_range(0..40);
        let nt = rng.gen_range(0..40);
        let query = random_descs(&mut rng, nq);
        let train = correlated_descs(&mut rng, &query, nt);
        let qblock = DescriptorBlock::from_descriptors(&query);
        let tblock = DescriptorBlock::from_descriptors(&train);
        for (ci, config) in configs().iter().enumerate() {
            let reference = match_binary_exhaustive(&query, &train, config);
            for threads in [1usize, 2, 8] {
                bees_runtime::set_threads(threads);
                assert_eq!(
                    match_binary(&query, &train, config),
                    reference,
                    "case {case} config {ci} threads {threads}"
                );
                assert_eq!(
                    match_binary_blocks(&qblock, &tblock, config),
                    reference,
                    "blocks: case {case} config {ci} threads {threads}"
                );
            }
            bees_runtime::set_threads(0);
        }
    }
}

#[test]
fn jaccard_blocks_bitwise_equals_the_aos_path() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEE5_50A1);
    let cfg = SimilarityConfig::default();
    for case in 0..20 {
        let na = rng.gen_range(0..30);
        let a = random_descs(&mut rng, na);
        let nb = rng.gen_range(0..30);
        let b = correlated_descs(&mut rng, &a, nb);
        let (ab, bb) = (
            DescriptorBlock::from_descriptors(&a),
            DescriptorBlock::from_descriptors(&b),
        );
        let (af, bf) = (features_from(a), features_from(b));
        let reference = jaccard_similarity(&af, &bf, &cfg);
        let soa = jaccard_similarity_blocks(&ab, &bb, &cfg);
        assert_eq!(
            reference.to_bits(),
            soa.to_bits(),
            "case {case}: {reference} vs {soa}"
        );
    }
}

#[test]
fn empty_sets_agree_on_every_path() {
    let cfg = MatchConfig::default();
    let some = random_descs(&mut ChaCha8Rng::seed_from_u64(3), 5);
    let empty: Vec<BinaryDescriptor> = Vec::new();
    for (q, t) in [(&empty, &some), (&some, &empty), (&empty, &empty)] {
        assert_eq!(
            match_binary(q, t, &cfg),
            match_binary_exhaustive(q, t, &cfg)
        );
        assert!(match_binary(q, t, &cfg).is_empty());
    }
    let scfg = SimilarityConfig::default();
    let eb = DescriptorBlock::new();
    let sb = DescriptorBlock::from_descriptors(&some);
    assert_eq!(jaccard_similarity_blocks(&eb, &sb, &scfg), 0.0);
    assert_eq!(jaccard_similarity_blocks(&sb, &eb, &scfg), 0.0);
}

#[test]
fn blocks_round_trip_descriptors_exactly() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEE5_50A2);
    let descs = random_descs(&mut rng, 33);
    let block = DescriptorBlock::from_descriptors(&descs);
    assert_eq!(block.len(), descs.len());
    for (i, d) in descs.iter().enumerate() {
        assert_eq!(&block.descriptor(i), d, "descriptor {i}");
    }
    // The From impl and Descriptors::to_block agree with from_descriptors.
    assert_eq!(DescriptorBlock::from(descs.as_slice()), block);
    assert_eq!(
        Descriptors::Binary(descs).to_block().expect("binary set"),
        block
    );
}
