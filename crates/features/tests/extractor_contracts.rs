//! Contract tests every `FeatureExtractor` implementation must satisfy —
//! the invariants the rest of the system (indexes, schemes, energy model)
//! silently relies on.

use bees_features::orb::Orb;
use bees_features::pca::PcaSift;
use bees_features::sift::Sift;
use bees_features::{Descriptors, FeatureExtractor};
use bees_image::GrayImage;

fn extractors() -> Vec<Box<dyn FeatureExtractor>> {
    vec![
        Box::new(Orb::default()),
        Box::new(Sift::default()),
        Box::new(PcaSift::with_seeded_basis(Default::default(), 7)),
    ]
}

fn textured(w: u32, h: u32) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let v = 128.0
            + 55.0 * ((x as f32) * 0.23).sin()
            + 45.0 * ((y as f32) * 0.19).cos()
            + if ((x / 14) + (y / 14)) % 2 == 0 {
                30.0
            } else {
                -30.0
            };
        v.clamp(0.0, 255.0) as u8
    })
}

#[test]
fn extraction_is_deterministic_for_every_extractor() {
    let img = textured(128, 96);
    for e in extractors() {
        let a = e.extract(&img);
        let b = e.extract(&img);
        assert_eq!(a, b, "{:?} must be deterministic", e.kind());
    }
}

#[test]
fn keypoints_and_descriptors_stay_aligned() {
    let img = textured(128, 96);
    for e in extractors() {
        let f = e.extract(&img);
        assert_eq!(
            f.keypoints.len(),
            f.descriptors.len(),
            "{:?}: keypoint/descriptor mismatch",
            e.kind()
        );
        for kp in &f.keypoints {
            assert!(kp.x.is_finite() && kp.y.is_finite(), "{:?}", e.kind());
            assert!(
                kp.x >= 0.0 && kp.x <= img.width() as f32 + 1.0,
                "{:?}",
                e.kind()
            );
            assert!(
                kp.y >= 0.0 && kp.y <= img.height() as f32 + 1.0,
                "{:?}",
                e.kind()
            );
            assert!(kp.scale >= 1.0, "{:?}", e.kind());
            assert!(kp.angle.is_finite(), "{:?}", e.kind());
        }
    }
}

#[test]
fn stats_account_for_the_work_done() {
    let img = textured(128, 96);
    for e in extractors() {
        let (f, stats) = e.extract_with_stats(&img);
        assert!(
            stats.pixels_processed >= img.pixel_count(),
            "{:?}: processed fewer pixels than the image holds",
            e.kind()
        );
        assert_eq!(stats.keypoints_described, f.len(), "{:?}", e.kind());
        assert_eq!(
            stats.descriptor_bytes,
            f.descriptors.byte_size(),
            "{:?}",
            e.kind()
        );
    }
}

#[test]
fn descriptor_kinds_match_algorithm_family() {
    let img = textured(128, 96);
    for e in extractors() {
        let f = e.extract(&img);
        match e.kind() {
            bees_features::ExtractorKind::Orb => {
                assert!(matches!(f.descriptors, Descriptors::Binary(_)));
            }
            _ => assert!(matches!(f.descriptors, Descriptors::Vector(_))),
        }
    }
}

#[test]
fn flat_images_produce_no_features_anywhere() {
    let img = GrayImage::from_fn(96, 96, |_, _| 140);
    for e in extractors() {
        let f = e.extract(&img);
        assert!(
            f.is_empty(),
            "{:?} hallucinated {} features on a flat image",
            e.kind(),
            f.len()
        );
    }
}

#[test]
fn tiny_images_never_panic() {
    for (w, h) in [(1, 1), (8, 8), (16, 16), (33, 1)] {
        let img = GrayImage::from_fn(w, h, |x, y| ((x * 41 + y * 23) % 256) as u8);
        for e in extractors() {
            let (f, stats) = e.extract_with_stats(&img);
            // Too small for any patch: must degrade to empty, not crash.
            assert!(f.len() < 10, "{:?} on {w}x{h}", e.kind());
            assert!(stats.pixels_processed > 0);
        }
    }
}

#[test]
fn feature_budget_is_respected_under_pressure() {
    // A very busy image cannot exceed the configured budget.
    let img = GrayImage::from_fn(
        200,
        150,
        |x, y| {
            if (x / 3 + y / 3) % 2 == 0 {
                250
            } else {
                10
            }
        },
    );
    let orb = Orb::default();
    let f = orb.extract(&img);
    assert!(f.len() <= orb.config().n_features);
    let sift = Sift::default();
    let fs = sift.extract(&img);
    assert!(fs.len() <= sift.config().n_features);
}
