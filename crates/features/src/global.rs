//! Global image features: color histograms.
//!
//! The paper's §III-D dismisses global features (color histograms, texture,
//! shape) in favor of local ones because "local features have more robust
//! and higher accuracy than global features for similarity detection" —
//! and its related work describes PhotoNet eliminating redundancy with
//! exactly these histograms. Implementing them makes that design choice
//! testable: the `global_vs_local` experiment measures the precision gap.

use bees_image::RgbImage;
use serde::{Deserialize, Serialize};

/// Bins per color channel (the histogram has `BINS³` cells).
pub const BINS_PER_CHANNEL: usize = 4;
/// Total histogram cells.
pub const HISTOGRAM_CELLS: usize = BINS_PER_CHANNEL * BINS_PER_CHANNEL * BINS_PER_CHANNEL;

/// A normalized RGB color histogram (sums to 1 for non-empty images).
///
/// # Examples
///
/// ```
/// use bees_features::global::ColorHistogram;
/// use bees_image::{Rgb, RgbImage};
///
/// let red = RgbImage::from_fn(8, 8, |_, _| Rgb::new(255, 0, 0));
/// let blue = RgbImage::from_fn(8, 8, |_, _| Rgb::new(0, 0, 255));
/// let h1 = ColorHistogram::from_image(&red);
/// let h2 = ColorHistogram::from_image(&blue);
/// assert!(h1.intersection(&h1) > 0.99);
/// assert!(h1.intersection(&h2) < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColorHistogram {
    cells: Vec<f32>,
}

impl ColorHistogram {
    /// Computes the histogram of an image.
    pub fn from_image(img: &RgbImage) -> Self {
        let mut counts = vec![0u32; HISTOGRAM_CELLS];
        let shift = 8 - BINS_PER_CHANNEL.trailing_zeros() as usize; // 256 -> BINS
        for p in img.pixels() {
            let r = (p.r as usize) >> shift;
            let g = (p.g as usize) >> shift;
            let b = (p.b as usize) >> shift;
            counts[(r * BINS_PER_CHANNEL + g) * BINS_PER_CHANNEL + b] += 1;
        }
        let total = img.pixel_count().max(1) as f32;
        ColorHistogram {
            cells: counts.into_iter().map(|c| c as f32 / total).collect(),
        }
    }

    /// Histogram intersection similarity in `[0, 1]`:
    /// `Σ min(h1_i, h2_i)` — 1 for identical distributions.
    pub fn intersection(&self, other: &ColorHistogram) -> f64 {
        self.cells
            .iter()
            .zip(&other.cells)
            .map(|(a, b)| a.min(*b) as f64)
            .sum()
    }

    /// Chi-squared distance (0 for identical distributions; larger is more
    /// different). Offered for callers that prefer a distance.
    pub fn chi_squared(&self, other: &ColorHistogram) -> f64 {
        self.cells
            .iter()
            .zip(&other.cells)
            .map(|(&a, &b)| {
                let s = a + b;
                if s > 0.0 {
                    ((a - b) * (a - b) / s) as f64
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Wire size in bytes (PhotoNet uploads these instead of images).
    pub const WIRE_SIZE: usize = HISTOGRAM_CELLS * 4;

    /// Borrow the normalized cells.
    pub fn cells(&self) -> &[f32] {
        &self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bees_image::Rgb;

    fn gradient() -> RgbImage {
        RgbImage::from_fn(32, 32, |x, y| Rgb::new((x * 8) as u8, (y * 8) as u8, 128))
    }

    #[test]
    fn histogram_is_normalized() {
        let h = ColorHistogram::from_image(&gradient());
        let sum: f32 = h.cells().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert_eq!(h.cells().len(), 64);
    }

    #[test]
    fn intersection_is_reflexive_and_symmetric() {
        let a = ColorHistogram::from_image(&gradient());
        let b = ColorHistogram::from_image(&RgbImage::from_fn(32, 32, |x, _| {
            Rgb::new(255 - (x * 8) as u8, 0, 0)
        }));
        assert!((a.intersection(&a) - 1.0).abs() < 1e-5);
        assert!((a.intersection(&b) - b.intersection(&a)).abs() < 1e-9);
        assert!(a.intersection(&b) < a.intersection(&a));
    }

    #[test]
    fn chi_squared_zero_iff_identical() {
        let a = ColorHistogram::from_image(&gradient());
        assert!(a.chi_squared(&a) < 1e-9);
        let shifted = RgbImage::from_fn(32, 32, |x, y| Rgb::new((y * 8) as u8, (x * 8) as u8, 10));
        assert!(a.chi_squared(&ColorHistogram::from_image(&shifted)) > 0.01);
    }

    #[test]
    fn brightness_shift_confuses_global_features() {
        // The weakness the paper exploits: a global histogram is fragile to
        // photometric changes that local descriptors shrug off.
        let img = gradient();
        let brighter = RgbImage::from_fn(32, 32, |x, y| {
            let p = img.get(x, y);
            Rgb::new(
                p.r.saturating_add(70),
                p.g.saturating_add(70),
                p.b.saturating_add(70),
            )
        });
        let h1 = ColorHistogram::from_image(&img);
        let h2 = ColorHistogram::from_image(&brighter);
        assert!(
            h1.intersection(&h2) < 0.8,
            "histograms should drift badly under brightness shifts: {}",
            h1.intersection(&h2)
        );
    }
}
