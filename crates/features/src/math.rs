//! Small dense linear algebra: just enough for PCA.
//!
//! PCA-SIFT needs an eigendecomposition of a gradient-patch covariance
//! matrix. This module provides a row-major [`Matrix`] and the cyclic
//! Jacobi eigenvalue algorithm for symmetric matrices — simple, robust, and
//! dependency-free.

/// A row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self.get(r, c) - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Result of a symmetric eigendecomposition: eigenvalues in descending
/// order with matching eigenvectors (rows of `vectors`).
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, largest first.
    pub values: Vec<f64>,
    /// `vectors.row(i)` is the unit eigenvector for `values[i]`.
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi method.
///
/// # Panics
///
/// Panics if the matrix is not square/symmetric (tolerance `1e-8`).
pub fn jacobi_eigen(a: &Matrix) -> EigenDecomposition {
    assert!(
        a.is_symmetric(1e-8),
        "jacobi_eigen requires a symmetric matrix"
    );
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for _sweep in 0..100 {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for r in 0..n {
            for c in (r + 1)..n {
                off += m.get(r, c) * m.get(r, c);
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, theta) on both sides.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // Collect (eigenvalue, eigenvector-column) pairs and sort descending.
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|i| (m.get(i, i), (0..n).map(|k| v.get(k, i)).collect()))
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("eigenvalues are finite"));

    let mut vectors = Matrix::zeros(n, n);
    let mut values = Vec::with_capacity(n);
    for (i, (val, vec)) in pairs.into_iter().enumerate() {
        values.push(val);
        for (k, x) in vec.into_iter().enumerate() {
            vectors.set(i, k, x);
        }
    }
    EigenDecomposition { values, vectors }
}

/// Computes the covariance matrix of a set of row vectors (rows of `data`),
/// after centering on the column means. Returns `(covariance, means)`.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn covariance(data: &[Vec<f64>]) -> (Matrix, Vec<f64>) {
    assert!(!data.is_empty(), "covariance of an empty sample set");
    let dim = data[0].len();
    let n = data.len() as f64;
    let mut means = vec![0.0; dim];
    for row in data {
        assert_eq!(row.len(), dim, "all sample vectors must share a dimension");
        for (m, &x) in means.iter_mut().zip(row) {
            *m += x;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut cov = Matrix::zeros(dim, dim);
    for row in data {
        for i in 0..dim {
            let di = row[i] - means[i];
            for j in i..dim {
                let dj = row[j] - means[j];
                let v = cov.get(i, j) + di * dj / n;
                cov.set(i, j, v);
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..dim {
        for j in (i + 1)..dim {
            let v = cov.get(i, j);
            cov.set(j, i, v);
        }
    }
    (cov, means)
}

/// Computes the top-`k` eigenpairs of a symmetric positive-semidefinite
/// matrix by power iteration with deflation.
///
/// Much cheaper than a full Jacobi decomposition when only a few leading
/// components are needed (PCA-SIFT keeps 36 of 162). Deterministic: the
/// starting vectors are fixed.
///
/// # Panics
///
/// Panics if the matrix is not square/symmetric or `k > n`.
pub fn power_iteration_topk(a: &Matrix, k: usize, iterations: usize) -> EigenDecomposition {
    assert!(
        a.is_symmetric(1e-8),
        "power iteration requires a symmetric matrix"
    );
    let n = a.rows();
    assert!(k <= n, "cannot extract more eigenpairs than the dimension");
    let mut deflated = a.clone();
    let mut values = Vec::with_capacity(k);
    let mut vectors = Matrix::zeros(k.max(1), n);
    for comp in 0..k {
        // Deterministic pseudo-random start vector.
        let mut v: Vec<f64> = (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407 + comp as u64);
                ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            })
            .collect();
        normalize(&mut v);
        let mut lambda = 0.0;
        for _ in 0..iterations {
            let mut w = deflated.mul_vec(&v);
            let norm = normalize(&mut w);
            if norm < 1e-15 {
                // Remaining spectrum is (numerically) zero.
                w = v.clone();
            }
            lambda = dot(&deflated.mul_vec(&w), &w);
            v = w;
        }
        values.push(lambda);
        for (j, &x) in v.iter().enumerate() {
            vectors.set(comp, j, x);
        }
        // Deflate: A <- A - lambda * v v^T.
        for r in 0..n {
            for c in 0..n {
                let updated = deflated.get(r, c) - lambda * v[r] * v[c];
                deflated.set(r, c, updated);
            }
        }
    }
    EigenDecomposition { values, vectors }
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_eigen() {
        let eig = jacobi_eigen(&Matrix::identity(4));
        for v in &eig.values {
            assert!((v - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 2.0);
        let eig = jacobi_eigen(&m);
        assert!((eig.values[0] - 3.0).abs() < 1e-9);
        assert!((eig.values[1] - 1.0).abs() < 1e-9);
        // Eigenvector for 3 is (1, 1)/sqrt(2) up to sign.
        let v = eig.vectors.row(0);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert!((v[0] - v[1]).abs() < 1e-6);
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        // Random-ish symmetric 5x5.
        let n = 5;
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = ((i * 7 + j * 13) % 11) as f64 - 5.0;
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        let eig = jacobi_eigen(&m);
        for (idx, &lambda) in eig.values.iter().enumerate() {
            let v: Vec<f64> = eig.vectors.row(idx).to_vec();
            let mv = m.mul_vec(&v);
            for k in 0..n {
                assert!(
                    (mv[k] - lambda * v[k]).abs() < 1e-7,
                    "eigenpair {idx} component {k}"
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let mut m = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in i..3 {
                let v = (i + j) as f64;
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        let eig = jacobi_eigen(&m);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = eig
                    .vectors
                    .row(i)
                    .iter()
                    .zip(eig.vectors.row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-8, "({i}, {j}) dot {dot}");
            }
        }
    }

    #[test]
    fn covariance_of_correlated_data() {
        // y = 2x exactly: covariance matrix is [[var, 2var], [2var, 4var]].
        let data: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let (cov, means) = covariance(&data);
        assert!((means[0] - 49.5).abs() < 1e-9);
        assert!((cov.get(0, 1) - 2.0 * cov.get(0, 0)).abs() < 1e-6);
        assert!((cov.get(1, 1) - 4.0 * cov.get(0, 0)).abs() < 1e-6);
        assert!(cov.is_symmetric(1e-12));
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along (1, 1) with small noise in (1, -1).
        let data: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let t = i as f64 / 10.0;
                let noise = ((i * 37) % 7) as f64 / 70.0 - 0.05;
                vec![t + noise, t - noise]
            })
            .collect();
        let (cov, _) = covariance(&data);
        let eig = jacobi_eigen(&cov);
        let v = eig.vectors.row(0);
        // Dominant eigenvector is parallel to (1, 1).
        assert!((v[0].abs() - v[1].abs()).abs() < 0.05);
        assert!(eig.values[0] > 100.0 * eig.values[1]);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_panics() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 1.0);
        let _ = jacobi_eigen(&m);
    }

    #[test]
    fn power_iteration_matches_jacobi_on_leading_pairs() {
        let n = 8;
        let mut m = Matrix::zeros(n, n);
        // Positive semi-definite: A = B^T B for a deterministic B.
        for i in 0..n {
            for j in i..n {
                let mut v = 0.0;
                for k in 0..n {
                    let bi = (((k * 11 + i * 5) % 13) as f64) - 6.0;
                    let bj = (((k * 11 + j * 5) % 13) as f64) - 6.0;
                    v += bi * bj;
                }
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        let full = jacobi_eigen(&m);
        let top = power_iteration_topk(&m, 3, 300);
        for i in 0..3 {
            assert!(
                (full.values[i] - top.values[i]).abs() < 1e-5 * full.values[0].max(1.0),
                "eigenvalue {i}: {} vs {}",
                full.values[i],
                top.values[i]
            );
        }
    }

    #[test]
    fn power_iteration_vectors_are_orthonormal() {
        let mut m = Matrix::zeros(4, 4);
        for i in 0..4 {
            m.set(i, i, (i + 1) as f64);
        }
        m.set(0, 1, 0.5);
        m.set(1, 0, 0.5);
        let top = power_iteration_topk(&m, 2, 500);
        let r0: Vec<f64> = top.vectors.row(0).to_vec();
        let r1: Vec<f64> = top.vectors.row(1).to_vec();
        let dot01: f64 = r0.iter().zip(&r1).map(|(a, b)| a * b).sum();
        assert!(dot01.abs() < 1e-4, "dot {dot01}");
    }

    #[test]
    fn mul_vec_matches_manual() {
        let mut m = Matrix::zeros(2, 3);
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            m.set(i / 3, i % 3, *v);
        }
        assert_eq!(m.mul_vec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }
}
