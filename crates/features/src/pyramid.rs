//! Scale pyramids for multi-scale detection.
//!
//! ORB detects FAST corners on a geometric scale pyramid (factor ≈ 1.2, 8
//! levels in the reference implementation) so that features match across
//! moderate scale changes — which is exactly what Approximate Feature
//! Extraction stresses when it shrinks bitmaps before extraction.

use bees_image::{resize, GrayImage};

/// A geometric image pyramid. Level 0 is the original image; level `i` is
/// scaled down by `scale_factor^i`.
#[derive(Debug, Clone)]
pub struct Pyramid {
    levels: Vec<GrayImage>,
    scale_factor: f32,
}

impl Pyramid {
    /// Builds a pyramid with the given per-level scale factor (> 1) and
    /// maximum level count. Levels stop early when either side would fall
    /// below `min_side` pixels.
    ///
    /// # Panics
    ///
    /// Panics if `scale_factor <= 1.0` or `n_levels == 0`.
    pub fn build(img: &GrayImage, scale_factor: f32, n_levels: u8, min_side: u32) -> Self {
        assert!(scale_factor > 1.0, "scale factor must exceed 1");
        assert!(n_levels > 0, "pyramid needs at least one level");
        let mut levels = vec![img.clone()];
        for i in 1..n_levels {
            let s = scale_factor.powi(i as i32);
            let w = (img.width() as f32 / s).round() as u32;
            let h = (img.height() as f32 / s).round() as u32;
            if w < min_side || h < min_side {
                break;
            }
            let level =
                resize::resize_bilinear(img, w, h).expect("pyramid level dimensions are non-zero");
            levels.push(level);
        }
        Pyramid {
            levels,
            scale_factor,
        }
    }

    /// Number of levels actually built.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the pyramid is empty (never true: level 0 always exists).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Image at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= len()`.
    pub fn level(&self, level: usize) -> &GrayImage {
        &self.levels[level]
    }

    /// Scale of `level` relative to the original image (>= 1).
    pub fn scale_of(&self, level: usize) -> f32 {
        self.scale_factor.powi(level as i32)
    }

    /// Iterates over `(level_index, image, scale)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &GrayImage, f32)> {
        self.levels
            .iter()
            .enumerate()
            .map(move |(i, img)| (i, img, self.scale_of(i)))
    }

    /// Total number of pixels across all levels — the work-size input to the
    /// energy model for pyramid construction and detection.
    pub fn total_pixels(&self) -> usize {
        self.levels.iter().map(|l| l.pixel_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img() -> GrayImage {
        GrayImage::from_fn(120, 90, |x, y| ((x + y) % 256) as u8)
    }

    #[test]
    fn level_zero_is_original() {
        let p = Pyramid::build(&img(), 1.2, 8, 16);
        assert_eq!(p.level(0), &img());
    }

    #[test]
    fn levels_shrink_geometrically() {
        let p = Pyramid::build(&img(), 1.2, 8, 8);
        for i in 1..p.len() {
            assert!(p.level(i).width() < p.level(i - 1).width());
            let expected = (120.0 / 1.2f32.powi(i as i32)).round() as u32;
            assert_eq!(p.level(i).width(), expected);
        }
    }

    #[test]
    fn min_side_truncates_pyramid() {
        let p = Pyramid::build(&img(), 2.0, 8, 30);
        // 90 -> 45 -> 22 (too small): only 2 levels survive with min_side 30.
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn total_pixels_sums_levels() {
        let p = Pyramid::build(&img(), 2.0, 2, 8);
        assert_eq!(p.total_pixels(), 120 * 90 + 60 * 45);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn bad_scale_factor_panics() {
        let _ = Pyramid::build(&img(), 1.0, 4, 8);
    }

    #[test]
    fn iter_reports_scales() {
        let p = Pyramid::build(&img(), 1.5, 3, 8);
        let scales: Vec<f32> = p.iter().map(|(_, _, s)| s).collect();
        assert_eq!(scales.len(), p.len());
        assert!((scales[0] - 1.0).abs() < 1e-6);
        if scales.len() > 1 {
            assert!((scales[1] - 1.5).abs() < 1e-6);
        }
    }
}
