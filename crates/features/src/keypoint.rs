//! Keypoints: locations of interest detected in an image.

use serde::{Deserialize, Serialize};

/// A detected interest point, expressed in the coordinates of the *original*
/// image (pyramid detections are mapped back by their level scale).
///
/// # Examples
///
/// ```
/// use bees_features::Keypoint;
///
/// let kp = Keypoint::new(10.0, 20.0);
/// assert_eq!(kp.x, 10.0);
/// assert_eq!(kp.octave, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Keypoint {
    /// Column in the original image.
    pub x: f32,
    /// Row in the original image.
    pub y: f32,
    /// Detector response (Harris score for ORB, DoG contrast for SIFT);
    /// larger is stronger.
    pub response: f32,
    /// Patch orientation in radians, in `(-PI, PI]`.
    pub angle: f32,
    /// Pyramid level (ORB) or octave (SIFT) the point was detected at.
    pub octave: u8,
    /// Scale factor of that level relative to the original image (>= 1).
    pub scale: f32,
}

impl Keypoint {
    /// Creates a keypoint at `(x, y)` on the base level with zero response
    /// and orientation.
    pub fn new(x: f32, y: f32) -> Self {
        Keypoint {
            x,
            y,
            response: 0.0,
            angle: 0.0,
            octave: 0,
            scale: 1.0,
        }
    }

    /// Euclidean distance to another keypoint in original-image pixels.
    pub fn distance_to(&self, other: &Keypoint) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Serialized size in bytes when uploading keypoint geometry alongside
    /// descriptors (x, y as f32 plus angle as a quantized byte and the
    /// octave byte).
    pub const WIRE_SIZE: usize = 4 + 4 + 1 + 1;
}

impl Default for Keypoint {
    fn default() -> Self {
        Keypoint::new(0.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Keypoint::new(0.0, 0.0);
        let b = Keypoint::new(3.0, 4.0);
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-6);
        assert!((b.distance_to(&a) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn default_matches_new_origin() {
        assert_eq!(Keypoint::default(), Keypoint::new(0.0, 0.0));
    }
}
