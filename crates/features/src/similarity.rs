//! Image similarity: the paper's Eq. 2.
//!
//! "An image `I_i` can be represented as a set of ORB features `S_i`. The
//! similarity of two images `I_1` and `I_2` can be computed as the Jaccard
//! similarity of sets `S_1` and `S_2`":
//!
//! ```text
//! sim(I1, I2) = |S1 ∩ S2| / |S1 ∪ S2|
//! ```
//!
//! where the intersection is the number of matched descriptor pairs and the
//! union is `|S1| + |S2| − |S1 ∩ S2|`.

use crate::block::DescriptorBlock;
use crate::descriptor::ImageFeatures;
use crate::matcher::{match_binary_blocks, match_descriptors, MatchConfig};
use serde::{Deserialize, Serialize};

/// A similarity score in `[0, 1]` between two images' feature sets.
pub type Similarity = f64;

/// Configuration for similarity scoring (delegates to matching thresholds).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Matching thresholds used to compute `|S1 ∩ S2|`.
    pub matching: MatchConfig,
}

/// Computes the Jaccard similarity (Eq. 2) of two feature sets.
///
/// Two empty sets are defined to have similarity 0 (an image with no
/// features carries no evidence of redundancy, so it is never deduplicated).
///
/// # Examples
///
/// ```
/// use bees_features::similarity::{jaccard_similarity, SimilarityConfig};
/// use bees_features::ImageFeatures;
///
/// let empty = ImageFeatures::empty_binary();
/// assert_eq!(jaccard_similarity(&empty, &empty, &SimilarityConfig::default()), 0.0);
/// ```
pub fn jaccard_similarity(
    a: &ImageFeatures,
    b: &ImageFeatures,
    config: &SimilarityConfig,
) -> Similarity {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let matches = match_descriptors(&a.descriptors, &b.descriptors, &config.matching);
    let intersection = matches.len();
    let union = a.len() + b.len() - intersection;
    if union == 0 {
        return 0.0;
    }
    intersection as f64 / union as f64
}

/// [`jaccard_similarity`] over pre-built SoA blocks (binary descriptors).
///
/// Callers that score one feature set against many — the SSMM pairwise
/// graph, MIH candidate rescoring — convert each set to a
/// [`DescriptorBlock`] once and reuse it across every pairing, so the
/// `O(n·m)` Hamming panel runs over contiguous words without re-packing.
/// Produces bit-identical scores to [`jaccard_similarity`] on the same
/// binary sets: both routes bottom out in the same pruned block matcher.
pub fn jaccard_similarity_blocks(
    a: &DescriptorBlock,
    b: &DescriptorBlock,
    config: &SimilarityConfig,
) -> Similarity {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let intersection = match_binary_blocks(a, b, &config.matching).len();
    let union = a.len() + b.len() - intersection;
    if union == 0 {
        return 0.0;
    }
    intersection as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{BinaryDescriptor, Descriptors};
    use crate::keypoint::Keypoint;

    fn features_from(descs: Vec<BinaryDescriptor>) -> ImageFeatures {
        ImageFeatures {
            keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
            descriptors: Descriptors::Binary(descs),
        }
    }

    fn desc(bits: &[usize]) -> BinaryDescriptor {
        let mut d = BinaryDescriptor::zero();
        for &b in bits {
            d.set_bit(b);
        }
        d
    }

    #[test]
    fn identical_sets_have_similarity_one() {
        let f = features_from((0..10).map(|i| desc(&[i * 20, i * 20 + 5])).collect());
        let s = jaccard_similarity(&f, &f, &SimilarityConfig::default());
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_sets_have_similarity_zero() {
        let a = features_from(vec![desc(&(0..120).collect::<Vec<_>>())]);
        let b = features_from(vec![desc(&(130..250).collect::<Vec<_>>())]);
        assert_eq!(
            jaccard_similarity(&a, &b, &SimilarityConfig::default()),
            0.0
        );
    }

    #[test]
    fn partial_overlap_gives_expected_jaccard() {
        // 4 descriptors in each set; 2 identical pairs -> J = 2 / (4+4-2).
        let shared: Vec<BinaryDescriptor> = (0..2)
            .map(|i| desc(&[i * 17, i * 17 + 3, 200 + i]))
            .collect();
        let mut a_desc = shared.clone();
        a_desc.push(desc(&(0..90).collect::<Vec<_>>()));
        a_desc.push(desc(&(90..180).collect::<Vec<_>>()));
        let mut b_desc = shared;
        b_desc.push(desc(&(10..100).step_by(2).collect::<Vec<_>>()));
        b_desc.push(desc(&(101..240).step_by(3).collect::<Vec<_>>()));
        let a = features_from(a_desc);
        let b = features_from(b_desc);
        let s = jaccard_similarity(&a, &b, &SimilarityConfig::default());
        assert!((s - 2.0 / 6.0).abs() < 0.2, "got {s}");
    }

    #[test]
    fn empty_set_similarity_is_zero() {
        let a = ImageFeatures::empty_binary();
        let b = features_from(vec![desc(&[1, 2, 3])]);
        assert_eq!(
            jaccard_similarity(&a, &b, &SimilarityConfig::default()),
            0.0
        );
        assert_eq!(
            jaccard_similarity(&b, &a, &SimilarityConfig::default()),
            0.0
        );
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = features_from((0..6).map(|i| desc(&[i * 40, i * 40 + 2])).collect());
        let b = features_from(
            (3..9)
                .map(|i| desc(&[(i * 40) % 256, (i * 40 + 2) % 256]))
                .collect(),
        );
        let cfg = SimilarityConfig::default();
        let s1 = jaccard_similarity(&a, &b, &cfg);
        let s2 = jaccard_similarity(&b, &a, &cfg);
        assert!((s1 - s2).abs() < 1e-9);
    }
}
