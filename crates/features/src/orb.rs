//! ORB: Oriented FAST and Rotated BRIEF (Rublee et al., ICCV 2011).
//!
//! The extractor BEES runs on the smartphone. Pipeline per pyramid level:
//!
//! 1. FAST-9 corners ([`fast`](crate::fast)),
//! 2. Harris re-ranking, keeping the strongest corners overall
//!    ([`harris`](crate::harris)),
//! 3. intensity-centroid orientation ([`orientation`](crate::orientation)),
//! 4. steered BRIEF over a Gaussian-smoothed level ([`brief`](crate::brief)).
//!
//! Keypoint budget is distributed across levels proportionally to level
//! area, as in the reference implementation.

use crate::brief::{BriefPattern, DEFAULT_PATTERN_SEED, PATCH_RADIUS};
use crate::descriptor::{Descriptors, ImageFeatures};
use crate::extractor::{ExtractionStats, ExtractorKind, FeatureExtractor};
use crate::fast;
use crate::harris::harris_response;
use crate::keypoint::Keypoint;
use crate::orientation::intensity_centroid_angle;
use crate::pyramid::Pyramid;
use bees_image::{blur, GrayImage};
use bees_runtime::Runtime;
use serde::{Deserialize, Serialize};

/// Configuration for the [`Orb`] extractor.
///
/// The defaults mirror OpenCV's shape (scale factor 1.2, 8 levels, FAST
/// threshold 20) with a 150-feature budget — OpenCV's 500 is sized for
/// multi-megapixel photos; 150 keeps the feature payload proportionate to
/// this reproduction's image sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrbConfig {
    /// Maximum number of features to keep per image.
    pub n_features: usize,
    /// Pyramid scale factor (> 1).
    pub scale_factor: f32,
    /// Maximum pyramid levels.
    pub n_levels: u8,
    /// FAST segment-test brightness threshold.
    pub fast_threshold: u8,
    /// Gaussian sigma applied to each level before BRIEF sampling.
    pub brief_blur_sigma: f64,
    /// Seed of the BRIEF sampling pattern (must agree between any two
    /// parties whose descriptors are compared).
    pub pattern_seed: u64,
}

impl Default for OrbConfig {
    fn default() -> Self {
        OrbConfig {
            n_features: 150,
            scale_factor: 1.2,
            n_levels: 8,
            fast_threshold: 20,
            brief_blur_sigma: 2.0,
            pattern_seed: DEFAULT_PATTERN_SEED,
        }
    }
}

/// The ORB feature extractor.
///
/// # Examples
///
/// ```
/// use bees_features::orb::{Orb, OrbConfig};
/// use bees_features::FeatureExtractor;
/// use bees_image::GrayImage;
///
/// let img = GrayImage::from_fn(96, 96, |x, y| {
///     if (x / 12 + y / 12) % 2 == 0 { 210 } else { 40 }
/// });
/// let orb = Orb::new(OrbConfig { n_features: 100, ..OrbConfig::default() });
/// let (features, stats) = orb.extract_with_stats(&img);
/// assert!(features.len() <= 100);
/// assert!(stats.pixels_processed >= 96 * 96);
/// ```
#[derive(Debug, Clone)]
pub struct Orb {
    config: OrbConfig,
    pattern: BriefPattern,
}

impl Orb {
    /// Creates an extractor with the given configuration.
    pub fn new(config: OrbConfig) -> Self {
        Orb {
            pattern: BriefPattern::new(config.pattern_seed),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OrbConfig {
        &self.config
    }

    /// Minimum image side for which extraction can produce features.
    pub const MIN_SIDE: u32 = 2 * PATCH_RADIUS as u32 + 3;
}

impl Default for Orb {
    fn default() -> Self {
        Orb::new(OrbConfig::default())
    }
}

/// A corner candidate awaiting descriptor computation.
struct Candidate {
    level: usize,
    // Position in level coordinates.
    lx: u32,
    ly: u32,
    harris: f32,
}

impl FeatureExtractor for Orb {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::Orb
    }

    fn extract_with_stats(&self, img: &GrayImage) -> (ImageFeatures, ExtractionStats) {
        let mut stats = ExtractionStats::default();
        if img.width() < Self::MIN_SIDE || img.height() < Self::MIN_SIDE {
            stats.pixels_processed = img.pixel_count();
            return (ImageFeatures::empty_binary(), stats);
        }
        let pyramid = Pyramid::build(
            img,
            self.config.scale_factor,
            self.config.n_levels,
            Self::MIN_SIDE,
        );
        stats.pixels_processed = pyramid.total_pixels();

        // Distribute the feature budget across levels proportionally to
        // level area. Levels are detected in parallel and flattened back in
        // level order, matching the sequential loop exactly.
        let rt = Runtime::current();
        let total_pixels = pyramid.total_pixels() as f64;
        let per_level: Vec<Vec<Candidate>> = rt.par_map_range(pyramid.len(), |level| {
            let level_img = pyramid.level(level);
            let share = level_img.pixel_count() as f64 / total_pixels;
            let budget = ((self.config.n_features as f64 * share).ceil() as usize).max(8);
            let corners = fast::detect(level_img, self.config.fast_threshold);
            let mut ranked: Vec<Candidate> = corners
                .into_iter()
                .filter_map(|c| {
                    // Skip corners whose BRIEF patch would hang far outside.
                    let margin = 4u32;
                    if c.x < margin
                        || c.y < margin
                        || c.x + margin >= level_img.width()
                        || c.y + margin >= level_img.height()
                    {
                        return None;
                    }
                    let harris = harris_response(level_img, c.x, c.y, 3)?;
                    // Negative/zero Harris marks edge or flat responses;
                    // their BRIEF descriptors are generic enough to match
                    // unrelated images, so they are dropped outright.
                    if harris <= 0.0 {
                        return None;
                    }
                    Some(Candidate {
                        level,
                        lx: c.x,
                        ly: c.y,
                        harris,
                    })
                })
                .collect();
            ranked.sort_by(|a, b| b.harris.partial_cmp(&a.harris).expect("finite scores"));
            ranked.truncate(budget);
            ranked
        });
        let mut candidates: Vec<Candidate> = per_level.into_iter().flatten().collect();

        // Global re-rank by Harris response and cut to the overall budget.
        candidates.sort_by(|a, b| b.harris.partial_cmp(&a.harris).expect("finite scores"));
        candidates.truncate(self.config.n_features);

        // Blur each level once for BRIEF sampling (only levels that have
        // surviving candidates). Distinct levels are blurred concurrently.
        let mut needed: Vec<usize> = candidates.iter().map(|c| c.level).collect();
        needed.sort_unstable();
        needed.dedup();
        let mut blurred: Vec<Option<GrayImage>> = vec![None; pyramid.len()];
        for (level, img) in needed.iter().zip(rt.par_map(&needed, |&level| {
            blur::gaussian_blur(pyramid.level(level), self.config.brief_blur_sigma)
                .expect("blur sigma is positive")
        })) {
            blurred[*level] = Some(img);
        }

        let described: Vec<(Keypoint, _)> = rt.par_map(&candidates, |c| {
            let level_img = pyramid.level(c.level);
            let angle = intensity_centroid_angle(level_img, c.lx, c.ly, PATCH_RADIUS as u32);
            let smooth = blurred[c.level].as_ref().expect("level was blurred above");
            let desc = self
                .pattern
                .describe(smooth, c.lx as f32, c.ly as f32, angle);
            let scale = pyramid.scale_of(c.level);
            let kp = Keypoint {
                x: c.lx as f32 * scale,
                y: c.ly as f32 * scale,
                response: c.harris,
                angle,
                octave: c.level as u8,
                scale,
            };
            (kp, desc)
        });
        let mut keypoints = Vec::with_capacity(candidates.len());
        let mut descriptors = Vec::with_capacity(candidates.len());
        for (kp, desc) in described {
            keypoints.push(kp);
            descriptors.push(desc);
        }
        stats.keypoints_described = keypoints.len();
        let features = ImageFeatures {
            keypoints,
            descriptors: Descriptors::Binary(descriptors),
        };
        stats.descriptor_bytes = features.descriptors.byte_size();
        (features, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Descriptors;

    fn scene() -> GrayImage {
        GrayImage::from_fn(160, 120, |x, y| {
            let checker = if (x / 13 + y / 11) % 2 == 0 {
                60i32
            } else {
                -60
            };
            let wave = (40.0 * ((x as f32) * 0.21).sin() + 30.0 * ((y as f32) * 0.17).cos()) as i32;
            (128 + checker + wave).clamp(0, 255) as u8
        })
    }

    #[test]
    fn extracts_features_from_textured_scene() {
        let orb = Orb::default();
        let f = orb.extract(&scene());
        assert!(f.len() > 50, "got {}", f.len());
        assert!(matches!(f.descriptors, Descriptors::Binary(_)));
        assert_eq!(f.keypoints.len(), f.descriptors.len());
    }

    #[test]
    fn respects_feature_budget() {
        let orb = Orb::new(OrbConfig {
            n_features: 30,
            ..OrbConfig::default()
        });
        let f = orb.extract(&scene());
        assert!(f.len() <= 30);
    }

    #[test]
    fn flat_image_yields_no_features() {
        let img = GrayImage::from_fn(100, 100, |_, _| 127);
        let f = Orb::default().extract(&img);
        assert!(f.is_empty());
    }

    #[test]
    fn tiny_image_yields_no_features_but_counts_pixels() {
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * y) % 256) as u8);
        let (f, stats) = Orb::default().extract_with_stats(&img);
        assert!(f.is_empty());
        assert_eq!(stats.pixels_processed, 256);
    }

    #[test]
    fn keypoints_lie_within_original_image() {
        let img = scene();
        let f = Orb::default().extract(&img);
        for kp in &f.keypoints {
            assert!(kp.x >= 0.0 && kp.x < img.width() as f32 + 1.0);
            assert!(kp.y >= 0.0 && kp.y < img.height() as f32 + 1.0);
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let img = scene();
        let orb = Orb::default();
        let f1 = orb.extract(&img);
        let f2 = orb.extract(&img);
        assert_eq!(f1, f2);
    }

    #[test]
    fn same_image_features_are_self_similar() {
        // Matching an image against itself should produce near-zero Hamming
        // distances; spot-check the first descriptors.
        let f = Orb::default().extract(&scene());
        if let Descriptors::Binary(d) = &f.descriptors {
            assert!(d.len() > 2);
            assert_eq!(d[0].hamming_distance(&d[0]), 0);
        } else {
            panic!("ORB must produce binary descriptors");
        }
    }

    #[test]
    fn multi_scale_detection_uses_higher_levels() {
        let f = Orb::default().extract(&scene());
        let has_upper_level = f.keypoints.iter().any(|k| k.octave > 0);
        assert!(has_upper_level, "expected detections above level 0");
    }
}
