//! FAST-9 corner detection (Rosten & Drummond) with non-maximum suppression.
//!
//! ORB's detector is "oFAST": FAST-9 corners ranked by a Harris response and
//! given an intensity-centroid orientation. This module implements the
//! segment-test detector itself; ranking and orientation live in
//! [`harris`](crate::harris) and [`orientation`](crate::orientation).

use bees_image::GrayImage;

/// Offsets of the 16-pixel Bresenham circle of radius 3 used by FAST,
/// starting at 12 o'clock and proceeding clockwise.
pub const CIRCLE: [(i32, i32); 16] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// Minimum contiguous arc length for the FAST-9 segment test.
pub const ARC_LENGTH: usize = 9;

/// A raw FAST corner: integer position plus segment-test score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastCorner {
    /// Column of the corner.
    pub x: u32,
    /// Row of the corner.
    pub y: u32,
    /// Segment-test score (sum of absolute differences over the arc beyond
    /// the threshold); larger is stronger.
    pub score: f32,
}

/// Runs the FAST-9 segment test at a single pixel, returning the corner
/// score, or `None` if the pixel is not a corner.
///
/// The pixel must be at least 3 pixels from every border.
fn segment_test(img: &GrayImage, x: u32, y: u32, threshold: u8) -> Option<f32> {
    let p = img.get(x, y) as i32;
    let t = threshold as i32;
    let mut values = [0i32; 16];
    for (i, &(dx, dy)) in CIRCLE.iter().enumerate() {
        values[i] = img.get((x as i32 + dx) as u32, (y as i32 + dy) as u32) as i32;
    }
    // Quick rejection: for an arc of 9 to exist, at least one of each
    // opposite pair among pixels {0, 4, 8, 12} must be on the same side.
    let quick = [values[0], values[4], values[8], values[12]];
    let brighter_quick = quick.iter().filter(|&&v| v >= p + t).count();
    let darker_quick = quick.iter().filter(|&&v| v <= p - t).count();
    if brighter_quick < 2 && darker_quick < 2 {
        return None;
    }

    // Full test: longest contiguous run (with wraparound) of pixels all
    // brighter than p + t, or all darker than p - t.
    let mut best_score = None::<f32>;
    for (class_sign, pass) in [(1i32, brighter_quick >= 2), (-1i32, darker_quick >= 2)] {
        if !pass {
            continue;
        }
        let is_member = |v: i32| -> bool {
            if class_sign > 0 {
                v >= p + t
            } else {
                v <= p - t
            }
        };
        let mut run = 0usize;
        let mut max_run = 0usize;
        let mut run_excess = 0i32;
        let mut best_excess = 0i32;
        // Walk the circle twice to handle wraparound runs.
        for i in 0..32 {
            let v = values[i % 16];
            if is_member(v) {
                run += 1;
                run_excess += (v - p).abs() - t;
                if run > max_run || (run == max_run && run_excess > best_excess) {
                    max_run = run.min(16);
                    best_excess = run_excess;
                }
            } else {
                run = 0;
                run_excess = 0;
            }
            if max_run >= 16 {
                break;
            }
        }
        if max_run >= ARC_LENGTH {
            let score = best_excess as f32;
            if best_score.is_none_or(|s| score > s) {
                best_score = Some(score);
            }
        }
    }
    best_score
}

/// Detects FAST-9 corners with the given brightness threshold, applying 3×3
/// non-maximum suppression on the score map.
///
/// Returns corners sorted by descending score.
///
/// # Examples
///
/// ```
/// use bees_features::fast::detect;
/// use bees_image::GrayImage;
///
/// // A bright square on dark background has corners at its 4 vertices.
/// let img = GrayImage::from_fn(32, 32, |x, y| {
///     if (8..24).contains(&x) && (8..24).contains(&y) { 220 } else { 20 }
/// });
/// let corners = detect(&img, 40);
/// assert!(corners.len() >= 4);
/// ```
pub fn detect(img: &GrayImage, threshold: u8) -> Vec<FastCorner> {
    let (w, h) = img.dimensions();
    if w < 7 || h < 7 {
        return Vec::new();
    }
    let mut scores = vec![0f32; (w * h) as usize];
    let mut candidates = Vec::new();
    for y in 3..h - 3 {
        for x in 3..w - 3 {
            if let Some(score) = segment_test(img, x, y, threshold) {
                scores[(y * w + x) as usize] = score;
                candidates.push((x, y, score));
            }
        }
    }
    // 3x3 non-maximum suppression.
    let mut corners = Vec::new();
    'cand: for (x, y, score) in candidates {
        for dy in -1i32..=1 {
            for dx in -1i32..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = (x as i32 + dx) as u32;
                let ny = (y as i32 + dy) as u32;
                let neighbor = scores[(ny * w + nx) as usize];
                // Strict inequality on one side breaks ties deterministically
                // toward the top-left pixel.
                if neighbor > score || (neighbor == score && (dy < 0 || (dy == 0 && dx < 0))) {
                    continue 'cand;
                }
            }
        }
        corners.push(FastCorner { x, y, score });
    }
    corners.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
    corners
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_image() -> GrayImage {
        GrayImage::from_fn(40, 40, |x, y| {
            if (12..28).contains(&x) && (12..28).contains(&y) {
                230
            } else {
                25
            }
        })
    }

    #[test]
    fn flat_image_has_no_corners() {
        let img = GrayImage::from_fn(32, 32, |_, _| 128);
        assert!(detect(&img, 20).is_empty());
    }

    #[test]
    fn tiny_image_is_handled() {
        let img = GrayImage::from_fn(5, 5, |x, y| ((x * y) % 256) as u8);
        assert!(detect(&img, 20).is_empty());
    }

    #[test]
    fn square_corners_are_found_near_vertices() {
        let corners = detect(&square_image(), 40);
        assert!(!corners.is_empty());
        let vertices = [(12.0, 12.0), (27.0, 12.0), (12.0, 27.0), (27.0, 27.0)];
        for (vx, vy) in vertices {
            let close = corners
                .iter()
                .any(|c| ((c.x as f32 - vx).powi(2) + (c.y as f32 - vy).powi(2)).sqrt() < 3.0);
            assert!(close, "no corner near ({vx}, {vy}): {corners:?}");
        }
    }

    #[test]
    fn straight_edges_are_not_corners() {
        let corners = detect(&square_image(), 40);
        // Midpoint of the top edge must not be detected.
        assert!(!corners.iter().any(|c| c.x == 20 && c.y == 12));
    }

    #[test]
    fn higher_threshold_finds_fewer_corners() {
        let img = GrayImage::from_fn(64, 64, |x, y| (((x / 7) * 37 + (y / 7) * 61) % 200) as u8);
        let low = detect(&img, 10).len();
        let high = detect(&img, 60).len();
        assert!(high <= low, "high {high} vs low {low}");
    }

    #[test]
    fn corners_sorted_by_score() {
        let corners = detect(&square_image(), 30);
        for pair in corners.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn dark_corners_detected_too() {
        // Dark square on bright background.
        let img = GrayImage::from_fn(40, 40, |x, y| {
            if (12..28).contains(&x) && (12..28).contains(&y) {
                20
            } else {
                230
            }
        });
        assert!(!detect(&img, 40).is_empty());
    }
}
