//! Feature descriptors and per-image feature sets.

use crate::keypoint::Keypoint;
use serde::{Deserialize, Serialize};

/// A 256-bit binary descriptor (ORB / rBRIEF).
///
/// Each ORB feature is "described by 256 binary digits" (paper §III-D);
/// distances are Hamming distances computed with hardware popcount.
///
/// # Examples
///
/// ```
/// use bees_features::BinaryDescriptor;
///
/// let a = BinaryDescriptor::from_bytes([0u8; 32]);
/// let mut bytes = [0u8; 32];
/// bytes[0] = 0b1010_1010;
/// let b = BinaryDescriptor::from_bytes(bytes);
/// assert_eq!(a.hamming_distance(&b), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BinaryDescriptor {
    bits: [u8; 32],
}

impl BinaryDescriptor {
    /// Number of bits in the descriptor.
    pub const BITS: usize = 256;
    /// Number of bytes in the descriptor.
    pub const BYTES: usize = 32;

    /// Wraps raw descriptor bytes.
    pub fn from_bytes(bits: [u8; 32]) -> Self {
        BinaryDescriptor { bits }
    }

    /// Creates the all-zero descriptor (used as a builder starting point).
    pub fn zero() -> Self {
        BinaryDescriptor { bits: [0; 32] }
    }

    /// Sets bit `i` (0-based, `i < 256`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    #[inline]
    pub fn set_bit(&mut self, i: usize) {
        assert!(i < Self::BITS, "bit index {i} out of range");
        self.bits[i / 8] |= 1 << (i % 8);
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < Self::BITS, "bit index {i} out of range");
        self.bits[i / 8] & (1 << (i % 8)) != 0
    }

    /// Raw bytes of the descriptor.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bits
    }

    /// Hamming distance (number of differing bits) to another descriptor.
    #[inline]
    pub fn hamming_distance(&self, other: &BinaryDescriptor) -> u32 {
        let mut dist = 0u32;
        for i in 0..4 {
            let a = u64::from_le_bytes(self.bits[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            let b = u64::from_le_bytes(other.bits[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            dist += (a ^ b).count_ones();
        }
        dist
    }

    /// Extracts the `chunk`-th 64-bit word (0..4), used by the multi-index
    /// hashing accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `chunk >= 4`.
    #[inline]
    pub fn word(&self, chunk: usize) -> u64 {
        assert!(chunk < 4, "chunk index {chunk} out of range");
        u64::from_le_bytes(
            self.bits[chunk * 8..(chunk + 1) * 8]
                .try_into()
                .expect("8 bytes"),
        )
    }
}

/// A real-valued descriptor (SIFT: 128-d, PCA-SIFT: 36-d).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorDescriptor {
    values: Vec<f32>,
}

impl VectorDescriptor {
    /// Wraps a descriptor vector.
    pub fn from_values(values: Vec<f32>) -> Self {
        VectorDescriptor { values }
    }

    /// Dimensionality of the descriptor.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the descriptor is empty (zero-dimensional).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the raw values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Squared Euclidean distance to another descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn l2_squared(&self, other: &VectorDescriptor) -> f32 {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "descriptor dimensions differ"
        );
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Euclidean distance to another descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn l2(&self, other: &VectorDescriptor) -> f32 {
        self.l2_squared(other).sqrt()
    }

    /// Normalizes the vector to unit length (no-op for the zero vector).
    pub fn normalize(&mut self) {
        let norm: f32 = self.values.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for v in &mut self.values {
                *v /= norm;
            }
        }
    }
}

/// The descriptors of one image: either binary (ORB) or real-valued
/// (SIFT / PCA-SIFT). A single image never mixes the two.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Descriptors {
    /// 256-bit binary descriptors.
    Binary(Vec<BinaryDescriptor>),
    /// Real-valued descriptors of a fixed dimensionality.
    Vector(Vec<VectorDescriptor>),
}

impl Descriptors {
    /// Number of descriptors.
    pub fn len(&self) -> usize {
        match self {
            Descriptors::Binary(v) => v.len(),
            Descriptors::Vector(v) => v.len(),
        }
    }

    /// Whether there are no descriptors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialized payload size in bytes (what feature upload costs): 32
    /// bytes per binary descriptor, 4 bytes per vector component.
    pub fn byte_size(&self) -> usize {
        match self {
            Descriptors::Binary(v) => v.len() * BinaryDescriptor::BYTES,
            Descriptors::Vector(v) => v.iter().map(|d| d.len() * 4).sum(),
        }
    }
}

/// The complete feature set of one image: keypoints plus descriptors,
/// aligned index-by-index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageFeatures {
    /// Keypoints in original-image coordinates.
    pub keypoints: Vec<Keypoint>,
    /// One descriptor per keypoint.
    pub descriptors: Descriptors,
}

impl ImageFeatures {
    /// Creates an empty binary feature set.
    pub fn empty_binary() -> Self {
        ImageFeatures {
            keypoints: Vec::new(),
            descriptors: Descriptors::Binary(Vec::new()),
        }
    }

    /// Creates an empty vector feature set.
    pub fn empty_vector() -> Self {
        ImageFeatures {
            keypoints: Vec::new(),
            descriptors: Descriptors::Vector(Vec::new()),
        }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.keypoints.len()
    }

    /// Whether the set has no features.
    pub fn is_empty(&self) -> bool {
        self.keypoints.is_empty()
    }

    /// Total wire size in bytes when uploading this feature set for
    /// redundancy detection (descriptors plus keypoint geometry).
    pub fn wire_size(&self) -> usize {
        self.descriptors.byte_size() + self.keypoints.len() * Keypoint::WIRE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_distance_of_self_is_zero() {
        let mut d = BinaryDescriptor::zero();
        d.set_bit(0);
        d.set_bit(100);
        d.set_bit(255);
        assert_eq!(d.hamming_distance(&d), 0);
    }

    #[test]
    fn hamming_counts_set_bits() {
        let mut a = BinaryDescriptor::zero();
        let b = BinaryDescriptor::zero();
        for i in [0usize, 7, 63, 64, 128, 200, 255] {
            a.set_bit(i);
        }
        assert_eq!(a.hamming_distance(&b), 7);
        assert_eq!(b.hamming_distance(&a), 7);
    }

    #[test]
    fn bit_set_and_get_agree() {
        let mut d = BinaryDescriptor::zero();
        d.set_bit(130);
        assert!(d.bit(130));
        assert!(!d.bit(131));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let d = BinaryDescriptor::zero();
        let _ = d.bit(256);
    }

    #[test]
    fn words_cover_all_bytes() {
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        let d = BinaryDescriptor::from_bytes(bytes);
        assert_eq!(
            d.word(0),
            u64::from_le_bytes(bytes[0..8].try_into().unwrap())
        );
        assert_eq!(
            d.word(3),
            u64::from_le_bytes(bytes[24..32].try_into().unwrap())
        );
    }

    #[test]
    fn l2_distance_basics() {
        let a = VectorDescriptor::from_values(vec![0.0, 3.0]);
        let b = VectorDescriptor::from_values(vec![4.0, 0.0]);
        assert!((a.l2(&b) - 5.0).abs() < 1e-6);
        assert_eq!(a.l2_squared(&a), 0.0);
    }

    #[test]
    fn normalize_produces_unit_vector() {
        let mut v = VectorDescriptor::from_values(vec![3.0, 4.0]);
        v.normalize();
        let norm: f32 = v.values().iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
        // Zero vector stays zero.
        let mut z = VectorDescriptor::from_values(vec![0.0, 0.0]);
        z.normalize();
        assert_eq!(z.values(), &[0.0, 0.0]);
    }

    #[test]
    fn byte_sizes() {
        let bin = Descriptors::Binary(vec![BinaryDescriptor::zero(); 10]);
        assert_eq!(bin.byte_size(), 320);
        let vec128 = Descriptors::Vector(vec![VectorDescriptor::from_values(vec![0.0; 128]); 2]);
        assert_eq!(vec128.byte_size(), 1024);
    }

    #[test]
    fn wire_size_includes_keypoints() {
        let mut f = ImageFeatures::empty_binary();
        assert_eq!(f.wire_size(), 0);
        f.keypoints.push(Keypoint::new(1.0, 2.0));
        if let Descriptors::Binary(v) = &mut f.descriptors {
            v.push(BinaryDescriptor::zero());
        }
        assert_eq!(f.wire_size(), 32 + Keypoint::WIRE_SIZE);
    }
}
