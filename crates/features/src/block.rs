//! Flat structure-of-arrays storage for 256-bit binary descriptors.
//!
//! The per-descriptor [`BinaryDescriptor`] objects are convenient at the
//! API boundary, but every hot loop in the system — brute-force matching,
//! MIH candidate rescoring, the SSMM pairwise similarity graph — reduces to
//! "XOR + popcount this query against *many* stored descriptors". Scanning
//! a `Vec<BinaryDescriptor>` walks 32-byte objects and re-derives the four
//! 64-bit words on every visit; a [`DescriptorBlock`] instead stores the
//! words of a whole descriptor set in one flat contiguous `u64` array so a
//! batch scan is a single linear sweep the compiler can keep in registers
//! (and, where the CPU provides it, lower to the hardware `popcnt`
//! instruction — see the dispatch notes below).
//!
//! # Kernel dispatch
//!
//! `rustc` targets baseline `x86-64` by default, which predates the
//! `POPCNT` instruction, so `u64::count_ones()` compiles to a ~15-op
//! bit-twiddling sequence per word. The batch kernels here come in three
//! tiers selected once at runtime via `is_x86_feature_detected!`: a
//! portable fallback, a `#[target_feature(enable = "popcnt")]` scalar
//! variant with explicit `_popcnt64` intrinsics, and — where the CPU has
//! AVX-512VPOPCNTDQ — a `VPOPCNTQ` variant that counts eight words (two
//! whole descriptors) per instruction. Every tier computes exactly the
//! same integers, so results are byte-identical regardless of which one
//! runs — the dispatch moves throughput, never answers. The measured gaps
//! are recorded in `BENCH_baseline.json` by the `descriptor_hotloop`
//! bench.
//!
//! # Pruned scans
//!
//! The scalar [`DescriptorBlock::nearest_within`] kernels additionally
//! early-exit the word loop of each candidate once the partial distance
//! over the first two words already exceeds the running bound
//! (partial-distance pruning); the AVX-512 kernel scans fully instead —
//! at eight words per instruction the straight-line sweep outruns the
//! branchy pruned loop. All kernels return the same first-argmin answer,
//! and the parity tests in `tests/soa_parity.rs` pin the full match lists
//! against the unpruned AoS reference.

use crate::descriptor::{BinaryDescriptor, Descriptors};

/// 64-bit words per 256-bit descriptor.
pub const WORDS_PER_DESCRIPTOR: usize = 4;

/// A descriptor set stored as one flat, contiguous `u64`-word array.
///
/// Word layout is descriptor-major: descriptor `i` occupies
/// `words[4*i .. 4*i + 4]` in little-endian word order, matching
/// [`BinaryDescriptor::word`]. Batch scans therefore stream the array
/// front to back with unit stride.
///
/// # Examples
///
/// ```
/// use bees_features::{BinaryDescriptor, DescriptorBlock};
///
/// let descs = vec![BinaryDescriptor::zero(); 3];
/// let block = DescriptorBlock::from_descriptors(&descs);
/// assert_eq!(block.len(), 3);
/// let mut row = Vec::new();
/// block.distances_into([0, 0, 0, 0], &mut row);
/// assert_eq!(row, vec![0, 0, 0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DescriptorBlock {
    words: Vec<u64>,
}

impl DescriptorBlock {
    /// Creates an empty block.
    pub fn new() -> Self {
        DescriptorBlock::default()
    }

    /// Builds a block from per-descriptor objects (the AoS → SoA
    /// conversion; `O(n)`, done once per stored set).
    pub fn from_descriptors(descs: &[BinaryDescriptor]) -> Self {
        let mut words = Vec::with_capacity(descs.len() * WORDS_PER_DESCRIPTOR);
        for d in descs {
            for chunk in 0..WORDS_PER_DESCRIPTOR {
                words.push(d.word(chunk));
            }
        }
        DescriptorBlock { words }
    }

    /// Number of descriptors in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len() / WORDS_PER_DESCRIPTOR
    }

    /// Whether the block holds no descriptors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Appends one descriptor.
    pub fn push(&mut self, d: &BinaryDescriptor) {
        for chunk in 0..WORDS_PER_DESCRIPTOR {
            self.words.push(d.word(chunk));
        }
    }

    /// The flat word array (4 words per descriptor, descriptor-major).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The four words of descriptor `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn descriptor_words(&self, i: usize) -> [u64; 4] {
        let w = &self.words[i * WORDS_PER_DESCRIPTOR..(i + 1) * WORDS_PER_DESCRIPTOR];
        [w[0], w[1], w[2], w[3]]
    }

    /// Reconstructs descriptor `i` (round-trip used by tests and the
    /// parity harness).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn descriptor(&self, i: usize) -> BinaryDescriptor {
        let w = self.descriptor_words(i);
        let mut bytes = [0u8; 32];
        for (chunk, word) in w.iter().enumerate() {
            bytes[chunk * 8..(chunk + 1) * 8].copy_from_slice(&word.to_le_bytes());
        }
        BinaryDescriptor::from_bytes(bytes)
    }

    /// Computes the Hamming distance of `query` to every descriptor in the
    /// block, writing one `u32` per descriptor into `out` (cleared first;
    /// capacity is reused across calls, so a warmed buffer never
    /// reallocates).
    pub fn distances_into(&self, query: [u64; 4], out: &mut Vec<u32>) {
        #[cfg(target_arch = "x86_64")]
        if vpopcnt_available() {
            out.clear();
            out.resize(self.len(), 0);
            // SAFETY: `vpopcnt_available` verified AVX-512F and
            // AVX-512VPOPCNTDQ support at runtime.
            unsafe { distances_avx512(&self.words, query, out) };
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if popcnt_available() {
            // SAFETY: `popcnt_available` verified the CPU supports the
            // POPCNT instruction this function is compiled to use.
            unsafe { distances_popcnt(&self.words, query, out) };
            return;
        }
        distances_generic(&self.words, query, out);
    }

    /// Finds the nearest descriptor to `query` among those within Hamming
    /// distance `cap`, returning `(index, distance)`; ties break toward
    /// the lower index. Returns `None` when no descriptor is within `cap`.
    ///
    /// The scalar kernels prune each candidate's word loop once the
    /// partial distance over the first two words exceeds the running bound
    /// `min(best_so_far, cap)` — exact for the returned result because a
    /// candidate can only be pruned when its full distance is provably
    /// above the bound. The AVX-512 kernel scans fully with a vectorized
    /// running minimum instead; every kernel returns the identical
    /// first-argmin answer.
    pub fn nearest_within(&self, query: [u64; 4], cap: u32) -> Option<(usize, u32)> {
        let best = {
            #[cfg(target_arch = "x86_64")]
            {
                if vpopcnt_available() {
                    // SAFETY: AVX-512F + AVX-512VPOPCNTDQ verified at
                    // runtime.
                    unsafe { nearest_avx512(&self.words, query, cap) }
                } else if popcnt_available() {
                    // SAFETY: POPCNT support was verified at runtime.
                    unsafe { nearest_popcnt(&self.words, query, cap) }
                } else {
                    nearest_generic(&self.words, query, cap)
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                nearest_generic(&self.words, query, cap)
            }
        };
        (best.0 != usize::MAX).then_some(best)
    }
}

impl From<&[BinaryDescriptor]> for DescriptorBlock {
    fn from(descs: &[BinaryDescriptor]) -> Self {
        DescriptorBlock::from_descriptors(descs)
    }
}

impl Descriptors {
    /// Converts binary descriptor sets into flat SoA storage; `None` for
    /// vector (SIFT / PCA-SIFT) sets, which have no 64-bit word structure.
    pub fn to_block(&self) -> Option<DescriptorBlock> {
        match self {
            Descriptors::Binary(v) => Some(DescriptorBlock::from_descriptors(v)),
            Descriptors::Vector(_) => None,
        }
    }
}

/// Whether the CPU supports the `POPCNT` instruction (cached by the
/// `is_x86_feature_detected!` machinery).
#[cfg(target_arch = "x86_64")]
#[inline]
fn popcnt_available() -> bool {
    std::arch::is_x86_feature_detected!("popcnt")
}

/// Whether the CPU supports AVX-512 vector popcount
/// (`VPOPCNTQ` on 512-bit registers).
#[cfg(target_arch = "x86_64")]
#[inline]
fn vpopcnt_available() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
}

/// Portable batch-distance kernel: one linear sweep over the flat word
/// array; the `chunks_exact(4)` shape keeps the XOR + popcount reduction
/// free of bounds checks so the compiler can unroll or vectorize it.
fn distances_generic(words: &[u64], q: [u64; 4], out: &mut Vec<u32>) {
    out.clear();
    out.extend(words.chunks_exact(WORDS_PER_DESCRIPTOR).map(|w| {
        (q[0] ^ w[0]).count_ones()
            + (q[1] ^ w[1]).count_ones()
            + (q[2] ^ w[2]).count_ones()
            + (q[3] ^ w[3]).count_ones()
    }));
}

/// Hardware-popcount batch-distance kernel. Identical arithmetic to
/// [`distances_generic`]; the explicit `_popcnt64` intrinsics stop LLVM
/// from re-vectorizing the loop with the slow baseline `ctpop` lowering.
///
/// # Safety
///
/// The CPU must support the `POPCNT` instruction.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn distances_popcnt(words: &[u64], q: [u64; 4], out: &mut Vec<u32>) {
    use std::arch::x86_64::_popcnt64;
    out.clear();
    out.extend(words.chunks_exact(WORDS_PER_DESCRIPTOR).map(|w| {
        (_popcnt64((q[0] ^ w[0]) as i64)
            + _popcnt64((q[1] ^ w[1]) as i64)
            + _popcnt64((q[2] ^ w[2]) as i64)
            + _popcnt64((q[3] ^ w[3]) as i64)) as u32
    }));
}

/// AVX-512 vector-popcount batch-distance kernel: `VPOPCNTQ` counts eight
/// `u64` words (two whole descriptors) per instruction. Each 512-bit lane
/// group is XORed against the query broadcast twice, popcounted, and
/// horizontally folded with two rotate-and-add steps so lanes 0 and 4 hold
/// the two descriptors' distances; four such vectors are then merged into
/// one row of eight `u32` distances per store. Identical integers to
/// [`distances_generic`] — popcounts are exact, so dispatch moves
/// throughput, never answers. `out.len()` must equal the descriptor count;
/// the sub-8 tail falls back to scalar `POPCNT` (implied by AVX-512F).
///
/// # Safety
///
/// The CPU must support AVX-512F and AVX-512VPOPCNTDQ.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq,popcnt")]
unsafe fn distances_avx512(words: &[u64], q: [u64; 4], out: &mut [u32]) {
    use std::arch::x86_64::*;
    let n = out.len();
    debug_assert_eq!(words.len(), n * WORDS_PER_DESCRIPTOR);
    let qv = _mm512_broadcast_i64x4(_mm256_loadu_si256(q.as_ptr() as *const __m256i));
    // Lane selectors: `merge_lo` picks lanes {0,4} of two folded vectors
    // (four distances), `merge_all` concatenates two such quads.
    let merge_lo = _mm512_setr_epi64(0, 4, 8, 12, 0, 0, 0, 0);
    let merge_all = _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11);
    let mut i = 0usize;
    while i + 8 <= n {
        let p = words.as_ptr().add(WORDS_PER_DESCRIPTOR * i);
        let mut folded = [_mm512_setzero_si512(); 4];
        for (k, slot) in folded.iter_mut().enumerate() {
            let v = _mm512_loadu_si512(p.add(8 * k) as *const _);
            let x = _mm512_popcnt_epi64(_mm512_xor_si512(v, qv));
            // Rotate-and-add twice: lane 0 <- x0+x1+x2+x3, lane 4 <- x4..x7.
            let t = _mm512_add_epi64(x, _mm512_alignr_epi64(x, x, 1));
            *slot = _mm512_add_epi64(t, _mm512_alignr_epi64(t, t, 2));
        }
        let r01 = _mm512_permutex2var_epi64(folded[0], merge_lo, folded[1]);
        let r23 = _mm512_permutex2var_epi64(folded[2], merge_lo, folded[3]);
        let r = _mm512_permutex2var_epi64(r01, merge_all, r23);
        _mm256_storeu_si256(
            out.as_mut_ptr().add(i) as *mut __m256i,
            _mm512_cvtepi64_epi32(r),
        );
        i += 8;
    }
    for (j, slot) in out.iter_mut().enumerate().skip(i) {
        let w = &words[WORDS_PER_DESCRIPTOR * j..WORDS_PER_DESCRIPTOR * (j + 1)];
        *slot = (_popcnt64((q[0] ^ w[0]) as i64)
            + _popcnt64((q[1] ^ w[1]) as i64)
            + _popcnt64((q[2] ^ w[2]) as i64)
            + _popcnt64((q[3] ^ w[3]) as i64)) as u32;
    }
}

/// Portable pruned nearest-neighbor kernel; returns
/// `(usize::MAX, u32::MAX)` when nothing lies within `cap`.
fn nearest_generic(words: &[u64], q: [u64; 4], cap: u32) -> (usize, u32) {
    let mut best = (usize::MAX, u32::MAX);
    let mut bound = cap;
    for (i, w) in words.chunks_exact(WORDS_PER_DESCRIPTOR).enumerate() {
        let d01 = (q[0] ^ w[0]).count_ones() + (q[1] ^ w[1]).count_ones();
        if d01 > bound {
            continue;
        }
        let d = d01 + (q[2] ^ w[2]).count_ones() + (q[3] ^ w[3]).count_ones();
        // `d <= bound` keeps the result inside `cap`; `d < best.1` keeps
        // ties broken toward the lower index.
        if d <= bound && d < best.1 {
            best = (i, d);
            bound = d;
        }
    }
    best
}

/// Hardware-popcount pruned nearest-neighbor kernel (same algorithm as
/// [`nearest_generic`]).
///
/// # Safety
///
/// The CPU must support the `POPCNT` instruction.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn nearest_popcnt(words: &[u64], q: [u64; 4], cap: u32) -> (usize, u32) {
    use std::arch::x86_64::_popcnt64;
    let mut best = (usize::MAX, u32::MAX);
    let mut bound = cap;
    for (i, w) in words.chunks_exact(WORDS_PER_DESCRIPTOR).enumerate() {
        let d01 = (_popcnt64((q[0] ^ w[0]) as i64) + _popcnt64((q[1] ^ w[1]) as i64)) as u32;
        if d01 > bound {
            continue;
        }
        let d = d01 + (_popcnt64((q[2] ^ w[2]) as i64) + _popcnt64((q[3] ^ w[3]) as i64)) as u32;
        // `d <= bound` keeps the result inside `cap`; `d < best.1` keeps
        // ties broken toward the lower index.
        if d <= bound && d < best.1 {
            best = (i, d);
            bound = d;
        }
    }
    best
}

/// AVX-512 vector-popcount nearest-neighbor kernel: full scan (no
/// pruning — at eight words per `VPOPCNTQ` the scan outruns the branchy
/// pruned loop) tracking a per-lane running minimum and its index with a
/// strict `>` compare, so each lane keeps its *earliest* minimum. The
/// cross-lane reduction then breaks ties toward the lower index, and the
/// sub-8 tail (whose indices all exceed the vector ones) uses a strict
/// compare — together reproducing the scalar kernels' first-argmin answer
/// exactly. Anything beyond `cap` returns the sentinel, like the scalar
/// kernels.
///
/// # Safety
///
/// The CPU must support AVX-512F and AVX-512VPOPCNTDQ.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq,avx2,popcnt")]
unsafe fn nearest_avx512(words: &[u64], q: [u64; 4], cap: u32) -> (usize, u32) {
    use std::arch::x86_64::*;
    let n = words.len() / WORDS_PER_DESCRIPTOR;
    let qv = _mm512_broadcast_i64x4(_mm256_loadu_si256(q.as_ptr() as *const __m256i));
    let merge_lo = _mm512_setr_epi64(0, 4, 8, 12, 0, 0, 0, 0);
    let merge_all = _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11);
    // Untouched lanes keep i32::MAX, which loses to any real distance in
    // the reduction below (and to the tail loop's strict compare).
    let mut lane_best = _mm256_set1_epi32(i32::MAX);
    let mut lane_idx = _mm256_setzero_si256();
    let mut idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    let eight = _mm256_set1_epi32(8);
    let mut i = 0usize;
    while i + 8 <= n {
        let p = words.as_ptr().add(WORDS_PER_DESCRIPTOR * i);
        let mut folded = [_mm512_setzero_si512(); 4];
        for (k, slot) in folded.iter_mut().enumerate() {
            let v = _mm512_loadu_si512(p.add(8 * k) as *const _);
            let x = _mm512_popcnt_epi64(_mm512_xor_si512(v, qv));
            let t = _mm512_add_epi64(x, _mm512_alignr_epi64(x, x, 1));
            *slot = _mm512_add_epi64(t, _mm512_alignr_epi64(t, t, 2));
        }
        let r01 = _mm512_permutex2var_epi64(folded[0], merge_lo, folded[1]);
        let r23 = _mm512_permutex2var_epi64(folded[2], merge_lo, folded[3]);
        let d32 = _mm512_cvtepi64_epi32(_mm512_permutex2var_epi64(r01, merge_all, r23));
        let better = _mm256_cmpgt_epi32(lane_best, d32);
        lane_best = _mm256_blendv_epi8(lane_best, d32, better);
        lane_idx = _mm256_blendv_epi8(lane_idx, idx, better);
        idx = _mm256_add_epi32(idx, eight);
        i += 8;
    }
    let mut dists = [0i32; 8];
    let mut idxs = [0i32; 8];
    _mm256_storeu_si256(dists.as_mut_ptr() as *mut __m256i, lane_best);
    _mm256_storeu_si256(idxs.as_mut_ptr() as *mut __m256i, lane_idx);
    let mut best = (usize::MAX, u32::MAX);
    for k in 0..8 {
        let (d, ix) = (dists[k] as u32, idxs[k] as usize);
        if d < best.1 || (d == best.1 && ix < best.0) {
            best = (ix, d);
        }
    }
    for j in i..n {
        let w = &words[WORDS_PER_DESCRIPTOR * j..WORDS_PER_DESCRIPTOR * (j + 1)];
        let d = (_popcnt64((q[0] ^ w[0]) as i64)
            + _popcnt64((q[1] ^ w[1]) as i64)
            + _popcnt64((q[2] ^ w[2]) as i64)
            + _popcnt64((q[3] ^ w[3]) as i64)) as u32;
        if d < best.1 {
            best = (j, d);
        }
    }
    if best.1 > cap {
        return (usize::MAX, u32::MAX);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_descs(seed: u64, n: usize) -> Vec<BinaryDescriptor> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut bytes = [0u8; 32];
                rng.fill(&mut bytes);
                BinaryDescriptor::from_bytes(bytes)
            })
            .collect()
    }

    #[test]
    fn round_trips_descriptors() {
        let descs = random_descs(1, 17);
        let block = DescriptorBlock::from_descriptors(&descs);
        assert_eq!(block.len(), descs.len());
        for (i, d) in descs.iter().enumerate() {
            assert_eq!(&block.descriptor(i), d, "descriptor {i}");
            for chunk in 0..4 {
                assert_eq!(block.descriptor_words(i)[chunk], d.word(chunk));
            }
        }
    }

    #[test]
    fn push_matches_bulk_construction() {
        let descs = random_descs(2, 9);
        let bulk = DescriptorBlock::from_descriptors(&descs);
        let mut inc = DescriptorBlock::new();
        assert!(inc.is_empty());
        for d in &descs {
            inc.push(d);
        }
        assert_eq!(bulk, inc);
    }

    #[test]
    fn batch_distances_match_scalar_hamming() {
        let descs = random_descs(3, 64);
        let queries = random_descs(4, 8);
        let block = DescriptorBlock::from_descriptors(&descs);
        let mut row = Vec::new();
        for q in &queries {
            let qw = [q.word(0), q.word(1), q.word(2), q.word(3)];
            block.distances_into(qw, &mut row);
            assert_eq!(row.len(), descs.len());
            for (j, d) in descs.iter().enumerate() {
                assert_eq!(row[j], q.hamming_distance(d), "pair {j}");
            }
        }
    }

    #[test]
    fn generic_and_dispatched_kernels_agree() {
        let descs = random_descs(5, 40);
        let queries = random_descs(6, 6);
        let block = DescriptorBlock::from_descriptors(&descs);
        let mut dispatched = Vec::new();
        let mut generic = Vec::new();
        for q in &queries {
            let qw = [q.word(0), q.word(1), q.word(2), q.word(3)];
            block.distances_into(qw, &mut dispatched);
            distances_generic(block.words(), qw, &mut generic);
            assert_eq!(dispatched, generic);
            assert_eq!(
                block.nearest_within(qw, 256),
                {
                    let b = nearest_generic(block.words(), qw, 256);
                    (b.0 != usize::MAX).then_some(b)
                },
                "nearest"
            );
        }
    }

    #[test]
    fn nearest_within_is_exact_inside_the_cap() {
        let descs = random_descs(7, 120);
        let queries = random_descs(8, 16);
        let block = DescriptorBlock::from_descriptors(&descs);
        for q in &queries {
            let qw = [q.word(0), q.word(1), q.word(2), q.word(3)];
            // Unpruned reference: first index with the minimum distance.
            let mut reference = (usize::MAX, u32::MAX);
            for (j, d) in descs.iter().enumerate() {
                let dist = q.hamming_distance(d);
                if dist < reference.1 {
                    reference = (j, dist);
                }
            }
            for cap in [0u32, 64, 128, reference.1, 256] {
                let got = block.nearest_within(qw, cap);
                if reference.1 <= cap {
                    assert_eq!(got, Some(reference), "cap {cap}");
                } else {
                    assert_eq!(got, None, "cap {cap}");
                }
            }
        }
    }

    #[test]
    fn nearest_ties_break_toward_lower_index() {
        let d = random_descs(9, 1).remove(0);
        // Two identical candidates: the first must win.
        let block = DescriptorBlock::from_descriptors(&[d, d]);
        let qw = [d.word(0), d.word(1), d.word(2), d.word(3)];
        assert_eq!(block.nearest_within(qw, 256), Some((0, 0)));
    }

    #[test]
    fn empty_block_has_no_nearest() {
        let block = DescriptorBlock::new();
        assert_eq!(block.nearest_within([0; 4], 256), None);
        let mut row = vec![1, 2, 3];
        block.distances_into([0; 4], &mut row);
        assert!(row.is_empty());
    }

    #[test]
    fn descriptors_to_block_is_binary_only() {
        use crate::descriptor::VectorDescriptor;
        let bin = Descriptors::Binary(random_descs(10, 3));
        assert_eq!(bin.to_block().unwrap().len(), 3);
        let vec = Descriptors::Vector(vec![VectorDescriptor::from_values(vec![0.0; 8])]);
        assert!(vec.to_block().is_none());
    }
}
