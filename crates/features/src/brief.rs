//! Steered BRIEF: the 256-bit binary descriptor used by ORB.
//!
//! BRIEF compares the smoothed intensities of 256 pixel pairs inside a
//! 31×31 patch; each comparison yields one descriptor bit. ORB's "steered"
//! variant rotates the sampling pattern by the keypoint orientation so the
//! descriptor is rotation-invariant. The reference implementation ships a
//! machine-learned pattern (rBRIEF); we use the standard practical
//! alternative of a deterministic, seeded Gaussian pattern — pairs drawn
//! from `N(0, (patch/5)²)` as in the original BRIEF paper.

use crate::descriptor::BinaryDescriptor;
use bees_image::GrayImage;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Half-width of the BRIEF patch (pattern points live in `[-15, 15]²`).
pub const PATCH_RADIUS: i32 = 15;

/// Default seed for the sampling pattern. Every extractor in the workspace
/// must use the same pattern or descriptors would be incomparable.
pub const DEFAULT_PATTERN_SEED: u64 = 0x0BEE5_u64;

/// One BRIEF comparison: two sampling points relative to the keypoint.
pub type PointPair = ((f32, f32), (f32, f32));

/// A fixed set of 256 sampling point pairs.
#[derive(Debug, Clone)]
pub struct BriefPattern {
    pairs: Vec<PointPair>,
}

impl BriefPattern {
    /// Generates the deterministic pattern for `seed`: 256 point pairs drawn
    /// from an isotropic Gaussian (σ = patch/5), clamped to the patch.
    pub fn new(seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sigma = PATCH_RADIUS as f32 * 2.0 / 5.0;
        let sample = |rng: &mut ChaCha8Rng| -> (f32, f32) {
            // Box-Muller transform for Gaussian samples.
            loop {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                let mag = sigma * (-2.0 * u1.ln()).sqrt();
                let x = mag * (2.0 * std::f32::consts::PI * u2).cos();
                let y = mag * (2.0 * std::f32::consts::PI * u2).sin();
                if x.abs() <= PATCH_RADIUS as f32 && y.abs() <= PATCH_RADIUS as f32 {
                    return (x, y);
                }
            }
        };
        let mut pairs = Vec::with_capacity(BinaryDescriptor::BITS);
        for _ in 0..BinaryDescriptor::BITS {
            pairs.push((sample(&mut rng), sample(&mut rng)));
        }
        BriefPattern { pairs }
    }

    /// The point pairs of the pattern.
    pub fn pairs(&self) -> &[PointPair] {
        &self.pairs
    }

    /// Computes the steered BRIEF descriptor for a keypoint at `(x, y)` in
    /// the coordinates of `img` (one pyramid level), with patch orientation
    /// `angle` (radians). `img` should already be smoothed; out-of-image
    /// samples clamp to the border.
    pub fn describe(&self, img: &GrayImage, x: f32, y: f32, angle: f32) -> BinaryDescriptor {
        let (sin, cos) = angle.sin_cos();
        let mut desc = BinaryDescriptor::zero();
        for (i, &((ax, ay), (bx, by))) in self.pairs.iter().enumerate() {
            let sample = |px: f32, py: f32| -> u8 {
                // Rotate the pattern point by the keypoint angle.
                let rx = cos * px - sin * py;
                let ry = sin * px + cos * py;
                img.get_clamped((x + rx).round() as i64, (y + ry).round() as i64)
            };
            if sample(ax, ay) < sample(bx, by) {
                desc.set_bit(i);
            }
        }
        desc
    }
}

impl Default for BriefPattern {
    fn default() -> Self {
        BriefPattern::new(DEFAULT_PATTERN_SEED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bees_image::blur::gaussian_blur;

    fn textured() -> GrayImage {
        GrayImage::from_fn(64, 64, |x, y| {
            (128.0
                + 80.0 * ((x as f32) * 0.35).sin()
                + 60.0 * ((y as f32) * 0.27).cos()
                + ((x * 13 + y * 7) % 31) as f32)
                .clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn pattern_is_deterministic() {
        let a = BriefPattern::new(7);
        let b = BriefPattern::new(7);
        assert_eq!(a.pairs(), b.pairs());
        let c = BriefPattern::new(8);
        assert_ne!(a.pairs(), c.pairs());
    }

    #[test]
    fn pattern_points_stay_in_patch() {
        let p = BriefPattern::default();
        assert_eq!(p.pairs().len(), 256);
        for &((ax, ay), (bx, by)) in p.pairs() {
            for v in [ax, ay, bx, by] {
                assert!(v.abs() <= PATCH_RADIUS as f32);
            }
        }
    }

    #[test]
    fn descriptor_is_stable_for_same_input() {
        let img = gaussian_blur(&textured(), 2.0).unwrap();
        let p = BriefPattern::default();
        let d1 = p.describe(&img, 32.0, 32.0, 0.3);
        let d2 = p.describe(&img, 32.0, 32.0, 0.3);
        assert_eq!(d1, d2);
    }

    #[test]
    fn different_locations_give_different_descriptors() {
        let img = gaussian_blur(&textured(), 2.0).unwrap();
        let p = BriefPattern::default();
        let d1 = p.describe(&img, 20.0, 20.0, 0.0);
        let d2 = p.describe(&img, 44.0, 40.0, 0.0);
        assert!(d1.hamming_distance(&d2) > 20);
    }

    #[test]
    fn steering_tracks_patch_rotation_quarter_turn() {
        // Describe a patch, then rotate the image 90° and describe the same
        // (rotated) location with the rotated angle: descriptors should be
        // much closer than chance (~128).
        let img = gaussian_blur(&textured(), 2.0).unwrap();
        let rotated = GrayImage::from_fn(64, 64, |x, y| img.get(y, 63 - x));
        let p = BriefPattern::default();
        let base_angle = 0.4f32;
        let d1 = p.describe(&img, 30.0, 28.0, base_angle);
        // rotated(x', y') = img(y', 63 - x'), so img (ix, iy) lands at
        // (63 - iy, ix) and direction vectors rotate by +90 degrees.
        let d2 = p.describe(
            &rotated,
            63.0 - 28.0,
            30.0,
            base_angle + std::f32::consts::FRAC_PI_2,
        );
        let dist = d1.hamming_distance(&d2);
        assert!(
            dist < 80,
            "steered distance {dist} should beat chance (128)"
        );
    }

    #[test]
    fn edge_keypoints_do_not_panic() {
        let img = textured();
        let p = BriefPattern::default();
        let _ = p.describe(&img, 0.0, 0.0, 1.0);
        let _ = p.describe(&img, 63.0, 63.0, -2.0);
    }
}
