//! SIFT: scale-invariant feature transform (Lowe, IJCV 2004).
//!
//! BEES uses SIFT as the precision gold standard (Fig. 6) and as the space/
//! energy anti-baseline (Table I): every feature is a 128-dimensional
//! gradient-histogram vector, roughly two orders of magnitude more expensive
//! to compute than ORB.
//!
//! This implementation follows the classic pipeline: Gaussian scale space →
//! difference-of-Gaussians extrema → contrast & edge rejection → dominant
//! gradient orientation → 4×4×8 descriptor. Sub-pixel refinement is omitted
//! (it improves localization, not the detection/matching behaviour the
//! reproduction depends on).

use crate::descriptor::{Descriptors, ImageFeatures, VectorDescriptor};
use crate::extractor::{ExtractionStats, ExtractorKind, FeatureExtractor};
use crate::keypoint::Keypoint;
use bees_image::{blur, GrayF32, GrayImage};
use bees_runtime::Runtime;
use serde::{Deserialize, Serialize};

/// Configuration for the [`Sift`] extractor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiftConfig {
    /// Maximum number of features to keep (strongest DoG responses first).
    pub n_features: usize,
    /// Number of octaves (each halves the resolution).
    pub n_octaves: u8,
    /// Scale samples per octave (`s`; the octave holds `s + 3` blurs).
    pub scales_per_octave: u8,
    /// Blur of the first scale in each octave.
    pub base_sigma: f64,
    /// Minimum absolute DoG response (on the 0..255 intensity scale).
    pub contrast_threshold: f32,
    /// Maximum principal-curvature ratio `r` for the edge test
    /// (`(r+1)²/r` bound on `tr²/det`).
    pub edge_threshold: f32,
}

impl Default for SiftConfig {
    fn default() -> Self {
        SiftConfig {
            n_features: 500,
            n_octaves: 4,
            scales_per_octave: 3,
            base_sigma: 1.6,
            // Lowe's classic value is 0.03 * 255 ≈ 7.65 for photographs;
            // the synthetic scenes in this reproduction are smoother than
            // photos, so the default is lowered to keep the keypoint yield
            // comparable to real-image SIFT.
            contrast_threshold: 2.0,
            edge_threshold: 10.0,
        }
    }
}

/// Gaussian scale space: per octave, a stack of progressively blurred
/// images. Shared with PCA-SIFT, which samples gradient patches from it.
#[derive(Debug, Clone)]
pub struct ScaleSpace {
    /// `octaves[o][i]` is the `i`-th blur of octave `o`.
    pub octaves: Vec<Vec<GrayF32>>,
    /// Scale factor of each octave relative to the input (1, 2, 4, ...).
    pub octave_scales: Vec<f32>,
}

impl ScaleSpace {
    /// Total pixels across all blurred images (work-size for energy).
    pub fn total_pixels(&self) -> usize {
        self.octaves
            .iter()
            .flat_map(|o| o.iter())
            .map(|g| g.pixels().len())
            .sum()
    }
}

/// A scale-space extremum that survived contrast and edge tests, expressed
/// in octave-local coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSpacePoint {
    /// Octave index.
    pub octave: usize,
    /// Gaussian layer index the point was detected between.
    pub layer: usize,
    /// Column within the octave image.
    pub x: u32,
    /// Row within the octave image.
    pub y: u32,
    /// Absolute DoG response.
    pub response: f32,
    /// Dominant gradient orientation in radians.
    pub angle: f32,
}

/// The SIFT feature extractor.
///
/// # Examples
///
/// ```
/// use bees_features::sift::{Sift, SiftConfig};
/// use bees_features::FeatureExtractor;
/// use bees_image::GrayImage;
///
/// let img = GrayImage::from_fn(96, 96, |x, y| {
///     if ((x / 12) + (y / 12)) % 2 == 0 { 200 } else { 40 }
/// });
/// let sift = Sift::new(SiftConfig::default());
/// let features = sift.extract(&img);
/// assert!(!features.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sift {
    config: SiftConfig,
}

impl Sift {
    /// Creates an extractor with the given configuration.
    pub fn new(config: SiftConfig) -> Self {
        Sift { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SiftConfig {
        &self.config
    }

    /// Builds the Gaussian scale space for an image.
    pub fn scale_space(&self, img: &GrayImage) -> ScaleSpace {
        let s = self.config.scales_per_octave as i32;
        let k = 2f64.powf(1.0 / s as f64);
        let mut octaves = Vec::new();
        let mut octave_scales = Vec::new();
        let mut base = img.to_f32();
        let mut octave_scale = 1.0f32;
        for _o in 0..self.config.n_octaves {
            if base.width() < 16 || base.height() < 16 {
                break;
            }
            let mut stack = Vec::with_capacity((s + 3) as usize);
            // First layer: bring the base to base_sigma.
            let first = blur::gaussian_blur_f32(&base, self.config.base_sigma)
                .expect("base sigma is positive");
            stack.push(first);
            for i in 1..(s + 3) {
                // Incremental blur from the previous layer.
                let sigma_prev = self.config.base_sigma * k.powi(i - 1);
                let sigma_next = self.config.base_sigma * k.powi(i);
                let inc = (sigma_next * sigma_next - sigma_prev * sigma_prev).sqrt();
                let next = blur::gaussian_blur_f32(&stack[(i - 1) as usize], inc)
                    .expect("incremental sigma is positive");
                stack.push(next);
            }
            // Next octave base: layer `s` (sigma doubled) downsampled by 2.
            let doubled = &stack[s as usize];
            let (w, h) = (doubled.width() / 2, doubled.height() / 2);
            octaves.push(stack);
            octave_scales.push(octave_scale);
            if w < 16 || h < 16 {
                break;
            }
            let mut next_base = GrayF32::new(w, h).expect("downsampled octave is non-empty");
            {
                let src = &octaves.last().expect("just pushed")[s as usize];
                for y in 0..h {
                    for x in 0..w {
                        next_base.set(x, y, src.get(x * 2, y * 2));
                    }
                }
            }
            base = next_base;
            octave_scale *= 2.0;
        }
        ScaleSpace {
            octaves,
            octave_scales,
        }
    }

    /// Detects scale-space extrema with contrast and edge rejection, and
    /// assigns each a dominant orientation.
    pub fn detect(&self, space: &ScaleSpace) -> Vec<ScaleSpacePoint> {
        // Octaves are independent: scan them in parallel and flatten in
        // octave order, then apply the same stable sort as the sequential
        // path (ties keep scan order, so the result is unchanged).
        let per_octave = Runtime::current().par_map_range(space.octaves.len(), |o| {
            let stack = &space.octaves[o];
            let mut points = Vec::new();
            // DoG layers.
            let dogs: Vec<GrayF32> = stack
                .windows(2)
                .map(|w| {
                    let mut d = GrayF32::new(w[0].width(), w[0].height())
                        .expect("octave images are non-empty");
                    for y in 0..d.height() {
                        for x in 0..d.width() {
                            d.set(x, y, w[1].get(x, y) - w[0].get(x, y));
                        }
                    }
                    d
                })
                .collect();
            let (w, h) = (dogs[0].width(), dogs[0].height());
            for layer in 1..dogs.len() - 1 {
                for y in 1..h - 1 {
                    for x in 1..w - 1 {
                        let v = dogs[layer].get(x, y);
                        if v.abs() < self.config.contrast_threshold {
                            continue;
                        }
                        if !is_extremum(&dogs, layer, x, y, v) {
                            continue;
                        }
                        if is_edge_like(&dogs[layer], x, y, self.config.edge_threshold) {
                            continue;
                        }
                        let angle = dominant_orientation(&stack[layer], x, y);
                        points.push(ScaleSpacePoint {
                            octave: o,
                            layer,
                            x,
                            y,
                            response: v.abs(),
                            angle,
                        });
                    }
                }
            }
            points
        });
        let mut points: Vec<ScaleSpacePoint> = per_octave.into_iter().flatten().collect();
        points.sort_by(|a, b| {
            b.response
                .partial_cmp(&a.response)
                .expect("finite responses")
        });
        points.truncate(self.config.n_features);
        points
    }

    /// Computes the 128-d descriptor of a detected point.
    pub fn describe(&self, space: &ScaleSpace, p: &ScaleSpacePoint) -> VectorDescriptor {
        let img = &space.octaves[p.octave][p.layer];
        let mut hist = [0f32; 128]; // 4x4 cells x 8 bins
        let (sin, cos) = p.angle.sin_cos();
        // 16x16 sampling window rotated by the keypoint angle.
        for wy in -8i32..8 {
            for wx in -8i32..8 {
                // Rotate the offset into image space.
                let rx = cos * wx as f32 - sin * wy as f32;
                let ry = sin * wx as f32 + cos * wy as f32;
                let sx = p.x as i64 + rx.round() as i64;
                let sy = p.y as i64 + ry.round() as i64;
                let gx = img.get_clamped(sx + 1, sy) - img.get_clamped(sx - 1, sy);
                let gy = img.get_clamped(sx, sy + 1) - img.get_clamped(sx, sy - 1);
                let mag = (gx * gx + gy * gy).sqrt();
                // Gradient angle relative to the keypoint orientation.
                let theta = gy.atan2(gx) - p.angle;
                let mut t = theta;
                while t < 0.0 {
                    t += 2.0 * std::f32::consts::PI;
                }
                let bin = ((t / (2.0 * std::f32::consts::PI) * 8.0) as usize).min(7);
                let cell_x = ((wx + 8) / 4) as usize;
                let cell_y = ((wy + 8) / 4) as usize;
                // Gaussian weight over the window.
                let weight = (-((wx * wx + wy * wy) as f32) / (2.0 * 8.0 * 8.0)).exp();
                hist[(cell_y * 4 + cell_x) * 8 + bin] += mag * weight;
            }
        }
        let mut d = VectorDescriptor::from_values(hist.to_vec());
        d.normalize();
        // Clamp large components (illumination robustness) and renormalize.
        let clamped: Vec<f32> = d.values().iter().map(|&v| v.min(0.2)).collect();
        let mut d = VectorDescriptor::from_values(clamped);
        d.normalize();
        d
    }
}

fn is_extremum(dogs: &[GrayF32], layer: usize, x: u32, y: u32, v: f32) -> bool {
    let sign = v > 0.0;
    for l in [layer - 1, layer, layer + 1] {
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if l == layer && dx == 0 && dy == 0 {
                    continue;
                }
                let n = dogs[l].get_clamped(x as i64 + dx, y as i64 + dy);
                if sign && n >= v {
                    return false;
                }
                if !sign && n <= v {
                    return false;
                }
            }
        }
    }
    true
}

fn is_edge_like(dog: &GrayF32, x: u32, y: u32, r: f32) -> bool {
    let (xi, yi) = (x as i64, y as i64);
    let center = dog.get_clamped(xi, yi);
    let dxx = dog.get_clamped(xi + 1, yi) + dog.get_clamped(xi - 1, yi) - 2.0 * center;
    let dyy = dog.get_clamped(xi, yi + 1) + dog.get_clamped(xi, yi - 1) - 2.0 * center;
    let dxy = (dog.get_clamped(xi + 1, yi + 1)
        - dog.get_clamped(xi - 1, yi + 1)
        - dog.get_clamped(xi + 1, yi - 1)
        + dog.get_clamped(xi - 1, yi - 1))
        / 4.0;
    let tr = dxx + dyy;
    let det = dxx * dyy - dxy * dxy;
    if det <= 0.0 {
        return true;
    }
    tr * tr / det >= (r + 1.0) * (r + 1.0) / r
}

/// Returns the dominant gradient orientation from a 36-bin histogram over a
/// 9×9 Gaussian-weighted neighborhood.
fn dominant_orientation(img: &GrayF32, x: u32, y: u32) -> f32 {
    let mut hist = [0f32; 36];
    for dy in -4i64..=4 {
        for dx in -4i64..=4 {
            let sx = x as i64 + dx;
            let sy = y as i64 + dy;
            let gx = img.get_clamped(sx + 1, sy) - img.get_clamped(sx - 1, sy);
            let gy = img.get_clamped(sx, sy + 1) - img.get_clamped(sx, sy - 1);
            let mag = (gx * gx + gy * gy).sqrt();
            let mut theta = gy.atan2(gx);
            if theta < 0.0 {
                theta += 2.0 * std::f32::consts::PI;
            }
            let bin = ((theta / (2.0 * std::f32::consts::PI) * 36.0) as usize).min(35);
            let weight = (-((dx * dx + dy * dy) as f32) / (2.0 * 4.5 * 4.5)).exp();
            hist[bin] += mag * weight;
        }
    }
    let best = hist
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite histogram"))
        .map(|(i, _)| i)
        .unwrap_or(0);
    (best as f32 + 0.5) / 36.0 * 2.0 * std::f32::consts::PI
}

impl FeatureExtractor for Sift {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::Sift
    }

    fn extract_with_stats(&self, img: &GrayImage) -> (ImageFeatures, ExtractionStats) {
        let mut stats = ExtractionStats::default();
        if img.width() < 32 || img.height() < 32 {
            stats.pixels_processed = img.pixel_count();
            return (ImageFeatures::empty_vector(), stats);
        }
        let space = self.scale_space(img);
        stats.pixels_processed = space.total_pixels();
        let points = self.detect(&space);
        // Each 128-d descriptor only reads the shared scale space; describe
        // all surviving points in parallel, in detection order.
        let described = Runtime::current().par_map(&points, |p| {
            let scale = space.octave_scales[p.octave];
            let kp = Keypoint {
                x: p.x as f32 * scale,
                y: p.y as f32 * scale,
                response: p.response,
                angle: p.angle,
                octave: p.octave as u8,
                scale,
            };
            (kp, self.describe(&space, p))
        });
        let mut keypoints = Vec::with_capacity(points.len());
        let mut descriptors = Vec::with_capacity(points.len());
        for (kp, desc) in described {
            keypoints.push(kp);
            descriptors.push(desc);
        }
        stats.keypoints_described = keypoints.len();
        let features = ImageFeatures {
            keypoints,
            descriptors: Descriptors::Vector(descriptors),
        };
        stats.descriptor_bytes = features.descriptors.byte_size();
        (features, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> GrayImage {
        // Blob-like structures are ideal DoG responders.
        GrayImage::from_fn(128, 128, |x, y| {
            let mut v = 30.0f32;
            for &(cx, cy, r, a) in &[
                (30.0, 30.0, 6.0, 200.0),
                (80.0, 40.0, 9.0, 180.0),
                (50.0, 90.0, 12.0, 220.0),
            ] {
                let d2 = ((x as f32 - cx).powi(2) + (y as f32 - cy).powi(2)) / (r * r as f32);
                v += a * (-d2).exp();
            }
            v.clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn detects_blobs() {
        let sift = Sift::default();
        let f = sift.extract(&blobs());
        assert!(!f.is_empty(), "no SIFT features detected");
        // Keypoints should cluster near the blob centers.
        let near_blob = f.keypoints.iter().filter(|k| {
            [(30.0, 30.0), (80.0, 40.0), (50.0, 90.0)]
                .iter()
                .any(|&(cx, cy)| ((k.x - cx).powi(2) + (k.y - cy).powi(2)).sqrt() < 16.0)
        });
        assert!(near_blob.count() >= 1);
    }

    #[test]
    fn descriptors_are_unit_normalized_128d() {
        let sift = Sift::default();
        let f = sift.extract(&blobs());
        if let Descriptors::Vector(v) = &f.descriptors {
            for d in v {
                assert_eq!(d.len(), 128);
                let norm: f32 = d.values().iter().map(|x| x * x).sum::<f32>().sqrt();
                assert!((norm - 1.0).abs() < 1e-4 || norm == 0.0, "norm {norm}");
            }
        } else {
            panic!("SIFT must produce vector descriptors");
        }
    }

    #[test]
    fn flat_image_has_no_features() {
        let img = GrayImage::from_fn(64, 64, |_, _| 100);
        assert!(Sift::default().extract(&img).is_empty());
    }

    #[test]
    fn tiny_image_is_rejected_gracefully() {
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * y) % 255) as u8);
        let (f, stats) = Sift::default().extract_with_stats(&img);
        assert!(f.is_empty());
        assert_eq!(stats.pixels_processed, 256);
    }

    #[test]
    fn scale_space_shapes() {
        let sift = Sift::default();
        let space = sift.scale_space(&blobs());
        assert!(!space.octaves.is_empty());
        let s = sift.config().scales_per_octave as usize;
        for stack in &space.octaves {
            assert_eq!(stack.len(), s + 3);
        }
        // Octave 1 is half size of octave 0.
        if space.octaves.len() > 1 {
            assert_eq!(space.octaves[1][0].width(), space.octaves[0][0].width() / 2);
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let img = blobs();
        let sift = Sift::default();
        assert_eq!(sift.extract(&img), sift.extract(&img));
    }

    #[test]
    fn stats_count_scale_space_pixels() {
        let img = blobs();
        let (_, stats) = Sift::default().extract_with_stats(&img);
        // Scale space is strictly larger than the input image.
        assert!(stats.pixels_processed > img.pixel_count());
    }
}
