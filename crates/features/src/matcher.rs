//! Brute-force descriptor matching with cross-checking.
//!
//! The Jaccard similarity of Eq. 2 needs `|S1 ∩ S2|` — the number of
//! descriptor pairs that agree. Binary descriptors match when their Hamming
//! distance is below a threshold; vector descriptors use Lowe's ratio test
//! plus an absolute distance cut. Cross-checking (mutual nearest neighbors)
//! removes most one-sided false matches.

use crate::block::DescriptorBlock;
use crate::descriptor::{BinaryDescriptor, Descriptors, VectorDescriptor};
use bees_runtime::Runtime;
use serde::{Deserialize, Serialize};

/// A correspondence between descriptor `query_idx` in set A and
/// `train_idx` in set B.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatch {
    /// Index into the first (query) descriptor set.
    pub query_idx: usize,
    /// Index into the second (train) descriptor set.
    pub train_idx: usize,
    /// Distance between the two descriptors (Hamming or Euclidean).
    pub distance: f32,
}

/// Matching thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchConfig {
    /// Maximum Hamming distance (out of 256) for a binary match.
    pub max_hamming: u32,
    /// Maximum Euclidean distance for a vector match (descriptors are
    /// unit-normalized, so 2.0 disables the cut).
    pub max_l2: f32,
    /// Lowe ratio: best distance must be below `ratio` × second-best.
    pub lowe_ratio: f32,
    /// Require mutual nearest neighbors.
    pub cross_check: bool,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            max_hamming: 64,
            max_l2: 0.9,
            lowe_ratio: 0.9,
            cross_check: true,
        }
    }
}

/// Matches two binary descriptor sets by exhaustive Hamming search.
///
/// Returns mutual nearest-neighbor pairs within `config.max_hamming`
/// (ties broken toward the lower train index, so the result is
/// deterministic). The Lowe ratio test is skipped for binary sets — with
/// 256-bit descriptors the absolute threshold plus cross-check is standard.
///
/// Internally converts both sets to [`DescriptorBlock`] SoA storage
/// (`O(n + m)`, negligible next to the `O(n·m)` scan) and runs the pruned
/// batch kernels of [`match_binary_blocks`]. Callers that keep descriptors
/// around — the feature index, the SSMM stage — should convert once and
/// call [`match_binary_blocks`] directly instead.
pub fn match_binary(
    query: &[BinaryDescriptor],
    train: &[BinaryDescriptor],
    config: &MatchConfig,
) -> Vec<FeatureMatch> {
    if query.is_empty() || train.is_empty() {
        return Vec::new();
    }
    match_binary_blocks(
        &DescriptorBlock::from_descriptors(query),
        &DescriptorBlock::from_descriptors(train),
        config,
    )
}

/// [`match_binary`] over pre-built SoA blocks — the descriptor hot loop.
///
/// Each query row's scan over the train block is independent; rows fan out
/// over the runtime (results come back in row order, so the match list is
/// identical to the sequential scan at any thread count). Per row the scan
/// runs [`DescriptorBlock::nearest_within`] with the bound
/// `min(best_so_far, max_hamming)`: candidates whose partial distance over
/// the first two words already exceeds the bound are skipped without
/// popcounting the rest (partial-distance pruning).
///
/// Pruning cannot change the emitted matches. A forward row whose true
/// nearest neighbor is farther than `max_hamming` is filtered either way;
/// and every backward row consulted by cross-checking belongs to a train
/// descriptor with a forward partner within `max_hamming`, so its true
/// nearest lies within the bound and the pruned scan is exact there. The
/// property suite pins this against [`match_binary_exhaustive`].
pub fn match_binary_blocks(
    query: &DescriptorBlock,
    train: &DescriptorBlock,
    config: &MatchConfig,
) -> Vec<FeatureMatch> {
    if query.is_empty() || train.is_empty() {
        return Vec::new();
    }
    let rt = Runtime::current();
    let cap = config.max_hamming.min(BinaryDescriptor::BITS as u32);
    let nearest = |from: &DescriptorBlock, to: &DescriptorBlock| -> Vec<(usize, u32)> {
        rt.par_map_range(from.len(), |i| {
            to.nearest_within(from.descriptor_words(i), cap)
                .unwrap_or((usize::MAX, u32::MAX))
        })
    };
    let forward = nearest(query, train);
    let backward = if config.cross_check {
        nearest(train, query)
    } else {
        Vec::new()
    };
    collect_binary_matches(&forward, &backward, config)
}

/// Unpruned AoS reference implementation of [`match_binary`].
///
/// Scans `Vec<BinaryDescriptor>` objects per pair exactly as the matcher
/// did before the SoA restructuring. Kept (not deprecated) as the ground
/// truth for the parity tests and as the baseline side of the
/// `descriptor_hotloop` bench; production paths should use
/// [`match_binary`] / [`match_binary_blocks`].
pub fn match_binary_exhaustive(
    query: &[BinaryDescriptor],
    train: &[BinaryDescriptor],
    config: &MatchConfig,
) -> Vec<FeatureMatch> {
    if query.is_empty() || train.is_empty() {
        return Vec::new();
    }
    let rt = Runtime::current();
    let nearest = |from: &[BinaryDescriptor], to: &[BinaryDescriptor]| -> Vec<(usize, u32)> {
        rt.par_map(from, |d| {
            let mut best = (usize::MAX, u32::MAX);
            for (j, t) in to.iter().enumerate() {
                let dist = d.hamming_distance(t);
                if dist < best.1 {
                    best = (j, dist);
                }
            }
            best
        })
    };
    let forward = nearest(query, train);
    let backward = if config.cross_check {
        nearest(train, query)
    } else {
        Vec::new()
    };
    collect_binary_matches(&forward, &backward, config)
}

/// Emits the final match list from per-row nearest-neighbor results
/// (shared by the SoA and reference paths so filtering can never drift).
fn collect_binary_matches(
    forward: &[(usize, u32)],
    backward: &[(usize, u32)],
    config: &MatchConfig,
) -> Vec<FeatureMatch> {
    let mut matches = Vec::new();
    for (qi, &(ti, dist)) in forward.iter().enumerate() {
        if ti == usize::MAX || dist > config.max_hamming {
            continue;
        }
        if config.cross_check && backward[ti].0 != qi {
            continue;
        }
        matches.push(FeatureMatch {
            query_idx: qi,
            train_idx: ti,
            distance: dist as f32,
        });
    }
    matches
}

/// Matches two vector descriptor sets by exhaustive L2 search with Lowe's
/// ratio test and optional cross-checking.
pub fn match_vector(
    query: &[VectorDescriptor],
    train: &[VectorDescriptor],
    config: &MatchConfig,
) -> Vec<FeatureMatch> {
    if query.is_empty() || train.is_empty() {
        return Vec::new();
    }
    let rt = Runtime::current();
    let two_nearest =
        |from: &[VectorDescriptor], to: &[VectorDescriptor]| -> Vec<(usize, f32, f32)> {
            rt.par_map(from, |d| {
                let mut best = (usize::MAX, f32::INFINITY);
                let mut second = f32::INFINITY;
                for (j, t) in to.iter().enumerate() {
                    let dist = d.l2_squared(t);
                    if dist < best.1 {
                        second = best.1;
                        best = (j, dist);
                    } else if dist < second {
                        second = dist;
                    }
                }
                (best.0, best.1.sqrt(), second.sqrt())
            })
        };
    let forward = two_nearest(query, train);
    let backward = if config.cross_check {
        two_nearest(train, query)
    } else {
        Vec::new()
    };
    let mut matches = Vec::new();
    for (qi, &(ti, dist, second)) in forward.iter().enumerate() {
        if ti == usize::MAX || dist > config.max_l2 {
            continue;
        }
        // Lowe ratio test (only meaningful when there are >= 2 candidates).
        if second.is_finite() && dist > config.lowe_ratio * second {
            continue;
        }
        if config.cross_check && backward[ti].0 != qi {
            continue;
        }
        matches.push(FeatureMatch {
            query_idx: qi,
            train_idx: ti,
            distance: dist,
        });
    }
    matches
}

/// Matches two [`Descriptors`] values of the same kind.
///
/// Returns an empty match list when the kinds differ (an ORB client can
/// never match against a SIFT index; the system never mixes them).
pub fn match_descriptors(
    a: &Descriptors,
    b: &Descriptors,
    config: &MatchConfig,
) -> Vec<FeatureMatch> {
    match (a, b) {
        (Descriptors::Binary(x), Descriptors::Binary(y)) => match_binary(x, y, config),
        (Descriptors::Vector(x), Descriptors::Vector(y)) => match_vector(x, y, config),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc_with_bits(bits: &[usize]) -> BinaryDescriptor {
        let mut d = BinaryDescriptor::zero();
        for &b in bits {
            d.set_bit(b);
        }
        d
    }

    #[test]
    fn identical_sets_match_fully() {
        let set: Vec<BinaryDescriptor> = (0..8)
            .map(|i| desc_with_bits(&[i * 30, i * 30 + 1, 200 - i]))
            .collect();
        let m = match_binary(&set, &set, &MatchConfig::default());
        assert_eq!(m.len(), set.len());
        for mm in &m {
            assert_eq!(mm.query_idx, mm.train_idx);
            assert_eq!(mm.distance, 0.0);
        }
    }

    #[test]
    fn distant_descriptors_do_not_match() {
        let a = vec![desc_with_bits(&(0..100).collect::<Vec<_>>())];
        let b = vec![desc_with_bits(&(100..250).collect::<Vec<_>>())];
        let m = match_binary(&a, &b, &MatchConfig::default());
        assert!(m.is_empty());
    }

    #[test]
    fn cross_check_removes_asymmetric_matches() {
        // Both b0 and b1 are nearest to a0, but a0's nearest is b0 only.
        let a = vec![desc_with_bits(&[0, 1, 2])];
        let b = vec![
            desc_with_bits(&[0, 1, 2, 3]),
            desc_with_bits(&[0, 1, 2, 3, 4, 5]),
        ];
        let cfg = MatchConfig {
            cross_check: true,
            ..MatchConfig::default()
        };
        let m = match_binary(&b, &a, &cfg);
        // Only b0 <-> a0 survives; b1's nearest in a is a0 but a0's nearest
        // in b is b0.
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].query_idx, 0);
    }

    #[test]
    fn empty_inputs_yield_no_matches() {
        let a: Vec<BinaryDescriptor> = vec![];
        let b = vec![BinaryDescriptor::zero()];
        assert!(match_binary(&a, &b, &MatchConfig::default()).is_empty());
        assert!(match_binary(&b, &a, &MatchConfig::default()).is_empty());
    }

    #[test]
    fn vector_matching_respects_ratio_test() {
        let q = vec![VectorDescriptor::from_values(vec![1.0, 0.0])];
        // Two near-identical candidates: ambiguous, ratio test kills it.
        let t_ambiguous = vec![
            VectorDescriptor::from_values(vec![0.95, 0.05]),
            VectorDescriptor::from_values(vec![0.94, 0.06]),
        ];
        let cfg = MatchConfig {
            lowe_ratio: 0.8,
            max_l2: 2.0,
            ..MatchConfig::default()
        };
        assert!(match_vector(&q, &t_ambiguous, &cfg).is_empty());
        // One clear winner passes.
        let t_clear = vec![
            VectorDescriptor::from_values(vec![0.99, 0.01]),
            VectorDescriptor::from_values(vec![-1.0, 0.0]),
        ];
        let m = match_vector(&q, &t_clear, &cfg);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].train_idx, 0);
    }

    #[test]
    fn mixed_descriptor_kinds_do_not_match() {
        let a = Descriptors::Binary(vec![BinaryDescriptor::zero()]);
        let b = Descriptors::Vector(vec![VectorDescriptor::from_values(vec![0.0; 4])]);
        assert!(match_descriptors(&a, &b, &MatchConfig::default()).is_empty());
    }

    #[test]
    fn single_candidate_vector_match_skips_ratio() {
        let q = vec![VectorDescriptor::from_values(vec![1.0, 0.0])];
        let t = vec![VectorDescriptor::from_values(vec![0.99, 0.01])];
        let m = match_vector(&q, &t, &MatchConfig::default());
        assert_eq!(m.len(), 1);
    }
}
