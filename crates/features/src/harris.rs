//! Harris corner response.
//!
//! ORB ranks FAST corners by their Harris response before keeping the top-N
//! (the FAST score alone correlates poorly with repeatability).

use bees_image::GrayImage;

/// Harris detector free parameter `k`; 0.04 is the standard choice.
pub const HARRIS_K: f32 = 0.04;

/// Computes the Harris response at `(x, y)` using Sobel gradients summed
/// over a `(2·block + 1)²` window.
///
/// Returns `None` when the window would leave the image.
pub fn harris_response(img: &GrayImage, x: u32, y: u32, block: u32) -> Option<f32> {
    let b = block as i64;
    let (w, h) = (img.width() as i64, img.height() as i64);
    let (cx, cy) = (x as i64, y as i64);
    if cx - b - 1 < 0 || cy - b - 1 < 0 || cx + b + 1 >= w || cy + b + 1 >= h {
        return None;
    }
    let mut sxx = 0f64;
    let mut syy = 0f64;
    let mut sxy = 0f64;
    for yy in (cy - b)..=(cy + b) {
        for xx in (cx - b)..=(cx + b) {
            let gx = sobel_x(img, xx, yy);
            let gy = sobel_y(img, xx, yy);
            sxx += (gx * gx) as f64;
            syy += (gy * gy) as f64;
            sxy += (gx * gy) as f64;
        }
    }
    // Normalize so the response is independent of the window size.
    let n = ((2 * b + 1) * (2 * b + 1)) as f64;
    let (sxx, syy, sxy) = (sxx / n, syy / n, sxy / n);
    let det = sxx * syy - sxy * sxy;
    let trace = sxx + syy;
    Some((det - HARRIS_K as f64 * trace * trace) as f32)
}

#[inline]
fn sobel_x(img: &GrayImage, x: i64, y: i64) -> f32 {
    let p = |dx: i64, dy: i64| img.get_clamped(x + dx, y + dy) as f32;
    (p(1, -1) + 2.0 * p(1, 0) + p(1, 1)) - (p(-1, -1) + 2.0 * p(-1, 0) + p(-1, 1))
}

#[inline]
fn sobel_y(img: &GrayImage, x: i64, y: i64) -> f32 {
    let p = |dx: i64, dy: i64| img.get_clamped(x + dx, y + dy) as f32;
    (p(-1, 1) + 2.0 * p(0, 1) + p(1, 1)) - (p(-1, -1) + 2.0 * p(0, -1) + p(1, -1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corner_image() -> GrayImage {
        // Bright quadrant: a strong corner at (16, 16).
        GrayImage::from_fn(32, 32, |x, y| if x >= 16 && y >= 16 { 220 } else { 20 })
    }

    #[test]
    fn corner_beats_edge_and_flat() {
        let img = corner_image();
        let corner = harris_response(&img, 16, 16, 3).unwrap();
        let edge = harris_response(&img, 24, 16, 3).unwrap(); // horizontal edge
        let flat = harris_response(&img, 8, 8, 3).unwrap();
        assert!(corner > edge, "corner {corner} vs edge {edge}");
        assert!(corner > flat, "corner {corner} vs flat {flat}");
    }

    #[test]
    fn edge_response_is_negative_or_small() {
        let img = corner_image();
        let edge = harris_response(&img, 24, 16, 3).unwrap();
        let corner = harris_response(&img, 16, 16, 3).unwrap();
        // The Harris measure penalizes pure edges.
        assert!(edge < corner / 10.0);
    }

    #[test]
    fn window_outside_image_is_none() {
        let img = corner_image();
        assert!(harris_response(&img, 0, 0, 3).is_none());
        assert!(harris_response(&img, 31, 31, 3).is_none());
        assert!(harris_response(&img, 16, 16, 3).is_some());
    }

    #[test]
    fn flat_image_response_near_zero() {
        let img = GrayImage::from_fn(32, 32, |_, _| 99);
        let r = harris_response(&img, 16, 16, 3).unwrap();
        assert!(r.abs() < 1e-3);
    }
}
