#![warn(missing_docs)]

//! Local image features for the BEES reproduction.
//!
//! BEES (§III-D) detects similar images by extracting **local features** and
//! scoring the Jaccard similarity of the two feature sets (Eq. 2). The paper
//! selects **ORB** for the smartphone client because it is roughly two orders
//! of magnitude cheaper than SIFT at comparable detection accuracy, and uses
//! **SIFT** and **PCA-SIFT** as precision/space baselines (SmartEye uses
//! PCA-SIFT). All three are implemented here from scratch:
//!
//! * [`fast`] — FAST-9 corner detection with non-maximum suppression,
//! * [`harris`] — Harris corner response used to rank FAST corners (oFAST),
//! * [`pyramid`] — the scale pyramid shared by ORB,
//! * [`orientation`] — intensity-centroid patch orientation,
//! * [`brief`] — the steered 256-bit BRIEF descriptor (rBRIEF-style seeded
//!   sampling pattern),
//! * [`orb`] — the assembled ORB extractor,
//! * [`sift`] — a difference-of-Gaussians SIFT with 128-d gradient-histogram
//!   descriptors,
//! * [`pca`] — PCA-SIFT: gradient patches projected to 36 dimensions with a
//!   from-scratch Jacobi eigensolver ([`math`]),
//! * [`matcher`] — brute-force Hamming / L2 matching with cross-checking,
//! * [`block`] — flat SoA descriptor storage ([`DescriptorBlock`]) feeding
//!   the batched popcount hot loops,
//! * [`similarity`] — the paper's Jaccard set similarity (Eq. 2).
//!
//! # Examples
//!
//! ```
//! use bees_features::orb::{Orb, OrbConfig};
//! use bees_features::extractor::FeatureExtractor;
//! use bees_image::GrayImage;
//!
//! let img = GrayImage::from_fn(128, 128, |x, y| {
//!     if (x / 16 + y / 16) % 2 == 0 { 230 } else { 25 }
//! });
//! let orb = Orb::new(OrbConfig::default());
//! let features = orb.extract(&img);
//! assert!(!features.is_empty());
//! ```

pub mod block;
pub mod brief;
pub mod descriptor;
pub mod extractor;
pub mod fast;
pub mod global;
pub mod harris;
pub mod keypoint;
pub mod matcher;
pub mod math;
pub mod orb;
pub mod orientation;
pub mod pca;
pub mod pyramid;
pub mod sift;
pub mod similarity;

pub use block::DescriptorBlock;
pub use descriptor::{BinaryDescriptor, Descriptors, ImageFeatures, VectorDescriptor};
pub use extractor::{ExtractionStats, ExtractorKind, FeatureExtractor};
pub use keypoint::Keypoint;
