//! The [`FeatureExtractor`] abstraction shared by ORB, SIFT, and PCA-SIFT.
//!
//! The energy model in `bees-energy` charges joules per unit of *work*, so
//! extractors report [`ExtractionStats`] describing how much work they did
//! (pixels touched during detection, keypoints described).

use crate::descriptor::ImageFeatures;
use bees_image::GrayImage;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which feature algorithm an extractor implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExtractorKind {
    /// ORB: FAST + Harris + steered BRIEF, 256-bit binary descriptors.
    Orb,
    /// SIFT: DoG extrema + 128-d gradient-histogram descriptors.
    Sift,
    /// PCA-SIFT: SIFT keypoints with gradient patches projected to 36-d.
    PcaSift,
}

impl fmt::Display for ExtractorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ExtractorKind::Orb => "ORB",
            ExtractorKind::Sift => "SIFT",
            ExtractorKind::PcaSift => "PCA-SIFT",
        };
        f.write_str(name)
    }
}

/// Work accounting for one extraction, consumed by the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExtractionStats {
    /// Pixels touched by detection (all pyramid/scale-space levels).
    pub pixels_processed: usize,
    /// Keypoints that received a descriptor.
    pub keypoints_described: usize,
    /// Serialized descriptor payload in bytes.
    pub descriptor_bytes: usize,
}

impl ExtractionStats {
    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &ExtractionStats) {
        self.pixels_processed += other.pixels_processed;
        self.keypoints_described += other.keypoints_described;
        self.descriptor_bytes += other.descriptor_bytes;
    }
}

/// A local-feature extraction algorithm.
///
/// Implemented by [`Orb`](crate::orb::Orb), [`Sift`](crate::sift::Sift), and
/// [`PcaSift`](crate::pca::PcaSift). The trait is object-safe so schemes can
/// hold a `Box<dyn FeatureExtractor>`.
pub trait FeatureExtractor {
    /// Which algorithm this is (used for reporting and energy coefficients).
    fn kind(&self) -> ExtractorKind;

    /// Extracts features and reports the work done.
    fn extract_with_stats(&self, img: &GrayImage) -> (ImageFeatures, ExtractionStats);

    /// Extracts features, discarding the work statistics.
    fn extract(&self, img: &GrayImage) -> ImageFeatures {
        self.extract_with_stats(img).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_displays_paper_names() {
        assert_eq!(ExtractorKind::Orb.to_string(), "ORB");
        assert_eq!(ExtractorKind::Sift.to_string(), "SIFT");
        assert_eq!(ExtractorKind::PcaSift.to_string(), "PCA-SIFT");
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = ExtractionStats {
            pixels_processed: 10,
            keypoints_described: 2,
            descriptor_bytes: 64,
        };
        let b = ExtractionStats {
            pixels_processed: 5,
            keypoints_described: 1,
            descriptor_bytes: 32,
        };
        a.merge(&b);
        assert_eq!(a.pixels_processed, 15);
        assert_eq!(a.keypoints_described, 3);
        assert_eq!(a.descriptor_bytes, 96);
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_e: &dyn FeatureExtractor) {}
    }
}
