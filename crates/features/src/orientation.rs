//! Intensity-centroid patch orientation (the "o" in oFAST).
//!
//! ORB assigns each keypoint the angle from the patch center to its
//! intensity centroid: `θ = atan2(m01, m10)` over a circular patch. The
//! steered BRIEF pattern is then rotated by θ, making the descriptor
//! rotation-invariant.

use bees_image::GrayImage;

/// Default patch radius used by ORB (a 31×31 patch).
pub const DEFAULT_RADIUS: u32 = 15;

/// Computes the intensity-centroid orientation at `(x, y)` over a circular
/// patch of the given radius. Coordinates outside the image are clamped to
/// the border, so the function is total.
///
/// Returns an angle in radians in `(-PI, PI]`. A perfectly symmetric patch
/// yields `0.0`.
///
/// # Examples
///
/// ```
/// use bees_features::orientation::intensity_centroid_angle;
/// use bees_image::GrayImage;
///
/// // Brighter on the right: centroid points along +x, angle ~ 0.
/// let img = GrayImage::from_fn(33, 33, |x, _| if x > 16 { 200 } else { 10 });
/// let angle = intensity_centroid_angle(&img, 16, 16, 15);
/// assert!(angle.abs() < 0.1);
/// ```
pub fn intensity_centroid_angle(img: &GrayImage, x: u32, y: u32, radius: u32) -> f32 {
    let r = radius as i64;
    let (cx, cy) = (x as i64, y as i64);
    let mut m01 = 0i64;
    let mut m10 = 0i64;
    for dy in -r..=r {
        for dx in -r..=r {
            if dx * dx + dy * dy > r * r {
                continue;
            }
            let v = img.get_clamped(cx + dx, cy + dy) as i64;
            m10 += dx * v;
            m01 += dy * v;
        }
    }
    if m01 == 0 && m10 == 0 {
        return 0.0;
    }
    (m01 as f32).atan2(m10 as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    fn gradient_up() -> GrayImage {
        // Brighter toward larger y: centroid along +y, angle ~ +PI/2.
        GrayImage::from_fn(33, 33, |_, y| (y * 7).min(255) as u8)
    }

    #[test]
    fn angle_follows_brightness_direction() {
        let up = intensity_centroid_angle(&gradient_up(), 16, 16, 15);
        assert!((up - FRAC_PI_2).abs() < 0.1, "got {up}");
        let left = GrayImage::from_fn(33, 33, |x, _| if x < 16 { 200 } else { 10 });
        let a = intensity_centroid_angle(&left, 16, 16, 15);
        assert!((a.abs() - PI).abs() < 0.1, "got {a}");
    }

    #[test]
    fn symmetric_patch_has_zero_angle() {
        let img = GrayImage::from_fn(33, 33, |_, _| 50);
        assert_eq!(intensity_centroid_angle(&img, 16, 16, 15), 0.0);
    }

    #[test]
    fn rotation_by_quarter_turn_rotates_angle() {
        let img = gradient_up();
        // Transpose the image: gradient now along +x.
        let t = GrayImage::from_fn(33, 33, |x, y| img.get(y, x));
        let a = intensity_centroid_angle(&t, 16, 16, 15);
        assert!(a.abs() < 0.1, "got {a}");
    }

    #[test]
    fn border_keypoints_do_not_panic() {
        let img = gradient_up();
        let _ = intensity_centroid_angle(&img, 0, 0, 15);
        let _ = intensity_centroid_angle(&img, 32, 32, 15);
    }
}
