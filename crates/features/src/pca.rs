//! PCA-SIFT (Ke & Sukthankar, CVPR 2004).
//!
//! PCA-SIFT keeps SIFT's detector but replaces the 128-d histogram
//! descriptor with a gradient *patch* projected onto a low-dimensional PCA
//! basis — 36 dimensions in the paper, which is why Table I reports
//! PCA-SIFT features at 25 % of SIFT's size (36·4 bytes vs 128·4 bytes).
//! The paper also notes PCA-SIFT "increases the time of computing features",
//! which the energy model reflects.
//!
//! The basis comes from an eigendecomposition of the gradient-patch
//! covariance ([`math::power_iteration_topk`]); it can be trained on any
//! image sample ([`PcaSift::train`]) or constructed as a deterministic
//! random orthonormal projection ([`PcaSift::with_seeded_basis`]) when a
//! training pass is not worth its cost.

use crate::descriptor::{Descriptors, ImageFeatures, VectorDescriptor};
use crate::extractor::{ExtractionStats, ExtractorKind, FeatureExtractor};
use crate::keypoint::Keypoint;
use crate::math::{self, Matrix};
use crate::sift::{ScaleSpacePoint, Sift, SiftConfig};
use bees_image::{GrayF32, GrayImage};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Half-width of the gradient patch: a (2·9+1)² window minus the border
/// gives 9×9 gradient samples per axis.
const PATCH_HALF: i64 = 4;
/// Gradient samples per axis (9×9 window).
const PATCH_SIDE: usize = (2 * PATCH_HALF + 1) as usize;
/// Raw gradient-vector dimensionality (gx and gy per sample).
pub const RAW_DIM: usize = PATCH_SIDE * PATCH_SIDE * 2;

/// Configuration for [`PcaSift`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcaSiftConfig {
    /// Detector configuration (shared with SIFT).
    pub sift: SiftConfig,
    /// Output dimensionality after projection (36 in the paper).
    pub out_dim: usize,
}

impl Default for PcaSiftConfig {
    fn default() -> Self {
        PcaSiftConfig {
            sift: SiftConfig::default(),
            out_dim: 36,
        }
    }
}

/// A trained (or seeded) PCA projection: `out_dim` orthonormal rows of
/// length [`RAW_DIM`].
#[derive(Debug, Clone)]
pub struct PcaBasis {
    rows: Vec<Vec<f32>>,
    means: Vec<f32>,
}

impl PcaBasis {
    /// Trains a basis from raw gradient-patch samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `out_dim > RAW_DIM`.
    pub fn train(samples: &[Vec<f64>], out_dim: usize) -> Self {
        assert!(
            !samples.is_empty(),
            "cannot train PCA on an empty sample set"
        );
        assert!(
            out_dim <= RAW_DIM,
            "cannot keep more components than the raw dimension"
        );
        let (cov, means) = math::covariance(samples);
        let eig = math::power_iteration_topk(&cov, out_dim, 60);
        let rows = (0..out_dim)
            .map(|i| eig.vectors.row(i).iter().map(|&v| v as f32).collect())
            .collect();
        PcaBasis {
            rows,
            means: means.into_iter().map(|m| m as f32).collect(),
        }
    }

    /// Builds a deterministic random orthonormal basis (Gram–Schmidt over
    /// seeded Gaussian vectors). A Johnson–Lindenstrauss-style projection:
    /// distances are approximately preserved without a training pass.
    pub fn seeded(seed: u64, out_dim: usize) -> Self {
        assert!(
            out_dim <= RAW_DIM,
            "cannot keep more components than the raw dimension"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut rows: Vec<Vec<f32>> = Vec::with_capacity(out_dim);
        while rows.len() < out_dim {
            let mut v: Vec<f32> = (0..RAW_DIM)
                .map(|_| {
                    // Box-Muller.
                    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                    let u2: f32 = rng.gen_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                })
                .collect();
            // Gram-Schmidt against the accepted rows.
            for r in &rows {
                let dot: f32 = v.iter().zip(r).map(|(a, b)| a * b).sum();
                for (x, y) in v.iter_mut().zip(r) {
                    *x -= dot * y;
                }
            }
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-4 {
                for x in &mut v {
                    *x /= norm;
                }
                rows.push(v);
            }
        }
        PcaBasis {
            rows,
            means: vec![0.0; RAW_DIM],
        }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.rows.len()
    }

    /// Projects a raw gradient vector onto the basis.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len() != RAW_DIM`.
    pub fn project(&self, raw: &[f32]) -> Vec<f32> {
        assert_eq!(raw.len(), RAW_DIM, "raw vector has wrong dimensionality");
        self.rows
            .iter()
            .map(|row| {
                row.iter()
                    .zip(raw.iter().zip(&self.means))
                    .map(|(w, (x, m))| w * (x - m))
                    .sum()
            })
            .collect()
    }

    /// Returns the basis as a matrix (rows are components); for tests.
    pub fn to_matrix(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows.len(), RAW_DIM);
        for (i, row) in self.rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v as f64);
            }
        }
        m
    }
}

/// The PCA-SIFT feature extractor.
///
/// # Examples
///
/// ```
/// use bees_features::pca::PcaSift;
/// use bees_features::FeatureExtractor;
/// use bees_image::GrayImage;
///
/// let img = GrayImage::from_fn(96, 96, |x, y| {
///     if ((x / 12) + (y / 12)) % 2 == 0 { 200 } else { 40 }
/// });
/// let pca = PcaSift::with_seeded_basis(Default::default(), 1);
/// let f = pca.extract(&img);
/// for kp in &f.keypoints {
///     assert!(kp.x < 96.0 + 1.0);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PcaSift {
    config: PcaSiftConfig,
    sift: Sift,
    basis: PcaBasis,
}

impl PcaSift {
    /// Creates an extractor with an explicit basis.
    ///
    /// # Panics
    ///
    /// Panics if the basis dimensionality differs from `config.out_dim`.
    pub fn with_basis(config: PcaSiftConfig, basis: PcaBasis) -> Self {
        assert_eq!(
            basis.out_dim(),
            config.out_dim,
            "basis does not match configured out_dim"
        );
        PcaSift {
            sift: Sift::new(config.sift),
            config,
            basis,
        }
    }

    /// Creates an extractor with a deterministic seeded orthonormal basis.
    pub fn with_seeded_basis(config: PcaSiftConfig, seed: u64) -> Self {
        let basis = PcaBasis::seeded(seed, config.out_dim);
        Self::with_basis(config, basis)
    }

    /// Trains a PCA basis from gradient patches of the given images and
    /// returns an extractor using it.
    ///
    /// # Panics
    ///
    /// Panics if no patches can be collected from `images`.
    pub fn train(config: PcaSiftConfig, images: &[GrayImage]) -> Self {
        let sift = Sift::new(config.sift);
        let mut samples = Vec::new();
        for img in images {
            if img.width() < 32 || img.height() < 32 {
                continue;
            }
            let space = sift.scale_space(img);
            for p in sift.detect(&space) {
                let raw = gradient_patch(&space.octaves[p.octave][p.layer], p.x, p.y, p.angle);
                samples.push(raw.into_iter().map(|v| v as f64).collect());
            }
        }
        assert!(!samples.is_empty(), "training images produced no patches");
        let basis = PcaBasis::train(&samples, config.out_dim);
        Self::with_basis(config, basis)
    }

    /// The configuration in use.
    pub fn config(&self) -> &PcaSiftConfig {
        &self.config
    }
}

/// Samples a rotated, normalized gradient patch around `(x, y)`.
fn gradient_patch(img: &GrayF32, x: u32, y: u32, angle: f32) -> Vec<f32> {
    let (sin, cos) = angle.sin_cos();
    let mut raw = Vec::with_capacity(RAW_DIM);
    for wy in -PATCH_HALF..=PATCH_HALF {
        for wx in -PATCH_HALF..=PATCH_HALF {
            let rx = cos * wx as f32 - sin * wy as f32;
            let ry = sin * wx as f32 + cos * wy as f32;
            let sx = x as i64 + rx.round() as i64;
            let sy = y as i64 + ry.round() as i64;
            let gx = img.get_clamped(sx + 1, sy) - img.get_clamped(sx - 1, sy);
            let gy = img.get_clamped(sx, sy + 1) - img.get_clamped(sx, sy - 1);
            // Rotate the gradient into the keypoint frame.
            raw.push(cos * gx + sin * gy);
            raw.push(-sin * gx + cos * gy);
        }
    }
    // Normalize for illumination invariance.
    let norm: f32 = raw.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm > 0.0 {
        for v in &mut raw {
            *v /= norm;
        }
    }
    raw
}

impl FeatureExtractor for PcaSift {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::PcaSift
    }

    fn extract_with_stats(&self, img: &GrayImage) -> (ImageFeatures, ExtractionStats) {
        let mut stats = ExtractionStats::default();
        if img.width() < 32 || img.height() < 32 {
            stats.pixels_processed = img.pixel_count();
            return (ImageFeatures::empty_vector(), stats);
        }
        let space = self.sift.scale_space(img);
        // PCA-SIFT does the full SIFT detection *plus* a projection per
        // keypoint; count the scale-space work once.
        stats.pixels_processed = space.total_pixels();
        let points: Vec<ScaleSpacePoint> = self.sift.detect(&space);
        let mut keypoints = Vec::with_capacity(points.len());
        let mut descriptors = Vec::with_capacity(points.len());
        for p in &points {
            let raw = gradient_patch(&space.octaves[p.octave][p.layer], p.x, p.y, p.angle);
            let mut d = VectorDescriptor::from_values(self.basis.project(&raw));
            d.normalize();
            let scale = space.octave_scales[p.octave];
            keypoints.push(Keypoint {
                x: p.x as f32 * scale,
                y: p.y as f32 * scale,
                response: p.response,
                angle: p.angle,
                octave: p.octave as u8,
                scale,
            });
            descriptors.push(d);
        }
        stats.keypoints_described = keypoints.len();
        let features = ImageFeatures {
            keypoints,
            descriptors: Descriptors::Vector(descriptors),
        };
        stats.descriptor_bytes = features.descriptors.byte_size();
        (features, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene() -> GrayImage {
        GrayImage::from_fn(96, 96, |x, y| {
            let mut v = 40.0f32;
            for &(cx, cy, r, a) in &[(25.0, 25.0, 5.0, 180.0), (60.0, 70.0, 8.0, 200.0)] {
                let d2 = ((x as f32 - cx).powi(2) + (y as f32 - cy).powi(2)) / (r * r as f32);
                v += a * (-d2).exp();
            }
            v.clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn seeded_basis_is_orthonormal() {
        let basis = PcaBasis::seeded(42, 36);
        assert_eq!(basis.out_dim(), 36);
        let m = basis.to_matrix();
        for i in 0..36 {
            for j in i..36 {
                let dot: f64 = m.row(i).iter().zip(m.row(j)).map(|(a, b)| a * b).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-4, "({i},{j}) dot {dot}");
            }
        }
    }

    #[test]
    fn descriptors_have_configured_dimension() {
        let pca = PcaSift::with_seeded_basis(PcaSiftConfig::default(), 7);
        let f = pca.extract(&scene());
        if let Descriptors::Vector(v) = &f.descriptors {
            for d in v {
                assert_eq!(d.len(), 36);
            }
        } else {
            panic!("PCA-SIFT must produce vector descriptors");
        }
    }

    #[test]
    fn pca_descriptor_is_smaller_than_sift() {
        let img = scene();
        let pca = PcaSift::with_seeded_basis(PcaSiftConfig::default(), 7);
        let sift = Sift::default();
        let fp = pca.extract(&img);
        let fs = sift.extract(&img);
        if fp.is_empty() || fs.is_empty() {
            return; // no features in this tiny scene on some configs
        }
        let per_kp_pca = fp.descriptors.byte_size() as f64 / fp.len() as f64;
        let per_kp_sift = fs.descriptors.byte_size() as f64 / fs.len() as f64;
        // 36-d vs 128-d: ~28 % (Table I reports 25 %).
        assert!((per_kp_pca / per_kp_sift - 36.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn training_on_scene_produces_working_extractor() {
        let imgs = vec![scene()];
        let pca = PcaSift::train(PcaSiftConfig::default(), &imgs);
        let f = pca.extract(&scene());
        assert!(!f.is_empty());
    }

    #[test]
    fn projection_rejects_wrong_dimension() {
        let basis = PcaBasis::seeded(1, 4);
        let result = std::panic::catch_unwind(|| basis.project(&[0.0; 3]));
        assert!(result.is_err());
    }

    #[test]
    fn gradient_patch_is_unit_norm() {
        let img = scene().to_f32();
        let raw = gradient_patch(&img, 25, 25, 0.7);
        assert_eq!(raw.len(), RAW_DIM);
        let norm: f32 = raw.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4 || norm == 0.0);
    }
}
