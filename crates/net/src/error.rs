use std::error::Error;
use std::fmt;

/// Errors from trace construction and transfer simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// A bandwidth or time parameter was invalid (negative, NaN, ...).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// The transfer could not complete: the trace stayed at (near) zero for
    /// longer than the stall limit.
    Stalled {
        /// Bytes that were requested.
        bytes: usize,
        /// Simulated seconds waited before giving up.
        waited_seconds: f64,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` out of range: {value}")
            }
            NetError::Stalled { bytes, waited_seconds } => {
                write!(f, "transfer of {bytes} bytes stalled after {waited_seconds} simulated seconds")
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetError::InvalidParameter { name: "bps", value: -1.0 };
        assert!(e.to_string().contains("bps"));
        let s = NetError::Stalled { bytes: 100, waited_seconds: 3600.0 };
        assert!(s.to_string().contains("stalled"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
