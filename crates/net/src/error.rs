use std::error::Error;
use std::fmt;

/// Errors from trace construction and transfer simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// A bandwidth or time parameter was invalid (negative, NaN, ...).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// The transfer could not complete: the trace stayed at (near) zero for
    /// longer than the stall limit.
    Stalled {
        /// Bytes that were requested.
        bytes: usize,
        /// Simulated seconds waited before giving up.
        waited_seconds: f64,
    },
    /// A resumable transfer gave up after exhausting its retry budget.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// Bytes confirmed delivered across all attempts.
        delivered_bytes: usize,
        /// Bytes that were requested in total.
        total_bytes: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` out of range: {value}")
            }
            NetError::Stalled {
                bytes,
                waited_seconds,
            } => {
                write!(
                    f,
                    "transfer of {bytes} bytes stalled after {waited_seconds} simulated seconds"
                )
            }
            NetError::RetriesExhausted {
                attempts,
                delivered_bytes,
                total_bytes,
            } => {
                write!(
                    f,
                    "retries exhausted after {attempts} attempts: \
                     {delivered_bytes} of {total_bytes} bytes delivered"
                )
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetError::InvalidParameter {
            name: "bps",
            value: -1.0,
        };
        assert!(e.to_string().contains("bps"));
        let s = NetError::Stalled {
            bytes: 100,
            waited_seconds: 3600.0,
        };
        assert!(s.to_string().contains("stalled"));
        let r = NetError::RetriesExhausted {
            attempts: 4,
            delivered_bytes: 10,
            total_bytes: 100,
        };
        assert!(r.to_string().contains("4 attempts"));
        assert!(r.to_string().contains("10 of 100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
