#![warn(missing_docs)]

//! Simulated disaster-constrained network for the BEES reproduction.
//!
//! The paper evaluates over WiFi throttled to "fluctuate from 0 Kbps to
//! 512 Kbps" to emulate a disaster-damaged network. This crate provides the
//! same emulation one level deeper:
//!
//! * [`SimClock`] — simulated wall-clock time in seconds,
//! * [`BandwidthTrace`] — deterministic piecewise-constant bandwidth over
//!   time (constant, seeded-fluctuating, or an explicit schedule),
//! * [`Channel`] — computes how long a payload of N bytes takes to transfer
//!   starting at a given instant by integrating the trace; transfer
//!   durations feed both the delay metrics (Fig. 11) and the radio energy
//!   model,
//! * [`FaultModel`] / [`FaultyChannel`] — deterministic fault injection
//!   (blackout windows, mid-flight drops, timeouts) layered on any trace,
//!   reporting partial progress per attempt,
//! * [`RetryPolicy`] — energy-aware retry budgets with deterministic
//!   exponential backoff and seeded jitter, consumed by the resumable
//!   transfer path in `bees-core`,
//! * [`SharedCell`] / [`SharedCellConfig`] — one oversubscribed uplink
//!   cell (with outage and capacity-collapse fault windows) that a whole
//!   fleet draws airtime from through per-epoch grants.
//!
//! # Examples
//!
//! ```
//! use bees_net::{BandwidthTrace, Channel};
//!
//! # fn main() -> Result<(), bees_net::NetError> {
//! let channel = Channel::new(BandwidthTrace::constant(256_000.0)?); // 256 Kbps
//! let t = channel.transfer_duration(0.0, 32_000)?; // 32 KB
//! assert!((t - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

mod cell;
mod channel;
mod clock;
mod error;
mod fault;
mod retry;
mod trace;
pub mod wire;

pub use cell::{SharedCell, SharedCellConfig};
pub use channel::{Channel, TransferProgress, DEFAULT_STALL_LIMIT_S};
pub use clock::SimClock;
pub use error::NetError;
pub use fault::{FaultKind, FaultModel, FaultyChannel, TransferOutcome};
pub use retry::RetryPolicy;
pub use trace::BandwidthTrace;

/// Shorthand result type for network operations.
pub type Result<T> = std::result::Result<T, NetError>;
