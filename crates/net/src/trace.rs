//! Deterministic bandwidth traces.

use crate::{NetError, Result};
use serde::{Deserialize, Serialize};

/// A piecewise-constant bandwidth-over-time function in bits per second.
///
/// Three flavors:
///
/// * [`constant`](BandwidthTrace::constant) — fixed rate,
/// * [`fluctuating`](BandwidthTrace::fluctuating) — seeded pseudo-random
///   rate per interval, uniform in `[min_bps, max_bps]` (the paper's "0 to
///   512 Kbps" WiFi emulation),
/// * [`schedule`](BandwidthTrace::schedule) — an explicit list of
///   `(duration_s, bps)` segments, repeating cyclically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BandwidthTrace {
    /// Fixed bandwidth.
    Constant {
        /// Rate in bits per second.
        bps: f64,
    },
    /// Seeded pseudo-random bandwidth, constant within each interval.
    Fluctuating {
        /// Seed for the per-interval hash.
        seed: u64,
        /// Minimum rate in bits per second.
        min_bps: f64,
        /// Maximum rate in bits per second.
        max_bps: f64,
        /// Interval length in seconds.
        interval_s: f64,
    },
    /// Explicit repeating schedule of `(duration_s, bps)` segments.
    Schedule {
        /// The segments; the schedule repeats after the last.
        segments: Vec<(f64, f64)>,
    },
}

impl BandwidthTrace {
    /// A constant-rate trace.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] if `bps` is negative or not
    /// finite.
    pub fn constant(bps: f64) -> Result<Self> {
        if !bps.is_finite() || bps < 0.0 {
            return Err(NetError::InvalidParameter {
                name: "bps",
                value: bps,
            });
        }
        Ok(BandwidthTrace::Constant { bps })
    }

    /// A seeded fluctuating trace uniform in `[min_bps, max_bps]` per
    /// interval.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] for negative rates, inverted
    /// bounds, or a non-positive interval.
    pub fn fluctuating(seed: u64, min_bps: f64, max_bps: f64, interval_s: f64) -> Result<Self> {
        if !min_bps.is_finite() || min_bps < 0.0 {
            return Err(NetError::InvalidParameter {
                name: "min_bps",
                value: min_bps,
            });
        }
        if !max_bps.is_finite() || max_bps < min_bps {
            return Err(NetError::InvalidParameter {
                name: "max_bps",
                value: max_bps,
            });
        }
        if !interval_s.is_finite() || interval_s <= 0.0 {
            return Err(NetError::InvalidParameter {
                name: "interval_s",
                value: interval_s,
            });
        }
        Ok(BandwidthTrace::Fluctuating {
            seed,
            min_bps,
            max_bps,
            interval_s,
        })
    }

    /// The paper's WiFi emulation: 0–512 Kbps, new rate every 2 s.
    pub fn disaster_wifi(seed: u64) -> Self {
        BandwidthTrace::fluctuating(seed, 0.0, 512_000.0, 2.0).expect("constants are valid")
    }

    /// An explicit repeating schedule.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] if `segments` is empty or any
    /// duration/rate is invalid.
    pub fn schedule(segments: Vec<(f64, f64)>) -> Result<Self> {
        if segments.is_empty() {
            return Err(NetError::InvalidParameter {
                name: "segments",
                value: 0.0,
            });
        }
        for &(d, bps) in &segments {
            if !d.is_finite() || d <= 0.0 {
                return Err(NetError::InvalidParameter {
                    name: "segment duration",
                    value: d,
                });
            }
            if !bps.is_finite() || bps < 0.0 {
                return Err(NetError::InvalidParameter {
                    name: "segment bps",
                    value: bps,
                });
            }
        }
        Ok(BandwidthTrace::Schedule { segments })
    }

    /// Bandwidth in bits per second at simulated time `t` (seconds).
    pub fn bps_at(&self, t: f64) -> f64 {
        match self {
            BandwidthTrace::Constant { bps } => *bps,
            BandwidthTrace::Fluctuating {
                seed,
                min_bps,
                max_bps,
                interval_s,
            } => {
                let interval = (t / interval_s).floor() as i64 as u64;
                let h = hash64(seed.wrapping_add(interval.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                min_bps + unit(h) * (max_bps - min_bps)
            }
            BandwidthTrace::Schedule { segments } => locate_segment(segments, t).2,
        }
    }

    /// End of the piecewise-constant segment containing time `t`: the next
    /// instant at which the rate may change.
    pub fn segment_end(&self, t: f64) -> f64 {
        match self {
            BandwidthTrace::Constant { .. } => f64::INFINITY,
            BandwidthTrace::Fluctuating { interval_s, .. } => {
                ((t / interval_s).floor() + 1.0) * interval_s
            }
            BandwidthTrace::Schedule { segments } => locate_segment(segments, t).1,
        }
    }
}

/// Locates the schedule segment containing time `t`, returning
/// `(segment_start, segment_end, bps)`. A single source of truth keeps
/// `bps_at` and `segment_end` mutually consistent even when floating-point
/// cycle arithmetic puts `t` exactly on a boundary (in which case `t`
/// belongs to the *next* segment and `segment_end` is strictly after `t`).
fn locate_segment(segments: &[(f64, f64)], t: f64) -> (f64, f64, f64) {
    let cycle: f64 = segments.iter().map(|&(d, _)| d).sum();
    let base = (t / cycle).floor() * cycle;
    let mut start = base;
    for &(d, bps) in segments {
        let end = start + d;
        if t < end {
            return (start, end, bps);
        }
        start = end;
    }
    // Accumulated rounding pushed t to (or past) the cycle's end: it
    // belongs to the first segment of the next cycle.
    let (d0, bps0) = segments[0];
    (start, start + d0, bps0)
}

/// SplitMix64 finalizer: a high-quality deterministic 64-bit hash. Shared
/// with the fault model so every stochastic decision in the crate draws
/// from the same well-mixed family.
pub(crate) fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform `f64` in `[0, 1)` using the top 53 bits.
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_is_flat() {
        let t = BandwidthTrace::constant(1000.0).unwrap();
        assert_eq!(t.bps_at(0.0), 1000.0);
        assert_eq!(t.bps_at(1e6), 1000.0);
        assert!(t.segment_end(5.0).is_infinite());
    }

    #[test]
    fn fluctuating_trace_is_deterministic_and_bounded() {
        let t = BandwidthTrace::disaster_wifi(42);
        let again = BandwidthTrace::disaster_wifi(42);
        for i in 0..100 {
            let time = i as f64 * 1.7;
            let b = t.bps_at(time);
            assert_eq!(b, again.bps_at(time));
            assert!((0.0..=512_000.0).contains(&b), "bps {b}");
        }
    }

    #[test]
    fn fluctuating_trace_varies() {
        let t = BandwidthTrace::disaster_wifi(7);
        let values: Vec<f64> = (0..20).map(|i| t.bps_at(i as f64 * 2.0)).collect();
        let distinct = values
            .iter()
            .filter(|&&v| (v - values[0]).abs() > 1.0)
            .count();
        assert!(distinct > 5, "trace should fluctuate: {values:?}");
    }

    #[test]
    fn fluctuating_is_constant_within_interval() {
        let t = BandwidthTrace::fluctuating(1, 0.0, 1000.0, 2.0).unwrap();
        assert_eq!(t.bps_at(4.0), t.bps_at(5.9));
        assert_eq!(t.segment_end(4.5), 6.0);
    }

    #[test]
    fn schedule_repeats() {
        let t = BandwidthTrace::schedule(vec![(1.0, 100.0), (2.0, 200.0)]).unwrap();
        assert_eq!(t.bps_at(0.5), 100.0);
        assert_eq!(t.bps_at(1.5), 200.0);
        assert_eq!(t.bps_at(3.5), 100.0); // wrapped
        assert_eq!(t.segment_end(0.5), 1.0);
        assert_eq!(t.segment_end(1.5), 3.0);
        assert_eq!(t.segment_end(3.2), 4.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(BandwidthTrace::constant(-1.0).is_err());
        assert!(BandwidthTrace::constant(f64::NAN).is_err());
        assert!(BandwidthTrace::fluctuating(0, 10.0, 5.0, 1.0).is_err());
        assert!(BandwidthTrace::fluctuating(0, 0.0, 5.0, 0.0).is_err());
        assert!(BandwidthTrace::schedule(vec![]).is_err());
        assert!(BandwidthTrace::schedule(vec![(0.0, 5.0)]).is_err());
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let a = BandwidthTrace::disaster_wifi(1);
        let b = BandwidthTrace::disaster_wifi(2);
        let same = (0..50)
            .filter(|&i| a.bps_at(i as f64 * 2.0) == b.bps_at(i as f64 * 2.0))
            .count();
        assert!(same < 5);
    }
}
