//! Deterministic fault injection for the disaster channel.
//!
//! Post-disaster links do not merely fluctuate — they disconnect, black
//! out, and cut transfers mid-flight. [`FaultModel`] describes those
//! impairments as a pure function of `(seed, time, attempt index)`, so
//! every run is reproducible at any thread count, and [`FaultyChannel`]
//! layers them over any [`Channel`], reporting *partial progress* — the
//! bytes delivered before the cut and the airtime consumed — instead of
//! the all-or-nothing durations of [`Channel::transfer_duration`].

use crate::trace::{hash64, unit};
use crate::{Channel, NetError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Upper bound on the number of blackout windows scanned when looking for
/// the next dark one; bounds the search deterministically when the
/// blackout probability is tiny.
const MAX_WINDOW_SCAN: u64 = 100_000;

/// Salt mixed into the per-window blackout coin.
const BLACKOUT_SALT: u64 = 0xB1AC_0017_0000_0001;
/// Salt mixed into the per-attempt drop coin.
const DROP_SALT: u64 = 0xD20F_00AA_0000_0002;
/// Salt mixed into the per-chunk corruption coin.
const CORRUPT_SALT: u64 = 0xC022_0BAD_0000_0004;

/// How a transfer attempt was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The link entered a blackout window while the transfer was in flight
    /// (or was already dark when the attempt started).
    Disconnected,
    /// The attempt was cut mid-flight by the per-attempt failure coin.
    Dropped,
    /// The attempt exceeded its timeout or the channel's stall limit.
    TimedOut,
    /// A delivered transport chunk failed its CRC check and must be
    /// re-requested.
    Corrupted,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultKind::Disconnected => "disconnected",
            FaultKind::Dropped => "dropped",
            FaultKind::TimedOut => "timed out",
            FaultKind::Corrupted => "corrupted",
        };
        f.write_str(name)
    }
}

/// A deterministic, seeded model of disaster-link impairments layered on
/// top of a [`crate::BandwidthTrace`].
///
/// Three impairment families:
///
/// * **Blackout windows** — time is divided into periods of
///   `blackout_period_s`; each period is independently dark (for its first
///   `blackout_duration_s` seconds) with probability
///   `blackout_probability`, decided by a seeded hash of the period index.
///   A transfer in flight when a blackout begins is cut there; one started
///   inside a blackout fails immediately. Explicit windows (a scripted
///   outage schedule) can be layered on via `blackout_windows`.
/// * **Per-attempt drops** — each attempt is cut mid-flight with
///   probability `drop_probability`, at a seeded fraction of its payload.
/// * **Per-chunk corruption** — each delivered transport chunk is
///   independently bit-flipped in transit with probability
///   `corrupt_probability`, decided by a seeded hash of
///   `(attempt, chunk index)`. The CRC framing in [`crate::wire`] detects
///   it; the retry loop re-requests the chunk.
///
/// [`FaultModel::none`] disables all three and reproduces the perfectly
/// reliable channel bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Probability that a given transfer attempt is cut mid-flight.
    pub drop_probability: f64,
    /// Probability that a given blackout window is dark.
    pub blackout_probability: f64,
    /// Window period in seconds; each period is independently dark or
    /// clear.
    pub blackout_period_s: f64,
    /// Dark span at the start of a dark period, in seconds.
    pub blackout_duration_s: f64,
    /// Probability that a delivered transport chunk arrives bit-flipped
    /// (defaults to 0: no corruption).
    #[serde(default)]
    pub corrupt_probability: f64,
    /// Explicit blackout windows `(start_s, end_s)` layered on top of the
    /// seeded periodic ones — a scripted outage schedule. Must be sorted by
    /// start, non-overlapping, each with positive span (see
    /// [`validate`](FaultModel::validate)). Defaults to empty.
    #[serde(default)]
    pub blackout_windows: Vec<(f64, f64)>,
}

impl Default for FaultModel {
    /// Defaults to [`FaultModel::none`]: faults are strictly opt-in.
    fn default() -> Self {
        FaultModel::none()
    }
}

impl FaultModel {
    /// The fault-free model: every transfer behaves exactly as on the
    /// underlying [`Channel`].
    pub fn none() -> Self {
        FaultModel {
            seed: 0,
            drop_probability: 0.0,
            blackout_probability: 0.0,
            blackout_period_s: 1.0,
            blackout_duration_s: 0.0,
            corrupt_probability: 0.0,
            blackout_windows: Vec::new(),
        }
    }

    /// A validated fault model.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] for probabilities outside
    /// `[0, 1]`, a non-positive period, a negative duration, or a duration
    /// exceeding the period.
    pub fn new(
        seed: u64,
        drop_probability: f64,
        blackout_probability: f64,
        blackout_period_s: f64,
        blackout_duration_s: f64,
    ) -> Result<Self> {
        let model = FaultModel {
            seed,
            drop_probability,
            blackout_probability,
            blackout_period_s,
            blackout_duration_s,
            corrupt_probability: 0.0,
            blackout_windows: Vec::new(),
        };
        model.validate()?;
        Ok(model)
    }

    /// The same model with chunk corruption probability `p` — the builder
    /// for the third impairment family, which [`new`](FaultModel::new)
    /// leaves off.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] if `p` is outside `[0, 1]`.
    pub fn with_corruption(mut self, p: f64) -> Result<Self> {
        self.corrupt_probability = p;
        self.validate()?;
        Ok(self)
    }

    /// The same model with an explicit (scripted) blackout window schedule
    /// layered on the seeded periodic windows.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] if the windows are unsorted,
    /// overlapping, non-finite, negative, or empty-spanned.
    pub fn with_blackout_windows(mut self, windows: Vec<(f64, f64)>) -> Result<Self> {
        self.blackout_windows = windows;
        self.validate()?;
        Ok(self)
    }

    /// A moderately hostile disaster-network preset: 12 % of attempts cut
    /// mid-flight, a quarter of 30-second windows dark for 10 seconds.
    pub fn disaster(seed: u64) -> Self {
        FaultModel::new(seed, 0.12, 0.25, 30.0, 10.0).expect("constants are valid")
    }

    /// Whether this model can never inject a fault.
    pub fn is_none(&self) -> bool {
        self.drop_probability <= 0.0
            && (self.blackout_probability <= 0.0 || self.blackout_duration_s <= 0.0)
            && self.corrupt_probability <= 0.0
            && self.blackout_windows.is_empty()
    }

    /// Checks every field.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if !self.drop_probability.is_finite() || !(0.0..=1.0).contains(&self.drop_probability) {
            return Err(NetError::InvalidParameter {
                name: "drop_probability",
                value: self.drop_probability,
            });
        }
        if !self.blackout_probability.is_finite()
            || !(0.0..=1.0).contains(&self.blackout_probability)
        {
            return Err(NetError::InvalidParameter {
                name: "blackout_probability",
                value: self.blackout_probability,
            });
        }
        if !self.blackout_period_s.is_finite() || self.blackout_period_s <= 0.0 {
            return Err(NetError::InvalidParameter {
                name: "blackout_period_s",
                value: self.blackout_period_s,
            });
        }
        if !self.blackout_duration_s.is_finite()
            || self.blackout_duration_s < 0.0
            || self.blackout_duration_s > self.blackout_period_s
        {
            return Err(NetError::InvalidParameter {
                name: "blackout_duration_s",
                value: self.blackout_duration_s,
            });
        }
        if !self.corrupt_probability.is_finite() || !(0.0..=1.0).contains(&self.corrupt_probability)
        {
            return Err(NetError::InvalidParameter {
                name: "corrupt_probability",
                value: self.corrupt_probability,
            });
        }
        // Explicit windows must be a well-formed schedule: finite,
        // non-negative, positive span, sorted by start, and non-overlapping
        // — rejected here rather than silently reordered or merged at
        // runtime.
        let mut prev_end = 0.0f64;
        for &(start, end) in &self.blackout_windows {
            if !start.is_finite() || start < 0.0 {
                return Err(NetError::InvalidParameter {
                    name: "blackout_windows start",
                    value: start,
                });
            }
            if !end.is_finite() || end <= start {
                return Err(NetError::InvalidParameter {
                    name: "blackout_windows end",
                    value: end,
                });
            }
            if start < prev_end {
                return Err(NetError::InvalidParameter {
                    name: "blackout_windows overlap/order",
                    value: start,
                });
            }
            prev_end = end;
        }
        Ok(())
    }

    /// The same impairment statistics under a different seed — what a
    /// fleet uses so phones do not fail in lockstep.
    pub fn reseeded(&self, seed: u64) -> Self {
        FaultModel {
            seed,
            ..self.clone()
        }
    }

    /// The blackout window covering time `t`, as `(start_s, end_s)`, if
    /// the link is dark at `t` — checking the explicit schedule first, then
    /// the seeded periodic windows.
    pub fn blackout_at(&self, t: f64) -> Option<(f64, f64)> {
        for &(start, end) in &self.blackout_windows {
            if t >= start && t < end {
                return Some((start, end));
            }
        }
        if self.blackout_probability <= 0.0 || self.blackout_duration_s <= 0.0 {
            return None;
        }
        let k = (t / self.blackout_period_s).floor().max(0.0) as u64;
        let start = k as f64 * self.blackout_period_s;
        if self.window_is_dark(k) && t >= start && t < start + self.blackout_duration_s {
            Some((start, start + self.blackout_duration_s))
        } else {
            None
        }
    }

    /// The first instant strictly after `t` at which a blackout begins —
    /// explicit or periodic — or `f64::INFINITY` if none is found within
    /// the deterministic scan horizon.
    pub fn next_blackout_start(&self, t: f64) -> f64 {
        let explicit = self
            .blackout_windows
            .iter()
            .map(|&(start, _)| start)
            .find(|&start| start > t)
            .unwrap_or(f64::INFINITY);
        if self.blackout_probability <= 0.0 || self.blackout_duration_s <= 0.0 {
            return explicit;
        }
        let first = (t / self.blackout_period_s).floor().max(0.0) as u64;
        for k in first..first.saturating_add(MAX_WINDOW_SCAN) {
            let start = k as f64 * self.blackout_period_s;
            if start >= explicit {
                break;
            }
            if start > t && self.window_is_dark(k) {
                return start;
            }
        }
        explicit
    }

    /// Where the per-attempt failure coin cuts attempt number `attempt`:
    /// the fraction of the payload delivered before the cut, or `None`
    /// when the attempt may run to completion.
    pub fn attempt_cut_fraction(&self, attempt: u64) -> Option<f64> {
        if self.drop_probability <= 0.0 {
            return None;
        }
        let coin = hash64(
            self.seed
                ^ attempt
                    .wrapping_mul(0x94D0_49BB_1331_11EB)
                    .wrapping_add(DROP_SALT),
        );
        if unit(coin) >= self.drop_probability {
            return None;
        }
        // A second hash round decorrelates the cut point from the coin.
        Some(0.05 + 0.9 * unit(hash64(coin)))
    }

    /// Whether transport chunk `chunk_index` of attempt number `attempt`
    /// arrives bit-flipped. Pure in `(seed, attempt, chunk_index)`, so the
    /// retry loop and a re-run agree on every corruption event at any
    /// thread count.
    pub fn chunk_corrupted(&self, attempt: u64, chunk_index: u64) -> bool {
        if self.corrupt_probability <= 0.0 {
            return false;
        }
        let h = hash64(
            self.seed
                ^ attempt.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ chunk_index
                    .wrapping_mul(0x9FB2_1C65_1E98_DF25)
                    .wrapping_add(CORRUPT_SALT),
        );
        unit(h) < self.corrupt_probability
    }

    fn window_is_dark(&self, k: u64) -> bool {
        let h = hash64(
            self.seed
                ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(BLACKOUT_SALT),
        );
        unit(h) < self.blackout_probability
    }
}

/// What actually happened to one transfer attempt on a [`FaultyChannel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferOutcome {
    /// Whole bytes delivered before the attempt ended.
    pub delivered_bytes: usize,
    /// Wall-clock seconds the attempt occupied — the radio is powered the
    /// whole time, so this is the energy-relevant span.
    pub elapsed_s: f64,
    /// Seconds of `elapsed_s` during which the trace was actually moving
    /// bits (excludes dead air).
    pub active_airtime_s: f64,
    /// How the attempt was interrupted; `None` means it completed.
    pub fault: Option<FaultKind>,
}

impl TransferOutcome {
    /// Whether every requested byte was delivered.
    pub fn completed(&self) -> bool {
        self.fault.is_none()
    }
}

/// A [`Channel`] with a [`FaultModel`] layered on top.
///
/// Stateful: each call to [`transfer`](FaultyChannel::transfer) consumes
/// one index from a deterministic attempt counter, so a retried transfer
/// sees fresh — but reproducible — coin flips.
///
/// # Examples
///
/// ```
/// use bees_net::{BandwidthTrace, Channel, FaultModel, FaultyChannel};
///
/// # fn main() -> Result<(), bees_net::NetError> {
/// let channel = Channel::new(BandwidthTrace::constant(256_000.0)?);
/// let mut faulty = FaultyChannel::new(channel, FaultModel::none());
/// let out = faulty.transfer(0.0, 32_000, None);
/// assert!(out.completed());
/// assert_eq!(out.delivered_bytes, 32_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyChannel {
    channel: Channel,
    faults: FaultModel,
    attempts: u64,
}

impl FaultyChannel {
    /// Wraps a channel with a fault model.
    pub fn new(channel: Channel, faults: FaultModel) -> Self {
        FaultyChannel {
            channel,
            faults,
            attempts: 0,
        }
    }

    /// The underlying fault-free channel.
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Mutable access to the underlying channel, so a shared-cell grant
    /// can install or clear its per-epoch rate override without disturbing
    /// the fault state.
    pub fn channel_mut(&mut self) -> &mut Channel {
        &mut self.channel
    }

    /// The fault model in force.
    pub fn faults(&self) -> &FaultModel {
        &self.faults
    }

    /// Transfer attempts made so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Runs one transfer attempt of `bytes` starting at `start_s`,
    /// reporting partial progress instead of all-or-nothing durations.
    /// `timeout_s` bounds the attempt's wall-clock span; the channel's
    /// stall limit always applies as a backstop.
    pub fn transfer(
        &mut self,
        start_s: f64,
        bytes: usize,
        timeout_s: Option<f64>,
    ) -> TransferOutcome {
        let attempt = self.attempts;
        self.attempts += 1;
        if bytes == 0 {
            return TransferOutcome {
                delivered_bytes: 0,
                elapsed_s: 0.0,
                active_airtime_s: 0.0,
                fault: None,
            };
        }
        if self.faults.blackout_at(start_s).is_some() {
            return TransferOutcome {
                delivered_bytes: 0,
                elapsed_s: 0.0,
                active_airtime_s: 0.0,
                fault: Some(FaultKind::Disconnected),
            };
        }
        let cut = self.faults.attempt_cut_fraction(attempt);
        let target_bytes = match cut {
            // A cut attempt dies strictly before its last byte.
            Some(f) => ((bytes as f64 * f) as usize).min(bytes - 1),
            None => bytes,
        };
        let blackout = self.faults.next_blackout_start(start_s);
        let timeout_end = timeout_s.map_or(f64::INFINITY, |t| start_s + t.max(0.0));
        let stall_end = start_s + self.channel.stall_limit_s();
        let deadline = blackout.min(timeout_end);
        let p = self
            .channel
            .transfer_progress(start_s, target_bytes, deadline);
        let fault = if p.completed {
            // The integration delivered `target_bytes`; when that was a cut
            // point rather than the full payload, the attempt failed there.
            cut.map(|_| FaultKind::Dropped)
        } else if blackout <= timeout_end && blackout <= stall_end {
            Some(FaultKind::Disconnected)
        } else {
            Some(FaultKind::TimedOut)
        };
        TransferOutcome {
            delivered_bytes: p.delivered_bytes,
            elapsed_s: p.end_s - start_s,
            active_airtime_s: p.active_airtime_s,
            fault,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BandwidthTrace;

    fn channel() -> Channel {
        Channel::new(BandwidthTrace::constant(256_000.0).unwrap())
    }

    #[test]
    fn none_model_never_faults() {
        let mut ch = FaultyChannel::new(channel(), FaultModel::none());
        for k in 0..50 {
            let out = ch.transfer(k as f64 * 3.0, 32_000, None);
            assert!(out.completed());
            assert_eq!(out.delivered_bytes, 32_000);
            assert!(
                (out.elapsed_s - 1.0).abs() < 1e-9,
                "elapsed {}",
                out.elapsed_s
            );
        }
        assert_eq!(ch.attempts(), 50);
    }

    #[test]
    fn transfer_matches_duration_without_faults() {
        let trace = BandwidthTrace::disaster_wifi(3);
        let plain = Channel::new(trace.clone());
        let mut faulty = FaultyChannel::new(Channel::new(trace), FaultModel::none());
        for (start, bytes) in [(0.0, 50_000), (7.3, 120_000), (100.0, 5_000)] {
            let d = plain.transfer_duration(start, bytes).unwrap();
            let out = faulty.transfer(start, bytes, None);
            assert!(out.completed());
            assert!(
                (out.elapsed_s - d).abs() < 1e-9,
                "elapsed {} vs duration {d}",
                out.elapsed_s
            );
        }
    }

    #[test]
    fn dropped_attempts_report_partial_progress() {
        let model = FaultModel::new(9, 1.0, 0.0, 30.0, 10.0).unwrap();
        let mut ch = FaultyChannel::new(channel(), model);
        let out = ch.transfer(0.0, 100_000, None);
        assert_eq!(out.fault, Some(FaultKind::Dropped));
        assert!(out.delivered_bytes > 0, "cut fraction floor is 5%");
        assert!(out.delivered_bytes < 100_000);
        assert!(out.elapsed_s > 0.0);
    }

    #[test]
    fn attempts_see_fresh_coins_deterministically() {
        let model = FaultModel::new(5, 0.5, 0.0, 30.0, 10.0).unwrap();
        let run = || {
            let mut ch = FaultyChannel::new(channel(), model.clone());
            (0..20)
                .map(|i| ch.transfer(i as f64 * 10.0, 8_000, None).fault.is_some())
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(
            a.iter().any(|&f| f),
            "at p=0.5 some of 20 attempts should drop"
        );
        assert!(
            a.iter().any(|&f| !f),
            "at p=0.5 some of 20 attempts should pass"
        );
    }

    #[test]
    fn blackout_cuts_inflight_transfers() {
        // Every 10 s window dark for its first 4 s; 256 Kbps clear air.
        let model = FaultModel::new(1, 0.0, 1.0, 10.0, 4.0).unwrap();
        let mut ch = FaultyChannel::new(channel(), model);
        // Started at 4.0 (just clear), 100 KB needs 3.125 s: done by 7.125.
        let ok = ch.transfer(4.0, 100_000, None);
        assert!(ok.completed(), "fault {:?}", ok.fault);
        // Started at 8.0, the blackout at 10.0 cuts it after 2 s = 64 KB.
        let cut = ch.transfer(8.0, 100_000, None);
        assert_eq!(cut.fault, Some(FaultKind::Disconnected));
        assert_eq!(cut.delivered_bytes, 64_000);
        assert!(
            (cut.elapsed_s - 2.0).abs() < 1e-6,
            "elapsed {}",
            cut.elapsed_s
        );
        // Starting inside a blackout fails immediately.
        let dark = ch.transfer(11.0, 1_000, None);
        assert_eq!(dark.fault, Some(FaultKind::Disconnected));
        assert_eq!(dark.delivered_bytes, 0);
        assert_eq!(dark.elapsed_s, 0.0);
    }

    #[test]
    fn timeout_bounds_attempts() {
        let mut ch = FaultyChannel::new(channel(), FaultModel::none());
        // 1 MB at 256 Kbps needs 31.25 s; a 2 s timeout delivers 64 KB.
        let out = ch.transfer(0.0, 1_000_000, Some(2.0));
        assert_eq!(out.fault, Some(FaultKind::TimedOut));
        assert_eq!(out.delivered_bytes, 64_000);
        assert!((out.elapsed_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stall_limit_is_the_backstop() {
        let ch0 = Channel::new(BandwidthTrace::constant(0.0).unwrap())
            .with_stall_limit(50.0)
            .unwrap();
        let mut ch = FaultyChannel::new(ch0, FaultModel::none());
        let out = ch.transfer(0.0, 1_000, None);
        assert_eq!(out.fault, Some(FaultKind::TimedOut));
        assert_eq!(out.delivered_bytes, 0);
    }

    #[test]
    fn blackout_windows_are_deterministic_and_seed_sensitive() {
        let a = FaultModel::new(10, 0.0, 0.5, 20.0, 5.0).unwrap();
        let b = FaultModel::new(11, 0.0, 0.5, 20.0, 5.0).unwrap();
        let dark = |m: &FaultModel| {
            (0..200)
                .filter(|&k| m.blackout_at(k as f64 * 20.0 + 1.0).is_some())
                .count()
        };
        assert_eq!(dark(&a), dark(&a));
        let (da, db) = (dark(&a), dark(&b));
        assert!(da > 40 && da < 160, "roughly half of 200 windows: {da}");
        let differs = (0..200).any(|k| {
            let t = k as f64 * 20.0 + 1.0;
            a.blackout_at(t).is_some() != b.blackout_at(t).is_some()
        });
        assert!(
            differs,
            "different seeds must give different windows: {da} vs {db}"
        );
    }

    #[test]
    fn next_blackout_start_is_strictly_after() {
        let m = FaultModel::new(2, 0.0, 0.4, 15.0, 6.0).unwrap();
        let mut t = 0.0;
        for _ in 0..20 {
            let next = m.next_blackout_start(t);
            if !next.is_finite() {
                break;
            }
            assert!(next > t);
            assert!(m.blackout_at(next + 1e-9).is_some());
            t = next;
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(FaultModel::new(0, -0.1, 0.0, 1.0, 0.0).is_err());
        assert!(FaultModel::new(0, 1.1, 0.0, 1.0, 0.0).is_err());
        assert!(FaultModel::new(0, 0.0, f64::NAN, 1.0, 0.0).is_err());
        assert!(FaultModel::new(0, 0.0, 0.5, 0.0, 0.0).is_err());
        assert!(FaultModel::new(0, 0.0, 0.5, 10.0, -1.0).is_err());
        assert!(FaultModel::new(0, 0.0, 0.5, 10.0, 11.0).is_err());
        assert!(FaultModel::new(0, 0.5, 0.5, 10.0, 5.0).is_ok());
    }

    #[test]
    fn none_is_none_and_disaster_is_not() {
        assert!(FaultModel::none().is_none());
        assert!(!FaultModel::disaster(1).is_none());
        assert!(FaultModel::disaster(1).validate().is_ok());
        // Either new impairment family alone disqualifies the fast path.
        let corrupt = FaultModel::none().with_corruption(0.1).unwrap();
        assert!(!corrupt.is_none());
        let scripted = FaultModel::none()
            .with_blackout_windows(vec![(5.0, 8.0)])
            .unwrap();
        assert!(!scripted.is_none());
    }

    #[test]
    fn chunk_corruption_is_deterministic_and_seed_sensitive() {
        let m = FaultModel::none().with_corruption(0.3).unwrap();
        let flips = |m: &FaultModel| {
            (0..10)
                .flat_map(|a| (0..20).map(move |c| (a, c)))
                .map(|(a, c)| m.chunk_corrupted(a, c))
                .collect::<Vec<_>>()
        };
        assert_eq!(flips(&m), flips(&m));
        let hits = flips(&m).iter().filter(|&&f| f).count();
        assert!(
            (20..100).contains(&hits),
            "~30% of 200 chunk coins should flip, got {hits}"
        );
        let reseeded = m.reseeded(99);
        assert_ne!(flips(&m), flips(&reseeded));
        // Zero probability never flips, regardless of indices.
        let clean = FaultModel::none();
        assert!((0..50).all(|c| !clean.chunk_corrupted(0, c)));
    }

    #[test]
    fn explicit_windows_black_out_the_link() {
        let m = FaultModel::none()
            .with_blackout_windows(vec![(10.0, 12.0), (40.0, 45.0)])
            .unwrap();
        assert!(m.blackout_at(9.99).is_none());
        assert_eq!(m.blackout_at(10.0), Some((10.0, 12.0)));
        assert_eq!(m.blackout_at(11.5), Some((10.0, 12.0)));
        assert!(m.blackout_at(12.0).is_none());
        assert_eq!(m.blackout_at(44.0), Some((40.0, 45.0)));
        assert_eq!(m.next_blackout_start(0.0), 10.0);
        assert_eq!(m.next_blackout_start(10.0), 40.0);
        assert_eq!(m.next_blackout_start(45.0), f64::INFINITY);
        // A transfer crossing a scripted window is cut at its start.
        let mut ch = FaultyChannel::new(channel(), m);
        let cut = ch.transfer(8.0, 100_000, None);
        assert_eq!(cut.fault, Some(FaultKind::Disconnected));
        assert_eq!(cut.delivered_bytes, 64_000); // 2 s at 256 Kbps
    }

    #[test]
    fn explicit_windows_combine_with_periodic_ones() {
        // Periodic: every 10 s window dark for 4 s. Explicit: (5, 6).
        let m = FaultModel::new(1, 0.0, 1.0, 10.0, 4.0)
            .unwrap()
            .with_blackout_windows(vec![(5.0, 6.0)])
            .unwrap();
        assert!(m.blackout_at(1.0).is_some(), "periodic window");
        assert!(m.blackout_at(5.5).is_some(), "explicit window");
        assert!(m.blackout_at(7.0).is_none());
        // Next start after 4.0 is the explicit 5.0, before periodic 10.0.
        assert_eq!(m.next_blackout_start(4.0), 5.0);
        assert_eq!(m.next_blackout_start(6.0), 10.0);
    }

    #[test]
    fn malformed_window_schedules_are_rejected() {
        let base = FaultModel::none;
        // Overlapping.
        assert!(base()
            .with_blackout_windows(vec![(0.0, 10.0), (5.0, 15.0)])
            .is_err());
        // Unsorted.
        assert!(base()
            .with_blackout_windows(vec![(20.0, 25.0), (0.0, 5.0)])
            .is_err());
        // Empty or inverted span.
        assert!(base().with_blackout_windows(vec![(3.0, 3.0)]).is_err());
        assert!(base().with_blackout_windows(vec![(5.0, 2.0)]).is_err());
        // Negative or non-finite endpoints.
        assert!(base().with_blackout_windows(vec![(-1.0, 2.0)]).is_err());
        assert!(base()
            .with_blackout_windows(vec![(0.0, f64::INFINITY)])
            .is_err());
        // Adjacent windows are fine.
        assert!(base()
            .with_blackout_windows(vec![(0.0, 5.0), (5.0, 8.0)])
            .is_ok());
        // Corruption probability is validated too.
        assert!(base().with_corruption(1.5).is_err());
        assert!(base().with_corruption(f64::NAN).is_err());
        assert!(base().with_corruption(1.0).is_ok());
    }

    #[test]
    fn reseeded_keeps_statistics_but_changes_decisions() {
        let m = FaultModel::disaster(1);
        let r = m.reseeded(2);
        assert_eq!(m.drop_probability, r.drop_probability);
        assert_eq!(m.blackout_period_s, r.blackout_period_s);
        let cuts = |m: &FaultModel| {
            (0..64)
                .map(|k| m.attempt_cut_fraction(k).is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(cuts(&m), cuts(&r), "reseeding must change the coin stream");
    }
}
