//! The shared uplink cell: one capacity trace that a whole fleet draws
//! airtime from.
//!
//! The paper's disaster setting is many phones fighting over a single
//! damaged base station, yet the fleet simulation historically gave every
//! device a private copy of the channel trace — N devices enjoyed N times
//! the spectrum. [`SharedCell`] replaces that fiction: the cell has one
//! seeded capacity trace, and devices only transmit through *grants* that
//! carve the per-epoch capacity into constant-rate slices (installed on
//! each device's [`Channel`](crate::Channel) via
//! [`set_rate_override`](crate::Channel::set_rate_override)).
//!
//! Cell-level fault modes reuse the [`FaultModel`] machinery:
//!
//! * **outage** — blackout windows during which the whole cell is dark
//!   (capacity 0); scheduled or seeded-periodic, exactly like device-level
//!   blackouts,
//! * **capacity collapse** — blackout windows during which the cell stays
//!   up but its capacity is multiplied by `collapse_factor` (congestion
//!   shockwaves, backhaul degradation).
//!
//! [`SharedCellConfig`] is the serializable, validated knob set; it
//! defaults to *disabled* so existing configs and reports are untouched.

use crate::{BandwidthTrace, FaultModel, NetError, Result};
use serde::{Deserialize, Serialize};

/// Iteration bound for the outage-overlap walk; far above any realistic
/// number of blackout windows inside one scheduling epoch.
const MAX_OVERLAP_STEPS: u32 = 10_000;

/// A single uplink cell shared by every device in a fleet.
///
/// Built from a validated [`SharedCellConfig`]; pure and deterministic —
/// every query is a function of the (seeded) traces and `t` alone.
///
/// # Examples
///
/// ```
/// use bees_net::{SharedCell, SharedCellConfig};
///
/// let cell = SharedCellConfig::default().build().unwrap();
/// assert_eq!(cell.capacity_bps(0.0), 256_000.0);
/// // Two granted devices split the epoch capacity evenly.
/// assert_eq!(cell.share_bps(0.0, 2), 128_000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SharedCell {
    capacity: BandwidthTrace,
    epoch_s: f64,
    outage: FaultModel,
    collapse: FaultModel,
    collapse_factor: f64,
}

impl SharedCell {
    /// The scheduling epoch length in seconds.
    pub fn epoch_s(&self) -> f64 {
        self.epoch_s
    }

    /// The cell's capacity trace before fault modes are applied.
    pub fn capacity_trace(&self) -> &BandwidthTrace {
        &self.capacity
    }

    /// The outage fault model (cell fully dark inside its windows).
    pub fn outage(&self) -> &FaultModel {
        &self.outage
    }

    /// The capacity-collapse fault model.
    pub fn collapse(&self) -> &FaultModel {
        &self.collapse
    }

    /// Index of the scheduling epoch containing time `t`.
    pub fn epoch_of(&self, t: f64) -> u64 {
        (t / self.epoch_s).floor().max(0.0) as u64
    }

    /// Start time of epoch `epoch`.
    pub fn epoch_start(&self, epoch: u64) -> f64 {
        epoch as f64 * self.epoch_s
    }

    /// End time of epoch `epoch` (exclusive).
    pub fn epoch_end(&self, epoch: u64) -> f64 {
        (epoch + 1) as f64 * self.epoch_s
    }

    /// The cell's deliverable capacity at time `t`, in bits per second:
    /// zero inside an outage window, collapsed by `collapse_factor` inside
    /// a collapse window, the raw trace otherwise.
    pub fn capacity_bps(&self, t: f64) -> f64 {
        if self.outage.blackout_at(t).is_some() {
            return 0.0;
        }
        let base = self.capacity.bps_at(t);
        if self.collapse.blackout_at(t).is_some() {
            base * self.collapse_factor
        } else {
            base
        }
    }

    /// The constant rate each of `granted` devices receives when the epoch
    /// capacity (sampled at `t`, normally the epoch start) is split evenly.
    /// Zero when nothing is granted or the cell is dark.
    pub fn share_bps(&self, t: f64, granted: usize) -> f64 {
        if granted == 0 {
            return 0.0;
        }
        self.capacity_bps(t) / granted as f64
    }

    /// Seconds of `[start_s, end_s)` covered by outage windows — the dark
    /// time an airtime budget must discount. Bounded walk over the outage
    /// schedule; deterministic.
    pub fn outage_overlap_s(&self, start_s: f64, end_s: f64) -> f64 {
        if end_s <= start_s {
            return 0.0;
        }
        let mut dark = 0.0;
        let mut t = start_s;
        for _ in 0..MAX_OVERLAP_STEPS {
            if t >= end_s {
                break;
            }
            match self.outage.blackout_at(t) {
                Some((_, window_end)) => {
                    let stop = window_end.min(end_s);
                    dark += stop - t;
                    t = stop;
                }
                None => {
                    let next = self.outage.next_blackout_start(t);
                    if next >= end_s {
                        break;
                    }
                    t = next;
                }
            }
        }
        dark
    }

    /// The airtime budget of the epoch containing `t`: the epoch length
    /// minus its outage overlap.
    pub fn epoch_budget_s(&self, t: f64) -> f64 {
        let e = self.epoch_of(t);
        let (start, end) = (self.epoch_start(e), self.epoch_end(e));
        (end - start) - self.outage_overlap_s(start, end)
    }
}

/// Serializable, validated configuration for a [`SharedCell`].
///
/// Strictly opt-in: `Default` (and therefore any config serialized before
/// this struct existed) has `enabled: false`, leaving the fleet on its
/// historical private-channel behavior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedCellConfig {
    /// Whether the fleet draws airtime from a shared cell at all.
    #[serde(default)]
    pub enabled: bool,
    /// The cell's capacity trace — the *total* uplink all devices share.
    #[serde(default = "default_capacity")]
    pub capacity: BandwidthTrace,
    /// Scheduling epoch length in seconds: grants are issued per epoch.
    #[serde(default = "default_epoch_s")]
    pub epoch_s: f64,
    /// Demand-to-budget ratio above which admission control starts
    /// degrading low-utility devices (tier ladder) instead of granting
    /// everyone. `1.5` means grants may overfill the budget by half before
    /// backpressure engages.
    #[serde(default = "default_oversubscription_threshold")]
    pub oversubscription_threshold: f64,
    /// Cell outage windows: the whole cell goes dark.
    #[serde(default)]
    pub outage: FaultModel,
    /// Capacity-collapse windows: the cell stays up at a fraction of its
    /// capacity.
    #[serde(default)]
    pub collapse: FaultModel,
    /// Capacity multiplier inside a collapse window, in `(0, 1]`.
    #[serde(default = "default_collapse_factor")]
    pub collapse_factor: f64,
    /// After this many consecutive denied epochs a starving device is
    /// granted unconditionally — the starvation bound.
    #[serde(default = "default_max_consecutive_denials")]
    pub max_consecutive_denials: u32,
}

fn default_capacity() -> BandwidthTrace {
    BandwidthTrace::constant(256_000.0).expect("constant is valid")
}

fn default_epoch_s() -> f64 {
    30.0
}

fn default_oversubscription_threshold() -> f64 {
    1.5
}

fn default_collapse_factor() -> f64 {
    0.25
}

fn default_max_consecutive_denials() -> u32 {
    8
}

impl Default for SharedCellConfig {
    fn default() -> Self {
        SharedCellConfig {
            enabled: false,
            capacity: default_capacity(),
            epoch_s: default_epoch_s(),
            oversubscription_threshold: default_oversubscription_threshold(),
            outage: FaultModel::none(),
            collapse: FaultModel::none(),
            collapse_factor: default_collapse_factor(),
            max_consecutive_denials: default_max_consecutive_denials(),
        }
    }
}

impl SharedCellConfig {
    /// Checks every field.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if !self.epoch_s.is_finite() || self.epoch_s <= 0.0 {
            return Err(NetError::InvalidParameter {
                name: "cell epoch_s",
                value: self.epoch_s,
            });
        }
        if !self.oversubscription_threshold.is_finite() || self.oversubscription_threshold < 1.0 {
            return Err(NetError::InvalidParameter {
                name: "cell oversubscription_threshold",
                value: self.oversubscription_threshold,
            });
        }
        if !self.collapse_factor.is_finite()
            || self.collapse_factor <= 0.0
            || self.collapse_factor > 1.0
        {
            return Err(NetError::InvalidParameter {
                name: "cell collapse_factor",
                value: self.collapse_factor,
            });
        }
        if self.max_consecutive_denials == 0 {
            return Err(NetError::InvalidParameter {
                name: "cell max_consecutive_denials",
                value: 0.0,
            });
        }
        self.outage.validate()?;
        self.collapse.validate()?;
        Ok(())
    }

    /// Builds the runtime [`SharedCell`] after validation.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] if any field fails
    /// [`validate`](SharedCellConfig::validate).
    pub fn build(&self) -> Result<SharedCell> {
        self.validate()?;
        Ok(SharedCell {
            capacity: self.capacity.clone(),
            epoch_s: self.epoch_s,
            outage: self.outage.clone(),
            collapse: self.collapse.clone(),
            collapse_factor: self.collapse_factor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windowed(windows: Vec<(f64, f64)>) -> FaultModel {
        FaultModel::none()
            .with_blackout_windows(windows)
            .expect("windows are valid")
    }

    #[test]
    fn default_config_is_disabled_and_valid() {
        let cfg = SharedCellConfig::default();
        assert!(!cfg.enabled);
        assert!(cfg.validate().is_ok());
        let cell = cfg.build().unwrap();
        assert_eq!(cell.epoch_s(), 30.0);
        assert_eq!(cell.capacity_bps(12.0), 256_000.0);
        assert_eq!(cell.epoch_budget_s(12.0), 30.0);
    }

    #[test]
    fn epoch_arithmetic_round_trips() {
        let cell = SharedCellConfig::default().build().unwrap();
        assert_eq!(cell.epoch_of(0.0), 0);
        assert_eq!(cell.epoch_of(29.999), 0);
        assert_eq!(cell.epoch_of(30.0), 1);
        assert_eq!(cell.epoch_of(-5.0), 0, "pre-history clamps to epoch 0");
        assert_eq!(cell.epoch_start(3), 90.0);
        assert_eq!(cell.epoch_end(3), 120.0);
        for e in [0u64, 1, 7, 1000] {
            assert_eq!(cell.epoch_of(cell.epoch_start(e)), e);
        }
    }

    #[test]
    fn outage_zeroes_capacity_and_shrinks_the_budget() {
        let cfg = SharedCellConfig {
            outage: windowed(vec![(10.0, 20.0)]),
            ..SharedCellConfig::default()
        };
        let cell = cfg.build().unwrap();
        assert_eq!(cell.capacity_bps(9.9), 256_000.0);
        assert_eq!(cell.capacity_bps(10.0), 0.0);
        assert_eq!(cell.capacity_bps(19.9), 0.0);
        assert_eq!(cell.capacity_bps(20.0), 256_000.0);
        assert!((cell.outage_overlap_s(0.0, 30.0) - 10.0).abs() < 1e-9);
        assert!((cell.epoch_budget_s(5.0) - 20.0).abs() < 1e-9);
        // Overlap clips to the queried span.
        assert!((cell.outage_overlap_s(15.0, 18.0) - 3.0).abs() < 1e-9);
        assert_eq!(cell.outage_overlap_s(20.0, 30.0), 0.0);
    }

    #[test]
    fn collapse_scales_capacity_without_darkness() {
        let cfg = SharedCellConfig {
            collapse: windowed(vec![(0.0, 15.0)]),
            collapse_factor: 0.25,
            ..SharedCellConfig::default()
        };
        let cell = cfg.build().unwrap();
        assert_eq!(cell.capacity_bps(5.0), 64_000.0);
        assert_eq!(cell.capacity_bps(15.0), 256_000.0);
        // Collapse does not eat airtime budget — the cell is still up.
        assert_eq!(cell.epoch_budget_s(5.0), 30.0);
    }

    #[test]
    fn outage_wins_over_collapse() {
        let cfg = SharedCellConfig {
            outage: windowed(vec![(0.0, 10.0)]),
            collapse: windowed(vec![(0.0, 30.0)]),
            ..SharedCellConfig::default()
        };
        let cell = cfg.build().unwrap();
        assert_eq!(cell.capacity_bps(5.0), 0.0);
        assert_eq!(cell.capacity_bps(12.0), 64_000.0);
    }

    #[test]
    fn shares_split_evenly_and_handle_zero_grants() {
        let cell = SharedCellConfig::default().build().unwrap();
        assert_eq!(cell.share_bps(0.0, 0), 0.0);
        assert_eq!(cell.share_bps(0.0, 1), 256_000.0);
        assert_eq!(cell.share_bps(0.0, 4), 64_000.0);
    }

    #[test]
    fn seeded_periodic_outages_are_deterministic() {
        let outage = FaultModel::new(0xCE11, 0.0, 0.5, 30.0, 10.0).unwrap();
        let cfg = SharedCellConfig {
            outage,
            ..SharedCellConfig::default()
        };
        let a = cfg.build().unwrap();
        let b = cfg.build().unwrap();
        let mut saw_dark = false;
        let mut saw_light = false;
        for k in 0..400 {
            let t = k as f64 * 7.3;
            assert_eq!(a.capacity_bps(t), b.capacity_bps(t));
            if a.capacity_bps(t) == 0.0 {
                saw_dark = true;
            } else {
                saw_light = true;
            }
        }
        assert!(saw_dark && saw_light, "p=0.5 outages must fire sometimes");
    }

    #[test]
    fn validation_names_the_offending_knob() {
        let ok = SharedCellConfig::default();
        let cases: [(SharedCellConfig, &str); 5] = [
            (
                SharedCellConfig {
                    epoch_s: 0.0,
                    ..ok.clone()
                },
                "epoch_s",
            ),
            (
                SharedCellConfig {
                    oversubscription_threshold: 0.5,
                    ..ok.clone()
                },
                "oversubscription_threshold",
            ),
            (
                SharedCellConfig {
                    collapse_factor: 0.0,
                    ..ok.clone()
                },
                "collapse_factor",
            ),
            (
                SharedCellConfig {
                    collapse_factor: 1.5,
                    ..ok.clone()
                },
                "collapse_factor",
            ),
            (
                SharedCellConfig {
                    max_consecutive_denials: 0,
                    ..ok.clone()
                },
                "max_consecutive_denials",
            ),
        ];
        for (cfg, field) in cases {
            match cfg.validate() {
                Err(NetError::InvalidParameter { name, .. }) => {
                    assert!(name.contains(field), "{name} should mention {field}");
                }
                other => panic!("expected InvalidParameter for {field}, got {other:?}"),
            }
        }
        // Nested fault models are validated too.
        let bad_outage = SharedCellConfig {
            outage: FaultModel {
                drop_probability: 2.0,
                ..FaultModel::none()
            },
            ..ok
        };
        assert!(bad_outage.validate().is_err());
    }
}
