//! Simulated time.

use serde::{Deserialize, Serialize};

/// A monotonically advancing simulated clock, in seconds.
///
/// Every client in an experiment holds its own clock; the coverage and
/// lifetime sessions advance them in lock-step.
///
/// # Examples
///
/// ```
/// use bees_net::SimClock;
///
/// let mut clock = SimClock::new();
/// clock.advance(1.5);
/// assert_eq!(clock.now(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimClock {
    now_s: f64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now_s
    }

    /// Advances the clock by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or not finite (simulated time never runs
    /// backwards).
    pub fn advance(&mut self, dt: f64) {
        assert!(
            dt.is_finite() && dt >= 0.0,
            "clock can only advance forward, got {dt}"
        );
        self.now_s += dt;
    }

    /// Advances the clock to an absolute time, which must not be in the
    /// past.
    ///
    /// # Panics
    ///
    /// Panics if `t < now()`.
    pub fn advance_to(&mut self, t: f64) {
        assert!(
            t >= self.now_s,
            "cannot rewind the clock from {} to {t}",
            self.now_s
        );
        self.now_s = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_accumulate() {
        let mut c = SimClock::new();
        c.advance(2.0);
        c.advance(3.5);
        assert_eq!(c.now(), 5.5);
    }

    #[test]
    fn advance_to_jumps_forward() {
        let mut c = SimClock::new();
        c.advance_to(10.0);
        assert_eq!(c.now(), 10.0);
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn rewinding_panics() {
        let mut c = SimClock::new();
        c.advance(5.0);
        c.advance_to(1.0);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn negative_advance_panics() {
        SimClock::new().advance(-1.0);
    }
}
