//! The simulated transfer channel.

use crate::{BandwidthTrace, NetError, Result};

/// Default stall limit: give up on a transfer after this many simulated
/// seconds of cumulative waiting (guards against all-zero traces).
pub const DEFAULT_STALL_LIMIT_S: f64 = 7.0 * 24.0 * 3600.0;

/// A channel that moves bytes according to a [`BandwidthTrace`].
///
/// # Examples
///
/// ```
/// use bees_net::{BandwidthTrace, Channel};
///
/// # fn main() -> Result<(), bees_net::NetError> {
/// // 100 Kbps for 1 s, dead air for 1 s, repeating.
/// let trace = BandwidthTrace::schedule(vec![(1.0, 100_000.0), (1.0, 0.0)])?;
/// let ch = Channel::new(trace);
/// // 25 KB = 200 Kbit takes 2 s of airtime spread over 3 s of wall clock.
/// let d = ch.transfer_duration(0.0, 25_000)?;
/// assert!((d - 3.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    trace: BandwidthTrace,
    stall_limit_s: f64,
    /// When set, the channel carries bits at exactly this rate instead of
    /// the trace's — the mechanism by which a shared-cell airtime grant
    /// pins a device to its slice of the cell for one scheduling epoch.
    rate_override_bps: Option<f64>,
}

impl Channel {
    /// Creates a channel over the given trace with the default stall limit.
    pub fn new(trace: BandwidthTrace) -> Self {
        Channel {
            trace,
            stall_limit_s: DEFAULT_STALL_LIMIT_S,
            rate_override_bps: None,
        }
    }

    /// Overrides the stall limit in seconds.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] if the limit is not finite
    /// and positive.
    pub fn with_stall_limit(mut self, limit_s: f64) -> Result<Self> {
        if !limit_s.is_finite() || limit_s <= 0.0 {
            return Err(NetError::InvalidParameter {
                name: "stall_limit_s",
                value: limit_s,
            });
        }
        self.stall_limit_s = limit_s;
        Ok(self)
    }

    /// The underlying bandwidth trace.
    pub fn trace(&self) -> &BandwidthTrace {
        &self.trace
    }

    /// The stall limit in seconds.
    pub fn stall_limit_s(&self) -> f64 {
        self.stall_limit_s
    }

    /// Installs (or clears, with `None`) a constant-rate override that
    /// replaces the trace's rate for subsequent transfers. A shared-cell
    /// grant installs the device's per-epoch slice here; clearing restores
    /// the private trace.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] if the rate is negative or
    /// not finite (zero is allowed: a revoked grant carries no bits, and
    /// the stall limit backstops the wait).
    pub fn set_rate_override(&mut self, bps: Option<f64>) -> Result<()> {
        if let Some(r) = bps {
            if !r.is_finite() || r < 0.0 {
                return Err(NetError::InvalidParameter {
                    name: "rate_override_bps",
                    value: r,
                });
            }
        }
        self.rate_override_bps = bps;
        Ok(())
    }

    /// The active constant-rate override, if any.
    pub fn rate_override_bps(&self) -> Option<f64> {
        self.rate_override_bps
    }

    /// The rate the channel carries bits at `t`: the override when one is
    /// installed, the trace otherwise.
    fn rate_bps_at(&self, t: f64) -> f64 {
        self.rate_override_bps.unwrap_or_else(|| self.trace.bps_at(t))
    }

    /// Computes how many seconds a transfer of `bytes` takes when it starts
    /// at simulated time `start_s`, integrating the piecewise-constant
    /// trace.
    ///
    /// A zero-byte transfer takes zero time.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Stalled`] if the transfer cannot finish within
    /// the stall limit (e.g. a trace stuck at 0 bps).
    pub fn transfer_duration(&self, start_s: f64, bytes: usize) -> Result<f64> {
        if bytes == 0 {
            return Ok(0.0);
        }
        let mut bits_left = bytes as f64 * 8.0;
        let mut t = start_s;
        loop {
            if t - start_s > self.stall_limit_s {
                return Err(NetError::Stalled {
                    bytes,
                    waited_seconds: t - start_s,
                });
            }
            let bps = self.rate_bps_at(t);
            let mut seg_end = self.trace.segment_end(t);
            if seg_end <= t {
                // Floating-point boundary: `t` sits exactly on a segment
                // edge that rounds back onto itself. Step strictly past it
                // so the integration always makes progress.
                seg_end = next_after(t);
            }
            if bps <= 0.0 {
                // Dead air: skip to the next segment.
                t = seg_end;
                continue;
            }
            let seg_span = seg_end - t;
            let needed = bits_left / bps;
            if needed <= seg_span {
                return Ok(t + needed - start_s);
            }
            bits_left -= bps * seg_span;
            t = seg_end;
        }
    }

    /// Integrates the trace from `start_s` until either `bytes` have been
    /// delivered or `deadline_s` (absolute simulated time) is reached,
    /// whichever comes first. The channel's stall limit always applies as
    /// a backstop, so the call terminates even with an infinite deadline
    /// over an all-zero trace.
    ///
    /// Unlike [`transfer_duration`](Channel::transfer_duration) this never
    /// errors: an interrupted transfer is an answer, not a failure — the
    /// fault layer and retry logic decide what to do with the partial
    /// progress.
    pub fn transfer_progress(
        &self,
        start_s: f64,
        bytes: usize,
        deadline_s: f64,
    ) -> TransferProgress {
        if bytes == 0 {
            return TransferProgress {
                delivered_bytes: 0,
                end_s: start_s,
                active_airtime_s: 0.0,
                completed: true,
            };
        }
        let hard_end = deadline_s.min(start_s + self.stall_limit_s);
        if hard_end <= start_s {
            return TransferProgress {
                delivered_bytes: 0,
                end_s: start_s,
                active_airtime_s: 0.0,
                completed: false,
            };
        }
        let total_bits = bytes as f64 * 8.0;
        let mut bits_done = 0.0;
        let mut airtime = 0.0;
        let mut t = start_s;
        while t < hard_end {
            let bps = self.rate_bps_at(t);
            let mut seg_end = self.trace.segment_end(t).min(hard_end);
            if seg_end <= t {
                seg_end = next_after(t).min(hard_end);
                if seg_end <= t {
                    // `hard_end` is within one representable step of `t`:
                    // no measurable span remains.
                    break;
                }
            }
            if bps <= 0.0 {
                t = seg_end;
                continue;
            }
            let seg_span = seg_end - t;
            let needed = (total_bits - bits_done) / bps;
            if needed <= seg_span {
                return TransferProgress {
                    delivered_bytes: bytes,
                    end_s: t + needed,
                    active_airtime_s: airtime + needed,
                    completed: true,
                };
            }
            bits_done += bps * seg_span;
            airtime += seg_span;
            t = seg_end;
        }
        TransferProgress {
            delivered_bytes: ((bits_done / 8.0).floor() as usize).min(bytes),
            end_s: hard_end,
            active_airtime_s: airtime,
            completed: false,
        }
    }

    /// Mean goodput in bits per second over `[start_s, start_s + span_s)`,
    /// sampled per trace segment. Useful for reporting.
    pub fn mean_bps(&self, start_s: f64, span_s: f64) -> f64 {
        if span_s <= 0.0 {
            return 0.0;
        }
        let mut t = start_s;
        let end = start_s + span_s;
        // Far from the origin `start_s + span_s` rounds to a representable
        // value whose distance from `start_s` can differ from `span_s` by
        // up to an ULP — averaging over the *effective* width keeps the
        // mean inside the trace's range. A span below the local resolution
        // degenerates to a point sample.
        let width = end - start_s;
        if width <= 0.0 {
            return self.rate_bps_at(start_s);
        }
        let mut bit_total = 0.0;
        while t < end {
            let mut seg_end = self.trace.segment_end(t).min(end);
            if seg_end <= t {
                seg_end = next_after(t).min(end);
                if seg_end <= t {
                    // `end` is within one representable step of `t`: the
                    // remaining sliver has zero measurable width. Account
                    // for it at the current rate and stop, rather than
                    // looping on a boundary that cannot advance.
                    bit_total += self.rate_bps_at(t) * (end - t);
                    break;
                }
            }
            bit_total += self.rate_bps_at(t) * (seg_end - t);
            t = seg_end;
        }
        bit_total / width
    }
}

/// Partial-progress result of [`Channel::transfer_progress`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferProgress {
    /// Whole bytes delivered by the time the integration stopped.
    pub delivered_bytes: usize,
    /// Absolute simulated time at which the integration stopped.
    pub end_s: f64,
    /// Seconds during which the trace was actually carrying bits
    /// (excludes dead air).
    pub active_airtime_s: f64,
    /// Whether every requested byte was delivered before the deadline.
    pub completed: bool,
}

/// The smallest representable time strictly after `t` at `t`'s magnitude
/// (a software `nextafter` adequate for positive simulation times).
fn next_after(t: f64) -> f64 {
    let bumped = t + t.abs() * f64::EPSILON;
    if bumped > t {
        bumped
    } else {
        t + f64::MIN_POSITIVE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_transfer() {
        let ch = Channel::new(BandwidthTrace::constant(8000.0).unwrap());
        // 1000 bytes = 8000 bits at 8000 bps = 1 s.
        assert!((ch.transfer_duration(3.0, 1000).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_take_zero_time() {
        let ch = Channel::new(BandwidthTrace::constant(1.0).unwrap());
        assert_eq!(ch.transfer_duration(0.0, 0).unwrap(), 0.0);
    }

    #[test]
    fn transfer_spans_segments() {
        // 1 s at 8 Kbps then 1 s at 16 Kbps, repeating.
        let tr = BandwidthTrace::schedule(vec![(1.0, 8_000.0), (1.0, 16_000.0)]).unwrap();
        let ch = Channel::new(tr);
        // 3000 bytes = 24 Kbit: 8 in the first second, 16 in the next -> 2 s.
        assert!((ch.transfer_duration(0.0, 3000).unwrap() - 2.0).abs() < 1e-9);
        // Starting mid-segment: at t = 0.5, 4 Kbit to segment end, then 16.
        let d = ch.transfer_duration(0.5, 2500).unwrap(); // 20 Kbit
        assert!((d - (0.5 + 1.0)).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn dead_air_adds_waiting_time() {
        let tr = BandwidthTrace::schedule(vec![(1.0, 0.0), (1.0, 8_000.0)]).unwrap();
        let ch = Channel::new(tr);
        let d = ch.transfer_duration(0.0, 1000).unwrap();
        assert!((d - 2.0).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn all_zero_trace_stalls() {
        let ch = Channel::new(BandwidthTrace::constant(0.0).unwrap())
            .with_stall_limit(100.0)
            .unwrap();
        // Constant 0 has an infinite segment; ensure we bail out rather
        // than loop forever.
        let err = ch.transfer_duration(0.0, 10);
        assert!(matches!(err, Err(NetError::Stalled { .. })));
    }

    #[test]
    fn zero_schedule_trace_stalls() {
        let tr = BandwidthTrace::schedule(vec![(1.0, 0.0)]).unwrap();
        let ch = Channel::new(tr).with_stall_limit(50.0).unwrap();
        assert!(matches!(
            ch.transfer_duration(0.0, 10),
            Err(NetError::Stalled { .. })
        ));
    }

    #[test]
    fn fluctuating_transfer_completes() {
        let ch = Channel::new(BandwidthTrace::disaster_wifi(9));
        // 700 KB over 0-512 Kbps (mean 256 Kbps): roughly 22 s.
        let d = ch.transfer_duration(0.0, 700_000).unwrap();
        assert!(d > 8.0 && d < 120.0, "got {d}");
    }

    #[test]
    fn mean_bps_of_schedule() {
        let tr = BandwidthTrace::schedule(vec![(1.0, 100.0), (1.0, 300.0)]).unwrap();
        let ch = Channel::new(tr);
        assert!((ch.mean_bps(0.0, 2.0) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn exact_segment_boundary_start_makes_progress() {
        // Regression: starting a transfer exactly on a schedule boundary
        // whose floating-point cycle arithmetic rounds `segment_end(t)`
        // back to `t` used to loop forever.
        let tr = BandwidthTrace::schedule(vec![
            (0.5, 187_792.108_236_747_7),
            (0.731_542_204_884_339_4, 176_291.013_489_094_42),
        ])
        .unwrap();
        let ch = Channel::new(tr);
        // Sweep many starts including ones that land on boundaries.
        for k in 0..2000 {
            let start = k as f64 * 0.020_556_629_734_539_41;
            let d = ch.transfer_duration(start, 28_742).unwrap();
            assert!(d.is_finite() && d > 0.0);
        }
    }

    #[test]
    fn longer_payloads_take_longer() {
        let ch = Channel::new(BandwidthTrace::disaster_wifi(5));
        let small = ch.transfer_duration(0.0, 10_000).unwrap();
        let large = ch.transfer_duration(0.0, 500_000).unwrap();
        assert!(large > small);
    }

    #[test]
    fn invalid_stall_limit_is_an_error_not_a_panic() {
        let mk = || Channel::new(BandwidthTrace::constant(1000.0).unwrap());
        assert!(matches!(
            mk().with_stall_limit(0.0),
            Err(NetError::InvalidParameter {
                name: "stall_limit_s",
                ..
            })
        ));
        assert!(mk().with_stall_limit(-5.0).is_err());
        assert!(mk().with_stall_limit(f64::NAN).is_err());
        assert!(mk().with_stall_limit(f64::INFINITY).is_err());
        let ch = mk().with_stall_limit(42.0).unwrap();
        assert_eq!(ch.stall_limit_s(), 42.0);
    }

    #[test]
    fn progress_matches_duration_when_unbounded() {
        let ch = Channel::new(BandwidthTrace::disaster_wifi(11));
        for (start, bytes) in [(0.0, 40_000usize), (13.7, 250_000), (91.2, 1_000)] {
            let d = ch.transfer_duration(start, bytes).unwrap();
            let p = ch.transfer_progress(start, bytes, f64::INFINITY);
            assert!(p.completed);
            assert_eq!(p.delivered_bytes, bytes);
            assert!(
                (p.end_s - start - d).abs() < 1e-9,
                "{} vs {d}",
                p.end_s - start
            );
            assert!(p.active_airtime_s <= d + 1e-9);
        }
    }

    #[test]
    fn progress_respects_deadline() {
        let ch = Channel::new(BandwidthTrace::constant(8_000.0).unwrap());
        // 10 KB needs 10 s; a deadline at 4 s delivers 4 KB.
        let p = ch.transfer_progress(0.0, 10_000, 4.0);
        assert!(!p.completed);
        assert_eq!(p.delivered_bytes, 4_000);
        assert_eq!(p.end_s, 4.0);
        assert!((p.active_airtime_s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn progress_with_past_deadline_delivers_nothing() {
        let ch = Channel::new(BandwidthTrace::constant(8_000.0).unwrap());
        let p = ch.transfer_progress(10.0, 1_000, 10.0);
        assert!(!p.completed);
        assert_eq!(p.delivered_bytes, 0);
        assert_eq!(p.end_s, 10.0);
        // Zero bytes complete instantly even with a dead deadline.
        assert!(ch.transfer_progress(10.0, 0, 5.0).completed);
    }

    #[test]
    fn progress_counts_airtime_not_dead_air() {
        // 1 s of dead air, then 1 s at 8 Kbps.
        let tr = BandwidthTrace::schedule(vec![(1.0, 0.0), (1.0, 8_000.0)]).unwrap();
        let ch = Channel::new(tr);
        let p = ch.transfer_progress(0.0, 1_000, f64::INFINITY);
        assert!(p.completed);
        assert!((p.end_s - 2.0).abs() < 1e-9);
        assert!(
            (p.active_airtime_s - 1.0).abs() < 1e-9,
            "airtime {}",
            p.active_airtime_s
        );
    }

    #[test]
    fn progress_stall_limit_backstops_infinite_deadline() {
        let ch = Channel::new(BandwidthTrace::constant(0.0).unwrap())
            .with_stall_limit(30.0)
            .unwrap();
        let p = ch.transfer_progress(5.0, 1_000, f64::INFINITY);
        assert!(!p.completed);
        assert_eq!(p.delivered_bytes, 0);
        assert_eq!(p.end_s, 35.0);
        assert_eq!(p.active_airtime_s, 0.0);
    }

    #[test]
    fn rate_override_replaces_the_trace() {
        // A choppy schedule trace, but a granted slice of 8 Kbps: the
        // override must carry the transfer at exactly the granted rate.
        let tr = BandwidthTrace::schedule(vec![(1.0, 0.0), (1.0, 512_000.0)]).unwrap();
        let mut ch = Channel::new(tr);
        ch.set_rate_override(Some(8_000.0)).unwrap();
        assert_eq!(ch.rate_override_bps(), Some(8_000.0));
        // 1000 bytes = 8000 bits at 8000 bps = 1 s, dead air ignored.
        assert!((ch.transfer_duration(0.0, 1_000).unwrap() - 1.0).abs() < 1e-9);
        let p = ch.transfer_progress(0.0, 10_000, 4.0);
        assert!(!p.completed);
        assert_eq!(p.delivered_bytes, 4_000);
        assert!((ch.mean_bps(0.0, 2.0) - 8_000.0).abs() < 1e-9);
        // Clearing restores the trace.
        ch.set_rate_override(None).unwrap();
        assert_eq!(ch.rate_override_bps(), None);
        let d = ch.transfer_duration(0.0, 64_000).unwrap();
        assert!((d - 2.0).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn zero_rate_override_is_dead_air() {
        let mut ch = Channel::new(BandwidthTrace::constant(512_000.0).unwrap())
            .with_stall_limit(30.0)
            .unwrap();
        ch.set_rate_override(Some(0.0)).unwrap();
        assert!(matches!(
            ch.transfer_duration(0.0, 10),
            Err(NetError::Stalled { .. })
        ));
        let p = ch.transfer_progress(0.0, 10, 5.0);
        assert!(!p.completed);
        assert_eq!(p.delivered_bytes, 0);
    }

    #[test]
    fn invalid_rate_override_is_rejected() {
        let mut ch = Channel::new(BandwidthTrace::constant(1.0).unwrap());
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                ch.set_rate_override(Some(bad)),
                Err(NetError::InvalidParameter {
                    name: "rate_override_bps",
                    ..
                })
            ));
        }
        assert_eq!(ch.rate_override_bps(), None, "rejected rates don't stick");
    }

    #[test]
    fn mean_bps_terminates_at_large_offsets() {
        // Regression: far from the origin, floating-point cycle arithmetic
        // can round `segment_end(t)` onto `t` while the window end sits
        // within one representable step — the old stepping could then spin
        // without advancing. Sweep windows at increasingly extreme offsets
        // with tight spans and check the loop both terminates and stays
        // within the trace's range.
        let traces = [
            BandwidthTrace::disaster_wifi(17),
            BandwidthTrace::schedule(vec![
                (0.3, 120_000.0),
                (0.777_777_777_777, 40_000.0),
                (1.123_456_789, 0.0),
            ])
            .unwrap(),
        ];
        for trace in traces {
            let ch = Channel::new(trace);
            for exp in 6..=15 {
                let start = 10f64.powi(exp);
                for span in [1e-9, 1e-3, 0.5, 3.7] {
                    let m = ch.mean_bps(start, span);
                    assert!(
                        m.is_finite() && (0.0..=512_000.0).contains(&m),
                        "mean {m} at 1e{exp}"
                    );
                }
            }
        }
    }
}
