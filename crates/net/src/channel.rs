//! The simulated transfer channel.

use crate::{BandwidthTrace, NetError, Result};

/// Default stall limit: give up on a transfer after this many simulated
/// seconds of cumulative waiting (guards against all-zero traces).
pub const DEFAULT_STALL_LIMIT_S: f64 = 7.0 * 24.0 * 3600.0;

/// A channel that moves bytes according to a [`BandwidthTrace`].
///
/// # Examples
///
/// ```
/// use bees_net::{BandwidthTrace, Channel};
///
/// # fn main() -> Result<(), bees_net::NetError> {
/// // 100 Kbps for 1 s, dead air for 1 s, repeating.
/// let trace = BandwidthTrace::schedule(vec![(1.0, 100_000.0), (1.0, 0.0)])?;
/// let ch = Channel::new(trace);
/// // 25 KB = 200 Kbit takes 2 s of airtime spread over 3 s of wall clock.
/// let d = ch.transfer_duration(0.0, 25_000)?;
/// assert!((d - 3.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    trace: BandwidthTrace,
    stall_limit_s: f64,
}

impl Channel {
    /// Creates a channel over the given trace with the default stall limit.
    pub fn new(trace: BandwidthTrace) -> Self {
        Channel { trace, stall_limit_s: DEFAULT_STALL_LIMIT_S }
    }

    /// Overrides the stall limit in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the limit is not finite and positive.
    pub fn with_stall_limit(mut self, limit_s: f64) -> Self {
        assert!(limit_s.is_finite() && limit_s > 0.0, "stall limit must be positive");
        self.stall_limit_s = limit_s;
        self
    }

    /// The underlying bandwidth trace.
    pub fn trace(&self) -> &BandwidthTrace {
        &self.trace
    }

    /// Computes how many seconds a transfer of `bytes` takes when it starts
    /// at simulated time `start_s`, integrating the piecewise-constant
    /// trace.
    ///
    /// A zero-byte transfer takes zero time.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Stalled`] if the transfer cannot finish within
    /// the stall limit (e.g. a trace stuck at 0 bps).
    pub fn transfer_duration(&self, start_s: f64, bytes: usize) -> Result<f64> {
        if bytes == 0 {
            return Ok(0.0);
        }
        let mut bits_left = bytes as f64 * 8.0;
        let mut t = start_s;
        loop {
            if t - start_s > self.stall_limit_s {
                return Err(NetError::Stalled { bytes, waited_seconds: t - start_s });
            }
            let bps = self.trace.bps_at(t);
            let mut seg_end = self.trace.segment_end(t);
            if seg_end <= t {
                // Floating-point boundary: `t` sits exactly on a segment
                // edge that rounds back onto itself. Step strictly past it
                // so the integration always makes progress.
                seg_end = next_after(t);
            }
            if bps <= 0.0 {
                // Dead air: skip to the next segment.
                t = seg_end;
                continue;
            }
            let seg_span = seg_end - t;
            let needed = bits_left / bps;
            if needed <= seg_span {
                return Ok(t + needed - start_s);
            }
            bits_left -= bps * seg_span;
            t = seg_end;
        }
    }

    /// Mean goodput in bits per second over `[start_s, start_s + span_s)`,
    /// sampled per trace segment. Useful for reporting.
    pub fn mean_bps(&self, start_s: f64, span_s: f64) -> f64 {
        if span_s <= 0.0 {
            return 0.0;
        }
        let mut t = start_s;
        let end = start_s + span_s;
        let mut bit_total = 0.0;
        while t < end {
            let mut seg_end = self.trace.segment_end(t).min(end);
            if seg_end <= t {
                seg_end = next_after(t).min(end).max(t + f64::MIN_POSITIVE);
            }
            bit_total += self.trace.bps_at(t) * (seg_end - t);
            t = seg_end;
        }
        bit_total / span_s
    }
}

/// The smallest representable time strictly after `t` at `t`'s magnitude
/// (a software `nextafter` adequate for positive simulation times).
fn next_after(t: f64) -> f64 {
    let bumped = t + t.abs() * f64::EPSILON;
    if bumped > t {
        bumped
    } else {
        t + f64::MIN_POSITIVE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_transfer() {
        let ch = Channel::new(BandwidthTrace::constant(8000.0).unwrap());
        // 1000 bytes = 8000 bits at 8000 bps = 1 s.
        assert!((ch.transfer_duration(3.0, 1000).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_take_zero_time() {
        let ch = Channel::new(BandwidthTrace::constant(1.0).unwrap());
        assert_eq!(ch.transfer_duration(0.0, 0).unwrap(), 0.0);
    }

    #[test]
    fn transfer_spans_segments() {
        // 1 s at 8 Kbps then 1 s at 16 Kbps, repeating.
        let tr = BandwidthTrace::schedule(vec![(1.0, 8_000.0), (1.0, 16_000.0)]).unwrap();
        let ch = Channel::new(tr);
        // 3000 bytes = 24 Kbit: 8 in the first second, 16 in the next -> 2 s.
        assert!((ch.transfer_duration(0.0, 3000).unwrap() - 2.0).abs() < 1e-9);
        // Starting mid-segment: at t = 0.5, 4 Kbit to segment end, then 16.
        let d = ch.transfer_duration(0.5, 2500).unwrap(); // 20 Kbit
        assert!((d - (0.5 + 1.0)).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn dead_air_adds_waiting_time() {
        let tr = BandwidthTrace::schedule(vec![(1.0, 0.0), (1.0, 8_000.0)]).unwrap();
        let ch = Channel::new(tr);
        let d = ch.transfer_duration(0.0, 1000).unwrap();
        assert!((d - 2.0).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn all_zero_trace_stalls() {
        let ch = Channel::new(BandwidthTrace::constant(0.0).unwrap()).with_stall_limit(100.0);
        // Constant 0 has an infinite segment; ensure we bail out rather
        // than loop forever.
        let err = ch.transfer_duration(0.0, 10);
        assert!(matches!(err, Err(NetError::Stalled { .. })));
    }

    #[test]
    fn zero_schedule_trace_stalls() {
        let tr = BandwidthTrace::schedule(vec![(1.0, 0.0)]).unwrap();
        let ch = Channel::new(tr).with_stall_limit(50.0);
        assert!(matches!(ch.transfer_duration(0.0, 10), Err(NetError::Stalled { .. })));
    }

    #[test]
    fn fluctuating_transfer_completes() {
        let ch = Channel::new(BandwidthTrace::disaster_wifi(9));
        // 700 KB over 0-512 Kbps (mean 256 Kbps): roughly 22 s.
        let d = ch.transfer_duration(0.0, 700_000).unwrap();
        assert!(d > 8.0 && d < 120.0, "got {d}");
    }

    #[test]
    fn mean_bps_of_schedule() {
        let tr = BandwidthTrace::schedule(vec![(1.0, 100.0), (1.0, 300.0)]).unwrap();
        let ch = Channel::new(tr);
        assert!((ch.mean_bps(0.0, 2.0) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn exact_segment_boundary_start_makes_progress() {
        // Regression: starting a transfer exactly on a schedule boundary
        // whose floating-point cycle arithmetic rounds `segment_end(t)`
        // back to `t` used to loop forever.
        let tr = BandwidthTrace::schedule(vec![
            (0.5, 187_792.108_236_747_7),
            (0.731_542_204_884_339_4, 176_291.013_489_094_42),
        ])
        .unwrap();
        let ch = Channel::new(tr);
        // Sweep many starts including ones that land on boundaries.
        for k in 0..2000 {
            let start = k as f64 * 0.020_556_629_734_539_41;
            let d = ch.transfer_duration(start, 28_742).unwrap();
            assert!(d.is_finite() && d > 0.0);
        }
    }

    #[test]
    fn longer_payloads_take_longer() {
        let ch = Channel::new(BandwidthTrace::disaster_wifi(5));
        let small = ch.transfer_duration(0.0, 10_000).unwrap();
        let large = ch.transfer_duration(0.0, 500_000).unwrap();
        assert!(large > small);
    }
}
