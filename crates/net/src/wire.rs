//! Wire-size accounting for protocol messages.
//!
//! The client/server protocol exchanges more than raw payloads: feature
//! queries carry headers, the server answers with per-image verdicts, and
//! MRC additionally downloads thumbnail feedback for candidate duplicates
//! (the paper notes "MRC consumes a little more bandwidth overhead than
//! SmartEye due to requiring thumbnail feedback").

/// Fixed per-message protocol header (ids, lengths, checksums).
pub const HEADER_BYTES: usize = 32;

/// Server verdict for one queried image (image id, max similarity,
/// matched-image id).
pub const QUERY_VERDICT_BYTES: usize = 24;

/// A thumbnail the MRC server sends back per duplicate candidate so the
/// client can confirm visually (a small JPEG; the paper does not give a
/// size, 4 KiB is typical of a ~100×75 thumbnail).
pub const THUMBNAIL_BYTES: usize = 4096;

/// Uplink size of a feature query for a payload of `feature_bytes`.
pub fn feature_query_bytes(feature_bytes: usize) -> usize {
    HEADER_BYTES + feature_bytes
}

/// Downlink size of a query response covering `n_images` verdicts.
pub fn query_response_bytes(n_images: usize) -> usize {
    HEADER_BYTES + n_images * QUERY_VERDICT_BYTES
}

/// Downlink size of MRC thumbnail feedback for `n_candidates` candidates.
pub fn thumbnail_feedback_bytes(n_candidates: usize) -> usize {
    if n_candidates == 0 {
        return 0;
    }
    HEADER_BYTES + n_candidates * THUMBNAIL_BYTES
}

/// Uplink size of an image upload for an encoded payload of `image_bytes`.
pub fn image_upload_bytes(image_bytes: usize) -> usize {
    HEADER_BYTES + image_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_sizes_scale_with_payload() {
        assert_eq!(feature_query_bytes(1000), 1032);
        assert_eq!(query_response_bytes(3), 32 + 72);
        assert_eq!(image_upload_bytes(0), 32);
    }

    #[test]
    fn empty_thumbnail_feedback_is_free() {
        assert_eq!(thumbnail_feedback_bytes(0), 0);
        assert!(thumbnail_feedback_bytes(2) > 2 * THUMBNAIL_BYTES);
    }
}
