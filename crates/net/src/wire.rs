//! Wire-size accounting and chunk-integrity framing for protocol messages.
//!
//! The client/server protocol exchanges more than raw payloads: feature
//! queries carry headers, the server answers with per-image verdicts, and
//! MRC additionally downloads thumbnail feedback for candidate duplicates
//! (the paper notes "MRC consumes a little more bandwidth overhead than
//! SmartEye due to requiring thumbnail feedback").
//!
//! Resumable image uploads additionally frame their payload into transport
//! chunks, each closed by a CRC-32 trailer ([`frame_chunks`]), so a
//! bit-flipped chunk is *detected* at the receiver and re-requested instead
//! of silently decoded ([`verify_chunk`]). [`salvaged_payload_bytes`] maps
//! the whole chunks a cut transfer banked back to the decodable payload
//! prefix they carry — the quantity the progressive codec's partial decoder
//! consumes.

/// Fixed per-message protocol header (ids, lengths, checksums).
pub const HEADER_BYTES: usize = 32;

/// CRC-32 trailer appended to every transport chunk of a framed upload.
pub const CHUNK_CRC_BYTES: usize = 4;

/// Server verdict for one queried image (image id, max similarity,
/// matched-image id).
pub const QUERY_VERDICT_BYTES: usize = 24;

/// A thumbnail the MRC server sends back per duplicate candidate so the
/// client can confirm visually (a small JPEG; the paper does not give a
/// size, 4 KiB is typical of a ~100×75 thumbnail).
pub const THUMBNAIL_BYTES: usize = 4096;

/// Uplink size of a feature query for a payload of `feature_bytes`.
pub fn feature_query_bytes(feature_bytes: usize) -> usize {
    HEADER_BYTES + feature_bytes
}

/// Downlink size of a query response covering `n_images` verdicts.
pub fn query_response_bytes(n_images: usize) -> usize {
    HEADER_BYTES + n_images * QUERY_VERDICT_BYTES
}

/// Downlink size of MRC thumbnail feedback for `n_candidates` candidates.
pub fn thumbnail_feedback_bytes(n_candidates: usize) -> usize {
    if n_candidates == 0 {
        return 0;
    }
    HEADER_BYTES + n_candidates * THUMBNAIL_BYTES
}

/// Uplink size of an image upload for an encoded payload of `image_bytes`.
pub fn image_upload_bytes(image_bytes: usize) -> usize {
    HEADER_BYTES + image_bytes
}

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Payload capacity of one transport chunk of `chunk_bytes` total, after
/// the CRC trailer is subtracted (at least 1, so framing always makes
/// progress).
pub fn chunk_payload_bytes(chunk_bytes: usize) -> usize {
    chunk_bytes.saturating_sub(CHUNK_CRC_BYTES).max(1)
}

/// Splits `payload` into transport chunks of at most `chunk_bytes` bytes,
/// each carrying up to [`chunk_payload_bytes`] of payload followed by its
/// CRC-32 trailer (little-endian).
pub fn frame_chunks(payload: &[u8], chunk_bytes: usize) -> Vec<Vec<u8>> {
    payload
        .chunks(chunk_payload_bytes(chunk_bytes))
        .map(|chunk| {
            let mut framed = Vec::with_capacity(chunk.len() + CHUNK_CRC_BYTES);
            framed.extend_from_slice(chunk);
            framed.extend_from_slice(&crc32(chunk).to_le_bytes());
            framed
        })
        .collect()
}

/// Verifies one framed chunk, returning its payload when the CRC trailer
/// matches and `None` when the chunk arrived corrupted (or too short to
/// carry a trailer). A corrupted chunk must never reach the decoder.
pub fn verify_chunk(framed: &[u8]) -> Option<&[u8]> {
    if framed.len() < CHUNK_CRC_BYTES {
        return None;
    }
    let (payload, trailer) = framed.split_at(framed.len() - CHUNK_CRC_BYTES);
    let expected = u32::from_le_bytes(trailer.try_into().expect("trailer is 4 bytes"));
    (crc32(payload) == expected).then_some(payload)
}

/// Uplink size of a CRC-framed image upload: the message header, the
/// payload, and one CRC trailer per transport chunk.
pub fn framed_upload_bytes(payload_len: usize, chunk_bytes: usize) -> usize {
    let chunks = payload_len.div_ceil(chunk_payload_bytes(chunk_bytes));
    HEADER_BYTES + payload_len + CHUNK_CRC_BYTES * chunks
}

/// The decodable payload prefix bought by `confirmed` delivered bytes of a
/// [`framed_upload_bytes`]-sized transfer: the payload carried by the whole
/// transport chunks those bytes cover. Conservative (rounds down to whole
/// chunks), monotone in `confirmed`, and exactly `payload_len` once the
/// transfer is complete.
pub fn salvaged_payload_bytes(confirmed: usize, payload_len: usize, chunk_bytes: usize) -> usize {
    if confirmed <= HEADER_BYTES {
        return 0;
    }
    if confirmed >= framed_upload_bytes(payload_len, chunk_bytes) {
        return payload_len;
    }
    let whole_chunks = (confirmed - HEADER_BYTES) / chunk_bytes.max(1);
    (whole_chunks * chunk_payload_bytes(chunk_bytes)).min(payload_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_sizes_scale_with_payload() {
        assert_eq!(feature_query_bytes(1000), 1032);
        assert_eq!(query_response_bytes(3), 32 + 72);
        assert_eq!(image_upload_bytes(0), 32);
    }

    #[test]
    fn empty_thumbnail_feedback_is_free() {
        assert_eq!(thumbnail_feedback_bytes(0), 0);
        assert!(thumbnail_feedback_bytes(2) > 2 * THUMBNAIL_BYTES);
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The standard check vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn framed_chunks_verify_and_reassemble() {
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i * 7 % 251) as u8).collect();
        let chunks = frame_chunks(&payload, 1024);
        assert_eq!(chunks.len(), payload.len().div_ceil(1020));
        let mut back = Vec::new();
        for chunk in &chunks {
            assert!(chunk.len() <= 1024);
            back.extend_from_slice(verify_chunk(chunk).expect("clean chunk verifies"));
        }
        assert_eq!(back, payload);
    }

    #[test]
    fn bit_flips_are_always_detected() {
        let payload: Vec<u8> = (0..500u32).map(|i| (i % 256) as u8).collect();
        for chunk in frame_chunks(&payload, 128) {
            // Flip every single bit in turn — payload and trailer alike —
            // and demand detection each time.
            for byte in 0..chunk.len() {
                for bit in 0..8 {
                    let mut corrupt = chunk.clone();
                    corrupt[byte] ^= 1 << bit;
                    assert!(
                        verify_chunk(&corrupt).is_none(),
                        "flip at byte {byte} bit {bit} went undetected"
                    );
                }
            }
            assert!(verify_chunk(&chunk).is_some());
        }
    }

    #[test]
    fn framed_size_counts_one_trailer_per_chunk() {
        assert_eq!(framed_upload_bytes(0, 1024), HEADER_BYTES);
        assert_eq!(framed_upload_bytes(1020, 1024), HEADER_BYTES + 1020 + 4);
        assert_eq!(framed_upload_bytes(1021, 1024), HEADER_BYTES + 1021 + 8);
        // Tiny chunk sizes still make progress: capacity floor is 1.
        assert_eq!(chunk_payload_bytes(2), 1);
        assert_eq!(framed_upload_bytes(3, 2), HEADER_BYTES + 3 + 12);
    }

    #[test]
    fn salvaged_payload_is_monotone_and_exact_at_the_ends() {
        let payload_len = 5_000;
        let chunk = 1024;
        let total = framed_upload_bytes(payload_len, chunk);
        assert_eq!(salvaged_payload_bytes(0, payload_len, chunk), 0);
        assert_eq!(salvaged_payload_bytes(HEADER_BYTES, payload_len, chunk), 0);
        assert_eq!(
            salvaged_payload_bytes(total, payload_len, chunk),
            payload_len
        );
        assert_eq!(
            salvaged_payload_bytes(total + 10, payload_len, chunk),
            payload_len
        );
        let mut last = 0;
        for confirmed in 0..=total {
            let got = salvaged_payload_bytes(confirmed, payload_len, chunk);
            assert!(got >= last, "salvage shrank at {confirmed}");
            assert!(got <= payload_len);
            last = got;
        }
        // One whole chunk past the header buys exactly its capacity.
        assert_eq!(
            salvaged_payload_bytes(HEADER_BYTES + chunk, payload_len, chunk),
            chunk_payload_bytes(chunk)
        );
        // A torn chunk buys nothing beyond the whole ones before it.
        assert_eq!(
            salvaged_payload_bytes(HEADER_BYTES + chunk + 3, payload_len, chunk),
            chunk_payload_bytes(chunk)
        );
    }
}
