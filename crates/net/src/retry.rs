//! Energy-aware retry policy with deterministic backoff.
//!
//! The paper's adaptation philosophy — spend less as the battery drains —
//! is applied to retries too (EAAS-style): the retry budget for a transfer
//! shrinks linearly with `Ebat`, so a nearly-dead phone gives up quickly
//! instead of burning its last joules on a hopeless link. Backoff is
//! exponential with *seeded* jitter, so sweeps remain reproducible.

use crate::trace::{hash64, unit};
use crate::{NetError, Result};
use serde::{Deserialize, Serialize};

/// Salt mixed into the per-attempt jitter hash.
const JITTER_SALT: u64 = 0x1177_E200_0000_0003;

/// Governs chunked resumable transfers: how many attempts, how long each
/// may run, how long to wait between them, and the resume granularity.
///
/// # Examples
///
/// ```
/// use bees_net::RetryPolicy;
///
/// let policy = RetryPolicy::default();
/// // Full battery gets the whole budget, an empty one a single attempt.
/// assert_eq!(policy.budget(1.0), policy.max_attempts);
/// assert_eq!(policy.budget(0.0), 1);
/// // Backoff grows but is capped and deterministic per (seed, attempt).
/// assert_eq!(policy.backoff_s(3, 7), policy.backoff_s(3, 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempt ceiling at full battery; the effective budget scales down
    /// linearly with `Ebat` (see [`budget`](RetryPolicy::budget)).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: f64,
    /// Ceiling on a single backoff wait, in seconds.
    pub max_backoff_s: f64,
    /// Jitter amplitude as a fraction of the backoff (`0.25` means
    /// ±12.5 %); sampled deterministically from the seed and attempt.
    pub jitter: f64,
    /// Wall-clock bound on a single attempt, in simulated seconds; `None`
    /// leaves only the channel's stall limit.
    pub attempt_timeout_s: Option<f64>,
    /// Virtual-time bound on a whole resumable transfer (all attempts and
    /// backoff waits), in simulated seconds from its first attempt. Once
    /// the deadline passes, the transfer is abandoned instead of retried —
    /// the guard against zombie retries from a device whose airtime grant
    /// expired. `None` leaves only the per-attempt budget. Defaults to
    /// `None` so serialized policies from before this field existed keep
    /// their meaning.
    #[serde(default)]
    pub transfer_deadline_s: Option<f64>,
    /// Resume granularity: bytes delivered past the last whole chunk are
    /// retransmitted on the next attempt (torn-chunk discard).
    pub chunk_bytes: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff_s: 0.5,
            backoff_factor: 2.0,
            max_backoff_s: 30.0,
            jitter: 0.25,
            attempt_timeout_s: Some(90.0),
            transfer_deadline_s: None,
            chunk_bytes: 16 * 1024,
        }
    }
}

impl RetryPolicy {
    /// Checks every field.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(NetError::InvalidParameter {
                name: "max_attempts",
                value: 0.0,
            });
        }
        if !self.base_backoff_s.is_finite() || self.base_backoff_s < 0.0 {
            return Err(NetError::InvalidParameter {
                name: "base_backoff_s",
                value: self.base_backoff_s,
            });
        }
        if !self.backoff_factor.is_finite() || self.backoff_factor < 1.0 {
            return Err(NetError::InvalidParameter {
                name: "backoff_factor",
                value: self.backoff_factor,
            });
        }
        if !self.max_backoff_s.is_finite() || self.max_backoff_s < 0.0 {
            return Err(NetError::InvalidParameter {
                name: "max_backoff_s",
                value: self.max_backoff_s,
            });
        }
        if !self.jitter.is_finite() || !(0.0..=1.0).contains(&self.jitter) {
            return Err(NetError::InvalidParameter {
                name: "jitter",
                value: self.jitter,
            });
        }
        if let Some(t) = self.attempt_timeout_s {
            if !t.is_finite() || t <= 0.0 {
                return Err(NetError::InvalidParameter {
                    name: "attempt_timeout_s",
                    value: t,
                });
            }
        }
        if let Some(d) = self.transfer_deadline_s {
            if !d.is_finite() || d <= 0.0 {
                return Err(NetError::InvalidParameter {
                    name: "transfer_deadline_s",
                    value: d,
                });
            }
        }
        if self.chunk_bytes == 0 {
            return Err(NetError::InvalidParameter {
                name: "chunk_bytes",
                value: 0.0,
            });
        }
        Ok(())
    }

    /// The attempt budget at battery fraction `ebat` (clamped to
    /// `[0, 1]`): `1 + round((max_attempts - 1) · Ebat)`. Always at least
    /// one attempt, the full `max_attempts` only on a full battery.
    pub fn budget(&self, ebat: f64) -> u32 {
        let ebat = if ebat.is_finite() {
            ebat.clamp(0.0, 1.0)
        } else {
            0.0
        };
        1 + ((self.max_attempts - 1) as f64 * ebat).round() as u32
    }

    /// The backoff before retry number `attempt` (0 = the wait after the
    /// first failure), with deterministic jitter drawn from `seed`:
    /// `min(base · factor^attempt, max) · (1 + jitter · (u − ½))` where
    /// `u` is uniform in `[0, 1)`.
    pub fn backoff_s(&self, attempt: u32, seed: u64) -> f64 {
        let exp = attempt.min(62) as i32;
        let raw = (self.base_backoff_s * self.backoff_factor.powi(exp)).min(self.max_backoff_s);
        let h = hash64(
            seed ^ (attempt as u64)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                .wrapping_add(JITTER_SALT),
        );
        raw * (1.0 + self.jitter * (unit(h) - 0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_scales_with_battery() {
        let p = RetryPolicy::default();
        assert_eq!(p.budget(1.0), 6);
        assert_eq!(p.budget(0.0), 1);
        assert_eq!(p.budget(-3.0), 1);
        assert_eq!(p.budget(7.0), 6);
        assert_eq!(p.budget(f64::NAN), 1);
        let mut prev = 0;
        for k in 0..=10 {
            let b = p.budget(k as f64 / 10.0);
            assert!(b >= prev, "budget must be monotone in Ebat");
            assert!((1..=6).contains(&b));
            prev = b;
        }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert!((p.backoff_s(0, 1) - 0.5).abs() < 1e-12);
        assert!((p.backoff_s(1, 1) - 1.0).abs() < 1e-12);
        assert!((p.backoff_s(2, 1) - 2.0).abs() < 1e-12);
        // 0.5 * 2^10 = 512 > cap of 30.
        assert!((p.backoff_s(10, 1) - 30.0).abs() < 1e-12);
        // Huge attempt numbers must not overflow powi.
        assert!(p.backoff_s(u32::MAX, 1).is_finite());
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy::default();
        for attempt in 0..20 {
            let a = p.backoff_s(attempt, 99);
            let b = p.backoff_s(attempt, 99);
            assert_eq!(a, b);
            let nominal = (0.5 * 2f64.powi(attempt as i32)).min(30.0);
            assert!(a >= nominal * (1.0 - 0.125) - 1e-12, "{a} vs {nominal}");
            assert!(a <= nominal * (1.0 + 0.125) + 1e-12, "{a} vs {nominal}");
        }
        // Different seeds give different jitter somewhere.
        let differs = (0..20).any(|k| p.backoff_s(k, 1) != p.backoff_s(k, 2));
        assert!(differs);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let ok = RetryPolicy::default();
        assert!(ok.validate().is_ok());
        assert!(RetryPolicy {
            max_attempts: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            base_backoff_s: -1.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            backoff_factor: 0.5,
            ..ok
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            max_backoff_s: f64::NAN,
            ..ok
        }
        .validate()
        .is_err());
        assert!(RetryPolicy { jitter: 1.5, ..ok }.validate().is_err());
        assert!(RetryPolicy {
            attempt_timeout_s: Some(0.0),
            ..ok
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            chunk_bytes: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            attempt_timeout_s: None,
            ..ok
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn transfer_deadline_bounds_are_enforced() {
        let ok = RetryPolicy::default();
        assert_eq!(ok.transfer_deadline_s, None, "default has no deadline");
        assert!(RetryPolicy {
            transfer_deadline_s: Some(120.0),
            ..ok
        }
        .validate()
        .is_ok());
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let err = RetryPolicy {
                transfer_deadline_s: Some(bad),
                ..ok
            }
            .validate();
            assert!(
                matches!(
                    err,
                    Err(NetError::InvalidParameter {
                        name: "transfer_deadline_s",
                        ..
                    })
                ),
                "deadline {bad} must be rejected"
            );
        }
    }

    #[test]
    fn backoff_is_monotone_before_the_cap_for_all_policies() {
        // Property: with jitter off, backoff_s never decreases in the
        // attempt number, for a grid of (base, factor, cap) policies.
        for base in [0.0, 0.1, 0.5, 2.0, 30.0] {
            for factor in [1.0, 1.5, 2.0, 4.0] {
                for cap in [0.5, 10.0, 1e6] {
                    let p = RetryPolicy {
                        base_backoff_s: base,
                        backoff_factor: factor,
                        max_backoff_s: cap,
                        jitter: 0.0,
                        ..RetryPolicy::default()
                    };
                    assert!(p.validate().is_ok(), "grid policy must be valid");
                    let mut prev = -1.0f64;
                    for attempt in 0..100u32 {
                        let b = p.backoff_s(attempt, 7);
                        assert!(b.is_finite() && b >= 0.0);
                        assert!(b <= cap + 1e-12, "cap violated: {b} > {cap}");
                        assert!(
                            b >= prev - 1e-12,
                            "backoff shrank at attempt {attempt}: {b} < {prev} \
                             (base {base}, factor {factor}, cap {cap})"
                        );
                        prev = b;
                    }
                }
            }
        }
    }

    #[test]
    fn jittered_backoff_is_a_pure_function_of_seed_and_attempt() {
        // Property: for any (seed, attempt), repeated evaluation is exact,
        // and the jitter envelope ±jitter/2 holds around the nominal value.
        let p = RetryPolicy {
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            for attempt in (0..64).chain([1000, u32::MAX - 1, u32::MAX]) {
                let a = p.backoff_s(attempt, seed);
                assert_eq!(a, p.backoff_s(attempt, seed), "same inputs, same output");
                let exp = attempt.min(62) as i32;
                let nominal = (p.base_backoff_s * p.backoff_factor.powi(exp)).min(p.max_backoff_s);
                assert!(
                    a >= nominal * 0.75 - 1e-12,
                    "{a} below envelope of {nominal}"
                );
                assert!(
                    a <= nominal * 1.25 + 1e-12,
                    "{a} above envelope of {nominal}"
                );
            }
        }
        // Seeds decorrelate: two seed streams differ somewhere.
        assert!((0..32).any(|k| p.backoff_s(k, 3) != p.backoff_s(k, 4)));
    }

    #[test]
    fn budget_is_exact_at_ebat_boundaries_and_midpoints() {
        // The contract: budget = 1 + round((max_attempts - 1) · Ebat),
        // with f64 rounding half away from zero. Pin it exactly at the
        // boundaries and at every rounding midpoint for a sweep of
        // max_attempts.
        for max in 1u32..=12 {
            let p = RetryPolicy {
                max_attempts: max,
                ..RetryPolicy::default()
            };
            assert_eq!(p.budget(0.0), 1, "empty battery is one attempt");
            assert_eq!(p.budget(1.0), max, "full battery is the whole budget");
            // Below/above the clamp.
            assert_eq!(p.budget(-0.5), 1);
            assert_eq!(p.budget(1.5), max);
        }
        // Midpoints, pinned where `(k + 0.5) / steps` is exactly
        // representable (steps a power of two), so the assertion tests the
        // rounding contract rather than 1-ulp division noise.
        for max in [2u32, 3, 5, 9, 17] {
            let p = RetryPolicy {
                max_attempts: max,
                ..RetryPolicy::default()
            };
            let steps = (max - 1) as f64;
            for k in 0..(max - 1) {
                // Midpoint between budgets 1+k and 2+k: rounds half away
                // from zero, i.e. up.
                let mid = (k as f64 + 0.5) / steps;
                assert_eq!(p.budget(mid), 2 + k, "midpoint {mid} at max_attempts {max}");
                // Just below the midpoint rounds down.
                assert_eq!(
                    p.budget(mid - 1e-9),
                    1 + k,
                    "below-midpoint at max_attempts {max}"
                );
            }
        }
        // The documented default example: Ebat 0.1 at max 6 gives
        // 1 + round(0.5) = 2.
        let p = RetryPolicy::default();
        assert_eq!(p.budget(0.1), 2);
    }

    #[test]
    fn budget_is_monotone_over_a_dense_ebat_sweep() {
        for max in [1u32, 2, 3, 6, 17] {
            let p = RetryPolicy {
                max_attempts: max,
                ..RetryPolicy::default()
            };
            let mut prev = 0u32;
            for k in 0..=1000 {
                let b = p.budget(k as f64 / 1000.0);
                assert!((1..=max).contains(&b));
                assert!(b >= prev, "budget shrank at Ebat {}", k as f64 / 1000.0);
                prev = b;
            }
        }
    }

    #[test]
    fn policy_serializes_roundtrip() {
        let p = RetryPolicy::default();
        let json = serde_json::to_string(&p).unwrap();
        let back: RetryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
