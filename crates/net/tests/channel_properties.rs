//! Property-based tests of the network substrate: transfer-time
//! integration is consistent, additive, and monotone for any seeded trace.

use bees_net::{BandwidthTrace, Channel};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = BandwidthTrace> {
    prop_oneof![
        (1_000.0f64..1e6).prop_map(|bps| BandwidthTrace::constant(bps).unwrap()),
        (any::<u64>(), 1_000.0f64..200_000.0, 0.5f64..10.0).prop_map(|(seed, min, interval)| {
            BandwidthTrace::fluctuating(seed, min, min * 4.0, interval).unwrap()
        }),
        proptest::collection::vec((0.5f64..5.0, 1_000.0f64..500_000.0), 1..5)
            .prop_map(|segs| BandwidthTrace::schedule(segs).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transfers_are_additive(trace in arb_trace(), start in 0.0f64..100.0, b1 in 0usize..100_000, b2 in 0usize..100_000) {
        // Sending b1 then b2 back-to-back takes exactly as long as sending
        // b1 + b2 in one go: the integration is exact over segments.
        let ch = Channel::new(trace);
        let d_both = ch.transfer_duration(start, b1 + b2).unwrap();
        let d1 = ch.transfer_duration(start, b1).unwrap();
        let d2 = ch.transfer_duration(start + d1, b2).unwrap();
        // When d1 lands within float epsilon of a segment boundary, the
        // second transfer may price a vanishing sliver at the neighboring
        // segment's rate; the discrepancy is bounded by that sliver.
        prop_assert!(
            (d_both - (d1 + d2)).abs() < 1e-4 * (1.0 + d_both),
            "{d_both} vs {} + {}",
            d1,
            d2
        );
    }

    #[test]
    fn duration_is_monotone_in_bytes(trace in arb_trace(), start in 0.0f64..50.0, a in 0usize..100_000, b in 0usize..100_000) {
        let ch = Channel::new(trace);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(ch.transfer_duration(start, lo).unwrap() <= ch.transfer_duration(start, hi).unwrap() + 1e-9);
    }

    #[test]
    fn trace_rate_is_always_in_bounds(seed in any::<u64>(), min in 0.0f64..100_000.0, span in 1.0f64..100_000.0, t in 0.0f64..10_000.0) {
        let trace = BandwidthTrace::fluctuating(seed, min, min + span, 2.0).unwrap();
        let bps = trace.bps_at(t);
        prop_assert!(bps >= min && bps <= min + span);
    }

    #[test]
    fn segment_end_is_after_t(trace in arb_trace(), t in 0.0f64..1_000.0) {
        prop_assert!(trace.segment_end(t) > t);
    }

    #[test]
    fn constant_trace_duration_is_exact(bps in 1_000.0f64..1e6, bytes in 0usize..1_000_000, start in 0.0f64..100.0) {
        let ch = Channel::new(BandwidthTrace::constant(bps).unwrap());
        let d = ch.transfer_duration(start, bytes).unwrap();
        prop_assert!((d - bytes as f64 * 8.0 / bps).abs() < 1e-9);
    }
}
