#![warn(missing_docs)]

//! Deterministic scoped worker pool for the BEES reproduction.
//!
//! Every hot path in the pipeline — pyramid-level ORB extraction, brute-force
//! Hamming matching, MIH candidate rescoring, pairwise similarity graphs,
//! greedy submodular maximization, and the block-DCT codec — is a fan-out
//! over independent work items. This crate provides that fan-out with one
//! non-negotiable property: **the output is bit-identical at 1, 2, or N
//! threads**.
//!
//! # Determinism model
//!
//! [`Runtime::par_map`] and friends split the input range into chunks whose
//! boundaries depend only on the input length, never on the thread count.
//! Workers claim chunks dynamically (work stealing via an atomic cursor),
//! but results are merged back in ascending chunk order, so:
//!
//! - `par_map` output is the same `Vec` a sequential `map` would produce;
//! - `par_map_reduce` folds each chunk left-to-right and combines the chunk
//!   accumulators in chunk order, so even non-associative-in-ulps floating
//!   point reductions are reproducible across thread counts.
//!
//! The only requirement on the closures is that they are pure functions of
//! their index (no interior mutation observable across items).
//!
//! # Thread-count resolution
//!
//! The pool width comes from, in priority order:
//!
//! 1. a programmatic override ([`set_threads`], used by tests and benches),
//! 2. the `BEES_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! A width of 1 (or a call from inside a worker thread — nested parallelism
//! is flattened rather than oversubscribed) runs the exact same chunked code
//! path inline without spawning.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Target number of chunks a range is split into. Fixed (rather than derived
/// from the thread count) so the chunk decomposition — and therefore every
/// merge and reduction order — is a function of the input length alone.
const TARGET_CHUNKS: usize = 64;

/// Programmatic thread-count override; 0 means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True inside pool workers: nested `par_map` calls run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Default thread count: `BEES_THREADS` if set and positive, else the
/// machine's available parallelism. Cached after the first read.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("BEES_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Overrides the global thread count (`0` restores the `BEES_THREADS` /
/// available-parallelism default). Intended for tests and benches that sweep
/// thread counts inside one process; results must not change either way.
pub fn set_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::SeqCst);
}

/// The thread count new [`Runtime::current`] handles will use.
pub fn current_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => default_threads(),
        n => n,
    }
}

/// Whether the calling thread is a pool worker (nested calls run inline).
pub fn in_worker() -> bool {
    IN_POOL.with(|p| p.get())
}

/// A handle selecting how many worker threads parallel operations may use.
///
/// The handle is a plain value: scoped threads are spawned per call and
/// joined before the call returns, so there is no pool lifecycle to manage
/// and borrowed (non-`'static`) data can flow into the closures freely.
///
/// # Examples
///
/// ```
/// use bees_runtime::Runtime;
///
/// let rt = Runtime::new(4);
/// let squares = rt.par_map_range(10, |i| i * i);
/// assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Runtime {
    threads: usize,
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::current()
    }
}

impl Runtime {
    /// Creates a handle with an explicit thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "runtime needs at least one thread");
        Runtime { threads }
    }

    /// Creates a handle using the global thread-count setting (see
    /// [`set_threads`] and the `BEES_THREADS` environment variable).
    pub fn current() -> Self {
        Runtime {
            threads: current_threads().max(1),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Chunk length for an input of `n` items — a function of `n` only.
    fn chunk_len(n: usize) -> usize {
        n.div_ceil(TARGET_CHUNKS).max(1)
    }

    /// Runs `work` once per chunk of `0..n` and returns the per-chunk
    /// outputs in ascending chunk order. The scheduling backbone of every
    /// public operation.
    fn run_chunked<R, W>(&self, n: usize, work: W) -> Vec<R>
    where
        R: Send,
        W: Fn(usize, usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let chunk = Self::chunk_len(n);
        let n_chunks = n.div_ceil(chunk);
        let run_chunk = |c: usize| {
            let start = c * chunk;
            work(start, (start + chunk).min(n))
        };
        let workers = self.threads.min(n_chunks);
        if workers <= 1 || in_worker() {
            return (0..n_chunks).map(run_chunk).collect();
        }
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_chunks));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    IN_POOL.with(|p| p.set(true));
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let out = run_chunk(c);
                        results
                            .lock()
                            .expect("no panic while holding lock")
                            .push((c, out));
                    }
                });
            }
        });
        let mut chunks = results.into_inner().expect("workers joined");
        chunks.sort_unstable_by_key(|&(c, _)| c);
        chunks.into_iter().map(|(_, r)| r).collect()
    }

    /// Maps `f` over `0..n`, returning results in index order.
    ///
    /// Bit-identical to `(0..n).map(f).collect()` at any thread count.
    pub fn par_map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let chunks = self.run_chunked(n, |start, end| (start..end).map(&f).collect::<Vec<R>>());
        let mut out = Vec::with_capacity(n);
        for c in chunks {
            out.extend(c);
        }
        out
    }

    /// Maps `f` over a slice, returning results in item order.
    ///
    /// # Examples
    ///
    /// ```
    /// use bees_runtime::Runtime;
    ///
    /// let words = ["a", "bb", "ccc"];
    /// let lens = Runtime::current().par_map(&words, |w| w.len());
    /// assert_eq!(lens, vec![1, 2, 3]);
    /// ```
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_range(items.len(), |i| f(&items[i]))
    }

    /// Maps `map` over `0..n` and reduces: each chunk is folded
    /// left-to-right from a clone of `identity`, then the chunk accumulators
    /// are combined in ascending chunk order, again starting from
    /// `identity`.
    ///
    /// Because the chunk decomposition depends only on `n`, the exact
    /// fold/combine tree — and therefore the result, even for
    /// floating-point accumulators — is identical at any thread count.
    ///
    /// # Examples
    ///
    /// ```
    /// use bees_runtime::Runtime;
    ///
    /// let rt = Runtime::new(3);
    /// let sum = rt.par_map_reduce(100, |i| i as u64, 0u64, |a, x| a + x, |a, b| a + b);
    /// assert_eq!(sum, 4950);
    /// ```
    pub fn par_map_reduce<R, A, M, F, C>(
        &self,
        n: usize,
        map: M,
        identity: A,
        fold: F,
        combine: C,
    ) -> A
    where
        R: Send,
        A: Send + Sync + Clone,
        M: Fn(usize) -> R + Sync,
        F: Fn(A, R) -> A + Sync,
        C: Fn(A, A) -> A,
    {
        let chunks = self.run_chunked(n, |start, end| {
            (start..end).map(&map).fold(identity.clone(), &fold)
        });
        chunks.into_iter().fold(identity, combine)
    }

    /// Runs `f` on every element of `items` in place, passing the element's
    /// index. Each worker owns a disjoint contiguous sub-slice, so no
    /// synchronization is needed beyond the final join; as with the other
    /// primitives the result is independent of the thread count because each
    /// closure sees exactly one `(index, element)` pair.
    ///
    /// Used by the sharded index to build / query all shards concurrently.
    ///
    /// # Examples
    ///
    /// ```
    /// use bees_runtime::Runtime;
    ///
    /// let mut v = vec![10u64, 20, 30];
    /// Runtime::new(2).par_for_each_mut(&mut v, |i, x| *x += i as u64);
    /// assert_eq!(v, vec![10, 21, 32]);
    /// ```
    pub fn par_for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 || in_worker() {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let per_worker = n.div_ceil(workers);
        std::thread::scope(|scope| {
            for (w, slab) in items.chunks_mut(per_worker).enumerate() {
                let f = &f;
                scope.spawn(move || {
                    IN_POOL.with(|p| p.set(true));
                    for (i, item) in slab.iter_mut().enumerate() {
                        f(w * per_worker + i, item);
                    }
                });
            }
        });
    }
}

/// [`Runtime::par_map_range`] on the current global runtime.
pub fn par_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    Runtime::current().par_map_range(n, f)
}

/// [`Runtime::par_map`] on the current global runtime.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    Runtime::current().par_map(items, f)
}

/// [`Runtime::par_for_each_mut`] on the current global runtime.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    Runtime::current().par_for_each_mut(items, f)
}

/// [`Runtime::par_map_reduce`] on the current global runtime.
pub fn par_map_reduce<R, A, M, F, C>(n: usize, map: M, identity: A, fold: F, combine: C) -> A
where
    R: Send,
    A: Send + Sync + Clone,
    M: Fn(usize) -> R + Sync,
    F: Fn(A, R) -> A + Sync,
    C: Fn(A, A) -> A,
{
    Runtime::current().par_map_reduce(n, map, identity, fold, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_range_matches_sequential() {
        for threads in [1, 2, 3, 8, 17] {
            let rt = Runtime::new(threads);
            for n in [0usize, 1, 2, 63, 64, 65, 1000] {
                let par = rt.par_map_range(n, |i| i * 3 + 1);
                let seq: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
                assert_eq!(par, seq, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<i64> = (0..500).map(|i| i - 250).collect();
        let rt = Runtime::new(4);
        assert_eq!(
            rt.par_map(&items, |&x| x * x),
            items.iter().map(|&x| x * x).collect::<Vec<_>>()
        );
    }

    #[test]
    fn float_reduction_is_identical_across_thread_counts() {
        // Sums of f64 are not associative in ulps; the fixed chunk tree must
        // make the result independent of the worker count anyway.
        let values: Vec<f64> = (0..10_000)
            .map(|i| ((i * 37) % 101) as f64 * 0.1 + 0.01)
            .collect();
        let sum_at = |threads: usize| {
            Runtime::new(threads).par_map_reduce(
                values.len(),
                |i| values[i],
                0.0f64,
                |a, x| a + x,
                |a, b| a + b,
            )
        };
        let baseline = sum_at(1);
        for threads in [2, 3, 4, 8, 16] {
            assert_eq!(
                baseline.to_bits(),
                sum_at(threads).to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn nested_calls_run_inline() {
        let rt = Runtime::new(4);
        let out = rt.par_map_range(8, |i| {
            assert!(i == 0 || in_worker() || rt.threads() == 1 || true);
            // The nested call must not deadlock or oversubscribe; it simply
            // runs inline inside the worker.
            rt.par_map_range(16, move |j| i * 16 + j)
                .iter()
                .sum::<usize>()
        });
        let expected: Vec<usize> = (0..8)
            .map(|i| (0..16).map(|j| i * 16 + j).sum::<usize>())
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn worker_panics_propagate() {
        let rt = Runtime::new(2);
        let result = std::panic::catch_unwind(|| {
            rt.par_map_range(100, |i| {
                if i == 57 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn set_threads_overrides_and_resets() {
        set_threads(3);
        assert_eq!(current_threads(), 3);
        assert_eq!(Runtime::current().threads(), 3);
        set_threads(0);
        assert!(current_threads() >= 1);
    }

    #[test]
    fn for_each_mut_matches_sequential_at_any_thread_count() {
        for threads in [1, 2, 3, 8, 17] {
            let rt = Runtime::new(threads);
            for n in [0usize, 1, 2, 7, 64, 1000] {
                let mut par: Vec<u64> = (0..n as u64).collect();
                rt.par_for_each_mut(&mut par, |i, x| *x = x.wrapping_mul(31) ^ i as u64);
                let seq: Vec<u64> = (0..n as u64).map(|x| x.wrapping_mul(31) ^ x).collect();
                assert_eq!(par, seq, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn for_each_mut_nested_inside_par_map_runs_inline() {
        let rt = Runtime::new(4);
        let out = rt.par_map_range(6, |i| {
            let mut inner = vec![i; 8];
            rt.par_for_each_mut(&mut inner, |j, x| *x += j);
            inner.iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..6).map(|i| 8 * i + 28).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn reduce_handles_empty_range() {
        let rt = Runtime::new(4);
        let sum = rt.par_map_reduce(0, |i| i as u64, 7u64, |a, x| a + x, |a, b| a + b);
        assert_eq!(sum, 7);
    }

    #[test]
    fn argmax_reduction_matches_sequential_scan() {
        // The greedy maximizer's reduction shape: strictly-greater wins, so
        // the earliest index is kept on exact ties at any thread count.
        let gains: Vec<f64> = (0..997).map(|i| ((i * 31) % 50) as f64).collect();
        let pick = |threads: usize| {
            Runtime::new(threads).par_map_reduce(
                gains.len(),
                |i| (i, gains[i]),
                None::<(usize, f64)>,
                |acc, (i, g)| match acc {
                    Some((_, bg)) if g <= bg => acc,
                    _ => Some((i, g)),
                },
                |a, b| match (a, b) {
                    (Some((_, ag)), Some((bi, bg))) if bg > ag => Some((bi, bg)),
                    (None, b) => b,
                    (a, _) => a,
                },
            )
        };
        let seq = gains
            .iter()
            .enumerate()
            .fold(None::<(usize, f64)>, |acc, (i, &g)| match acc {
                Some((_, bg)) if g <= bg => acc,
                _ => Some((i, g)),
            });
        for threads in [1, 2, 5, 8] {
            assert_eq!(pick(threads), seq, "threads={threads}");
        }
    }
}
