//! Shared-cell contention: devices × cell-capacity sweep, three airtime
//! scheduling policies at equal seeds.
//!
//! Every fleet in the sweep shares one uplink cell instead of N private
//! channels. For each (devices, capacity) point the same seeded workload
//! runs under the FIFO, round-robin, and utility schedulers, so the table
//! isolates what the *ranking discipline* buys when the cell is
//! oversubscribed: the utility scheduler (SSMM novelty × battery state ×
//! geotag coverage gap) defers low-value co-located devices before they
//! spend radio energy, which shows up as more unique locations covered per
//! kilojoule drained. `--json-out` emits the trajectory for
//! `scripts/perf_check.py`.
//!
//! Not a paper figure — the paper gives each phone its own channel — but
//! the disaster scenario it motivates (§I) is exactly one where survivors
//! crowd whatever cell is left standing.

use crate::args::ExpArgs;
use crate::perf::{write_json_lines, Metric};
use crate::table::{f1, Table};
use bees_core::schemes::Bees;
use bees_core::sessions::{run_fleet, FleetConfig, FleetReport};
use bees_core::{BeesConfig, SchedulerPolicy};
use bees_datasets::SceneConfig;
use bees_energy::Battery;
use bees_net::BandwidthTrace;

/// The three ranking disciplines, in table order.
pub const POLICIES: [SchedulerPolicy; 3] = [
    SchedulerPolicy::Fifo,
    SchedulerPolicy::RoundRobin,
    SchedulerPolicy::Utility,
];

/// One (devices, capacity, policy) point of the sweep.
#[derive(Debug, Clone)]
pub struct ContentionCell {
    /// Fleet size sharing the cell.
    pub devices: usize,
    /// Cell capacity in bits per second.
    pub capacity_bps: f64,
    /// The scheduling policy this point ran under.
    pub policy: SchedulerPolicy,
    /// The deterministic fleet report.
    pub report: FleetReport,
}

impl ContentionCell {
    /// Unique geotagged locations covered per kilojoule drained — the
    /// sweep's figure of merit (higher is better).
    pub fn coverage_per_kj(&self) -> f64 {
        let kj = self.report.energy_spent_j / 1000.0;
        if kj > 0.0 {
            self.report.unique_locations as f64 / kj
        } else {
            0.0
        }
    }

    /// Full or partial images the server holds per kilojoule drained.
    pub fn delivered_per_kj(&self) -> f64 {
        let kj = self.report.energy_spent_j / 1000.0;
        let delivered = self.report.images_uploaded + self.report.salvaged_images;
        if kj > 0.0 {
            delivered as f64 / kj
        } else {
            0.0
        }
    }

    /// Mean of the per-epoch cell-utilization series.
    pub fn mean_utilization(&self) -> f64 {
        let u = &self.report.cell_utilization;
        if u.is_empty() {
            0.0
        } else {
            u.iter().sum::<f64>() / u.len() as f64
        }
    }

    fn case_name(&self) -> String {
        format!(
            "d{}_c{}k_{}",
            self.devices,
            (self.capacity_bps / 1000.0) as u64,
            self.policy.as_str()
        )
    }
}

/// Full sweep result.
#[derive(Debug, Clone)]
pub struct ContentionResult {
    /// All cells: (devices, capacity)-major, policy-minor (FIFO,
    /// round-robin, utility).
    pub cells: Vec<ContentionCell>,
}

impl ContentionResult {
    /// The perf-trajectory lines for `BENCH_baseline.json`.
    pub fn metrics(&self) -> Vec<Metric> {
        let mut out = Vec::with_capacity(self.cells.len() * 3);
        for c in &self.cells {
            let case = c.case_name();
            out.push(Metric::new(
                "contention",
                &case,
                "coverage_per_kj",
                c.coverage_per_kj(),
            ));
            out.push(Metric::new(
                "contention",
                &case,
                "delivered_per_kj",
                c.delivered_per_kj(),
            ));
            out.push(Metric::lower(
                "contention",
                &case,
                "deadline_abandons",
                c.report.deadline_abandons as f64,
            ));
        }
        out
    }

    /// Prints the sweep table.
    pub fn print(&self) {
        println!("\n== Shared-cell contention: devices x capacity x scheduler ==");
        let mut t = Table::new(vec![
            "devices",
            "cell kbps",
            "policy",
            "granted",
            "denied",
            "abandoned",
            "locations",
            "util %",
            "cov/kJ",
            "delivered/kJ",
        ]);
        for c in &self.cells {
            t.row(vec![
                c.devices.to_string(),
                format!("{:.0}", c.capacity_bps / 1000.0),
                c.policy.as_str().to_string(),
                c.report.grants_issued.to_string(),
                c.report.grants_denied.to_string(),
                c.report.deadline_abandons.to_string(),
                c.report.unique_locations.to_string(),
                format!("{:.0}", 100.0 * c.mean_utilization()),
                f1(c.coverage_per_kj()),
                f1(c.delivered_per_kj()),
            ]);
        }
        t.print();
        println!(
            "equal seeds per (devices, capacity) point; the policy column is \
             the only knob that moves"
        );
    }
}

fn fleet_for(args: &ExpArgs, devices: usize) -> FleetConfig {
    FleetConfig {
        n_devices: devices,
        rounds: args.scaled(4, 3),
        group_size: args.scaled(5, 3),
        shared_per_group: 2,
        interval_s: 30.0,
        scene: SceneConfig {
            width: 96,
            height: 72,
            n_shapes: 8,
            texture_amp: 8.0,
        },
        seed: args.seed,
        pulldown: None,
    }
}

fn config_for(args: &ExpArgs, capacity_bps: f64, policy: SchedulerPolicy) -> BeesConfig {
    let mut c = BeesConfig {
        trace: BandwidthTrace::constant(256_000.0).expect("constant trace is valid"),
        // A small battery, sized (with the workload) so an oversubscribed
        // run kills part of the fleet: which devices the scheduler spends
        // airtime on then decides how many sites get covered before the
        // lights go out.
        battery: Battery::from_joules(args.scaled(100, 40) as f64),
        scheduler: policy,
        ..BeesConfig::default()
    };
    c.cell.enabled = true;
    c.cell.capacity = BandwidthTrace::constant(capacity_bps).expect("constant trace is valid");
    c.cell.epoch_s = 20.0;
    c
}

/// Runs the devices × cell-capacity × policy sweep (BEES scheme).
pub fn run(args: &ExpArgs) -> ContentionResult {
    // The small capacity puts the larger fleet well past 2x
    // oversubscription; the larger capacity is the near-saturated control.
    // Both scale with the workload so quick mode contends rather than
    // collapsing outright.
    let device_sweep = [args.scaled(6, 4), args.scaled(10, 8)];
    let capacity_sweep = [
        args.scaled(48_000, 32_000) as f64,
        args.scaled(192_000, 96_000) as f64,
    ];
    let mut cells = Vec::new();
    for &devices in &device_sweep {
        let fleet = fleet_for(args, devices);
        for &capacity in &capacity_sweep {
            for policy in POLICIES {
                let config = config_for(args, capacity, policy);
                let report = run_fleet(&Bees::adaptive(&config), &config, &fleet)
                    .expect("constant traces cannot stall");
                cells.push(ContentionCell {
                    devices,
                    capacity_bps: capacity,
                    policy,
                    report,
                });
            }
        }
    }
    let result = ContentionResult { cells };
    if let Some(path) = &args.json_out {
        write_json_lines(path, &result.metrics());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ContentionResult {
        run(&ExpArgs {
            scale: 0.1,
            seed: 7,
            quick: true,
            ..ExpArgs::default()
        })
    }

    #[test]
    fn utility_beats_fifo_and_round_robin_when_oversubscribed() {
        let r = quick();
        // 2 fleet sizes x 2 capacities x 3 policies.
        assert_eq!(r.cells.len(), 12);
        // The most oversubscribed point: the big fleet on the small cell.
        let max_devices = r.cells.iter().map(|c| c.devices).max().unwrap();
        let min_capacity = r
            .cells
            .iter()
            .map(|c| c.capacity_bps)
            .fold(f64::INFINITY, f64::min);
        let point: Vec<&ContentionCell> = r
            .cells
            .iter()
            .filter(|c| c.devices == max_devices && c.capacity_bps == min_capacity)
            .collect();
        assert_eq!(point.len(), 3);
        let by = |p: SchedulerPolicy| point.iter().find(|c| c.policy == p).unwrap();
        let fifo = by(SchedulerPolicy::Fifo);
        let rr = by(SchedulerPolicy::RoundRobin);
        let util = by(SchedulerPolicy::Utility);
        assert!(
            util.coverage_per_kj() > fifo.coverage_per_kj(),
            "utility {} vs fifo {}",
            util.coverage_per_kj(),
            fifo.coverage_per_kj()
        );
        assert!(
            util.coverage_per_kj() > rr.coverage_per_kj(),
            "utility {} vs round-robin {}",
            util.coverage_per_kj(),
            rr.coverage_per_kj()
        );
        // The cell genuinely contends at this point.
        assert!(util.report.grants_denied > 0, "{:?}", util.report);
    }

    #[test]
    fn sweep_is_reproducible_and_metrics_are_well_formed() {
        let a = quick();
        let b = quick();
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.report.to_json(), y.report.to_json());
        }
        for m in a.metrics() {
            assert!(m.value.is_finite() && m.value >= 0.0, "{m:?}");
        }
    }
}
