//! Ablation: SSMM's similarity-adaptive budget vs. a user-fixed budget
//! (paper §III-B2 argues the fixed budget "is inefficient in our
//! application situation" because the right summary size varies from batch
//! to batch).
//!
//! Batches with different amounts of in-batch duplication are summarized
//! with (a) the adaptive budget and (b) fixed budgets; the table reports
//! how many images each keeps and the redundancy/coverage errors: a fixed
//! budget either keeps duplicates (too large) or drops unique scenes (too
//! small), while the adaptive budget tracks the batch structure.

use crate::args::ExpArgs;
use crate::table::Table;
use bees_core::BeesConfig;
use bees_datasets::{Scene, SceneConfig, ViewJitter};
use bees_energy::AdaptiveScheme;
use bees_features::orb::Orb;
use bees_features::similarity::jaccard_similarity;
use bees_features::FeatureExtractor;
use bees_submodular::{SimilarityGraph, Ssmm};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One batch structure evaluated under several budget policies.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Number of distinct scenes in the batch.
    pub unique_scenes: usize,
    /// Total images (including duplicate views).
    pub batch_size: usize,
    /// Adaptive budget chosen by SSMM.
    pub adaptive_budget: usize,
    /// Images kept / duplicates kept / unique scenes missed, per policy:
    /// `[adaptive, fixed_half, fixed_double]`.
    pub outcomes: Vec<(String, usize, usize, usize)>,
}

/// Full ablation result.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// One row per batch structure.
    pub rows: Vec<AblationRow>,
}

impl AblationResult {
    /// Prints the comparison.
    pub fn print(&self) {
        println!("\n== Ablation: SSMM adaptive budget vs fixed budgets ==");
        let mut t = Table::new(vec![
            "batch (unique/total)",
            "policy",
            "kept",
            "dupes kept",
            "scenes missed",
        ]);
        for row in &self.rows {
            for (policy, kept, dupes, missed) in &row.outcomes {
                t.row(vec![
                    format!("{}/{}", row.unique_scenes, row.batch_size),
                    policy.clone(),
                    kept.to_string(),
                    dupes.to_string(),
                    missed.to_string(),
                ]);
            }
        }
        t.print();
        println!("the adaptive budget keeps ~one image per scene; fixed budgets either");
        println!("retain duplicates or drop unique scenes as the batch structure shifts.");
    }
}

/// Runs the ablation over batches with 2, 4, and 8 duplicate views per
/// scene structure.
pub fn run(args: &ExpArgs) -> AblationResult {
    let config = BeesConfig::default();
    let orb = Orb::new(config.orb);
    let ssmm = Ssmm::new(config.ssmm);
    let tw = config.tw.value(1.0);
    let scene_cfg = SceneConfig::default();
    let mut rows = Vec::new();

    // (unique scenes, views per scene)
    for &(unique, views) in &[(8usize, 1usize), (4, 2), (2, 4)] {
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed ^ (unique as u64) << 8);
        let mut features = Vec::new();
        let mut scene_of = Vec::new();
        for s in 0..unique {
            let scene = Scene::new(args.seed.wrapping_add(s as u64 * 7919), scene_cfg);
            for v in 0..views {
                let img = if v == 0 {
                    scene.render(&ViewJitter::identity())
                } else {
                    scene.render(&ViewJitter::sample(&mut rng))
                };
                features.push(orb.extract(&img.to_gray()));
                scene_of.push(s);
            }
        }
        let n = features.len();
        let graph = SimilarityGraph::from_pairwise(n, |i, j| {
            jaccard_similarity(&features[i], &features[j], &config.similarity)
        });

        let adaptive = ssmm.summarize(&graph, tw);
        let b = adaptive.budget;
        let mut outcomes = Vec::new();
        for (policy, summary) in [
            ("adaptive".to_string(), adaptive.clone()),
            (
                format!("fixed {}", (b / 2).max(1)),
                ssmm.summarize_with_fixed_budget(&graph, tw, (b / 2).max(1)),
            ),
            (
                format!("fixed {}", (b * 2).min(n)),
                ssmm.summarize_with_fixed_budget(&graph, tw, (b * 2).min(n)),
            ),
        ] {
            let kept = summary.selected.len();
            // Duplicates kept: images beyond the first per scene.
            let mut seen = vec![false; unique];
            let mut dupes = 0usize;
            for &i in &summary.selected {
                if seen[scene_of[i]] {
                    dupes += 1;
                } else {
                    seen[scene_of[i]] = true;
                }
            }
            let missed = seen.iter().filter(|&&s| !s).count();
            outcomes.push((policy, kept, dupes, missed));
        }
        rows.push(AblationRow {
            unique_scenes: unique,
            batch_size: n,
            adaptive_budget: b,
            outcomes,
        });
    }
    AblationResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_budget_tracks_batch_structure() {
        let args = ExpArgs {
            scale: 1.0,
            seed: 91,
            quick: false,
            ..ExpArgs::default()
        };
        let r = run(&args);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            // The adaptive policy is the first outcome.
            let (policy, kept, dupes, missed) = &row.outcomes[0];
            assert_eq!(policy, "adaptive");
            // It keeps roughly one image per unique scene: no scene missed
            // and (almost) no duplicates kept.
            assert_eq!(*missed, 0, "adaptive missed scenes in {row:?}");
            assert!(*dupes <= 1, "adaptive kept {dupes} duplicates in {row:?}");
            assert!(*kept >= row.unique_scenes);
            // The halved fixed budget must miss scenes whenever it is
            // genuinely below the scene count.
            let (_, _, _, missed_half) = &row.outcomes[1];
            if row.adaptive_budget / 2 >= 1 && row.adaptive_budget / 2 < row.unique_scenes {
                assert!(*missed_half > 0, "fixed-half should under-cover in {row:?}");
            }
        }
    }
}
