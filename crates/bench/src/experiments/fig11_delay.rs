//! Fig. 11: average per-image upload delay under network bitrates of
//! 128 / 256 / 512 Kbps for Direct Upload, SmartEye, MRC, and BEES.
//!
//! The paper's delay includes feature extraction plus feature/image
//! transmission, excluding server query time. Shapes: Direct Upload is the
//! slowest; SmartEye is slower than MRC (PCA-SIFT extraction); BEES is the
//! fastest by a wide margin; all delays fall as the bitrate rises.

use crate::args::ExpArgs;
use crate::table::{f1, Table};
use bees_core::schemes::{make_scheme, BatchCtx, SchemeKind, UploadScheme};
use bees_core::{BeesConfig, Client, Server};
use bees_datasets::{disaster_batch, SceneConfig};
use bees_net::BandwidthTrace;

/// Average delays at one bitrate.
#[derive(Debug, Clone)]
pub struct DelayPoint {
    /// Bitrate in Kbps.
    pub kbps: u32,
    /// Per-scheme average per-image delay (seconds), [Direct, SmartEye,
    /// MRC, BEES] order.
    pub avg_delay_s: Vec<f64>,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// Batch size used.
    pub batch_size: usize,
    /// One point per bitrate.
    pub points: Vec<DelayPoint>,
}

impl Fig11Result {
    /// Prints the paper-style table.
    pub fn print(&self) {
        println!(
            "\n== Fig. 11: average per-image upload delay ({} images, 50% redundancy) ==",
            self.batch_size
        );
        let mut t = Table::new(vec![
            "bitrate",
            "Direct (s)",
            "SmartEye (s)",
            "MRC (s)",
            "BEES (s)",
        ]);
        for p in &self.points {
            let mut row = vec![format!("{} Kbps", p.kbps)];
            row.extend(p.avg_delay_s.iter().map(|&d| f1(d)));
            t.row(row);
        }
        t.print();
        if let Some(p) = self.points.iter().find(|p| p.kbps == 256) {
            println!(
                "at 256 Kbps: BEES cuts {:.1}% of Direct Upload's delay and {:.1}% of MRC's",
                (1.0 - p.avg_delay_s[3] / p.avg_delay_s[0]) * 100.0,
                (1.0 - p.avg_delay_s[3] / p.avg_delay_s[2]) * 100.0
            );
        }
    }
}

/// Runs the bitrate sweep.
pub fn run(args: &ExpArgs) -> Fig11Result {
    let batch_size = args.scaled(100, 8);
    let in_batch = (batch_size / 10).max(1);
    let data = disaster_batch(args.seed, batch_size, in_batch, 0.5, SceneConfig::default());

    let mut points = Vec::new();
    for kbps in [128u32, 256, 512] {
        let config = BeesConfig {
            trace: BandwidthTrace::constant(kbps as f64 * 1000.0).expect("constant trace is valid"),
            ..BeesConfig::default()
        };
        let schemes: Vec<Box<dyn UploadScheme>> = [
            SchemeKind::DirectUpload,
            SchemeKind::SmartEye,
            SchemeKind::Mrc,
            SchemeKind::Bees,
        ]
        .iter()
        .map(|&k| make_scheme(k, &config))
        .collect();
        let mut avg = Vec::new();
        for scheme in &schemes {
            let mut server = Server::try_new(&config).expect("config is valid");
            let mut client = Client::try_new(0, &config).expect("default config is valid");
            scheme.preload_server(&mut server, &data.server_preload);
            let report = scheme
                .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
                .expect("constant trace cannot stall");
            avg.push(report.avg_delay_per_image());
        }
        points.push(DelayPoint {
            kbps,
            avg_delay_s: avg,
        });
    }
    Fig11Result { batch_size, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_shapes_match_paper() {
        let args = ExpArgs {
            scale: 0.12,
            seed: 71,
            quick: true,
            ..ExpArgs::default()
        };
        let r = run(&args);
        assert_eq!(r.points.len(), 3);
        for p in &r.points {
            let [direct, smarteye, mrc, bees] = p.avg_delay_s[..] else {
                panic!("4 schemes")
            };
            assert!(
                bees < direct,
                "{} Kbps: BEES {bees} vs Direct {direct}",
                p.kbps
            );
            assert!(bees < mrc, "{} Kbps: BEES {bees} vs MRC {mrc}", p.kbps);
            assert!(
                smarteye > mrc,
                "{} Kbps: SmartEye {smarteye} vs MRC {mrc}",
                p.kbps
            );
        }
        // Higher bitrate, lower Direct Upload delay.
        assert!(r.points[2].avg_delay_s[0] < r.points[0].avg_delay_s[0]);
    }
}
